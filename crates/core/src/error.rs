//! Error types for the Atom protocol layer.

use std::fmt;

use atom_crypto::CryptoError;

/// Errors surfaced by the Atom protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtomError {
    /// An underlying cryptographic operation failed.
    Crypto(CryptoError),
    /// A configuration or parameter problem.
    Config(String),
    /// A user submission was rejected (bad proof, wrong shape, ...).
    SubmissionRejected(String),
    /// A server deviated from the protocol and was detected; the round must
    /// abort. Carries the group id and (if known) the offending member
    /// position.
    ProtocolViolation {
        /// Group in which the violation was detected.
        group: usize,
        /// Position of the offending member within the group, if identified.
        member: Option<usize>,
        /// Human-readable description.
        reason: String,
    },
    /// The trap check failed at the end of a trap-variant round: the trustees
    /// withhold the decryption key and the round aborts (§4.4).
    TrapCheckFailed(String),
    /// Too many servers in a group failed to continue the round (§4.5).
    TooManyFailures {
        /// The affected group.
        group: usize,
        /// Number of failed members.
        failed: usize,
        /// Number of failures the group was provisioned to tolerate.
        tolerated: usize,
    },
    /// A message or batch was malformed.
    Malformed(String),
    /// A round died inside the execution engine rather than in the protocol
    /// itself: the runtime classifies the failure (stall, lost peer, peer
    /// abort) so operators and telemetry can react to the *kind* without
    /// parsing the free-text reason.
    Engine {
        /// Structured failure classification.
        kind: EngineErrorKind,
        /// Human-readable diagnosis (e.g. the engine's stall detail).
        reason: String,
        /// Transport nodes implicated in the failure: the mailboxes the
        /// engine was still waiting on when a stall fired, or the peer node
        /// a send could not reach. The runtime maps these to the processes
        /// (and then servers) a fault verdict should evict, so recovery
        /// never has to parse `reason`.
        nodes: Vec<usize>,
    },
}

/// Classification of fatal engine-level round failures (the
/// [`AtomError::Engine`] variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineErrorKind {
    /// No task progress within the stall timeout: a peer process died
    /// silently, or a local bug lost a wake-up.
    Stall,
    /// A peer process became unreachable mid-round (connect failure, reset
    /// stream); the transport could not deliver a protocol frame.
    TransportLost,
    /// A peer reported the round aborted on its side; the authoritative
    /// error lives with that peer.
    ProtocolAbort,
    /// The round made progress but blew past its wall-clock deadline: the
    /// classic slow-loris shape, where a peer drips frames just often
    /// enough to keep the stall detector quiet while the round never
    /// finishes.
    Deadline,
}

impl fmt::Display for EngineErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EngineErrorKind::Stall => "stall",
            EngineErrorKind::TransportLost => "transport-lost",
            EngineErrorKind::ProtocolAbort => "protocol-abort",
            EngineErrorKind::Deadline => "deadline",
        })
    }
}

impl fmt::Display for AtomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtomError::Crypto(e) => write!(f, "crypto error: {e}"),
            AtomError::Config(msg) => write!(f, "configuration error: {msg}"),
            AtomError::SubmissionRejected(msg) => write!(f, "submission rejected: {msg}"),
            AtomError::ProtocolViolation {
                group,
                member,
                reason,
            } => match member {
                Some(member) => write!(
                    f,
                    "protocol violation in group {group} by member {member}: {reason}"
                ),
                None => write!(f, "protocol violation in group {group}: {reason}"),
            },
            AtomError::TrapCheckFailed(msg) => write!(f, "trap check failed: {msg}"),
            AtomError::TooManyFailures {
                group,
                failed,
                tolerated,
            } => write!(
                f,
                "group {group} lost {failed} servers but tolerates only {tolerated}"
            ),
            AtomError::Malformed(msg) => write!(f, "malformed data: {msg}"),
            AtomError::Engine { kind, reason, .. } => {
                write!(f, "engine failure ({kind}): {reason}")
            }
        }
    }
}

impl std::error::Error for AtomError {}

impl From<CryptoError> for AtomError {
    fn from(e: CryptoError) -> Self {
        AtomError::Crypto(e)
    }
}

/// Convenience result alias for protocol operations.
pub type AtomResult<T> = Result<T, AtomError>;
