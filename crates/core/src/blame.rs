//! Identifying malicious users after a disrupted trap-variant round (§4.6).
//!
//! Malicious *users* can disrupt a trap-variant round by submitting missing,
//! malformed or duplicate traps, or duplicate inner ciphertexts. The servers
//! only notice at the end of the round, but they can then assign blame: all
//! entry groups reveal their (per-round) private keys, every submission is
//! decrypted in the open, and any user whose submission does not consist of
//! exactly one well-formed trap matching her commitment plus one inner
//! ciphertext — or who duplicated another user's inner ciphertext — is
//! reported for blacklisting.

use std::collections::HashMap;

use atom_crypto::commit;
use atom_crypto::dkg::reconstruct_group_secret;
use atom_crypto::elgamal::{decrypt_message, SecretKey};
use atom_crypto::encoding::decode_message;

use crate::directory::RoundSetup;
use crate::error::{AtomError, AtomResult};
use crate::message::{MixPayload, TrapSubmission, TRAP_COMMIT_LABEL};

/// Why a user was blamed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlameReason {
    /// The submission did not contain exactly one trap and one inner
    /// ciphertext, or a payload failed to parse.
    MalformedSubmission,
    /// The trap does not match the commitment the user supplied.
    TrapCommitmentMismatch,
    /// The trap names a different entry group than the one submitted to.
    WrongEntryGroup,
    /// The inner ciphertext duplicates another user's.
    DuplicateInnerCiphertext,
}

/// A blame verdict for one user.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Blame {
    /// Index of the offending submission in the order given.
    pub submission_index: usize,
    /// Why it was flagged.
    pub reason: BlameReason,
}

/// Decrypts every submission with the revealed entry-group keys and reports
/// the users whose submissions could have disrupted the round.
///
/// `submissions` must be the same slice the round was (attempted to be) run
/// with; the returned indices refer to it.
pub fn identify_malicious_users(
    setup: &RoundSetup,
    submissions: &[TrapSubmission],
) -> AtomResult<Vec<Blame>> {
    // Reveal each entry group's secret key (the keys are per-round, so this
    // sacrifices nothing beyond the already-aborted round).
    let mut group_secrets = Vec::with_capacity(setup.groups.len());
    for group in &setup.groups {
        let shares: Vec<_> = group.shares.iter().collect();
        let secret =
            reconstruct_group_secret(&shares[..group.threshold]).map_err(AtomError::Crypto)?;
        group_secrets.push(SecretKey(secret));
    }

    let mut blames = Vec::new();
    let mut inner_seen: HashMap<[u8; 32], usize> = HashMap::new();

    for (index, submission) in submissions.iter().enumerate() {
        let gid = submission.entry_group;
        if gid >= setup.groups.len() {
            blames.push(Blame {
                submission_index: index,
                reason: BlameReason::MalformedSubmission,
            });
            continue;
        }
        let secret = &group_secrets[gid];

        let mut traps = Vec::new();
        let mut inners = Vec::new();
        let mut malformed = false;
        for ciphertext in &submission.ciphertexts {
            let Ok(points) = decrypt_message(secret, ciphertext) else {
                malformed = true;
                continue;
            };
            let Ok(bytes) = decode_message(&points) else {
                malformed = true;
                continue;
            };
            match MixPayload::from_bytes(&bytes) {
                Ok(MixPayload::Trap { gid, nonce }) => traps.push((gid, nonce)),
                Ok(MixPayload::Inner(inner)) | Ok(MixPayload::Plaintext(inner)) => {
                    inners.push(inner)
                }
                Err(_) => malformed = true,
            }
        }

        if malformed || traps.len() != 1 || inners.len() != 1 {
            blames.push(Blame {
                submission_index: index,
                reason: BlameReason::MalformedSubmission,
            });
            continue;
        }

        let (trap_gid, nonce) = traps[0];
        if trap_gid as usize != gid {
            blames.push(Blame {
                submission_index: index,
                reason: BlameReason::WrongEntryGroup,
            });
            continue;
        }
        let expected = commit::commit(
            TRAP_COMMIT_LABEL,
            &MixPayload::trap_commit_bytes(trap_gid, &nonce),
        );
        if expected != submission.trap_commitment {
            blames.push(Blame {
                submission_index: index,
                reason: BlameReason::TrapCommitmentMismatch,
            });
            continue;
        }

        let digest = commit::commit(b"inner-dup", &inners[0]).0;
        if let Some(&first) = inner_seen.get(&digest) {
            blames.push(Blame {
                submission_index: index,
                reason: BlameReason::DuplicateInnerCiphertext,
            });
            // Also flag the first submitter? The paper reports users who
            // "submitted the same inner ciphertexts"; we flag the later copy
            // and leave the original alone, since the copier is the attacker
            // in the replay scenario.
            let _ = first;
            continue;
        }
        inner_seen.insert(digest, index);
    }

    Ok(blames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AtomConfig;
    use crate::directory::setup_round;
    use crate::message::make_trap_submission;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (StdRng, RoundSetup, Vec<TrapSubmission>) {
        let mut rng = StdRng::seed_from_u64(5150);
        let mut config = AtomConfig::test_default();
        config.num_groups = 2;
        config.message_len = 24;
        let setup = setup_round(&config, &mut rng).unwrap();
        let submissions: Vec<TrapSubmission> = (0..4)
            .map(|i| {
                let gid = i % 2;
                make_trap_submission(
                    gid,
                    &setup.groups[gid].public_key,
                    &setup.trustees.public_key,
                    0,
                    format!("message {i}").as_bytes(),
                    24,
                    &mut rng,
                )
                .unwrap()
                .0
            })
            .collect();
        (rng, setup, submissions)
    }

    #[test]
    fn honest_users_are_not_blamed() {
        let (_, setup, submissions) = fixture();
        assert!(identify_malicious_users(&setup, &submissions)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn wrong_commitment_is_blamed() {
        let (_, setup, mut submissions) = fixture();
        submissions[1].trap_commitment = commit::commit(b"bogus", b"bogus");
        let blames = identify_malicious_users(&setup, &submissions).unwrap();
        assert_eq!(blames.len(), 1);
        assert_eq!(blames[0].submission_index, 1);
        assert_eq!(blames[0].reason, BlameReason::TrapCommitmentMismatch);
    }

    #[test]
    fn duplicate_inner_ciphertext_is_blamed() {
        let (_, setup, mut submissions) = fixture();
        // User 3 replays user 0's ciphertexts wholesale (both slots), keeping
        // its own commitment; entry groups differ so the EncProof replay
        // would already fail, but blame must also catch it.
        submissions[3] = TrapSubmission {
            entry_group: submissions[0].entry_group,
            ciphertexts: submissions[0].ciphertexts.clone(),
            proofs: submissions[0].proofs.clone(),
            trap_commitment: submissions[0].trap_commitment,
        };
        let blames = identify_malicious_users(&setup, &submissions).unwrap();
        assert_eq!(blames.len(), 1);
        assert_eq!(blames[0].submission_index, 3);
        assert_eq!(blames[0].reason, BlameReason::DuplicateInnerCiphertext);
    }

    #[test]
    fn submission_with_two_traps_is_blamed() {
        let (mut rng, setup, mut submissions) = fixture();
        // Replace the inner-ciphertext slot with a second trap-shaped payload
        // by re-encrypting a trap payload for the entry group.
        let gid = submissions[2].entry_group;
        let padded = crate::message::trap_payload_len(24);
        let payload = MixPayload::Trap {
            gid: gid as u32,
            nonce: [7u8; 16],
        }
        .to_bytes(padded)
        .unwrap();
        let points = atom_crypto::encoding::encode_message_padded(&payload, padded).unwrap();
        let (ciphertext, _) =
            atom_crypto::elgamal::encrypt_message(&setup.groups[gid].public_key, &points, &mut rng);
        submissions[2].ciphertexts[0] = ciphertext.clone();
        submissions[2].ciphertexts[1] = ciphertext;
        let blames = identify_malicious_users(&setup, &submissions).unwrap();
        assert_eq!(blames.len(), 1);
        assert_eq!(blames[0].submission_index, 2);
        assert_eq!(blames[0].reason, BlameReason::MalformedSubmission);
    }

    #[test]
    fn trap_for_wrong_group_is_blamed() {
        let (mut rng, setup, mut submissions) = fixture();
        // Craft a submission whose trap names the other group.
        let gid = 0usize;
        let other = 1u32;
        let padded = crate::message::trap_payload_len(24);
        let nonce = [3u8; 16];
        let trap_payload = MixPayload::Trap { gid: other, nonce }
            .to_bytes(padded)
            .unwrap();
        let inner_payload = MixPayload::Inner(vec![5u8; 24 + 48])
            .to_bytes(padded)
            .unwrap();
        let encrypt = |payload: &[u8], rng: &mut StdRng| {
            let points = atom_crypto::encoding::encode_message_padded(payload, padded).unwrap();
            atom_crypto::elgamal::encrypt_message(&setup.groups[gid].public_key, &points, rng).0
        };
        submissions[0] = TrapSubmission {
            entry_group: gid,
            ciphertexts: [
                encrypt(&trap_payload, &mut rng),
                encrypt(&inner_payload, &mut rng),
            ],
            proofs: submissions[0].proofs.clone(),
            trap_commitment: commit::commit(
                TRAP_COMMIT_LABEL,
                &MixPayload::trap_commit_bytes(other, &nonce),
            ),
        };
        let blames = identify_malicious_users(&setup, &submissions).unwrap();
        assert_eq!(blames.len(), 1);
        assert_eq!(blames[0].reason, BlameReason::WrongEntryGroup);
    }
}
