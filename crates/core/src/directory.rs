//! Round setup: the directory's view of servers, groups and trustees.
//!
//! A fault-tolerant cluster of "directory authorities" maintains the list of
//! participating servers and their keys (§2.1). At the beginning of every
//! round, groups are formed from a public randomness beacon (§4.1), each
//! group runs the dealer-less DKG to establish its (threshold) group key
//! (§4.5), buddy groups are assigned, and — in the trap variant — an extra
//! anytrust group of *trustees* generates the per-round inner-ciphertext key
//! (§4.4).
//!
//! Two derivation paths produce the same [`RoundSetup`]:
//!
//! * [`setup_round`] — the original monolithic path: one caller-supplied RNG
//!   threaded through every DKG in group order. Handy for tests, but group
//!   `g`'s key material depends on every earlier group's draws, so it cannot
//!   be sharded.
//! * The *shardable* units — [`derive_group`], [`derive_trustees`],
//!   [`derive_buddies`] and their monolithic composition [`derive_setup`].
//!   Here each group's DKG draws from its own stream seeded by
//!   [`setup_stream_seed`]`(beacon_seed, round, gid)`, so any process can
//!   derive exactly the groups it hosts — in any order, concurrently —
//!   and the result is byte-identical to deriving everything locally. This
//!   is what the runtime's sharded setup phase (`atom_runtime`) builds on:
//!   each process runs only the DKGs of its hosted groups and ships the
//!   public half of the result to its peers as `setup` wire frames.

use rand::rngs::StdRng;
use rand::{CryptoRng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use atom_crypto::dkg::{run_dkg, DkgParams, DkgShare};
use atom_crypto::elgamal::PublicKey;
use atom_topology::groups::{assign_buddies, form_group, form_groups};

use crate::config::AtomConfig;
use crate::error::{AtomError, AtomResult};

/// A group of servers together with its threshold key material.
///
/// The `shares` vector is position-indexed: `shares[p]` is held by the server
/// `members[p]`. In a real deployment each server holds only its own share;
/// keeping them together here lets tests and the orchestrator play every
/// role.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GroupContext {
    /// The group id (node id in the permutation network).
    pub id: usize,
    /// Global server ids of the members, in protocol order (§4.7 staggering).
    pub members: Vec<usize>,
    /// Each member's DKG output.
    pub shares: Vec<DkgShare>,
    /// The group public key.
    pub public_key: PublicKey,
    /// Number of members that must participate to decrypt (`k − (h−1)`).
    pub threshold: usize,
}

impl GroupContext {
    /// Selects the members that will run this round's mixing: the first
    /// `threshold` members that have not failed (§4.5 — only `k − (h−1)`
    /// members need to participate). Returns their 1-based share indices.
    pub fn participating(&self, failed_servers: &[usize]) -> AtomResult<Vec<u64>> {
        let alive: Vec<u64> = self
            .members
            .iter()
            .enumerate()
            .filter(|(_, server)| !failed_servers.contains(server))
            .map(|(position, _)| (position + 1) as u64)
            .collect();
        if alive.len() < self.threshold {
            return Err(AtomError::TooManyFailures {
                group: self.id,
                failed: self.members.len() - alive.len(),
                tolerated: self.members.len() - self.threshold,
            });
        }
        Ok(alive[..self.threshold].to_vec())
    }

    /// The DKG share at a 1-based member index.
    pub fn share(&self, member_index: u64) -> &DkgShare {
        &self.shares[(member_index - 1) as usize]
    }

    /// The context with its secret shares stripped: what a process may ship
    /// to its peers during sharded setup. Membership, threshold and the
    /// group public key are public; the shares stay with the host process.
    pub fn public_only(&self) -> GroupContext {
        GroupContext {
            id: self.id,
            members: self.members.clone(),
            shares: Vec::new(),
            public_key: self.public_key,
            threshold: self.threshold,
        }
    }
}

/// The trustee group of the trap variant (§4.4).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrusteeContext {
    /// Global server ids of the trustees.
    pub members: Vec<usize>,
    /// Each trustee's share of the per-round inner-ciphertext key.
    pub shares: Vec<DkgShare>,
    /// The per-round public key users encrypt inner ciphertexts to.
    pub public_key: PublicKey,
}

/// Everything established before a round starts.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoundSetup {
    /// The deployment configuration.
    pub config: AtomConfig,
    /// One context per group.
    pub groups: Vec<GroupContext>,
    /// The trustee group (always created; only consulted in the trap
    /// variant).
    pub trustees: TrusteeContext,
    /// Buddy-group assignment: `buddies[g]` lists the groups that escrow
    /// group `g`'s key shares (§4.5).
    pub buddies: Vec<Vec<usize>>,
}

impl RoundSetup {
    /// The public key of group `gid`.
    pub fn group_key(&self, gid: usize) -> &PublicKey {
        &self.groups[gid].public_key
    }
}

/// Stream id of the trustee DKG in [`setup_stream_seed`]. Sits outside the
/// real group-id space, so the trustee stream can never collide with a
/// group's.
pub const TRUSTEE_STREAM: u64 = u64::MAX;

/// Derives the RNG seed of the setup stream for `gid` — a group id, or
/// [`TRUSTEE_STREAM`] — from the round's public randomness beacon
/// (splitmix64-style finalizer, the same construction as
/// [`group_stream_seed`](crate::actor::group_stream_seed)).
///
/// Every process of a deployment computes the same seeds from the shared
/// `(beacon_seed, round)`, which is what makes the per-group DKGs
/// independently derivable: group `g`'s key material is a pure function of
/// the beacon and `g`, never of which process derives it or in what order.
pub fn setup_stream_seed(beacon_seed: u64, round: u64, gid: u64) -> u64 {
    let mut x = beacon_seed
        ^ round.wrapping_mul(0xd6e8_feb8_6659_fd93)
        ^ gid.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Substitutes a beacon-determined surviving server for every evicted member
/// of a beacon-formed group (§4.5 re-formation after eviction).
///
/// Substitutes walk the surviving server list from a start offset derived
/// from the group's setup stream seed, skipping servers already in the
/// group, so the healed membership is a pure function of
/// `(config, evicted_servers)` — any process re-derives it identically.
/// The DKG streams never see membership, so the group key is unchanged and
/// submissions encrypted before the eviction remain decryptable.
fn remap_evicted_members(config: &AtomConfig, gid: u64, mut members: Vec<usize>) -> Vec<usize> {
    if config.evicted_servers.is_empty() {
        return members;
    }
    let survivors = config.surviving_servers();
    let start = setup_stream_seed(config.beacon_seed, config.round, gid) as usize % survivors.len();
    let mut cursor = 0usize;
    for position in 0..members.len() {
        if !config.evicted_servers.contains(&members[position]) {
            continue;
        }
        // First surviving server (in rotated order) not already a member.
        let replacement = loop {
            assert!(
                cursor < survivors.len(),
                "validate() guarantees enough survivors for a full group"
            );
            let candidate = survivors[(start + cursor) % survivors.len()];
            cursor += 1;
            if !members.contains(&candidate) {
                break candidate;
            }
        };
        members[position] = replacement;
    }
    members
}

/// Derives the full context — membership *and* DKG key material — of group
/// `gid` alone, without touching any other group's DKG.
///
/// The unit of sharded round setup: a process hosting group `gid` calls this
/// for exactly its hosted ids, and the result is byte-identical to the
/// corresponding entry of [`derive_setup`]'s monolithic derivation.
pub fn derive_group(config: &AtomConfig, gid: usize) -> AtomResult<GroupContext> {
    config.validate()?;
    if gid >= config.num_groups {
        return Err(AtomError::Config(format!(
            "group {gid} out of range for {} groups",
            config.num_groups
        )));
    }
    let threshold = config.group_threshold();
    let params = DkgParams::new(config.group_size, threshold).map_err(AtomError::Crypto)?;
    let assignment = form_group(
        config.num_servers,
        config.num_groups,
        config.group_size,
        config.beacon_seed,
        gid,
    );
    let mut rng = StdRng::seed_from_u64(setup_stream_seed(
        config.beacon_seed,
        config.round,
        gid as u64,
    ));
    let (public_key, shares) = run_dkg(&params, &mut rng).map_err(AtomError::Crypto)?;
    Ok(GroupContext {
        id: assignment.id,
        members: remap_evicted_members(config, gid as u64, assignment.members),
        shares,
        public_key,
        threshold,
    })
}

/// Derives the trustee group of the trap variant (§4.4) from its own
/// dedicated stream ([`TRUSTEE_STREAM`]). In a sharded setup only the
/// coordinator runs this — group actors never consult the trustee context.
pub fn derive_trustees(config: &AtomConfig) -> AtomResult<TrusteeContext> {
    config.validate()?;
    let threshold = config.group_threshold();
    let params = DkgParams::new(config.group_size, threshold).map_err(AtomError::Crypto)?;
    let assignment = form_groups(
        config.num_servers,
        1,
        config.group_size,
        config.beacon_seed ^ TRUSTEE_BEACON_TWEAK,
    )
    .pop()
    .expect("one trustee group");
    let mut rng = StdRng::seed_from_u64(setup_stream_seed(
        config.beacon_seed,
        config.round,
        TRUSTEE_STREAM,
    ));
    let (public_key, shares) = run_dkg(&params, &mut rng).map_err(AtomError::Crypto)?;
    Ok(TrusteeContext {
        members: remap_evicted_members(config, TRUSTEE_STREAM, assignment.members),
        shares,
        public_key,
    })
}

/// The buddy-group assignment of the round: a pure (crypto-free) function of
/// the configuration, cheap enough for every process to recompute locally.
pub fn derive_buddies(config: &AtomConfig) -> Vec<Vec<usize>> {
    assign_buddies(config.num_groups, config.buddy_groups, config.beacon_seed)
}

/// The membership of group `gid` alone — the beacon-derived assignment
/// without running any DKG. A pure function of the shared configuration,
/// which is what lets a process *validate* the `members` list a peer's
/// setup frame claims instead of trusting it: everything in the directory
/// except the DKG public keys is locally recomputable.
pub fn derive_members(config: &AtomConfig, gid: usize) -> AtomResult<Vec<usize>> {
    config.validate()?;
    if gid >= config.num_groups {
        return Err(AtomError::Config(format!(
            "group {gid} out of range for {} groups",
            config.num_groups
        )));
    }
    Ok(remap_evicted_members(
        config,
        gid as u64,
        form_group(
            config.num_servers,
            config.num_groups,
            config.group_size,
            config.beacon_seed,
            gid,
        )
        .members,
    ))
}

/// Monolithic composition of the shardable units: derives every group, the
/// trustees and the buddy assignment locally from the per-group streams.
///
/// This is the reference a *sharded* setup must match byte for byte: running
/// [`derive_group`] for disjoint subsets of the ids on different processes
/// and exchanging the results reassembles exactly this value (modulo the
/// secret shares of remote groups, which never leave their host process).
pub fn derive_setup(config: &AtomConfig) -> AtomResult<RoundSetup> {
    config.validate()?;
    let groups = (0..config.num_groups)
        .map(|gid| derive_group(config, gid))
        .collect::<AtomResult<Vec<_>>>()?;
    Ok(RoundSetup {
        config: config.clone(),
        groups,
        trustees: derive_trustees(config)?,
        buddies: derive_buddies(config),
    })
}

/// Beacon tweak separating the trustee group's *membership* sample from the
/// mixing groups' (the DKG randomness is separated by [`TRUSTEE_STREAM`]).
const TRUSTEE_BEACON_TWEAK: u64 = 0x7472_7573_7465_6573;

/// Forms groups, runs the per-group DKGs and the trustee DKG, and assigns
/// buddy groups for one round.
pub fn setup_round<R: RngCore + CryptoRng>(
    config: &AtomConfig,
    rng: &mut R,
) -> AtomResult<RoundSetup> {
    config.validate()?;
    let threshold = config.group_threshold();
    let params = DkgParams::new(config.group_size, threshold).map_err(AtomError::Crypto)?;

    let assignments = form_groups(
        config.num_servers,
        config.num_groups,
        config.group_size,
        config.beacon_seed,
    );

    let mut groups = Vec::with_capacity(config.num_groups);
    for assignment in assignments {
        let (public_key, shares) = run_dkg(&params, rng).map_err(AtomError::Crypto)?;
        let gid = assignment.id as u64;
        groups.push(GroupContext {
            id: assignment.id,
            members: remap_evicted_members(config, gid, assignment.members),
            shares,
            public_key,
            threshold,
        });
    }

    // Trustees: one extra anytrust group sampled like the others but with a
    // distinct beacon tweak; it holds the per-round inner-ciphertext key.
    let trustee_assignment = form_groups(
        config.num_servers,
        1,
        config.group_size,
        config.beacon_seed ^ TRUSTEE_BEACON_TWEAK,
    )
    .pop()
    .expect("one trustee group");
    let trustee_params = DkgParams::new(config.group_size, threshold).map_err(AtomError::Crypto)?;
    let (trustee_key, trustee_shares) = run_dkg(&trustee_params, rng).map_err(AtomError::Crypto)?;
    let trustees = TrusteeContext {
        members: remap_evicted_members(config, TRUSTEE_STREAM, trustee_assignment.members),
        shares: trustee_shares,
        public_key: trustee_key,
    };

    let buddies = assign_buddies(config.num_groups, config.buddy_groups, config.beacon_seed);

    Ok(RoundSetup {
        config: config.clone(),
        groups,
        trustees,
        buddies,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AtomConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn setup_produces_expected_shapes() {
        let config = AtomConfig::test_default();
        let setup = setup_round(&config, &mut rng()).unwrap();
        assert_eq!(setup.groups.len(), 4);
        for group in &setup.groups {
            assert_eq!(group.members.len(), 3);
            assert_eq!(group.shares.len(), 3);
            assert_eq!(group.threshold, 3);
            assert_eq!(group.shares[0].group_public, group.public_key);
        }
        assert_eq!(setup.buddies.len(), 4);
        assert_eq!(setup.trustees.shares.len(), 3);
    }

    #[test]
    fn participating_selects_threshold_members() {
        let mut config = AtomConfig::test_default();
        config.required_honest = 2; // tolerate one failure, threshold 2.
        let setup = setup_round(&config, &mut rng()).unwrap();
        let group = &setup.groups[0];
        assert_eq!(group.threshold, 2);

        // Nobody failed: the first two members participate.
        assert_eq!(group.participating(&[]).unwrap(), vec![1, 2]);

        // The first member failed: members 2 and 3 step in.
        let failed = vec![group.members[0]];
        assert_eq!(group.participating(&failed).unwrap(), vec![2, 3]);

        // Two failures exceed the tolerance.
        let failed = vec![group.members[0], group.members[2]];
        assert!(matches!(
            group.participating(&failed),
            Err(AtomError::TooManyFailures { .. })
        ));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut config = AtomConfig::test_default();
        config.group_size = 0;
        assert!(setup_round(&config, &mut rng()).is_err());
    }

    #[test]
    fn derive_setup_composes_the_shardable_units() {
        let mut config = AtomConfig::test_default();
        config.beacon_seed = 0xBEAC;
        config.round = 3;
        let setup = derive_setup(&config).unwrap();

        // Each group derived alone — in reverse order, as a second process
        // would — matches the monolithic derivation byte for byte.
        for gid in (0..config.num_groups).rev() {
            let alone = derive_group(&config, gid).unwrap();
            let reference = &setup.groups[gid];
            assert_eq!(alone.id, reference.id);
            assert_eq!(alone.members, reference.members);
            assert_eq!(alone.threshold, reference.threshold);
            assert_eq!(alone.public_key, reference.public_key);
            assert_eq!(alone.shares.len(), reference.shares.len());
            for (a, b) in alone.shares.iter().zip(&reference.shares) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.secret_share, b.secret_share);
                assert_eq!(a.verification_keys, b.verification_keys);
            }
        }
        let trustees = derive_trustees(&config).unwrap();
        assert_eq!(trustees.public_key, setup.trustees.public_key);
        assert_eq!(trustees.members, setup.trustees.members);
        assert_eq!(derive_buddies(&config), setup.buddies);
    }

    #[test]
    fn setup_streams_separate_groups_rounds_and_trustees() {
        let base = setup_stream_seed(1, 0, 0);
        assert_ne!(base, setup_stream_seed(1, 0, 1));
        assert_ne!(base, setup_stream_seed(1, 1, 0));
        assert_ne!(base, setup_stream_seed(2, 0, 0));
        assert_ne!(base, setup_stream_seed(1, 0, TRUSTEE_STREAM));
        assert_eq!(base, setup_stream_seed(1, 0, 0));

        // Distinct streams yield distinct key material.
        let config = AtomConfig::test_default();
        let setup = derive_setup(&config).unwrap();
        for i in 0..setup.groups.len() {
            for j in i + 1..setup.groups.len() {
                assert_ne!(setup.groups[i].public_key, setup.groups[j].public_key);
            }
            assert_ne!(setup.groups[i].public_key, setup.trustees.public_key);
        }
    }

    #[test]
    fn derive_group_validates_inputs() {
        let config = AtomConfig::test_default();
        assert!(matches!(
            derive_group(&config, config.num_groups),
            Err(AtomError::Config(_))
        ));
        let mut bad = config.clone();
        bad.group_size = 0;
        assert!(derive_group(&bad, 0).is_err());
        assert!(derive_setup(&bad).is_err());
        assert!(derive_trustees(&bad).is_err());
    }

    #[test]
    fn public_only_strips_exactly_the_shares() {
        let config = AtomConfig::test_default();
        let setup = derive_setup(&config).unwrap();
        let public = setup.groups[1].public_only();
        assert!(public.shares.is_empty());
        assert_eq!(public.id, setup.groups[1].id);
        assert_eq!(public.members, setup.groups[1].members);
        assert_eq!(public.threshold, setup.groups[1].threshold);
        assert_eq!(public.public_key, setup.groups[1].public_key);
    }

    #[test]
    fn eviction_reforms_membership_but_not_keys() {
        let mut config = AtomConfig::test_default();
        config.beacon_seed = 0x5EED;
        let baseline = derive_setup(&config).unwrap();
        let victim = baseline.groups[0].members[0];

        let mut healed_config = config.clone();
        healed_config.evicted_servers = vec![victim];
        let healed = derive_setup(&healed_config).unwrap();

        for (before, after) in baseline.groups.iter().zip(&healed.groups) {
            // The DKG never sees membership: keys (and hence submissions
            // encrypted before the eviction) survive re-formation.
            assert_eq!(before.public_key, after.public_key);
            assert_eq!(before.shares.len(), after.shares.len());
            // The victim is gone and the group is still full and duplicate-free.
            assert!(!after.members.contains(&victim));
            assert_eq!(after.members.len(), before.members.len());
            for (position, member) in after.members.iter().enumerate() {
                assert!(!after.members[position + 1..].contains(member));
                assert!(*member < config.num_servers);
            }
        }
        assert_eq!(healed.trustees.public_key, baseline.trustees.public_key);
        assert!(!healed.trustees.members.contains(&victim));
        assert_eq!(derive_buddies(&healed_config), baseline.buddies);

        // Pure function of (config, eviction log): any process re-derives the
        // same healed membership, shardably.
        for gid in 0..config.num_groups {
            let alone = derive_group(&healed_config, gid).unwrap();
            assert_eq!(alone.members, healed.groups[gid].members);
            assert_eq!(
                derive_members(&healed_config, gid).unwrap(),
                healed.groups[gid].members
            );
        }
    }

    #[test]
    fn eviction_that_exhausts_survivors_is_rejected() {
        let mut config = AtomConfig::test_default();
        config.evicted_servers = (0..6).collect(); // 2 survivors < group size 3
        assert!(matches!(derive_setup(&config), Err(AtomError::Config(_))));
    }

    #[test]
    fn group_keys_are_distinct() {
        let config = AtomConfig::test_default();
        let setup = setup_round(&config, &mut rng()).unwrap();
        for i in 0..setup.groups.len() {
            for j in i + 1..setup.groups.len() {
                assert_ne!(setup.groups[i].public_key, setup.groups[j].public_key);
            }
            assert_ne!(setup.groups[i].public_key, setup.trustees.public_key);
        }
    }
}
