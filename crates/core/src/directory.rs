//! Round setup: the directory's view of servers, groups and trustees.
//!
//! A fault-tolerant cluster of "directory authorities" maintains the list of
//! participating servers and their keys (§2.1). At the beginning of every
//! round, groups are formed from a public randomness beacon (§4.1), each
//! group runs the dealer-less DKG to establish its (threshold) group key
//! (§4.5), buddy groups are assigned, and — in the trap variant — an extra
//! anytrust group of *trustees* generates the per-round inner-ciphertext key
//! (§4.4).

use rand::{CryptoRng, RngCore};
use serde::{Deserialize, Serialize};

use atom_crypto::dkg::{run_dkg, DkgParams, DkgShare};
use atom_crypto::elgamal::PublicKey;
use atom_topology::groups::{assign_buddies, form_groups};

use crate::config::AtomConfig;
use crate::error::{AtomError, AtomResult};

/// A group of servers together with its threshold key material.
///
/// The `shares` vector is position-indexed: `shares[p]` is held by the server
/// `members[p]`. In a real deployment each server holds only its own share;
/// keeping them together here lets tests and the orchestrator play every
/// role.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GroupContext {
    /// The group id (node id in the permutation network).
    pub id: usize,
    /// Global server ids of the members, in protocol order (§4.7 staggering).
    pub members: Vec<usize>,
    /// Each member's DKG output.
    pub shares: Vec<DkgShare>,
    /// The group public key.
    pub public_key: PublicKey,
    /// Number of members that must participate to decrypt (`k − (h−1)`).
    pub threshold: usize,
}

impl GroupContext {
    /// Selects the members that will run this round's mixing: the first
    /// `threshold` members that have not failed (§4.5 — only `k − (h−1)`
    /// members need to participate). Returns their 1-based share indices.
    pub fn participating(&self, failed_servers: &[usize]) -> AtomResult<Vec<u64>> {
        let alive: Vec<u64> = self
            .members
            .iter()
            .enumerate()
            .filter(|(_, server)| !failed_servers.contains(server))
            .map(|(position, _)| (position + 1) as u64)
            .collect();
        if alive.len() < self.threshold {
            return Err(AtomError::TooManyFailures {
                group: self.id,
                failed: self.members.len() - alive.len(),
                tolerated: self.members.len() - self.threshold,
            });
        }
        Ok(alive[..self.threshold].to_vec())
    }

    /// The DKG share at a 1-based member index.
    pub fn share(&self, member_index: u64) -> &DkgShare {
        &self.shares[(member_index - 1) as usize]
    }
}

/// The trustee group of the trap variant (§4.4).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrusteeContext {
    /// Global server ids of the trustees.
    pub members: Vec<usize>,
    /// Each trustee's share of the per-round inner-ciphertext key.
    pub shares: Vec<DkgShare>,
    /// The per-round public key users encrypt inner ciphertexts to.
    pub public_key: PublicKey,
}

/// Everything established before a round starts.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoundSetup {
    /// The deployment configuration.
    pub config: AtomConfig,
    /// One context per group.
    pub groups: Vec<GroupContext>,
    /// The trustee group (always created; only consulted in the trap
    /// variant).
    pub trustees: TrusteeContext,
    /// Buddy-group assignment: `buddies[g]` lists the groups that escrow
    /// group `g`'s key shares (§4.5).
    pub buddies: Vec<Vec<usize>>,
}

impl RoundSetup {
    /// The public key of group `gid`.
    pub fn group_key(&self, gid: usize) -> &PublicKey {
        &self.groups[gid].public_key
    }
}

/// Forms groups, runs the per-group DKGs and the trustee DKG, and assigns
/// buddy groups for one round.
pub fn setup_round<R: RngCore + CryptoRng>(
    config: &AtomConfig,
    rng: &mut R,
) -> AtomResult<RoundSetup> {
    config.validate()?;
    let threshold = config.group_threshold();
    let params = DkgParams::new(config.group_size, threshold).map_err(AtomError::Crypto)?;

    let assignments = form_groups(
        config.num_servers,
        config.num_groups,
        config.group_size,
        config.beacon_seed,
    );

    let mut groups = Vec::with_capacity(config.num_groups);
    for assignment in assignments {
        let (public_key, shares) = run_dkg(&params, rng).map_err(AtomError::Crypto)?;
        groups.push(GroupContext {
            id: assignment.id,
            members: assignment.members,
            shares,
            public_key,
            threshold,
        });
    }

    // Trustees: one extra anytrust group sampled like the others but with a
    // distinct beacon tweak; it holds the per-round inner-ciphertext key.
    let trustee_assignment = form_groups(
        config.num_servers,
        1,
        config.group_size,
        config.beacon_seed ^ 0x7472_7573_7465_6573,
    )
    .pop()
    .expect("one trustee group");
    let trustee_params = DkgParams::new(config.group_size, threshold).map_err(AtomError::Crypto)?;
    let (trustee_key, trustee_shares) = run_dkg(&trustee_params, rng).map_err(AtomError::Crypto)?;
    let trustees = TrusteeContext {
        members: trustee_assignment.members,
        shares: trustee_shares,
        public_key: trustee_key,
    };

    let buddies = assign_buddies(config.num_groups, config.buddy_groups, config.beacon_seed);

    Ok(RoundSetup {
        config: config.clone(),
        groups,
        trustees,
        buddies,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AtomConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn setup_produces_expected_shapes() {
        let config = AtomConfig::test_default();
        let setup = setup_round(&config, &mut rng()).unwrap();
        assert_eq!(setup.groups.len(), 4);
        for group in &setup.groups {
            assert_eq!(group.members.len(), 3);
            assert_eq!(group.shares.len(), 3);
            assert_eq!(group.threshold, 3);
            assert_eq!(group.shares[0].group_public, group.public_key);
        }
        assert_eq!(setup.buddies.len(), 4);
        assert_eq!(setup.trustees.shares.len(), 3);
    }

    #[test]
    fn participating_selects_threshold_members() {
        let mut config = AtomConfig::test_default();
        config.required_honest = 2; // tolerate one failure, threshold 2.
        let setup = setup_round(&config, &mut rng()).unwrap();
        let group = &setup.groups[0];
        assert_eq!(group.threshold, 2);

        // Nobody failed: the first two members participate.
        assert_eq!(group.participating(&[]).unwrap(), vec![1, 2]);

        // The first member failed: members 2 and 3 step in.
        let failed = vec![group.members[0]];
        assert_eq!(group.participating(&failed).unwrap(), vec![2, 3]);

        // Two failures exceed the tolerance.
        let failed = vec![group.members[0], group.members[2]];
        assert!(matches!(
            group.participating(&failed),
            Err(AtomError::TooManyFailures { .. })
        ));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut config = AtomConfig::test_default();
        config.group_size = 0;
        assert!(setup_round(&config, &mut rng()).is_err());
    }

    #[test]
    fn group_keys_are_distinct() {
        let config = AtomConfig::test_default();
        let setup = setup_round(&config, &mut rng()).unwrap();
        for i in 0..setup.groups.len() {
            for j in i + 1..setup.groups.len() {
                assert_ne!(setup.groups[i].public_key, setup.groups[j].public_key);
            }
            assert_ne!(setup.groups[i].public_key, setup.trustees.public_key);
        }
    }
}
