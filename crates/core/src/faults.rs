//! Buddy-group escrow and catastrophic-failure recovery (§4.5).
//!
//! Threshold ("many-trust") groups already survive up to `h − 1` member
//! failures without any recovery machinery: the remaining `k − (h−1)` members
//! simply run the round with Lagrange-weighted shares. This module covers the
//! *worse* case. When a group is formed, every member secret-shares its DKG
//! share with the members of each buddy group. If more than `h − 1` members
//! of a group later fail, a freshly formed anytrust group collects the escrow
//! from one (live) buddy group and reconstructs the lost members' shares, so
//! the group key survives and the round can continue.

use rand::rngs::StdRng;
use rand::{CryptoRng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use atom_crypto::dkg::DkgShare;
use atom_crypto::sharing::{reconstruct, split, Share};
use atom_crypto::Scalar;

use crate::directory::{setup_stream_seed, GroupContext, RoundSetup};
use crate::error::{AtomError, AtomResult};

/// Escrow of one group's key shares with one buddy group.
///
/// `per_member[p][b]` is the sub-share of member `p`'s DKG share that is held
/// by buddy-group member `b`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BuddyEscrow {
    /// The group whose shares are escrowed.
    pub group: usize,
    /// The buddy group holding the escrow.
    pub buddy_group: usize,
    /// Sub-shares, indexed by (member position, buddy member position).
    pub per_member: Vec<Vec<Share>>,
    /// Number of buddy members needed to reconstruct a share.
    pub threshold: usize,
}

/// Splits every member's DKG share of `group` among the members of
/// `buddy_group`.
///
/// The reconstruction threshold is the full buddy-group size: since the buddy
/// group is anytrust (all but one member may be malicious), any smaller
/// threshold would let the adversary reconstruct the shares.
pub fn escrow_group_shares<R: RngCore + CryptoRng>(
    group: &GroupContext,
    buddy_group: &GroupContext,
    rng: &mut R,
) -> AtomResult<BuddyEscrow> {
    let buddy_size = buddy_group.members.len();
    let mut per_member = Vec::with_capacity(group.shares.len());
    for share in &group.shares {
        let sub_shares =
            split(share.secret_share, buddy_size, buddy_size, rng).map_err(AtomError::Crypto)?;
        per_member.push(sub_shares);
    }
    Ok(BuddyEscrow {
        group: group.id,
        buddy_group: buddy_group.id,
        per_member,
        threshold: buddy_size,
    })
}

/// Reconstructs the DKG share of `member_position` (0-based) from the escrow.
///
/// In a deployment the members of a *newly formed* anytrust group would each
/// fetch one sub-share from the buddy group and jointly reconstruct; here the
/// reconstruction is done directly, which is equivalent for correctness.
pub fn recover_member_share(escrow: &BuddyEscrow, member_position: usize) -> AtomResult<Scalar> {
    let sub_shares = escrow
        .per_member
        .get(member_position)
        .ok_or_else(|| AtomError::Malformed("no escrow for that member".into()))?;
    reconstruct(&sub_shares[..escrow.threshold]).map_err(AtomError::Crypto)
}

/// Rebuilds a [`GroupContext`] after a catastrophic failure by recovering the
/// failed members' shares from a buddy escrow and handing them to replacement
/// servers.
///
/// `replacements` maps each failed member position to the global id of the
/// server taking over that slot.
pub fn recover_group(
    group: &GroupContext,
    escrow: &BuddyEscrow,
    replacements: &[(usize, usize)],
) -> AtomResult<GroupContext> {
    if escrow.group != group.id {
        return Err(AtomError::Malformed(format!(
            "escrow is for group {} not {}",
            escrow.group, group.id
        )));
    }
    let mut recovered = group.clone();
    for &(position, new_server) in replacements {
        if position >= group.members.len() {
            return Err(AtomError::Malformed(format!(
                "member position {position} out of range"
            )));
        }
        let secret = recover_member_share(escrow, position)?;
        if secret != group.shares[position].secret_share {
            return Err(AtomError::Malformed(
                "recovered share does not match the escrowed share".into(),
            ));
        }
        let mut share: DkgShare = group.shares[position].clone();
        share.secret_share = secret;
        recovered.shares[position] = share;
        recovered.members[position] = new_server;
    }
    Ok(recovered)
}

/// Beacon tweak separating the escrow sub-share streams from the setup
/// streams, so escrow randomness can be re-derived by any process without
/// perturbing the DKGs.
const ESCROW_BEACON_TWEAK: u64 = 0x6573_6372_6F77; // "escrow"

/// The deterministic RNG the escrow of group `gid` draws its sub-shares
/// from. In a deployment each member splits its own share with fresh local
/// randomness at group-formation time; this reproduction derives the escrow
/// from a dedicated beacon stream so every surviving process reconstructs
/// the identical [`BuddyEscrow`] when recovery is needed — escrow recovery
/// stays byte-deterministic across the fleet.
pub fn escrow_stream_rng(config: &crate::config::AtomConfig, gid: usize) -> StdRng {
    StdRng::seed_from_u64(setup_stream_seed(
        config.beacon_seed ^ ESCROW_BEACON_TWEAK,
        config.round,
        gid as u64,
    ))
}

/// Heals group `gid` of `setup` after a catastrophic failure: when more
/// than `h − 1` members are in `failed_servers`, the group cannot reach its
/// `k − (h−1)` decryption threshold by Lagrange reweighting alone, so the
/// failed members' DKG shares are reconstructed from the buddy-group escrow
/// (§4.5) and handed to replacement servers drawn from the buddy group.
///
/// Pure function of `(setup, failed_servers)`: the escrow is re-derived
/// from the beacon stream, the buddy group is `buddies[gid][0]`, and
/// replacements are the first live buddy members not already in the group —
/// every surviving process computes the identical recovered context.
pub fn heal_group_via_escrow(
    setup: &RoundSetup,
    gid: usize,
    failed_servers: &[usize],
) -> AtomResult<GroupContext> {
    let group = setup
        .groups
        .get(gid)
        .ok_or_else(|| AtomError::Malformed(format!("no group {gid} to heal")))?;
    let buddy_gid = *setup
        .buddies
        .get(gid)
        .and_then(|buddies| buddies.first())
        .ok_or_else(|| AtomError::Malformed(format!("group {gid} has no buddy group")))?;
    let buddy = &setup.groups[buddy_gid];

    let failed_positions: Vec<usize> = group
        .members
        .iter()
        .enumerate()
        .filter(|(_, server)| failed_servers.contains(server))
        .map(|(position, _)| position)
        .collect();
    let mut replacements = Vec::with_capacity(failed_positions.len());
    let mut candidates = buddy
        .members
        .iter()
        .copied()
        .filter(|server| !failed_servers.contains(server) && !group.members.contains(server));
    for &position in &failed_positions {
        let replacement = candidates.next().ok_or(AtomError::TooManyFailures {
            group: gid,
            failed: failed_positions.len(),
            tolerated: group.members.len() - group.threshold,
        })?;
        replacements.push((position, replacement));
    }

    let escrow = escrow_group_shares(group, buddy, &mut escrow_stream_rng(&setup.config, gid))?;
    recover_group(group, &escrow, &replacements)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AtomConfig;
    use crate::directory::setup_round;
    use crate::group::{group_mix_iteration, GroupStepOptions};
    use crate::message::{nizk_payload_len, MixPayload};
    use atom_crypto::elgamal::encrypt_message;
    use atom_crypto::encoding::encode_message_padded;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(8686)
    }

    #[test]
    fn escrow_recovers_every_member_share() {
        let mut rng = rng();
        let config = AtomConfig::test_default();
        let setup = setup_round(&config, &mut rng).unwrap();
        let group = &setup.groups[0];
        let buddy = &setup.groups[setup.buddies[0][0]];
        let escrow = escrow_group_shares(group, buddy, &mut rng).unwrap();
        for (position, share) in group.shares.iter().enumerate() {
            assert_eq!(
                recover_member_share(&escrow, position).unwrap(),
                share.secret_share
            );
        }
        assert!(recover_member_share(&escrow, 10).is_err());
    }

    #[test]
    fn partial_escrow_does_not_reveal_shares() {
        let mut rng = rng();
        let config = AtomConfig::test_default();
        let setup = setup_round(&config, &mut rng).unwrap();
        let group = &setup.groups[0];
        let buddy = &setup.groups[setup.buddies[0][0]];
        let escrow = escrow_group_shares(group, buddy, &mut rng).unwrap();
        // A strict subset of the buddy group learns nothing useful.
        let partial = reconstruct(&escrow.per_member[0][..escrow.threshold - 1]).unwrap();
        assert_ne!(partial, group.shares[0].secret_share);
    }

    #[test]
    fn recovered_group_can_still_decrypt() {
        let mut rng = rng();
        let mut config = AtomConfig::test_default();
        config.required_honest = 2; // threshold 2-of-3: tolerate one failure.
        let setup = setup_round(&config, &mut rng).unwrap();
        let group = &setup.groups[0];
        let buddy = &setup.groups[setup.buddies[0][0]];
        let escrow = escrow_group_shares(group, buddy, &mut rng).unwrap();

        // Two of three members fail — more than the group can tolerate.
        let failed = vec![group.members[0], group.members[1]];
        assert!(group.participating(&failed).is_err());

        // Recovery: replacement servers 100 and 101 take over the failed
        // slots using shares recovered from the buddy escrow.
        let recovered = recover_group(group, &escrow, &[(0, 100), (1, 101)]).unwrap();
        assert_eq!(recovered.members[0], 100);
        assert_eq!(recovered.public_key, group.public_key);

        // The recovered group processes a batch end to end.
        let padded_len = nizk_payload_len(config.message_len);
        let payload = MixPayload::Plaintext(b"recovered".to_vec())
            .to_bytes(padded_len)
            .unwrap();
        let points = encode_message_padded(&payload, padded_len).unwrap();
        let batch = vec![encrypt_message(&recovered.public_key, &points, &mut rng).0];
        let participating = recovered.participating(&[]).unwrap();
        let output = group_mix_iteration(
            &recovered,
            &participating,
            batch,
            &[],
            padded_len,
            &GroupStepOptions::new(config.defense),
            None,
            &mut rng,
        )
        .unwrap();
        match MixPayload::from_bytes(&output.plaintexts[0]).unwrap() {
            MixPayload::Inner(content) => assert_eq!(content, b"recovered"),
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn heal_group_via_escrow_is_deterministic_and_complete() {
        let mut rng = rng();
        let mut config = AtomConfig::test_default();
        config.required_honest = 2; // tolerate one failure; two is catastrophic
        let setup = setup_round(&config, &mut rng).unwrap();
        let group = &setup.groups[0];

        // More members fail than Lagrange reweighting can absorb.
        let failed = vec![group.members[0], group.members[1]];
        assert!(group.participating(&failed).is_err());

        let healed = heal_group_via_escrow(&setup, 0, &failed).unwrap();
        // Same key, failed slots handed to live buddy-group servers.
        assert_eq!(healed.public_key, group.public_key);
        assert!(!failed.contains(&healed.members[0]));
        assert!(!failed.contains(&healed.members[1]));
        assert_eq!(healed.members[2], group.members[2]);
        assert!(healed.participating(&failed).is_ok());

        // Every process derives the identical recovered context: the escrow
        // randomness comes from the beacon stream, not a caller RNG.
        let again = heal_group_via_escrow(&setup, 0, &failed).unwrap();
        assert_eq!(again.members, healed.members);
        for (a, b) in again.shares.iter().zip(&healed.shares) {
            assert_eq!(a.secret_share, b.secret_share);
        }

        // Exhausting the buddy group's live members is still an error.
        let buddy = &setup.groups[setup.buddies[0][0]];
        let mut everyone = failed.clone();
        everyone.extend_from_slice(&buddy.members);
        assert!(matches!(
            heal_group_via_escrow(&setup, 0, &everyone),
            Err(AtomError::TooManyFailures { .. })
        ));
    }

    #[test]
    fn mismatched_escrow_rejected() {
        let mut rng = rng();
        let config = AtomConfig::test_default();
        let setup = setup_round(&config, &mut rng).unwrap();
        let escrow = escrow_group_shares(&setup.groups[0], &setup.groups[1], &mut rng).unwrap();
        assert!(recover_group(&setup.groups[2], &escrow, &[(0, 50)]).is_err());
        assert!(recover_group(&setup.groups[0], &escrow, &[(9, 50)]).is_err());
    }
}
