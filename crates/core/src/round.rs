//! Full-round orchestration: collection, mixing, exit routing, trap checking
//! and trustee-gated decryption.
//!
//! The [`RoundDriver`] plays the role of the whole deployment: it feeds user
//! submissions to their entry groups, drives the permutation network
//! iteration by iteration (every group runs
//! [`group_mix_iteration`](crate::group::group_mix_iteration)), routes
//! exit payloads (traps back to their entry groups, inner ciphertexts to
//! load-balanced holders), gathers the per-group reports, and asks the
//! trustees to release the per-round key only if every report is clean
//! (§4.4). The NIZK variant skips the trap machinery and aborts immediately
//! when any proof fails (§4.3).

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use rand::{CryptoRng, RngCore};

use atom_crypto::batch::{verify_encryption_batch, EncVerification};
use atom_crypto::cca2::{self, HybridCiphertext};
use atom_crypto::commit::{self, Commitment};
use atom_crypto::dkg::reconstruct_group_secret;
use atom_crypto::elgamal::{MessageCiphertext, SecretKey};
use atom_crypto::nizk::enc::verify_encryption;
use atom_net::{InMemoryNetwork, LatencyModel};

use crate::actor::{ActorConfig, ActorOutput, GroupActor, SOURCE};
use crate::adversary::AdversaryPlan;
use crate::config::{AtomConfig, Defense};
use crate::directory::RoundSetup;
use crate::error::{AtomError, AtomResult};
use crate::group::GroupStepOptions;
use crate::message::{
    inner_target_group, nizk_payload_len, trap_payload_len, MixPayload, NizkSubmission,
    TrapSubmission, TRAP_COMMIT_LABEL,
};

/// Per-round measurements used by the evaluation figures.
#[derive(Clone, Debug, Default)]
pub struct RoundTimings {
    /// For every mixing iteration, the longest any group spent computing
    /// (the critical path when all groups run in parallel).
    pub iteration_critical_path: Vec<Duration>,
    /// Total compute time summed over all groups and iterations.
    pub total_compute: Duration,
    /// Simulated network time along the critical path (one inter-group hop
    /// per iteration under the configured latency model).
    pub network_critical_path: Duration,
    /// Wall-clock time the in-process run took end to end.
    pub wall_clock: Duration,
}

impl RoundTimings {
    /// The end-to-end latency estimate: compute critical path plus network
    /// critical path.
    pub fn end_to_end(&self) -> Duration {
        self.iteration_critical_path.iter().sum::<Duration>() + self.network_critical_path
    }
}

/// The result of a successful round.
#[derive(Clone, Debug)]
pub struct RoundOutput {
    /// The anonymized plaintext messages, grouped by the exit (or holding)
    /// group that published them.
    pub per_group: Vec<Vec<Vec<u8>>>,
    /// All plaintexts flattened (order carries no information beyond the
    /// random permutation the network applied).
    pub plaintexts: Vec<Vec<u8>>,
    /// Number of ciphertexts routed through the network (twice the user
    /// count in the trap variant).
    pub routed_ciphertexts: usize,
    /// Timings for the evaluation harness.
    pub timings: RoundTimings,
}

/// Drives complete Atom rounds over a [`RoundSetup`].
pub struct RoundDriver {
    setup: RoundSetup,
    failed_servers: Vec<usize>,
    adversary: Option<AdversaryPlan>,
    parallelism: usize,
    latency: LatencyModel,
}

impl RoundDriver {
    /// Creates a driver with no failures, no adversary and sequential
    /// execution.
    pub fn new(setup: RoundSetup) -> Self {
        Self {
            setup,
            failed_servers: Vec::new(),
            adversary: None,
            parallelism: 1,
            latency: LatencyModel::Zero,
        }
    }

    /// Access to the round setup (group keys, trustee key, ...).
    pub fn setup(&self) -> &RoundSetup {
        &self.setup
    }

    /// Marks servers as failed for this round (§4.5).
    pub fn with_failures(mut self, servers: Vec<usize>) -> Self {
        self.failed_servers = servers;
        self
    }

    /// Installs an active adversary (§4.3/§4.4 attack experiments).
    pub fn with_adversary(mut self, plan: AdversaryPlan) -> Self {
        self.adversary = Some(plan);
        self
    }

    /// Sets the number of worker threads each group uses for re-encryption.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Sets the latency model used to estimate network time (§6's 40–160 ms
    /// emulation).
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    fn config(&self) -> &AtomConfig {
        &self.setup.config
    }

    /// The fixed mix-payload length for this deployment.
    pub fn payload_len(&self) -> usize {
        match self.config().defense {
            Defense::Nizk => nizk_payload_len(self.config().message_len),
            Defense::Trap => trap_payload_len(self.config().message_len),
        }
    }

    /// The per-actor execution options this driver implies.
    fn actor_config(&self) -> ActorConfig {
        let mut config = ActorConfig::new(GroupStepOptions {
            defense: self.config().defense,
            parallelism: self.parallelism,
        });
        config.adversary = self.adversary;
        config.failed_servers = self.failed_servers.clone();
        config
    }

    /// Runs the mixing phase: `T` iterations of every group shuffling,
    /// splitting and forwarding. Returns the per-exit-group payload bytes and
    /// the timings.
    ///
    /// Groups execute as [`GroupActor`]s with per-group RNG streams derived
    /// from one master draw on `rng`, delivered here in deterministic FIFO
    /// order. The parallel runtime (`atom-runtime`) drives the same actors
    /// from a worker pool; because each group's stream and batch-assembly
    /// order are independent of scheduling, both drivers produce
    /// byte-identical outputs for the same seed.
    fn run_mixing<R: RngCore + CryptoRng>(
        &self,
        batches: Vec<Vec<MessageCiphertext>>,
        rng: &mut R,
    ) -> AtomResult<(Vec<Vec<Vec<u8>>>, RoundTimings)> {
        let master_seed = rng.next_u64();
        let groups = self.setup.groups.len();
        let wall_start = Instant::now();

        let mut actors = Vec::with_capacity(groups);
        for gid in 0..groups {
            actors.push(GroupActor::new(
                &self.setup,
                gid,
                master_seed,
                self.actor_config(),
            )?);
        }

        let mut exit_payloads: Vec<Vec<Vec<u8>>> = vec![Vec::new(); groups];
        let mut queue: VecDeque<(usize, usize, usize, Vec<MessageCiphertext>)> = batches
            .into_iter()
            .enumerate()
            .map(|(gid, batch)| (gid, 0, SOURCE, batch))
            .collect();

        while let Some((to, iteration, from, batch)) = queue.pop_front() {
            for output in actors[to].on_batch(iteration, from, batch)? {
                match output {
                    ActorOutput::Forward {
                        iteration,
                        to: next,
                        batch,
                        ..
                    } => queue.push_back((next, iteration, to, batch)),
                    ActorOutput::Exit { plaintexts, .. } => exit_payloads[to] = plaintexts,
                }
            }
        }

        let computes: Vec<Vec<Duration>> = actors
            .iter()
            .map(|actor| actor.compute_times().to_vec())
            .collect();
        let mut timings = collect_round_timings(&self.setup, &self.latency, &computes);
        timings.wall_clock = wall_start.elapsed();
        Ok((exit_payloads, timings))
    }

    /// Runs a NIZK-variant round (§4.3): verify submissions, mix, publish.
    pub fn run_nizk_round<R: RngCore + CryptoRng>(
        &self,
        submissions: &[NizkSubmission],
        rng: &mut R,
    ) -> AtomResult<RoundOutput> {
        let batches = verify_nizk_submissions(&self.setup, submissions)?;
        let routed = batches.iter().map(Vec::len).sum();
        let (exit_payloads, timings) = self.run_mixing(batches, rng)?;
        finish_nizk_round(exit_payloads, routed, timings)
    }

    /// Runs a trap-variant round (§4.4): verify submissions, mix, sort traps
    /// and inner ciphertexts, check every trap against its commitment, and
    /// decrypt the inner ciphertexts only if the trustees release the key.
    pub fn run_trap_round<R: RngCore + CryptoRng>(
        &self,
        submissions: &[TrapSubmission],
        rng: &mut R,
    ) -> AtomResult<RoundOutput> {
        let intake = verify_trap_submissions(&self.setup, submissions)?;
        let routed = intake.batches.iter().map(Vec::len).sum();
        let TrapIntake {
            batches,
            commitments,
        } = intake;
        let (exit_payloads, timings) = self.run_mixing(batches, rng)?;
        finish_trap_round(&self.setup, &commitments, exit_payloads, routed, timings)
    }

    /// Convenience: attaches an [`InMemoryNetwork`] sized for this deployment
    /// (one node per server) so examples can meter traffic.
    pub fn build_network(&self) -> InMemoryNetwork {
        InMemoryNetwork::new(self.config().num_servers, self.latency, Vec::new())
    }
}

/// The simulated latency of one inter-group hop, charged between the
/// sender's last member and the receiver's first (the convention every
/// driver and figure harness shares).
pub fn hop_latency(setup: &RoundSetup, latency: &LatencyModel, from: usize, to: usize) -> Duration {
    let src = *setup.groups[from].members.last().unwrap_or(&0);
    let dst = *setup.groups[to].members.first().unwrap_or(&0);
    latency.link(src, dst)
}

/// Assembles [`RoundTimings`] from per-group compute records plus the
/// analytic per-iteration network critical path (one inter-group hop per
/// non-exit iteration, barrier model). `computes[gid]` holds group `gid`'s
/// measured per-iteration compute times. Shared by the sequential driver and
/// the parallel runtime so the accounting cannot drift between them.
pub fn collect_round_timings(
    setup: &RoundSetup,
    latency: &LatencyModel,
    computes: &[Vec<Duration>],
) -> RoundTimings {
    let topology = setup.config.topology();
    let iterations = topology.iterations();
    let mut timings = RoundTimings::default();

    for iteration in 0..iterations {
        let mut iteration_max = Duration::ZERO;
        let mut max_hop = Duration::ZERO;
        for (gid, compute) in computes.iter().enumerate() {
            if let Some(&elapsed) = compute.get(iteration) {
                timings.total_compute += elapsed;
                iteration_max = iteration_max.max(elapsed);
            }
            for neighbor in topology.neighbors(gid, iteration) {
                max_hop = max_hop.max(hop_latency(setup, latency, gid, neighbor));
            }
        }
        timings.iteration_critical_path.push(iteration_max);
        timings.network_critical_path += max_hop;
    }
    timings
}

/// The result of trap-variant submission intake: per-entry-group batches and
/// the trap commitments each entry group holds for the final check.
#[derive(Clone, Debug)]
pub struct TrapIntake {
    /// Two ciphertexts per accepted submission, grouped by entry group.
    pub batches: Vec<Vec<MessageCiphertext>>,
    /// Trap commitments registered with each entry group.
    pub commitments: Vec<Vec<Commitment>>,
}

/// Verifies NIZK-variant submissions and buckets them by entry group
/// (the submission phase of §4.3). Shared by the sequential driver and the
/// parallel runtime.
pub fn verify_nizk_submissions(
    setup: &RoundSetup,
    submissions: &[NizkSubmission],
) -> AtomResult<Vec<Vec<MessageCiphertext>>> {
    verify_nizk_submissions_range(setup, submissions, 0)
}

/// Verifies a contiguous range of NIZK-variant submissions, with
/// `first_index` naming the global index of `submissions[0]` so error
/// messages match the whole-batch verifier. Proofs are checked with one
/// RLC batch verification (`atom_crypto::batch`); on any failure the exact
/// sequential loop re-runs, so the reported verdict — including *which*
/// submission is rejected — is identical to the sequential driver's.
/// Chunked intake in `atom-runtime` calls this per chunk.
pub fn verify_nizk_submissions_range(
    setup: &RoundSetup,
    submissions: &[NizkSubmission],
    first_index: usize,
) -> AtomResult<Vec<Vec<MessageCiphertext>>> {
    let config = &setup.config;
    if config.defense != Defense::Nizk {
        return Err(AtomError::Config(
            "round setup is not configured for the NIZK variant".into(),
        ));
    }

    // Fast path: batch-verify every proof at once. Falls through to the
    // sequential loop when any structural check fails, so a bad entry-group
    // id is reported in the same order relative to proof failures.
    let mut items = Vec::with_capacity(submissions.len());
    for submission in submissions {
        let gid = submission.entry_group;
        if gid >= config.num_groups {
            items.clear();
            break;
        }
        items.push(EncVerification {
            pk: &setup.groups[gid].public_key,
            group_id: gid as u64,
            ciphertext: &submission.ciphertext,
            proof: &submission.proof,
        });
    }
    if items.len() == submissions.len() && !submissions.is_empty() {
        return match verify_encryption_batch(&items) {
            Ok(()) => {
                let mut batches: Vec<Vec<MessageCiphertext>> = vec![Vec::new(); config.num_groups];
                for submission in submissions {
                    batches[submission.entry_group].push(submission.ciphertext.clone());
                }
                Ok(batches)
            }
            Err((offset, e)) => {
                let index = first_index + offset;
                Err(AtomError::SubmissionRejected(format!(
                    "submission {index}: {e}"
                )))
            }
        };
    }

    let mut batches: Vec<Vec<MessageCiphertext>> = vec![Vec::new(); config.num_groups];
    for (offset, submission) in submissions.iter().enumerate() {
        let index = first_index + offset;
        let gid = submission.entry_group;
        if gid >= config.num_groups {
            return Err(AtomError::SubmissionRejected(format!(
                "submission {index} targets unknown group {gid}"
            )));
        }
        let group_pk = &setup.groups[gid].public_key;
        verify_encryption(
            group_pk,
            gid as u64,
            &submission.ciphertext,
            &submission.proof,
        )
        .map_err(|e| AtomError::SubmissionRejected(format!("submission {index}: {e}")))?;
        batches[gid].push(submission.ciphertext.clone());
    }
    Ok(batches)
}

/// Verifies trap-variant submissions, bucketing ciphertext pairs by entry
/// group and registering trap commitments (§4.4 submission phase). Shared by
/// the sequential driver and the parallel runtime.
pub fn verify_trap_submissions(
    setup: &RoundSetup,
    submissions: &[TrapSubmission],
) -> AtomResult<TrapIntake> {
    verify_trap_submissions_range(setup, submissions, 0)
}

/// Verifies a contiguous range of trap-variant submissions (both proofs per
/// submission batched through one RLC check; sequential re-run on failure
/// for verdict identity). `first_index` names the global index of
/// `submissions[0]`. Chunked intake in `atom-runtime` calls this per chunk.
pub fn verify_trap_submissions_range(
    setup: &RoundSetup,
    submissions: &[TrapSubmission],
    first_index: usize,
) -> AtomResult<TrapIntake> {
    let config = &setup.config;
    if config.defense != Defense::Trap {
        return Err(AtomError::Config(
            "round setup is not configured for the trap variant".into(),
        ));
    }

    // Fast path: one RLC batch over both proofs of every submission.
    let mut items = Vec::with_capacity(submissions.len() * 2);
    for submission in submissions {
        let gid = submission.entry_group;
        if gid >= config.num_groups {
            items.clear();
            break;
        }
        for (ct, proof) in submission.ciphertexts.iter().zip(submission.proofs.iter()) {
            items.push(EncVerification {
                pk: &setup.groups[gid].public_key,
                group_id: gid as u64,
                ciphertext: ct,
                proof,
            });
        }
    }
    if items.len() == submissions.len() * 2 && !submissions.is_empty() {
        return match verify_encryption_batch(&items) {
            Ok(()) => {
                let mut batches: Vec<Vec<MessageCiphertext>> = vec![Vec::new(); config.num_groups];
                let mut commitments: Vec<Vec<Commitment>> = vec![Vec::new(); config.num_groups];
                for submission in submissions {
                    let gid = submission.entry_group;
                    batches[gid].push(submission.ciphertexts[0].clone());
                    batches[gid].push(submission.ciphertexts[1].clone());
                    commitments[gid].push(submission.trap_commitment);
                }
                Ok(TrapIntake {
                    batches,
                    commitments,
                })
            }
            Err((flat, e)) => {
                // Two proofs per submission: flat item index → submission.
                let index = first_index + flat / 2;
                Err(AtomError::SubmissionRejected(format!(
                    "submission {index}: {e}"
                )))
            }
        };
    }

    let mut batches: Vec<Vec<MessageCiphertext>> = vec![Vec::new(); config.num_groups];
    let mut commitments: Vec<Vec<Commitment>> = vec![Vec::new(); config.num_groups];
    for (offset, submission) in submissions.iter().enumerate() {
        let index = first_index + offset;
        let gid = submission.entry_group;
        if gid >= config.num_groups {
            return Err(AtomError::SubmissionRejected(format!(
                "submission {index} targets unknown group {gid}"
            )));
        }
        let group_pk = &setup.groups[gid].public_key;
        for (ct, proof) in submission.ciphertexts.iter().zip(submission.proofs.iter()) {
            verify_encryption(group_pk, gid as u64, ct, proof)
                .map_err(|e| AtomError::SubmissionRejected(format!("submission {index}: {e}")))?;
        }
        batches[gid].push(submission.ciphertexts[0].clone());
        batches[gid].push(submission.ciphertexts[1].clone());
        commitments[gid].push(submission.trap_commitment);
    }
    Ok(TrapIntake {
        batches,
        commitments,
    })
}

/// Decodes exit payloads of a NIZK-variant round into the published
/// plaintexts. Shared by the sequential driver and the parallel runtime.
pub fn finish_nizk_round(
    exit_payloads: Vec<Vec<Vec<u8>>>,
    routed: usize,
    timings: RoundTimings,
) -> AtomResult<RoundOutput> {
    let mut per_group = Vec::with_capacity(exit_payloads.len());
    let mut plaintexts = Vec::new();
    for payloads in exit_payloads {
        let mut group_messages = Vec::with_capacity(payloads.len());
        for bytes in payloads {
            match MixPayload::from_bytes(&bytes)? {
                MixPayload::Inner(content) | MixPayload::Plaintext(content) => {
                    group_messages.push(content.clone());
                    plaintexts.push(content);
                }
                MixPayload::Trap { .. } => {
                    return Err(AtomError::Malformed(
                        "unexpected trap payload in a NIZK-variant round".into(),
                    ))
                }
            }
        }
        per_group.push(group_messages);
    }

    Ok(RoundOutput {
        per_group,
        plaintexts,
        routed_ciphertexts: routed,
        timings,
    })
}

/// Runs the exit phase of a trap-variant round: sorts traps back to their
/// entry groups and inner ciphertexts to their load-balanced holders, checks
/// every trap against its commitment, and decrypts the inner ciphertexts only
/// if the trustees release the key (§4.4). Shared by the sequential driver
/// and the parallel runtime.
pub fn finish_trap_round(
    setup: &RoundSetup,
    commitments: &[Vec<Commitment>],
    exit_payloads: Vec<Vec<Vec<u8>>>,
    routed: usize,
    timings: RoundTimings,
) -> AtomResult<RoundOutput> {
    let config = &setup.config;

    // --- Exit sorting: traps back to their entry group, inner ciphertexts
    //     to their load-balanced holding group. ---
    let mut traps_received: Vec<Vec<(u32, [u8; 16])>> = vec![Vec::new(); config.num_groups];
    let mut inners_received: Vec<Vec<Vec<u8>>> = vec![Vec::new(); config.num_groups];
    let mut malformed = 0usize;
    for payloads in &exit_payloads {
        for bytes in payloads {
            match MixPayload::from_bytes(bytes) {
                Ok(MixPayload::Trap { gid, nonce }) => {
                    let target = (gid as usize).min(config.num_groups - 1);
                    traps_received[target].push((gid, nonce));
                }
                Ok(MixPayload::Inner(inner)) | Ok(MixPayload::Plaintext(inner)) => {
                    let target = inner_target_group(&inner, config.num_groups);
                    inners_received[target].push(inner);
                }
                Err(_) => malformed += 1,
            }
        }
    }

    // --- Per-group reports (§4.4): trap/commitment matching, duplicate
    //     inner ciphertexts, counts. ---
    let mut all_ok = malformed == 0;
    let mut total_traps = 0usize;
    let mut total_inners = 0usize;
    for gid in 0..config.num_groups {
        total_traps += traps_received[gid].len();
        total_inners += inners_received[gid].len();

        // Every commitment must have exactly one matching trap and every
        // trap must match a commitment held by this group.
        let mut expected: HashMap<Commitment, usize> = HashMap::new();
        for commitment in &commitments[gid] {
            *expected.entry(*commitment).or_default() += 1;
        }
        for (trap_gid, nonce) in &traps_received[gid] {
            if *trap_gid as usize != gid {
                all_ok = false;
                continue;
            }
            let commitment = commit::commit(
                TRAP_COMMIT_LABEL,
                &MixPayload::trap_commit_bytes(*trap_gid, nonce),
            );
            match expected.get_mut(&commitment) {
                Some(count) if *count > 0 => *count -= 1,
                _ => all_ok = false,
            }
        }
        if expected.values().any(|&count| count > 0) {
            all_ok = false;
        }

        // Duplicate inner ciphertexts are grounds for aborting.
        let mut seen = std::collections::HashSet::new();
        for inner in &inners_received[gid] {
            if !seen.insert(commit::commit(b"inner-dup", inner)) {
                all_ok = false;
            }
        }
    }
    if total_traps != total_inners {
        all_ok = false;
    }

    // --- Trustee decision: release the key only if every report is clean.
    if !all_ok {
        return Err(AtomError::TrapCheckFailed(format!(
            "round aborted: traps={total_traps} inners={total_inners} malformed={malformed}"
        )));
    }
    let trustee_shares: Vec<_> = setup.trustees.shares.iter().collect();
    let trustee_secret =
        reconstruct_group_secret(&trustee_shares[..setup.trustees.shares[0].params.threshold])
            .map_err(AtomError::Crypto)?;
    let trustee_secret = SecretKey(trustee_secret);

    // --- Decrypt inner ciphertexts. ---
    let aad = config.round.to_le_bytes();
    let mut per_group = Vec::with_capacity(config.num_groups);
    let mut plaintexts = Vec::new();
    for inners in &inners_received {
        let mut group_messages = Vec::new();
        for inner_bytes in inners {
            let Ok(inner) = HybridCiphertext::from_bytes(inner_bytes) else {
                continue; // Malformed submissions from malicious users.
            };
            let Ok(message) =
                cca2::decrypt(&trustee_secret, &setup.trustees.public_key, &aad, &inner)
            else {
                continue;
            };
            group_messages.push(message.clone());
            plaintexts.push(message);
        }
        per_group.push(group_messages);
    }

    Ok(RoundOutput {
        per_group,
        plaintexts,
        routed_ciphertexts: routed,
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::Misbehavior;
    use crate::config::TopologyKind;
    use crate::directory::setup_round;
    use crate::message::{make_nizk_submission, make_trap_submission};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(4242)
    }

    fn trap_config() -> AtomConfig {
        let mut config = AtomConfig::test_default();
        config.num_groups = 3;
        config.iterations = 2;
        config.message_len = 24;
        config
    }

    fn make_trap_submissions(
        setup: &RoundSetup,
        messages: &[&str],
        rng: &mut StdRng,
    ) -> Vec<TrapSubmission> {
        messages
            .iter()
            .enumerate()
            .map(|(i, msg)| {
                let gid = i % setup.config.num_groups;
                make_trap_submission(
                    gid,
                    &setup.groups[gid].public_key,
                    &setup.trustees.public_key,
                    setup.config.round,
                    msg.as_bytes(),
                    setup.config.message_len,
                    rng,
                )
                .unwrap()
                .0
            })
            .collect()
    }

    #[test]
    fn trap_round_delivers_all_messages() {
        let mut rng = rng();
        let config = trap_config();
        let setup = setup_round(&config, &mut rng).unwrap();
        let driver = RoundDriver::new(setup);
        let messages = [
            "protest at noon",
            "meet at the square",
            "bring banners",
            "stay safe",
        ];
        let submissions = make_trap_submissions(driver.setup(), &messages, &mut rng);

        let output = driver.run_trap_round(&submissions, &mut rng).unwrap();
        assert_eq!(output.routed_ciphertexts, 2 * messages.len());
        assert_eq!(output.plaintexts.len(), messages.len());
        let mut recovered: Vec<String> = output
            .plaintexts
            .iter()
            .map(|p| {
                String::from_utf8(p.iter().copied().take_while(|&b| b != 0).collect()).unwrap()
            })
            .collect();
        recovered.sort();
        let mut expected: Vec<String> = messages.iter().map(|m| m.to_string()).collect();
        expected.sort();
        assert_eq!(recovered, expected);
        assert_eq!(
            output.timings.iteration_critical_path.len(),
            config.iterations
        );
    }

    #[test]
    fn nizk_round_delivers_all_messages() {
        let mut rng = rng();
        let mut config = trap_config();
        config.defense = Defense::Nizk;
        let setup = setup_round(&config, &mut rng).unwrap();
        let driver = RoundDriver::new(setup);

        let messages = ["alpha", "bravo", "charlie"];
        let submissions: Vec<NizkSubmission> = messages
            .iter()
            .enumerate()
            .map(|(i, msg)| {
                let gid = i % config.num_groups;
                make_nizk_submission(
                    gid,
                    &driver.setup().groups[gid].public_key,
                    msg.as_bytes(),
                    config.message_len,
                    &mut rng,
                )
                .unwrap()
                .0
            })
            .collect();

        let output = driver.run_nizk_round(&submissions, &mut rng).unwrap();
        assert_eq!(output.plaintexts.len(), messages.len());
        let mut recovered: Vec<String> = output
            .plaintexts
            .iter()
            .map(|p| {
                String::from_utf8(p.iter().copied().take_while(|&b| b != 0).collect()).unwrap()
            })
            .collect();
        recovered.sort();
        assert_eq!(recovered, vec!["alpha", "bravo", "charlie"]);
    }

    #[test]
    fn trap_round_aborts_when_a_message_is_dropped() {
        let mut rng = rng();
        let config = trap_config();
        let setup = setup_round(&config, &mut rng).unwrap();
        let plan = AdversaryPlan {
            group: 1,
            member: 1,
            iteration: 0,
            action: Misbehavior::DropMessage { slot: 0 },
        };
        let driver = RoundDriver::new(setup).with_adversary(plan);
        let submissions =
            make_trap_submissions(driver.setup(), &["a", "b", "c", "d", "e", "f"], &mut rng);
        let result = driver.run_trap_round(&submissions, &mut rng);
        assert!(
            matches!(result, Err(AtomError::TrapCheckFailed(_))),
            "{result:?}"
        );
    }

    #[test]
    fn trap_round_aborts_on_duplicated_ciphertext() {
        let mut rng = rng();
        let config = trap_config();
        let setup = setup_round(&config, &mut rng).unwrap();
        let plan = AdversaryPlan {
            group: 0,
            member: 2,
            iteration: 1,
            action: Misbehavior::DuplicateMessage { slot: 0, source: 1 },
        };
        let driver = RoundDriver::new(setup).with_adversary(plan);
        let submissions =
            make_trap_submissions(driver.setup(), &["a", "b", "c", "d", "e", "f"], &mut rng);
        let result = driver.run_trap_round(&submissions, &mut rng);
        assert!(
            matches!(result, Err(AtomError::TrapCheckFailed(_))),
            "{result:?}"
        );
    }

    #[test]
    fn nizk_round_identifies_malicious_server() {
        let mut rng = rng();
        let mut config = trap_config();
        config.defense = Defense::Nizk;
        let setup = setup_round(&config, &mut rng).unwrap();
        let plan = AdversaryPlan {
            group: 2,
            member: 3,
            iteration: 1,
            action: Misbehavior::ReplaceMessage { slot: 0 },
        };
        let driver = RoundDriver::new(setup).with_adversary(plan);
        let submissions: Vec<NizkSubmission> = (0..6)
            .map(|i| {
                let gid = i % config.num_groups;
                make_nizk_submission(
                    gid,
                    &driver.setup().groups[gid].public_key,
                    format!("msg {i}").as_bytes(),
                    config.message_len,
                    &mut rng,
                )
                .unwrap()
                .0
            })
            .collect();
        match driver.run_nizk_round(&submissions, &mut rng) {
            Err(AtomError::ProtocolViolation { group, member, .. }) => {
                assert_eq!(group, 2);
                assert_eq!(member, Some(3));
            }
            other => panic!("expected protocol violation, got {other:?}"),
        }
    }

    #[test]
    fn invalid_submission_proof_rejected() {
        let mut rng = rng();
        let config = trap_config();
        let setup = setup_round(&config, &mut rng).unwrap();
        let driver = RoundDriver::new(setup);
        let mut submissions = make_trap_submissions(driver.setup(), &["a", "b"], &mut rng);
        // Rebind submission 0 to a different entry group without re-proving.
        submissions[0].entry_group = (submissions[0].entry_group + 1) % config.num_groups;
        assert!(matches!(
            driver.run_trap_round(&submissions, &mut rng),
            Err(AtomError::SubmissionRejected(_))
        ));
    }

    #[test]
    fn fault_tolerant_round_survives_a_failure_per_group() {
        let mut rng = rng();
        let mut config = trap_config();
        config.required_honest = 2; // tolerate one failure per group.
        config.group_size = 3;
        let setup = setup_round(&config, &mut rng).unwrap();
        // Fail a single server; it is the first member of group 0 and may
        // also serve in other groups, each of which tolerates one failure.
        let failed = vec![setup.groups[0].members[0]];
        let driver = RoundDriver::new(setup).with_failures(failed);
        let submissions = make_trap_submissions(driver.setup(), &["x", "y", "z"], &mut rng);
        let output = driver.run_trap_round(&submissions, &mut rng).unwrap();
        assert_eq!(output.plaintexts.len(), 3);
    }

    #[test]
    fn too_many_failures_abort_the_round() {
        let mut rng = rng();
        let mut config = trap_config();
        config.required_honest = 2;
        let setup = setup_round(&config, &mut rng).unwrap();
        let failed: Vec<usize> = setup.groups[0].members[..2].to_vec();
        let driver = RoundDriver::new(setup).with_failures(failed);
        let submissions = make_trap_submissions(driver.setup(), &["x", "y"], &mut rng);
        assert!(matches!(
            driver.run_trap_round(&submissions, &mut rng),
            Err(AtomError::TooManyFailures { .. })
        ));
    }

    #[test]
    fn wrong_variant_rejected() {
        let mut rng = rng();
        let config = trap_config();
        let setup = setup_round(&config, &mut rng).unwrap();
        let driver = RoundDriver::new(setup);
        assert!(matches!(
            driver.run_nizk_round(&[], &mut rng),
            Err(AtomError::Config(_))
        ));
    }

    #[test]
    fn butterfly_topology_round_also_works() {
        let mut rng = rng();
        let mut config = trap_config();
        config.num_groups = 4;
        config.topology = TopologyKind::Butterfly;
        let setup = setup_round(&config, &mut rng).unwrap();
        let driver = RoundDriver::new(setup);
        let submissions = make_trap_submissions(driver.setup(), &["p", "q", "r", "s"], &mut rng);
        let output = driver.run_trap_round(&submissions, &mut rng).unwrap();
        assert_eq!(output.plaintexts.len(), 4);
    }

    #[test]
    fn latency_model_adds_network_critical_path() {
        let mut rng = rng();
        let config = trap_config();
        let setup = setup_round(&config, &mut rng).unwrap();
        let driver = RoundDriver::new(setup).with_latency(LatencyModel::Fixed { millis: 100 });
        let submissions = make_trap_submissions(driver.setup(), &["a", "b", "c"], &mut rng);
        let output = driver.run_trap_round(&submissions, &mut rng).unwrap();
        // Two iterations: one inter-group hop after the first iteration only
        // (the second is the exit layer), but we charge per non-exit
        // iteration, so expect at least 100 ms.
        assert!(output.timings.network_critical_path >= Duration::from_millis(100));
        assert!(output.timings.end_to_end() >= output.timings.network_critical_path);
    }
}
