//! Deployment configuration for an Atom network.

use serde::{Deserialize, Serialize};

use atom_topology::groups::GroupSecurityParams;
use atom_topology::network::{ButterflyNetwork, SquareNetwork, Topology};

use crate::error::{AtomError, AtomResult};

/// Which defence against actively malicious servers a deployment uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Defense {
    /// Verifiable shuffles and verifiable decryption after every step
    /// (Algorithm 2, §4.3). Stronger anonymity, roughly 4× the cost.
    Nizk,
    /// Trap messages checked by a trustee group before the inner decryption
    /// key is released (§4.4).
    Trap,
}

/// Which permutation-network topology connects the groups (§3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Håstad's square network (the paper's default, `T = 10`).
    Square,
    /// Iterated butterfly (β = 2, `O(log² G)` iterations).
    Butterfly,
}

/// Full configuration of an Atom deployment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AtomConfig {
    /// Number of physical servers (`N`).
    pub num_servers: usize,
    /// Number of anytrust groups (`G`); each group is a node of the
    /// permutation network.
    pub num_groups: usize,
    /// Servers per group (`k`). Use
    /// [`atom_topology::groups::required_group_size`] for production sizes;
    /// tests use small groups.
    pub group_size: usize,
    /// Required honest servers per group (`h`): 1 for plain anytrust, ≥2 to
    /// tolerate `h − 1` failures (§4.5).
    pub required_honest: usize,
    /// Number of mixing iterations (`T`).
    pub iterations: usize,
    /// Defence variant.
    pub defense: Defense,
    /// Topology connecting the groups.
    pub topology: TopologyKind,
    /// Fixed plaintext length in bytes every user pads to (§2; 160 for the
    /// microblogging evaluation, 80 for dialing).
    pub message_len: usize,
    /// Number of buddy groups per group for catastrophic-failure recovery.
    pub buddy_groups: usize,
    /// Beacon seed standing in for the public randomness source used to form
    /// groups for this round (§4.1).
    pub beacon_seed: u64,
    /// Round number (bound into proofs and inner-ciphertext associated data).
    pub round: u64,
    /// Servers the directory has evicted (§4.5): they are excluded from
    /// group formation for this round. Membership derivation substitutes a
    /// beacon-determined surviving server for every evicted one, so the
    /// re-formed directory is a pure function of `(config, eviction log)` —
    /// the DKG streams do not depend on membership, so group keys (and
    /// therefore already-collected user submissions) survive eviction
    /// unchanged.
    pub evicted_servers: Vec<usize>,
}

impl AtomConfig {
    /// A small test-sized deployment.
    pub fn test_default() -> Self {
        Self {
            num_servers: 8,
            num_groups: 4,
            group_size: 3,
            required_honest: 1,
            iterations: 3,
            defense: Defense::Trap,
            topology: TopologyKind::Square,
            message_len: 32,
            buddy_groups: 1,
            beacon_seed: 0,
            round: 0,
            evicted_servers: Vec::new(),
        }
    }

    /// Server ids still participating in group formation (everything not in
    /// [`Self::evicted_servers`]), in ascending order.
    pub fn surviving_servers(&self) -> Vec<usize> {
        (0..self.num_servers)
            .filter(|server| !self.evicted_servers.contains(server))
            .collect()
    }

    /// The security parameters implied by this configuration, using the
    /// paper's `f = 20%` and 2⁻⁶⁴ target.
    pub fn security_params(&self) -> GroupSecurityParams {
        GroupSecurityParams {
            adversarial_fraction: 0.2,
            num_groups: self.num_groups,
            required_honest: self.required_honest,
            security_bits: 64,
        }
    }

    /// Number of member failures each group tolerates (`h − 1`).
    pub fn tolerated_failures(&self) -> usize {
        self.required_honest.saturating_sub(1)
    }

    /// The DKG threshold per group: `k − (h − 1)` members suffice to decrypt.
    pub fn group_threshold(&self) -> usize {
        self.group_size - self.tolerated_failures()
    }

    /// Builds the configured topology object.
    pub fn topology(&self) -> Box<dyn Topology + Send + Sync> {
        match self.topology {
            TopologyKind::Square => Box::new(SquareNetwork::new(self.num_groups, self.iterations)),
            TopologyKind::Butterfly => {
                let net = ButterflyNetwork::for_groups(self.num_groups);
                Box::new(net)
            }
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> AtomResult<()> {
        if self.num_servers == 0 || self.num_groups == 0 {
            return Err(AtomError::Config(
                "need at least one server and group".into(),
            ));
        }
        if self.group_size == 0 || self.group_size > self.num_servers {
            return Err(AtomError::Config(format!(
                "group size {} incompatible with {} servers",
                self.group_size, self.num_servers
            )));
        }
        if self.required_honest == 0 || self.required_honest > self.group_size {
            return Err(AtomError::Config(format!(
                "required honest {} incompatible with group size {}",
                self.required_honest, self.group_size
            )));
        }
        if self.iterations == 0 {
            return Err(AtomError::Config(
                "need at least one mixing iteration".into(),
            ));
        }
        if self.message_len == 0 {
            return Err(AtomError::Config("message length must be positive".into()));
        }
        if self.topology == TopologyKind::Butterfly && !self.num_groups.is_power_of_two() {
            return Err(AtomError::Config(
                "butterfly topology requires a power-of-two group count".into(),
            ));
        }
        if let Some(server) = self
            .evicted_servers
            .iter()
            .find(|server| **server >= self.num_servers)
        {
            return Err(AtomError::Config(format!(
                "evicted server {server} out of range for {} servers",
                self.num_servers
            )));
        }
        if self.surviving_servers().len() < self.group_size {
            return Err(AtomError::Config(format!(
                "{} evictions leave fewer than {} (group size) surviving servers",
                self.evicted_servers.len(),
                self.group_size
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_default_is_valid() {
        assert!(AtomConfig::test_default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let base = AtomConfig::test_default();
        let mut c = base.clone();
        c.num_servers = 0;
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.group_size = 100;
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.required_honest = 0;
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.required_honest = 10;
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.iterations = 0;
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.message_len = 0;
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.topology = TopologyKind::Butterfly;
        c.num_groups = 3;
        assert!(c.validate().is_err());
        c.num_groups = 4;
        assert!(c.validate().is_ok());

        // Evictions: out-of-range ids and eviction sets that leave fewer
        // survivors than one full group are both rejected.
        let mut c = base.clone();
        c.evicted_servers = vec![c.num_servers];
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.evicted_servers = (0..6).collect();
        assert!(c.validate().is_err());
        c.evicted_servers = vec![1, 5];
        assert!(c.validate().is_ok());
        assert_eq!(c.surviving_servers(), vec![0, 2, 3, 4, 6, 7]);
    }

    #[test]
    fn threshold_accounts_for_fault_tolerance() {
        let mut c = AtomConfig::test_default();
        assert_eq!(c.group_threshold(), 3);
        c.required_honest = 2;
        assert_eq!(c.group_threshold(), 2);
        assert_eq!(c.tolerated_failures(), 1);
    }

    #[test]
    fn topology_matches_kind() {
        let mut c = AtomConfig::test_default();
        assert_eq!(c.topology().name(), "square");
        assert_eq!(c.topology().iterations(), 3);
        c.topology = TopologyKind::Butterfly;
        assert_eq!(c.topology().name(), "butterfly");
    }
}
