//! The anytrust-group mixing protocol: Algorithm 1 (basic), Algorithm 2
//! (with NIZKs) and the shared divide/re-encrypt machinery.
//!
//! A group receives a batch of message ciphertexts encrypted (possibly
//! partially, mid-handoff) under its group key and produces one sub-batch per
//! neighbouring group, re-encrypted under the neighbours' keys — or, in the
//! last mixing iteration, the decrypted mix payloads.
//!
//! Every participating member in protocol order:
//!
//! 1. **Shuffle** — rerandomizes and permutes the whole batch under the
//!    current group key (and, in the NIZK variant, proves it with a
//!    `ShufProof` verified by the rest of the group).
//! 2. **Divide** — the last member splits the batch into β equal sub-batches.
//! 3. **Decrypt-and-re-encrypt** — each member peels its layer from every
//!    sub-batch while re-encrypting toward the destination group's key
//!    (`ReEncProof` in the NIZK variant). The last member drops the auxiliary
//!    component and hands the sub-batches off.

use rand::rngs::StdRng;
use rand::{CryptoRng, RngCore, SeedableRng};

use atom_crypto::batch::{verify_reencryption_batch, verify_shuffle_batch, ShuffleVerification};
use atom_crypto::elgamal::{
    encrypt_message, reencrypt_message, shuffle, MessageCiphertext, PublicKey,
};
use atom_crypto::encoding::{decode_message, encode_message_padded};
use atom_crypto::nizk::reenc::{prove_reencryption, ReEncStatement};
use atom_crypto::nizk::shuffle::prove_shuffle;

use crate::adversary::{AdversaryPlan, Misbehavior};
use crate::config::Defense;
use crate::directory::GroupContext;
use crate::error::{AtomError, AtomResult};

/// Options controlling how a group executes a mixing iteration.
#[derive(Clone, Copy, Debug)]
pub struct GroupStepOptions {
    /// Defence variant in force.
    pub defense: Defense,
    /// Number of worker threads used for the re-encryption of a batch
    /// (the trap variant parallelizes almost perfectly, §6.1/Fig. 7).
    pub parallelism: usize,
}

impl GroupStepOptions {
    /// Sequential execution with the given defence.
    pub fn new(defense: Defense) -> Self {
        Self {
            defense,
            parallelism: 1,
        }
    }
}

/// The output of one group mixing iteration.
#[derive(Clone, Debug)]
pub struct GroupStepOutput {
    /// One finalized sub-batch per neighbouring group (empty on the exit
    /// layer).
    pub outputs: Vec<Vec<MessageCiphertext>>,
    /// Decrypted mix payloads (populated only on the exit layer).
    pub plaintexts: Vec<Vec<u8>>,
}

/// Applies a misbehaviour to a batch in place. Returns a description used by
/// tests; `group_pk` is needed to forge replacement ciphertexts.
fn apply_misbehavior<R: RngCore + CryptoRng>(
    action: &Misbehavior,
    batch: &mut Vec<MessageCiphertext>,
    group_pk: &PublicKey,
    padded_len: usize,
    rng: &mut R,
) -> AtomResult<()> {
    match *action {
        Misbehavior::DropMessage { slot } => {
            if slot < batch.len() {
                batch.remove(slot);
            }
        }
        Misbehavior::DuplicateMessage { slot, source } => {
            if slot < batch.len() && source < batch.len() {
                batch[slot] = batch[source].clone();
            }
        }
        Misbehavior::ReplaceMessage { slot } => {
            if slot < batch.len() {
                let points = encode_message_padded(b"adversarial substitution", padded_len)
                    .map_err(AtomError::Crypto)?;
                batch[slot] = encrypt_message(group_pk, &points, rng).0;
            }
        }
        Misbehavior::TamperCiphertext { slot } => {
            if slot < batch.len() {
                let basepoint = curve_basepoint();
                if let Some(component) = batch[slot].components.first_mut() {
                    component.c += basepoint;
                }
            }
        }
    }
    Ok(())
}

fn curve_basepoint() -> atom_crypto::RistrettoPoint {
    curve25519_dalek_basepoint()
}

// Small helper to avoid importing dalek constants throughout this module.
fn curve25519_dalek_basepoint() -> atom_crypto::RistrettoPoint {
    atom_crypto::pedersen::CommitmentKey::atom().g
}

/// Re-encrypts every message of a sub-batch with the given peel exponent,
/// optionally across several worker threads.
fn reencrypt_batch(
    peel_exponent: &atom_crypto::Scalar,
    next_pk: Option<&PublicKey>,
    batch: &[MessageCiphertext],
    parallelism: usize,
    rng: &mut (impl RngCore + CryptoRng),
) -> Vec<(MessageCiphertext, Vec<atom_crypto::elgamal::ReEncWitness>)> {
    if parallelism <= 1 || batch.len() < 2 {
        return batch
            .iter()
            .map(|message| reencrypt_message(peel_exponent, next_pk, message, rng))
            .collect();
    }

    let workers = parallelism.min(batch.len());
    let chunk_size = batch.len().div_ceil(workers);
    let seeds: Vec<u64> = (0..workers).map(|_| rng.next_u64()).collect();
    let mut results: Vec<Option<(MessageCiphertext, Vec<atom_crypto::elgamal::ReEncWitness>)>> =
        vec![None; batch.len()];

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (worker, chunk) in batch.chunks(chunk_size).enumerate() {
            let seed = seeds[worker];
            let start = worker * chunk_size;
            handles.push((
                start,
                scope.spawn(move || {
                    let mut local_rng = StdRng::seed_from_u64(seed);
                    chunk
                        .iter()
                        .map(|message| {
                            reencrypt_message(peel_exponent, next_pk, message, &mut local_rng)
                        })
                        .collect::<Vec<_>>()
                }),
            ));
        }
        for (start, handle) in handles {
            for (offset, value) in handle
                .join()
                .expect("re-encryption worker panicked")
                .into_iter()
                .enumerate()
            {
                results[start + offset] = Some(value);
            }
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

/// Runs one full mixing iteration of a group (Algorithm 1 / Algorithm 2).
///
/// * `participating` — 1-based member indices taking part (from
///   [`GroupContext::participating`]).
/// * `next_group_keys` — the public keys of the β neighbouring groups for
///   this iteration; pass an empty slice on the exit layer.
/// * `padded_len` — the fixed mix-payload length (needed to parse exit
///   plaintexts and to forge replacements for adversarial tests).
/// * `adversary` — optional misbehaviour plan already filtered to this group
///   and iteration.
#[allow(clippy::too_many_arguments)]
pub fn group_mix_iteration<R: RngCore + CryptoRng>(
    group: &GroupContext,
    participating: &[u64],
    mut batch: Vec<MessageCiphertext>,
    next_group_keys: &[PublicKey],
    padded_len: usize,
    options: &GroupStepOptions,
    adversary: Option<&AdversaryPlan>,
    rng: &mut R,
) -> AtomResult<GroupStepOutput> {
    if participating.len() < group.threshold {
        return Err(AtomError::TooManyFailures {
            group: group.id,
            failed: group.members.len() - participating.len(),
            tolerated: group.members.len() - group.threshold,
        });
    }
    if batch.is_empty() {
        return Ok(GroupStepOutput {
            outputs: vec![Vec::new(); next_group_keys.len()],
            plaintexts: Vec::new(),
        });
    }

    // ----- Step 1: sequential shuffles under the group key. -----
    if options.defense == Defense::Nizk {
        // Run the whole shuffle chain first (same RNG draw order as proving
        // and verifying inline — verification draws nothing), collecting
        // each member's (inputs, outputs, proof) link, then settle every
        // proof through one combined RLC check. On batch failure the
        // verifier falls back per proof and reports the first failing link,
        // so the blamed member and reason match inline verification
        // exactly. A prover-side error mid-chain only surfaces after the
        // links collected before it have been checked: an earlier member's
        // violation outranks it, exactly as it would inline.
        let mut stages: Vec<Vec<MessageCiphertext>> = vec![std::mem::take(&mut batch)];
        let mut proofs = Vec::with_capacity(participating.len());
        let mut provers = Vec::with_capacity(participating.len());
        let mut chain_error = None;
        for &member in participating {
            let misbehaving = adversary.filter(|plan| plan.member == member);
            let inputs = stages.last().expect("stage 0 seeded");
            let (mut shuffled, witness) = match shuffle(&group.public_key, inputs, rng) {
                Ok(pair) => pair,
                Err(err) => {
                    chain_error = Some(AtomError::Crypto(err));
                    break;
                }
            };
            let proof = match prove_shuffle(&group.public_key, inputs, &shuffled, &witness, rng) {
                Ok(proof) => proof,
                Err(err) => {
                    chain_error = Some(AtomError::Crypto(err));
                    break;
                }
            };
            // Misbehaviour happens *after* proving: the server publishes a
            // tampered output batch alongside an honest-looking proof.
            if let Some(plan) = misbehaving {
                if let Err(err) = apply_misbehavior(
                    &plan.action,
                    &mut shuffled,
                    &group.public_key,
                    padded_len,
                    rng,
                ) {
                    chain_error = Some(err);
                    break;
                }
            }
            stages.push(shuffled);
            proofs.push(proof);
            provers.push(member);
        }
        let items: Vec<ShuffleVerification<'_>> = proofs
            .iter()
            .enumerate()
            .map(|(link, proof)| ShuffleVerification {
                pk: &group.public_key,
                inputs: &stages[link],
                outputs: &stages[link + 1],
                proof,
            })
            .collect();
        if let Err((link, err)) = verify_shuffle_batch(&items) {
            return Err(AtomError::ProtocolViolation {
                group: group.id,
                member: Some(provers[link] as usize),
                reason: format!("shuffle proof rejected: {err}"),
            });
        }
        if let Some(err) = chain_error {
            return Err(err);
        }
        batch = stages.pop().expect("stage 0 seeded");
    } else {
        for &member in participating {
            let misbehaving = adversary.filter(|plan| plan.member == member);
            let (mut shuffled, _witness) =
                shuffle(&group.public_key, &batch, rng).map_err(AtomError::Crypto)?;
            if let Some(plan) = misbehaving {
                apply_misbehavior(
                    &plan.action,
                    &mut shuffled,
                    &group.public_key,
                    padded_len,
                    rng,
                )?;
            }
            batch = shuffled;
        }
    }

    // ----- Step 2: the last member divides the batch into β sub-batches. -----
    // Messages are dealt round-robin, rotated by the group id so that
    // remainders do not systematically favour low-numbered neighbours.
    let beta = next_group_keys.len().max(1);
    let mut sub_batches: Vec<Vec<MessageCiphertext>> = vec![Vec::new(); beta];
    for (slot, message) in batch.into_iter().enumerate() {
        sub_batches[(slot + group.id) % beta].push(message);
    }

    // ----- Step 3: sequential decrypt-and-re-encrypt by every member. -----
    let exit_layer = next_group_keys.is_empty();
    for (position, &member) in participating.iter().enumerate() {
        let share = group.share(member);
        let peel = share
            .peel_exponent(participating)
            .map_err(AtomError::Crypto)?;
        let peel_public = share
            .peel_verification_key(participating, member)
            .map_err(AtomError::Crypto)?;
        let last_member = position + 1 == participating.len();

        for (batch_index, sub_batch) in sub_batches.iter_mut().enumerate() {
            if sub_batch.is_empty() {
                continue;
            }
            let next_pk = if exit_layer {
                None
            } else {
                Some(&next_group_keys[batch_index])
            };
            let reencrypted = reencrypt_batch(&peel, next_pk, sub_batch, options.parallelism, rng);

            if options.defense == Defense::Nizk {
                // Prove every message first (same RNG order as proving and
                // verifying one by one), then verify the whole sub-batch
                // through one RLC check. On batch failure the verifier falls
                // back to per-proof checks and reports the first failing
                // message, so the blamed member and reason match the
                // sequential verifier exactly.
                let statements: Vec<ReEncStatement<'_>> = sub_batch
                    .iter()
                    .zip(reencrypted.iter())
                    .map(|(input, (output, _))| ReEncStatement {
                        peel_public: &peel_public,
                        next_pk,
                        input,
                        output,
                    })
                    .collect();
                let mut proofs = Vec::with_capacity(statements.len());
                for (statement, (_, witnesses)) in statements.iter().zip(reencrypted.iter()) {
                    proofs.push(
                        prove_reencryption(statement, witnesses, rng).map_err(AtomError::Crypto)?,
                    );
                }
                if let Err((_, err)) = verify_reencryption_batch(&statements, &proofs) {
                    return Err(AtomError::ProtocolViolation {
                        group: group.id,
                        member: Some(member as usize),
                        reason: format!("re-encryption proof rejected: {err}"),
                    });
                }
            }

            let mut next: Vec<MessageCiphertext> =
                reencrypted.into_iter().map(|(ct, _)| ct).collect();
            if last_member && !exit_layer {
                next = next
                    .iter()
                    .map(MessageCiphertext::finalize_handoff)
                    .collect();
            }
            *sub_batch = next;
        }
    }

    // ----- Exit layer: decode the plaintext payloads. -----
    if exit_layer {
        let mut plaintexts = Vec::new();
        for message in sub_batches.into_iter().flatten() {
            let points: Vec<atom_crypto::RistrettoPoint> = message
                .components
                .iter()
                .map(|c| c.into_plaintext_point())
                .collect();
            // A plaintext that fails to decode was tampered with in transit
            // (or submitted malformed); surface it as an empty payload so the
            // round-level checks (trap matching, counts) flag it rather than
            // crashing the exit server.
            let bytes = decode_message(&points).unwrap_or_default();
            plaintexts.push(bytes);
        }
        return Ok(GroupStepOutput {
            outputs: Vec::new(),
            plaintexts,
        });
    }

    Ok(GroupStepOutput {
        outputs: sub_batches,
        plaintexts: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AtomConfig;
    use crate::directory::setup_round;
    use crate::message::{nizk_payload_len, MixPayload};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    fn encrypt_batch(
        group_pk: &PublicKey,
        payloads: &[&[u8]],
        padded_len: usize,
        rng: &mut StdRng,
    ) -> Vec<MessageCiphertext> {
        payloads
            .iter()
            .map(|payload| {
                let framed = MixPayload::Plaintext(payload.to_vec())
                    .to_bytes(padded_len)
                    .unwrap();
                let points = encode_message_padded(&framed, padded_len).unwrap();
                encrypt_message(group_pk, &points, rng).0
            })
            .collect()
    }

    #[test]
    fn single_group_exit_iteration_recovers_plaintexts() {
        let mut rng = rng();
        let config = AtomConfig::test_default();
        let setup = setup_round(&config, &mut rng).unwrap();
        let group = &setup.groups[0];
        let padded_len = nizk_payload_len(config.message_len);

        let batch = encrypt_batch(
            &group.public_key,
            &[b"alpha", b"bravo", b"charlie"],
            padded_len,
            &mut rng,
        );
        let participating = group.participating(&[]).unwrap();
        let output = group_mix_iteration(
            group,
            &participating,
            batch,
            &[],
            padded_len,
            &GroupStepOptions::new(Defense::Trap),
            None,
            &mut rng,
        )
        .unwrap();

        assert!(output.outputs.is_empty());
        let mut recovered: Vec<Vec<u8>> = output
            .plaintexts
            .iter()
            .map(|bytes| match MixPayload::from_bytes(bytes).unwrap() {
                MixPayload::Inner(content) => content,
                other => panic!("unexpected payload {other:?}"),
            })
            .collect();
        recovered.sort();
        assert_eq!(
            recovered,
            vec![b"alpha".to_vec(), b"bravo".to_vec(), b"charlie".to_vec()]
        );
    }

    #[test]
    fn two_group_handoff_preserves_messages() {
        let mut rng = rng();
        let mut config = AtomConfig::test_default();
        config.num_groups = 2;
        config.iterations = 2;
        let setup = setup_round(&config, &mut rng).unwrap();
        let padded_len = nizk_payload_len(config.message_len);

        let first = &setup.groups[0];
        let second = &setup.groups[1];
        let batch = encrypt_batch(
            &first.public_key,
            &[b"one", b"two", b"three", b"four"],
            padded_len,
            &mut rng,
        );

        let participating = first.participating(&[]).unwrap();
        let step1 = group_mix_iteration(
            first,
            &participating,
            batch,
            &[second.public_key],
            padded_len,
            &GroupStepOptions::new(Defense::Trap),
            None,
            &mut rng,
        )
        .unwrap();
        assert_eq!(step1.outputs.len(), 1);
        assert_eq!(step1.outputs[0].len(), 4);
        assert!(step1.outputs[0].iter().all(|m| m.is_fresh()));

        let participating2 = second.participating(&[]).unwrap();
        let step2 = group_mix_iteration(
            second,
            &participating2,
            step1.outputs.into_iter().next().unwrap(),
            &[],
            padded_len,
            &GroupStepOptions::new(Defense::Trap),
            None,
            &mut rng,
        )
        .unwrap();

        let mut recovered: Vec<Vec<u8>> = step2
            .plaintexts
            .iter()
            .map(|bytes| match MixPayload::from_bytes(bytes).unwrap() {
                MixPayload::Inner(content) => content,
                other => panic!("unexpected payload {other:?}"),
            })
            .collect();
        recovered.sort();
        assert_eq!(
            recovered,
            vec![
                b"four".to_vec(),
                b"one".to_vec(),
                b"three".to_vec(),
                b"two".to_vec()
            ]
        );
    }

    #[test]
    fn nizk_variant_detects_tampering_and_identifies_member() {
        let mut rng = rng();
        let mut config = AtomConfig::test_default();
        config.defense = Defense::Nizk;
        let setup = setup_round(&config, &mut rng).unwrap();
        let group = &setup.groups[1];
        let padded_len = nizk_payload_len(config.message_len);
        let batch = encrypt_batch(
            &group.public_key,
            &[b"a", b"b", b"c", b"d"],
            padded_len,
            &mut rng,
        );
        let participating = group.participating(&[]).unwrap();

        let plan = AdversaryPlan {
            group: group.id,
            member: 2,
            iteration: 0,
            action: Misbehavior::DropMessage { slot: 1 },
        };
        let result = group_mix_iteration(
            group,
            &participating,
            batch,
            &[setup.groups[0].public_key],
            padded_len,
            &GroupStepOptions::new(Defense::Nizk),
            Some(&plan),
            &mut rng,
        );
        match result {
            Err(AtomError::ProtocolViolation {
                group: g, member, ..
            }) => {
                assert_eq!(g, group.id);
                assert_eq!(member, Some(2));
            }
            other => panic!("expected protocol violation, got {other:?}"),
        }
    }

    #[test]
    fn nizk_variant_detects_ciphertext_mauling() {
        let mut rng = rng();
        let mut config = AtomConfig::test_default();
        config.defense = Defense::Nizk;
        let setup = setup_round(&config, &mut rng).unwrap();
        let group = &setup.groups[0];
        let padded_len = nizk_payload_len(config.message_len);
        let batch = encrypt_batch(&group.public_key, &[b"a", b"b"], padded_len, &mut rng);
        let participating = group.participating(&[]).unwrap();

        let plan = AdversaryPlan {
            group: group.id,
            member: 1,
            iteration: 0,
            action: Misbehavior::TamperCiphertext { slot: 0 },
        };
        let result = group_mix_iteration(
            group,
            &participating,
            batch,
            &[setup.groups[1].public_key],
            padded_len,
            &GroupStepOptions::new(Defense::Nizk),
            Some(&plan),
            &mut rng,
        );
        assert!(matches!(result, Err(AtomError::ProtocolViolation { .. })));
    }

    #[test]
    fn trap_variant_lets_tampering_through_for_later_detection() {
        // The trap variant does not verify shuffles; a dropped message
        // surfaces only at the trap check (tested in round.rs).
        let mut rng = rng();
        let config = AtomConfig::test_default();
        let setup = setup_round(&config, &mut rng).unwrap();
        let group = &setup.groups[0];
        let padded_len = nizk_payload_len(config.message_len);
        let batch = encrypt_batch(&group.public_key, &[b"a", b"b", b"c"], padded_len, &mut rng);
        let participating = group.participating(&[]).unwrap();
        let plan = AdversaryPlan {
            group: group.id,
            member: 1,
            iteration: 0,
            action: Misbehavior::DropMessage { slot: 0 },
        };
        let output = group_mix_iteration(
            group,
            &participating,
            batch,
            &[],
            padded_len,
            &GroupStepOptions::new(Defense::Trap),
            Some(&plan),
            &mut rng,
        )
        .unwrap();
        assert_eq!(output.plaintexts.len(), 2);
    }

    #[test]
    fn parallel_reencryption_matches_sequential_semantics() {
        let mut rng = rng();
        let config = AtomConfig::test_default();
        let setup = setup_round(&config, &mut rng).unwrap();
        let group = &setup.groups[0];
        let padded_len = nizk_payload_len(config.message_len);
        let payloads: Vec<Vec<u8>> = (0..6u8).map(|i| vec![b'p', i]).collect();
        let payload_refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let batch = encrypt_batch(&group.public_key, &payload_refs, padded_len, &mut rng);
        let participating = group.participating(&[]).unwrap();

        let options = GroupStepOptions {
            defense: Defense::Trap,
            parallelism: 4,
        };
        let output = group_mix_iteration(
            group,
            &participating,
            batch,
            &[],
            padded_len,
            &options,
            None,
            &mut rng,
        )
        .unwrap();
        let mut recovered: Vec<Vec<u8>> = output
            .plaintexts
            .iter()
            .map(|bytes| match MixPayload::from_bytes(bytes).unwrap() {
                MixPayload::Inner(content) => content,
                other => panic!("unexpected payload {other:?}"),
            })
            .collect();
        recovered.sort();
        let mut expected = payloads;
        expected.sort();
        assert_eq!(recovered, expected);
    }

    #[test]
    fn too_few_participants_rejected() {
        let mut rng = rng();
        let config = AtomConfig::test_default();
        let setup = setup_round(&config, &mut rng).unwrap();
        let group = &setup.groups[0];
        let padded_len = nizk_payload_len(config.message_len);
        let batch = encrypt_batch(&group.public_key, &[b"a"], padded_len, &mut rng);
        let result = group_mix_iteration(
            group,
            &[1, 2],
            batch,
            &[],
            padded_len,
            &GroupStepOptions::new(Defense::Trap),
            None,
            &mut rng,
        );
        assert!(matches!(result, Err(AtomError::TooManyFailures { .. })));
    }

    #[test]
    fn empty_batch_produces_empty_outputs() {
        let mut rng = rng();
        let config = AtomConfig::test_default();
        let setup = setup_round(&config, &mut rng).unwrap();
        let group = &setup.groups[0];
        let participating = group.participating(&[]).unwrap();
        let output = group_mix_iteration(
            group,
            &participating,
            Vec::new(),
            &[setup.groups[1].public_key, setup.groups[2].public_key],
            nizk_payload_len(32),
            &GroupStepOptions::new(Defense::Trap),
            None,
            &mut rng,
        )
        .unwrap();
        assert_eq!(output.outputs.len(), 2);
        assert!(output.outputs.iter().all(Vec::is_empty));
    }
}
