//! # atom-core
//!
//! The Atom anonymous-messaging protocol (SOSP 2017), reproduced in Rust on
//! top of [`atom_crypto`], [`atom_topology`] and [`atom_net`].
//!
//! An Atom deployment consists of hundreds or thousands of servers organized
//! into *anytrust groups* connected by a random permutation network. Users
//! submit encrypted messages to an entry group of their choice; each group
//! collectively shuffles, splits and re-encrypts its batch toward its
//! neighbours; after `T` iterations the exit groups reveal the anonymized
//! plaintexts. Two defences against actively malicious servers are provided:
//! verifiable shuffles/decryption (the NIZK variant, §4.3) and trap messages
//! gated by a trustee group (the trap variant, §4.4).
//!
//! Module map:
//!
//! * [`config`] — deployment configuration (group sizes, topology, defence).
//! * [`directory`] — per-round setup: group formation, DKGs, trustees.
//! * [`message`] — client-side submissions and the mix-payload wire format.
//! * [`group`] — the group mixing protocol (Algorithms 1 and 2).
//! * [`actor`] — the re-entrant per-group mixing state machine
//!   ([`actor::GroupActor`]) with deterministic per-group RNG streams,
//!   consumed by both the sequential [`round::RoundDriver`] and the parallel
//!   `atom-runtime` engine.
//! * [`round`] — full-round orchestration, trap checking, trustee release;
//!   also exposes the submission-verification and exit-phase helpers the
//!   parallel runtime shares.
//! * [`adversary`] — active-attack injection used by tests and benches.
//! * [`blame`] — identification of malicious users after a disruption (§4.6).
//! * [`faults`] — buddy-group escrow and catastrophic-failure recovery (§4.5).
//!
//! ## Quick example
//!
//! ```
//! use atom_core::config::AtomConfig;
//! use atom_core::directory::setup_round;
//! use atom_core::message::make_trap_submission;
//! use atom_core::round::RoundDriver;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut config = AtomConfig::test_default();
//! config.message_len = 24;
//! let setup = setup_round(&config, &mut rng).unwrap();
//! let driver = RoundDriver::new(setup);
//!
//! let submissions: Vec<_> = ["hello", "world"]
//!     .iter()
//!     .enumerate()
//!     .map(|(i, msg)| {
//!         let gid = i % config.num_groups;
//!         make_trap_submission(
//!             gid,
//!             &driver.setup().groups[gid].public_key,
//!             &driver.setup().trustees.public_key,
//!             config.round,
//!             msg.as_bytes(),
//!             config.message_len,
//!             &mut rng,
//!         )
//!         .unwrap()
//!         .0
//!     })
//!     .collect();
//!
//! let output = driver.run_trap_round(&submissions, &mut rng).unwrap();
//! assert_eq!(output.plaintexts.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod adversary;
pub mod blame;
pub mod config;
pub mod directory;
pub mod error;
pub mod faults;
pub mod group;
pub mod message;
pub mod round;

pub use actor::{group_stream_seed, ActorConfig, ActorOutput, GroupActor, SOURCE};
pub use adversary::{AdversaryPlan, Misbehavior};
pub use config::{AtomConfig, Defense, TopologyKind};
pub use directory::{setup_round, GroupContext, RoundSetup, TrusteeContext};
pub use error::{AtomError, AtomResult};
pub use message::{make_nizk_submission, make_trap_submission, NizkSubmission, TrapSubmission};
pub use round::{RoundDriver, RoundOutput, RoundTimings};
