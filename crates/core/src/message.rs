//! Client-side message construction and the mix-payload wire format.
//!
//! * In the **NIZK variant** (§4.3) a user submits one ciphertext of her
//!   padded plaintext plus an `EncProof`.
//! * In the **trap variant** (§4.4) she submits two ciphertexts in random
//!   order — the IND-CCA2 *inner ciphertext* of her message encrypted to the
//!   trustees, and a *trap* naming her entry group and a random nonce — plus
//!   `EncProof`s for both and a SHA-3 commitment to the trap.
//!
//! Both kinds of mix payload share a fixed-length framing so that traps and
//! inner ciphertexts are indistinguishable on the wire:
//! `tag (1 byte) ‖ length (2 bytes LE) ‖ content ‖ zero padding`.

use rand::{CryptoRng, Rng, RngCore};
use serde::{Deserialize, Serialize};

use atom_crypto::cca2::{self, HybridCiphertext};
use atom_crypto::commit::{self, Commitment};
use atom_crypto::elgamal::{encrypt_message, MessageCiphertext, PublicKey};
use atom_crypto::encoding::encode_message_padded;
use atom_crypto::keccak::sha3_256;
use atom_crypto::nizk::enc::{prove_encryption, EncProof};

use crate::error::{AtomError, AtomResult};

/// Tag byte marking an inner ciphertext (`M` in the paper).
pub const TAG_INNER: u8 = b'M';
/// Tag byte marking a trap message (`T` in the paper).
pub const TAG_TRAP: u8 = b'T';
/// Domain-separation label for trap commitments.
pub const TRAP_COMMIT_LABEL: &[u8] = b"atom-trap";
/// Size of a trap nonce in bytes.
pub const TRAP_NONCE_LEN: usize = 16;

/// Overhead the CCA2 envelope adds to a plaintext: 32-byte KEM encapsulation
/// plus a 16-byte AEAD tag.
pub const INNER_OVERHEAD: usize = 32 + 16;
/// Framing overhead of a mix payload: tag byte plus 2-byte length.
pub const FRAME_OVERHEAD: usize = 3;

/// The fixed mix-payload length (in bytes) for a deployment with plaintext
/// length `message_len` in the trap variant: every trap and every inner
/// ciphertext is padded to this size.
pub fn trap_payload_len(message_len: usize) -> usize {
    let inner = message_len + INNER_OVERHEAD;
    let trap = 4 + TRAP_NONCE_LEN;
    FRAME_OVERHEAD + inner.max(trap)
}

/// The fixed mix-payload length for the NIZK variant (plaintext routed
/// directly, framed for unambiguous unpadding).
pub fn nizk_payload_len(message_len: usize) -> usize {
    FRAME_OVERHEAD + message_len
}

/// A parsed mix payload, as recovered by an exit group.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MixPayload {
    /// A user plaintext routed directly (NIZK variant).
    Plaintext(Vec<u8>),
    /// An inner ciphertext to be forwarded for trustee-gated decryption.
    Inner(Vec<u8>),
    /// A trap message to be returned to its entry group for checking.
    Trap {
        /// The entry group that holds the matching commitment.
        gid: u32,
        /// The user's random nonce.
        nonce: [u8; TRAP_NONCE_LEN],
    },
}

impl MixPayload {
    /// Serializes the payload with framing, padded to `padded_len`.
    pub fn to_bytes(&self, padded_len: usize) -> AtomResult<Vec<u8>> {
        let (tag, content) = match self {
            MixPayload::Plaintext(data) => (TAG_INNER, data.clone()),
            MixPayload::Inner(data) => (TAG_INNER, data.clone()),
            MixPayload::Trap { gid, nonce } => {
                let mut content = Vec::with_capacity(4 + TRAP_NONCE_LEN);
                content.extend_from_slice(&gid.to_le_bytes());
                content.extend_from_slice(nonce);
                (TAG_TRAP, content)
            }
        };
        if content.len() > u16::MAX as usize || FRAME_OVERHEAD + content.len() > padded_len {
            return Err(AtomError::Malformed(format!(
                "payload of {} bytes does not fit padded length {}",
                content.len(),
                padded_len
            )));
        }
        let mut out = Vec::with_capacity(padded_len);
        out.push(tag);
        out.extend_from_slice(&(content.len() as u16).to_le_bytes());
        out.extend_from_slice(&content);
        out.resize(padded_len, 0);
        Ok(out)
    }

    /// Parses a framed payload (tolerating trailing padding).
    pub fn from_bytes(bytes: &[u8]) -> AtomResult<Self> {
        if bytes.len() < FRAME_OVERHEAD {
            return Err(AtomError::Malformed("mix payload too short".into()));
        }
        let tag = bytes[0];
        let len = u16::from_le_bytes([bytes[1], bytes[2]]) as usize;
        if FRAME_OVERHEAD + len > bytes.len() {
            return Err(AtomError::Malformed(
                "mix payload length out of range".into(),
            ));
        }
        let content = &bytes[FRAME_OVERHEAD..FRAME_OVERHEAD + len];
        match tag {
            TAG_TRAP => {
                if len != 4 + TRAP_NONCE_LEN {
                    return Err(AtomError::Malformed("trap payload has wrong length".into()));
                }
                let gid = u32::from_le_bytes(content[..4].try_into().unwrap());
                let mut nonce = [0u8; TRAP_NONCE_LEN];
                nonce.copy_from_slice(&content[4..]);
                Ok(MixPayload::Trap { gid, nonce })
            }
            TAG_INNER => Ok(MixPayload::Inner(content.to_vec())),
            other => Err(AtomError::Malformed(format!(
                "unknown mix payload tag {other:#x}"
            ))),
        }
    }

    /// The canonical bytes a trap commitment is computed over.
    pub fn trap_commit_bytes(gid: u32, nonce: &[u8; TRAP_NONCE_LEN]) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(4 + TRAP_NONCE_LEN);
        bytes.extend_from_slice(&gid.to_le_bytes());
        bytes.extend_from_slice(nonce);
        bytes
    }
}

/// The exit-side load-balancing function for inner ciphertexts: a hash of the
/// ciphertext picks the group that will hold it for decryption (§4.4,
/// "a deterministic function that will load-balance").
pub fn inner_target_group(inner_bytes: &[u8], num_groups: usize) -> usize {
    let digest = sha3_256(inner_bytes);
    let mut value = 0u64;
    for &b in &digest[..8] {
        value = (value << 8) | b as u64;
    }
    (value % num_groups as u64) as usize
}

/// A user submission in the NIZK variant.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NizkSubmission {
    /// The entry group chosen by the user.
    pub entry_group: usize,
    /// The encrypted, padded plaintext.
    pub ciphertext: MessageCiphertext,
    /// Proof of knowledge of the plaintext, bound to the entry group.
    pub proof: EncProof,
}

/// A user submission in the trap variant.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrapSubmission {
    /// The entry group chosen by the user.
    pub entry_group: usize,
    /// The two ciphertexts (inner ciphertext and trap) in a random order.
    pub ciphertexts: [MessageCiphertext; 2],
    /// Proofs of knowledge for both ciphertexts.
    pub proofs: [EncProof; 2],
    /// SHA-3 commitment to the trap message.
    pub trap_commitment: Commitment,
}

/// Everything the user keeps after submitting (needed to recognise her own
/// output and, in §4.6 blame, to prove she behaved).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SubmissionReceipt {
    /// The trap nonce (trap variant only).
    pub trap_nonce: Option<[u8; TRAP_NONCE_LEN]>,
    /// The padded plaintext submitted.
    pub padded_plaintext: Vec<u8>,
}

/// Builds a NIZK-variant submission.
pub fn make_nizk_submission<R: RngCore + CryptoRng>(
    entry_group: usize,
    group_pk: &PublicKey,
    message: &[u8],
    message_len: usize,
    rng: &mut R,
) -> AtomResult<(NizkSubmission, SubmissionReceipt)> {
    if message.len() > message_len {
        return Err(AtomError::Malformed(format!(
            "message of {} bytes exceeds configured length {}",
            message.len(),
            message_len
        )));
    }
    let padded_len = nizk_payload_len(message_len);
    let payload = MixPayload::Plaintext(message.to_vec()).to_bytes(padded_len)?;
    let points = encode_message_padded(&payload, padded_len)?;
    let (ciphertext, randomness) = encrypt_message(group_pk, &points, rng);
    let proof = prove_encryption(group_pk, entry_group as u64, &ciphertext, &randomness, rng)?;
    Ok((
        NizkSubmission {
            entry_group,
            ciphertext,
            proof,
        },
        SubmissionReceipt {
            trap_nonce: None,
            padded_plaintext: payload,
        },
    ))
}

/// Builds a trap-variant submission (§4.4 steps 1–5).
pub fn make_trap_submission<R: RngCore + CryptoRng>(
    entry_group: usize,
    group_pk: &PublicKey,
    trustee_pk: &PublicKey,
    round: u64,
    message: &[u8],
    message_len: usize,
    rng: &mut R,
) -> AtomResult<(TrapSubmission, SubmissionReceipt)> {
    if message.len() > message_len {
        return Err(AtomError::Malformed(format!(
            "message of {} bytes exceeds configured length {}",
            message.len(),
            message_len
        )));
    }
    let padded_len = trap_payload_len(message_len);

    // Step 1: encrypt the (padded) plaintext to the trustees.
    let mut padded_plaintext = message.to_vec();
    padded_plaintext.resize(message_len, 0);
    let inner: HybridCiphertext =
        cca2::encrypt(trustee_pk, &round.to_le_bytes(), &padded_plaintext, rng);
    let inner_payload = MixPayload::Inner(inner.to_bytes()).to_bytes(padded_len)?;

    // Step 3: generate the trap naming the entry group and a fresh nonce.
    let mut nonce = [0u8; TRAP_NONCE_LEN];
    rng.fill_bytes(&mut nonce);
    let trap_payload = MixPayload::Trap {
        gid: entry_group as u32,
        nonce,
    }
    .to_bytes(padded_len)?;
    let trap_commitment = commit::commit(
        TRAP_COMMIT_LABEL,
        &MixPayload::trap_commit_bytes(entry_group as u32, &nonce),
    );

    // Step 4: encrypt both payloads for the entry group with proofs.
    let build = |payload: &[u8], rng: &mut R| -> AtomResult<(MessageCiphertext, EncProof)> {
        let points = encode_message_padded(payload, padded_len)?;
        let (ciphertext, randomness) = encrypt_message(group_pk, &points, rng);
        let proof = prove_encryption(group_pk, entry_group as u64, &ciphertext, &randomness, rng)?;
        Ok((ciphertext, proof))
    };
    let (inner_ct, inner_proof) = build(&inner_payload, rng)?;
    let (trap_ct, trap_proof) = build(&trap_payload, rng)?;

    // Step 5: submit in a random order so servers cannot tell which is which.
    let (ciphertexts, proofs) = if rng.gen_bool(0.5) {
        ([inner_ct, trap_ct], [inner_proof, trap_proof])
    } else {
        ([trap_ct, inner_ct], [trap_proof, inner_proof])
    };

    Ok((
        TrapSubmission {
            entry_group,
            ciphertexts,
            proofs,
            trap_commitment,
        },
        SubmissionReceipt {
            trap_nonce: Some(nonce),
            padded_plaintext,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_crypto::elgamal::KeyPair;
    use atom_crypto::nizk::enc::verify_encryption;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn payload_roundtrip_plaintext() {
        let padded = nizk_payload_len(32);
        let bytes = MixPayload::Plaintext(b"hello".to_vec())
            .to_bytes(padded)
            .unwrap();
        assert_eq!(bytes.len(), padded);
        match MixPayload::from_bytes(&bytes).unwrap() {
            MixPayload::Inner(content) => assert_eq!(content, b"hello"),
            other => panic!("unexpected payload: {other:?}"),
        }
    }

    #[test]
    fn payload_roundtrip_trap() {
        let padded = trap_payload_len(32);
        let nonce = [9u8; TRAP_NONCE_LEN];
        let bytes = MixPayload::Trap { gid: 7, nonce }.to_bytes(padded).unwrap();
        assert_eq!(bytes.len(), padded);
        assert_eq!(
            MixPayload::from_bytes(&bytes).unwrap(),
            MixPayload::Trap { gid: 7, nonce }
        );
    }

    #[test]
    fn traps_and_inner_payloads_have_equal_length() {
        let padded = trap_payload_len(160);
        let trap = MixPayload::Trap {
            gid: 3,
            nonce: [1u8; TRAP_NONCE_LEN],
        }
        .to_bytes(padded)
        .unwrap();
        let inner = MixPayload::Inner(vec![0u8; 160 + INNER_OVERHEAD])
            .to_bytes(padded)
            .unwrap();
        assert_eq!(trap.len(), inner.len());
    }

    #[test]
    fn malformed_payloads_rejected() {
        assert!(MixPayload::from_bytes(&[]).is_err());
        assert!(MixPayload::from_bytes(&[0xde, 0xad, 0xbe]).is_err());
        // Length exceeding buffer.
        assert!(MixPayload::from_bytes(&[TAG_INNER, 0xff, 0xff, 0]).is_err());
        // Trap with wrong content length.
        let bad_trap = [TAG_TRAP, 2, 0, 1, 2];
        assert!(MixPayload::from_bytes(&bad_trap).is_err());
        // Oversized content for padding.
        assert!(MixPayload::Plaintext(vec![0u8; 100]).to_bytes(50).is_err());
    }

    #[test]
    fn inner_target_group_is_deterministic_and_in_range() {
        let groups = 37;
        let a = inner_target_group(b"ciphertext-bytes", groups);
        let b = inner_target_group(b"ciphertext-bytes", groups);
        assert_eq!(a, b);
        assert!(a < groups);
        // Different ciphertexts spread over groups.
        let targets: std::collections::HashSet<usize> = (0..100u32)
            .map(|i| inner_target_group(&i.to_le_bytes(), groups))
            .collect();
        assert!(targets.len() > 20);
    }

    #[test]
    fn nizk_submission_verifies_and_roundtrips() {
        let mut rng = rng();
        let group = KeyPair::generate(&mut rng);
        let (submission, receipt) =
            make_nizk_submission(2, &group.public, b"tweet!", 32, &mut rng).unwrap();
        assert!(
            verify_encryption(&group.public, 2, &submission.ciphertext, &submission.proof).is_ok()
        );
        assert_eq!(receipt.padded_plaintext.len(), nizk_payload_len(32));
        assert!(receipt.trap_nonce.is_none());

        // Proof is bound to the entry group.
        assert!(
            verify_encryption(&group.public, 3, &submission.ciphertext, &submission.proof).is_err()
        );
    }

    #[test]
    fn trap_submission_has_two_valid_proofs_and_matching_commitment() {
        let mut rng = rng();
        let group = KeyPair::generate(&mut rng);
        let trustees = KeyPair::generate(&mut rng);
        let (submission, receipt) = make_trap_submission(
            1,
            &group.public,
            &trustees.public,
            7,
            b"dial 555-0199",
            32,
            &mut rng,
        )
        .unwrap();

        for (ct, proof) in submission.ciphertexts.iter().zip(submission.proofs.iter()) {
            assert!(verify_encryption(&group.public, 1, ct, proof).is_ok());
        }
        let nonce = receipt.trap_nonce.unwrap();
        assert!(commit::verify(
            &submission.trap_commitment,
            TRAP_COMMIT_LABEL,
            &MixPayload::trap_commit_bytes(1, &nonce)
        ));
        // Ciphertexts have identical shape (indistinguishable).
        assert_eq!(
            submission.ciphertexts[0].components.len(),
            submission.ciphertexts[1].components.len()
        );
    }

    #[test]
    fn oversized_message_rejected() {
        let mut rng = rng();
        let group = KeyPair::generate(&mut rng);
        let trustees = KeyPair::generate(&mut rng);
        assert!(make_nizk_submission(0, &group.public, &[0u8; 64], 32, &mut rng).is_err());
        assert!(make_trap_submission(
            0,
            &group.public,
            &trustees.public,
            0,
            &[0u8; 64],
            32,
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn inner_ciphertext_decrypts_to_padded_plaintext() {
        let mut rng = rng();
        let group = KeyPair::generate(&mut rng);
        let trustees = KeyPair::generate(&mut rng);
        let (submission, receipt) = make_trap_submission(
            0,
            &group.public,
            &trustees.public,
            42,
            b"hello",
            32,
            &mut rng,
        )
        .unwrap();
        // Simulate the exit path: decrypt whichever submission component is
        // the inner ciphertext and check it opens under the trustee key.
        let padded_len = trap_payload_len(32);
        let mut found_inner = false;
        for ct in &submission.ciphertexts {
            let points = atom_crypto::elgamal::decrypt_message(&group.secret, ct).unwrap();
            let payload_bytes = atom_crypto::encoding::decode_message(&points).unwrap();
            assert_eq!(payload_bytes.len(), padded_len);
            if let MixPayload::Inner(inner_bytes) = MixPayload::from_bytes(&payload_bytes).unwrap()
            {
                let inner = HybridCiphertext::from_bytes(&inner_bytes).unwrap();
                let plaintext = cca2::decrypt(
                    &trustees.secret,
                    &trustees.public,
                    &42u64.to_le_bytes(),
                    &inner,
                )
                .unwrap();
                assert_eq!(plaintext, receipt.padded_plaintext);
                found_inner = true;
            }
        }
        assert!(found_inner);
    }
}
