//! The re-entrant per-group mixing actor.
//!
//! [`GroupActor`] wraps one anytrust group's share of a round as a
//! message-driven state machine: inbound sub-batches are buffered per
//! iteration, and as soon as **all** of a group's expected inputs for its
//! next iteration have arrived the actor runs [`group_mix_iteration`] and
//! emits the outputs — sub-batches addressed to neighbour groups, or the
//! decoded exit payloads on the final layer. Nothing else synchronizes
//! groups, which is what lets the parallel runtime (`atom-runtime`) run
//! groups barrier-free: a fast group may be several iterations ahead of a
//! straggler.
//!
//! Two properties make actor execution reproducible and byte-equivalent to
//! the sequential [`RoundDriver`](crate::round::RoundDriver):
//!
//! * **Per-group RNG streams.** Each actor draws randomness from its own
//!   `StdRng` seeded by [`group_stream_seed`]`(master, round, gid)`, so the
//!   bytes a group produces depend only on its inputs and its own stream —
//!   never on how its execution interleaves with other groups.
//! * **Deterministic batch assembly.** A group's iteration-`i` input batch
//!   is the concatenation of the inbound sub-batches ordered by sender group
//!   id (with the round orchestrator as the lowest, [`SOURCE`]), matching
//!   the order the sequential driver produces.
//!
//! The actor also tracks a per-group *virtual clock*: each inbound batch
//! carries its simulated arrival time (sender finish time plus link
//! latency), and the actor's finish time for an iteration is
//! `max(arrivals, previous finish) + measured compute`. Exit outputs carry
//! the group's final virtual time, from which a pipelined end-to-end latency
//! (Fig. 9–11 accounting without the per-iteration barrier) falls out.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use atom_crypto::elgamal::{MessageCiphertext, PublicKey};
use atom_net::VirtualClock;
use atom_topology::network::Topology;

use crate::adversary::AdversaryPlan;
use crate::config::Defense;
use crate::directory::{GroupContext, RoundSetup};
use crate::error::{AtomError, AtomResult};
use crate::group::{group_mix_iteration, GroupStepOptions};
use crate::message::{nizk_payload_len, trap_payload_len};

/// Pseudo group id of the round orchestrator, the sender of every group's
/// iteration-0 batch. Sorts below every real group id during batch assembly
/// (real ids occupy `0..num_groups`; the orchestrator is mapped in front).
pub const SOURCE: usize = usize::MAX;

/// Derives the RNG seed of group `gid`'s stream for `round` from a master
/// seed (splitmix64-style finalizer over the mixed inputs).
pub fn group_stream_seed(master: u64, round: u64, gid: usize) -> u64 {
    let mut x = master
        ^ round.wrapping_mul(0xa24b_aed4_963e_e407)
        ^ (gid as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-actor execution options beyond the common [`GroupStepOptions`].
#[derive(Clone, Debug)]
pub struct ActorConfig {
    /// Defence and intra-group parallelism options.
    pub options: GroupStepOptions,
    /// Active-adversary plan (applied only when it names this group).
    pub adversary: Option<AdversaryPlan>,
    /// Servers failed before the round started.
    pub failed_servers: Vec<usize>,
    /// Mid-round churn: `(iteration, server)` pairs — `server` fails before
    /// this group runs `iteration`. The participating set is recomputed,
    /// which succeeds as long as the group retains `threshold` live members
    /// (§4.5: any `k − (h−1)` members can finish the round).
    pub churn: Vec<(usize, usize)>,
    /// Artificial extra compute time per iteration, used by straggler
    /// scenarios and the throughput harness to emulate a slow group (each
    /// group runs on its own hardware in a real deployment).
    pub compute_delay: Duration,
}

impl ActorConfig {
    /// Options for a well-behaved group with the given defence settings.
    pub fn new(options: GroupStepOptions) -> Self {
        Self {
            options,
            adversary: None,
            failed_servers: Vec::new(),
            churn: Vec::new(),
            compute_delay: Duration::ZERO,
        }
    }
}

/// One output of [`GroupActor::on_batch`].
#[derive(Clone, Debug)]
pub enum ActorOutput {
    /// A sub-batch to deliver to group `to` as part of its `iteration` input.
    Forward {
        /// The iteration the receiving group will consume this batch in.
        iteration: usize,
        /// Destination group id.
        to: usize,
        /// The re-encrypted sub-batch.
        batch: Vec<MessageCiphertext>,
        /// The sender's virtual clock when the batch left the group.
        sent_virtual: Duration,
    },
    /// The group reached the exit layer and decoded its payloads.
    Exit {
        /// Decoded mix payloads (traps and inner ciphertexts, or plaintexts
        /// in the NIZK variant).
        plaintexts: Vec<Vec<u8>>,
        /// The group's virtual clock at the end of its last iteration.
        finished_virtual: Duration,
    },
}

/// A single group's mixing state machine. See the module docs.
pub struct GroupActor {
    gid: usize,
    group: GroupContext,
    group_keys: Vec<PublicKey>,
    participating: Vec<u64>,
    failed: Vec<usize>,
    config: ActorConfig,
    padded_len: usize,
    rng: StdRng,
    topology: Box<dyn Topology + Send + Sync>,
    iterations: usize,
    expected_inbound: Vec<usize>,
    next_iteration: usize,
    pending: BTreeMap<usize, BTreeMap<usize, Vec<MessageCiphertext>>>,
    compute: Vec<Duration>,
    virtual_ready: Vec<Duration>,
    clock: VirtualClock,
    done: bool,
}

impl GroupActor {
    /// Builds the actor for group `gid` of `setup`.
    ///
    /// `master_seed` must be shared by every actor of the round; each actor
    /// derives its private stream via [`group_stream_seed`]. Fails if the
    /// initial failure set already exceeds the group's tolerance.
    pub fn new(
        setup: &RoundSetup,
        gid: usize,
        master_seed: u64,
        config: ActorConfig,
    ) -> AtomResult<Self> {
        let group = setup.groups[gid].clone();
        let participating = group.participating(&config.failed_servers)?;
        let topology = setup.config.topology();
        let iterations = topology.iterations();
        let num_groups = setup.config.num_groups;

        // How many inbound sub-batches each iteration waits for: one from
        // the orchestrator at iteration 0, afterwards one from every group
        // that lists us as a neighbour in the previous iteration.
        let mut expected_inbound = Vec::with_capacity(iterations);
        expected_inbound.push(1);
        for iteration in 1..iterations {
            let senders = (0..num_groups)
                .filter(|&h| topology.neighbors(h, iteration - 1).contains(&gid))
                .count();
            expected_inbound.push(senders);
        }

        let padded_len = match config.options.defense {
            Defense::Nizk => nizk_payload_len(setup.config.message_len),
            Defense::Trap => trap_payload_len(setup.config.message_len),
        };

        Ok(Self {
            gid,
            group,
            group_keys: setup.groups.iter().map(|g| g.public_key).collect(),
            participating,
            failed: config.failed_servers.clone(),
            padded_len,
            rng: StdRng::seed_from_u64(group_stream_seed(master_seed, setup.config.round, gid)),
            topology,
            iterations,
            expected_inbound,
            next_iteration: 0,
            pending: BTreeMap::new(),
            compute: Vec::with_capacity(iterations),
            virtual_ready: vec![Duration::ZERO; iterations],
            clock: VirtualClock::new(),
            config,
            done: false,
        })
    }

    /// The group id this actor plays.
    pub fn gid(&self) -> usize {
        self.gid
    }

    /// True once the exit layer has run.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Measured compute time of each completed iteration.
    pub fn compute_times(&self) -> &[Duration] {
        &self.compute
    }

    /// Records the simulated arrival time of an inbound batch for
    /// `iteration`. Call before [`Self::on_batch`]; the actor keeps the
    /// maximum per iteration.
    pub fn note_arrival(&mut self, iteration: usize, arrival: Duration) {
        if let Some(slot) = self.virtual_ready.get_mut(iteration) {
            if arrival > *slot {
                *slot = arrival;
            }
        }
    }

    /// Delivers one inbound sub-batch and runs every iteration that becomes
    /// ready, returning all emitted outputs.
    ///
    /// Re-entrant: sub-batches may arrive in any order and for any future
    /// iteration; the actor buffers them and only steps iteration `i` once
    /// all [`expected`](RoundSetup) inputs for `i` are present. `from` is the
    /// sending group id, or [`SOURCE`] for the orchestrator's iteration-0
    /// injection.
    pub fn on_batch(
        &mut self,
        iteration: usize,
        from: usize,
        batch: Vec<MessageCiphertext>,
    ) -> AtomResult<Vec<ActorOutput>> {
        if self.done {
            return Err(AtomError::Malformed(format!(
                "group {} received a batch after its exit layer",
                self.gid
            )));
        }
        if iteration >= self.iterations || iteration < self.next_iteration {
            return Err(AtomError::Malformed(format!(
                "group {} received a batch for iteration {iteration} (next is {})",
                self.gid, self.next_iteration
            )));
        }
        // Map SOURCE in front of every real group id so assembly order is
        // simply ascending keys.
        let order_key = if from == SOURCE { 0 } else { from + 1 };
        let slot = self.pending.entry(iteration).or_default();
        if slot.insert(order_key, batch).is_some() {
            return Err(AtomError::Malformed(format!(
                "group {} received a duplicate iteration-{iteration} batch from {from}",
                self.gid
            )));
        }

        let mut outputs = Vec::new();
        while !self.done && self.ready() {
            self.step(&mut outputs)?;
        }
        Ok(outputs)
    }

    fn ready(&self) -> bool {
        self.pending
            .get(&self.next_iteration)
            .map(|slot| slot.len() >= self.expected_inbound[self.next_iteration])
            .unwrap_or(false)
    }

    fn step(&mut self, outputs: &mut Vec<ActorOutput>) -> AtomResult<()> {
        let iteration = self.next_iteration;

        // Mid-round churn: recompute the participating set if servers
        // scheduled to fail before this iteration.
        let churned: Vec<usize> = self
            .config
            .churn
            .iter()
            .filter(|(at, server)| *at == iteration && !self.failed.contains(server))
            .map(|(_, server)| *server)
            .collect();
        if !churned.is_empty() {
            self.failed.extend(churned);
            self.participating = self.group.participating(&self.failed)?;
        }

        let batch: Vec<MessageCiphertext> = self
            .pending
            .remove(&iteration)
            .map(|slot| slot.into_values().flatten().collect())
            .unwrap_or_default();

        let neighbors = self.topology.neighbors(self.gid, iteration);
        let next_keys: Vec<PublicKey> = neighbors.iter().map(|&n| self.group_keys[n]).collect();
        let adversary = self
            .config
            .adversary
            .filter(|plan| plan.applies_to(self.gid, iteration));

        let start = Instant::now();
        if !self.config.compute_delay.is_zero() {
            std::thread::sleep(self.config.compute_delay);
        }
        let output = group_mix_iteration(
            &self.group,
            &self.participating,
            batch,
            &next_keys,
            self.padded_len,
            &self.config.options,
            adversary.as_ref(),
            &mut self.rng,
        )?;
        let elapsed = start.elapsed();
        self.compute.push(elapsed);
        // Group-local virtual clock: wait for the slowest arrival, then run.
        self.clock.advance_to(self.virtual_ready[iteration]);
        self.clock.advance(elapsed);
        let now = self.clock.now();
        self.next_iteration += 1;

        if neighbors.is_empty() {
            self.done = true;
            outputs.push(ActorOutput::Exit {
                plaintexts: output.plaintexts,
                finished_virtual: now,
            });
        } else {
            for (neighbor, sub_batch) in neighbors.into_iter().zip(output.outputs) {
                outputs.push(ActorOutput::Forward {
                    iteration: iteration + 1,
                    to: neighbor,
                    batch: sub_batch,
                    sent_virtual: now,
                });
            }
        }
        Ok(())
    }

    /// The group's virtual clock (simulated arrival-gated time; see the
    /// module docs).
    pub fn virtual_clock(&self) -> &VirtualClock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AtomConfig;
    use crate::directory::setup_round;
    use crate::message::MixPayload;
    use atom_crypto::elgamal::encrypt_message;
    use atom_crypto::encoding::encode_message_padded;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn actor_config() -> ActorConfig {
        ActorConfig::new(GroupStepOptions::new(Defense::Trap))
    }

    fn encrypt_batch(
        setup: &RoundSetup,
        gid: usize,
        payloads: &[&[u8]],
        padded_len: usize,
        rng: &mut StdRng,
    ) -> Vec<MessageCiphertext> {
        payloads
            .iter()
            .map(|payload| {
                let framed = MixPayload::Plaintext(payload.to_vec())
                    .to_bytes(padded_len)
                    .unwrap();
                let points = encode_message_padded(&framed, padded_len).unwrap();
                encrypt_message(&setup.groups[gid].public_key, &points, rng).0
            })
            .collect()
    }

    #[test]
    fn group_stream_seed_separates_rounds_and_groups() {
        let base = group_stream_seed(7, 0, 0);
        assert_ne!(base, group_stream_seed(7, 0, 1));
        assert_ne!(base, group_stream_seed(7, 1, 0));
        assert_ne!(base, group_stream_seed(8, 0, 0));
        assert_eq!(base, group_stream_seed(7, 0, 0));
    }

    #[test]
    fn actor_buffers_until_all_inputs_arrive() {
        let mut rng = rng();
        let mut config = AtomConfig::test_default();
        config.num_groups = 2;
        config.iterations = 2;
        let setup = setup_round(&config, &mut rng).unwrap();
        let mut actors: Vec<GroupActor> = (0..2)
            .map(|gid| GroupActor::new(&setup, gid, 42, actor_config()).unwrap())
            .collect();
        let padded_len = actors[0].padded_len;

        let batch = encrypt_batch(&setup, 0, &[b"a", b"b"], padded_len, &mut rng);
        let from_g0 = actors[0].on_batch(0, SOURCE, batch).unwrap();
        // Square topology over two groups: one sub-batch per neighbour.
        assert_eq!(from_g0.len(), 2);
        let from_g1 = actors[1].on_batch(0, SOURCE, Vec::new()).unwrap();
        assert_eq!(from_g1.len(), 2);

        // Group 1 expects iteration-1 sub-batches from both groups; deliver
        // group 0's first and observe buffering, then group 1's own to
        // trigger the exit layer (iteration 1 is the last of two).
        let pick = |outputs: &[ActorOutput]| -> (usize, Vec<MessageCiphertext>) {
            outputs
                .iter()
                .find_map(|output| match output {
                    ActorOutput::Forward {
                        iteration,
                        to: 1,
                        batch,
                        ..
                    } => Some((*iteration, batch.clone())),
                    _ => None,
                })
                .expect("a sub-batch addressed to group 1")
        };
        let (iteration, sub) = pick(&from_g0);
        assert_eq!(iteration, 1);
        let outputs = actors[1].on_batch(iteration, 0, sub).unwrap();
        assert!(
            outputs.is_empty(),
            "must buffer until the sub-batch from group 1 itself arrives"
        );

        let (iteration, sub) = pick(&from_g1);
        let outputs = actors[1].on_batch(iteration, 1, sub).unwrap();
        match &outputs[..] {
            [ActorOutput::Exit { plaintexts, .. }] => {
                assert_eq!(plaintexts.len(), 1, "group 1 holds one of the two messages");
            }
            other => panic!("expected an exit, got {other:?}"),
        }
    }

    #[test]
    fn stale_and_duplicate_batches_rejected() {
        let mut rng = rng();
        let config = AtomConfig::test_default();
        let setup = setup_round(&config, &mut rng).unwrap();
        let mut actor = GroupActor::new(&setup, 0, 1, actor_config()).unwrap();
        actor.on_batch(0, SOURCE, Vec::new()).unwrap();
        // Iteration 0 already ran: stale.
        assert!(matches!(
            actor.on_batch(0, SOURCE, Vec::new()),
            Err(AtomError::Malformed(_))
        ));
        // Duplicate sender for a future iteration.
        let mut actor = GroupActor::new(&setup, 0, 1, actor_config()).unwrap();
        actor.on_batch(1, 2, Vec::new()).unwrap();
        assert!(matches!(
            actor.on_batch(1, 2, Vec::new()),
            Err(AtomError::Malformed(_))
        ));
        // Beyond the last iteration.
        assert!(matches!(
            actor.on_batch(99, SOURCE, Vec::new()),
            Err(AtomError::Malformed(_))
        ));
    }

    #[test]
    fn virtual_clock_accumulates_arrivals_and_compute() {
        let mut rng = rng();
        let mut config = AtomConfig::test_default();
        config.num_groups = 1;
        config.iterations = 1;
        let setup = setup_round(&config, &mut rng).unwrap();
        let mut actor = GroupActor::new(&setup, 0, 5, actor_config()).unwrap();
        actor.note_arrival(0, Duration::from_millis(120));
        let padded_len = actor.padded_len;
        let batch = encrypt_batch(&setup, 0, &[b"x"], padded_len, &mut rng);
        let outputs = actor.on_batch(0, SOURCE, batch).unwrap();
        match &outputs[..] {
            [ActorOutput::Exit {
                finished_virtual, ..
            }] => {
                assert!(*finished_virtual >= Duration::from_millis(120));
            }
            other => panic!("expected exit, got {other:?}"),
        }
    }

    #[test]
    fn churn_recomputes_participants_mid_round() {
        let mut rng = rng();
        let mut config = AtomConfig::test_default();
        config.num_groups = 1;
        config.iterations = 2;
        config.required_honest = 2; // tolerate one failure
        config.group_size = 3;
        let setup = setup_round(&config, &mut rng).unwrap();
        let victim = setup.groups[0].members[0];
        let mut cfg = actor_config();
        cfg.churn = vec![(1, victim)];
        let mut actor = GroupActor::new(&setup, 0, 9, cfg).unwrap();
        assert_eq!(actor.participating, vec![1, 2]);

        let padded_len = actor.padded_len;
        let batch = encrypt_batch(&setup, 0, &[b"m"], padded_len, &mut rng);
        let outputs = actor.on_batch(0, SOURCE, batch).unwrap();
        // Single group, two iterations: iteration 0 forwards to itself.
        let mut exited = false;
        for output in outputs {
            if let ActorOutput::Forward {
                iteration,
                to,
                batch,
                ..
            } = output
            {
                assert_eq!(to, 0);
                for inner in actor.on_batch(iteration, 0, batch).unwrap() {
                    if let ActorOutput::Exit { plaintexts, .. } = inner {
                        assert_eq!(plaintexts.len(), 1);
                        exited = true;
                    }
                }
            }
        }
        assert!(exited);
        // The victim was dropped from the participating set.
        assert_eq!(actor.participating, vec![2, 3]);
    }

    #[test]
    fn too_much_churn_aborts() {
        let mut rng = rng();
        let mut config = AtomConfig::test_default();
        config.num_groups = 1;
        config.iterations = 2;
        let setup = setup_round(&config, &mut rng).unwrap();
        // threshold == group_size: any churn is fatal.
        let victim = setup.groups[0].members[0];
        let mut cfg = actor_config();
        cfg.churn = vec![(1, victim)];
        let mut actor = GroupActor::new(&setup, 0, 9, cfg).unwrap();
        let padded_len = actor.padded_len;
        let batch = encrypt_batch(&setup, 0, &[b"m"], padded_len, &mut rng);
        let outputs = actor.on_batch(0, SOURCE, batch).unwrap();
        let ActorOutput::Forward {
            iteration, batch, ..
        } = &outputs[0]
        else {
            panic!("expected forward");
        };
        assert!(matches!(
            actor.on_batch(*iteration, 0, batch.clone()),
            Err(AtomError::TooManyFailures { .. })
        ));
    }
}
