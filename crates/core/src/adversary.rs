//! Active-adversary injection for tests, examples and ablation benches.
//!
//! The threat model (§2.1) lets malicious servers deviate arbitrarily. This
//! module describes concrete deviations a compromised group member can make
//! during a mixing iteration; the group protocol consults the plan and
//! applies the deviation, so tests can check that the NIZK variant detects it
//! immediately (§4.3) and that the trap variant aborts the round before any
//! inner ciphertext is opened (§4.4).

use serde::{Deserialize, Serialize};

/// A concrete deviation from the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Misbehavior {
    /// Silently drop the message at `slot` in the batch.
    DropMessage {
        /// Batch position to drop.
        slot: usize,
    },
    /// Replace the message at `slot` with a copy of the message at `source`
    /// (creating a duplicate ciphertext).
    DuplicateMessage {
        /// Batch position to overwrite.
        slot: usize,
        /// Batch position to copy from.
        source: usize,
    },
    /// Replace the message at `slot` with a fresh encryption of an
    /// attacker-chosen plaintext.
    ReplaceMessage {
        /// Batch position to overwrite.
        slot: usize,
    },
    /// Tamper with one group element of the message at `slot` after the
    /// shuffle proof has been produced (a "mauling" attack).
    TamperCiphertext {
        /// Batch position to maul.
        slot: usize,
    },
}

/// A plan describing when and where a malicious server strikes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdversaryPlan {
    /// The compromised group.
    pub group: usize,
    /// The compromised member's 1-based position within the group.
    pub member: u64,
    /// The mixing iteration during which to deviate.
    pub iteration: usize,
    /// What to do.
    pub action: Misbehavior,
}

impl AdversaryPlan {
    /// True if this plan applies to the given group and iteration.
    pub fn applies_to(&self, group: usize, iteration: usize) -> bool {
        self.group == group && self.iteration == iteration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applies_to_matches_group_and_iteration() {
        let plan = AdversaryPlan {
            group: 2,
            member: 1,
            iteration: 3,
            action: Misbehavior::DropMessage { slot: 0 },
        };
        assert!(plan.applies_to(2, 3));
        assert!(!plan.applies_to(2, 4));
        assert!(!plan.applies_to(1, 3));
    }
}
