//! Single-threaded, event-driven client transport: a hand-rolled
//! readiness loop multiplexing thousands of connections.
//!
//! The server-to-server backend ([`crate::tcp`]) spends one blocking
//! reader thread per peer — fine for ≤ 8 server processes, a wall for
//! client fan-in where *millions* of users must reach the coordinator
//! (conf. SOSP'17 §6: Atom's horizontal-scaling claim is about exactly
//! this edge). [`EventLoop`] is the poll-based alternative the roadmap
//! calls for: one listener, non-blocking accept, per-connection read and
//! write buffers, and registered write interest — all driven by a single
//! thread calling [`EventLoop::poll`].
//!
//! The vendored dependency set has no `mio` and the crate forbids
//! `unsafe`, so there is no way to reach `poll(2)`/`epoll(7)` directly.
//! Readiness is therefore discovered by a *level-triggered scan*: every
//! socket is switched to non-blocking mode at accept time, each `poll`
//! pass attempts the reads and writes the registered interest set says
//! are wanted, and `WouldBlock` simply moves on to the next connection.
//! `std::os::fd::AsRawFd` supplies the stable kernel identity that seeds
//! each [`ConnId`]. The scan is O(connections) per pass, which is the
//! same asymptotic cost `poll(2)` pays; callers are expected to sleep
//! briefly (≤ 1 ms) whenever a pass reports no progress so an idle loop
//! does not spin a core.
//!
//! ## Client frame layout
//!
//! Client connections speak a deliberately smaller framing than the
//! server mesh (no node addressing — a client talks only to the process
//! it dialed). All integers little-endian:
//!
//! ```text
//! magic       u32  = 0x434F5441 ("ATOC")
//! version     u8   = 1
//! payload_len u32  (bounded by EvloopOptions::max_frame before use)
//! payload     [u8; payload_len]
//! ```
//!
//! The header is this module's validation boundary: bad magic, bad
//! version or an oversized length claim closes the connection before a
//! single byte of payload is buffered beyond what already arrived. The
//! payload stays opaque — protocol validation of untrusted bytes belongs
//! to `atom_runtime::wire`.
//!
//! ## Conviction of slow and unresponsive clients
//!
//! Two timers protect the loop from adversarial clients:
//!
//! * **Idle timeout** — measured from the last *completed frame* (or the
//!   accept), not the last byte. A slow-drip client feeding one byte per
//!   tick keeps a byte-activity timer alive forever; keying on frame
//!   completion convicts it after [`EvloopOptions::idle_timeout`].
//! * **Write backpressure** — [`EventLoop::send`] buffers at most
//!   [`EvloopOptions::max_write_buffer`] unflushed bytes per connection.
//!   A client that stops draining its socket is closed rather than
//!   allowed to grow the buffer without bound.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

/// Magic leading every client frame: "ATOC" in little-endian byte order
/// (deliberately distinct from the server-mesh magic `"ATOM"` so a client
/// dialing a mesh port — or vice versa — is rejected on the first frame).
pub const CLIENT_MAGIC: u32 = 0x434F_5441;
/// Client framing version this loop speaks.
pub const CLIENT_VERSION: u8 = 1;
/// Bytes in a client frame header (`magic u32 ‖ version u8 ‖ len u32`).
pub const CLIENT_HEADER_LEN: usize = 4 + 1 + 4;

/// Tuning knobs of an [`EventLoop`].
#[derive(Clone, Debug)]
pub struct EvloopOptions {
    /// Upper bound on a frame's payload length; larger claims close the
    /// connection before any allocation sized by the claim.
    pub max_frame: usize,
    /// A connection that completes no frame for this long is convicted
    /// and closed ([`CloseReason::IdleTimeout`]). Keyed on completed
    /// frames, so slow-drip clients cannot stay alive byte by byte.
    pub idle_timeout: Duration,
    /// Maximum concurrently open connections; accepts beyond this are
    /// closed immediately (counted as `net.evloop.overflow`).
    pub max_connections: usize,
    /// Per-connection cap on unflushed outbound bytes; exceeding it
    /// closes the connection ([`CloseReason::Backpressure`]).
    pub max_write_buffer: usize,
    /// Per-connection, per-poll read budget in bytes — bounds how long
    /// one fast connection can monopolize a scan pass.
    pub read_budget: usize,
    /// Sets `TCP_NODELAY` on accepted streams (submission/ack exchanges
    /// are small and latency-sensitive).
    pub nodelay: bool,
}

impl Default for EvloopOptions {
    fn default() -> Self {
        Self {
            max_frame: 1 << 20,
            idle_timeout: Duration::from_secs(10),
            max_connections: 4096,
            max_write_buffer: 256 << 10,
            read_budget: 256 << 10,
            nodelay: true,
        }
    }
}

/// Identity of one accepted connection, unique for the lifetime of the
/// loop. The low bits carry a monotonic sequence number; the high bits
/// carry the socket's raw fd at accept time, so an id remains meaningful
/// in logs even after the kernel recycles the descriptor.
pub type ConnId = u64;

/// Why a connection was closed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CloseReason {
    /// The peer closed its half; everything buffered was parsed first.
    Eof,
    /// The peer violated the framing (bad magic/version, oversized
    /// length claim); the message says which check failed.
    Malformed(String),
    /// No frame completed within [`EvloopOptions::idle_timeout`].
    IdleTimeout,
    /// The peer stopped draining its socket and the unflushed write
    /// buffer exceeded [`EvloopOptions::max_write_buffer`].
    Backpressure,
    /// The local side closed it deliberately ([`EventLoop::close`] or
    /// [`EventLoop::close_all`]).
    Shutdown,
    /// A socket-level error; the message carries the `io::Error` text.
    Io(String),
}

/// One observation surfaced by [`EventLoop::poll`].
#[derive(Clone, Debug)]
pub enum Event {
    /// A connection was accepted.
    Opened {
        /// Identity of the new connection.
        conn: ConnId,
        /// The peer's socket address.
        peer: SocketAddr,
    },
    /// A complete, well-framed payload arrived.
    Frame {
        /// Connection the frame arrived on.
        conn: ConnId,
        /// The frame's payload (opaque to the loop).
        payload: Vec<u8>,
    },
    /// A connection ended; no further events reference `conn`.
    Closed {
        /// Identity of the closed connection.
        conn: ConnId,
        /// Why it ended.
        reason: CloseReason,
    },
}

struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    /// Unflushed outbound bytes (`write_buf[write_off..]` is pending).
    write_buf: Vec<u8>,
    write_off: usize,
    /// Registered interest: the scan only attempts a write when set.
    want_write: bool,
    /// Instant of the last *completed* frame (or the accept).
    last_frame: Instant,
}

impl Conn {
    fn pending_write(&self) -> usize {
        self.write_buf.len() - self.write_off
    }
}

/// The readiness loop: owns the listener and every accepted connection.
///
/// Not `Sync` — the loop belongs to exactly one thread, which calls
/// [`EventLoop::poll`] in a cycle and reacts to the returned [`Event`]s.
/// See the [module docs](self) for the design constraints.
pub struct EventLoop {
    listener: TcpListener,
    local_addr: SocketAddr,
    options: EvloopOptions,
    conns: BTreeMap<ConnId, Conn>,
    next_seq: u64,
    /// Events produced outside `poll` (e.g. a backpressure conviction
    /// inside [`EventLoop::send`]), drained at the next `poll`.
    deferred: Vec<Event>,
}

impl EventLoop {
    /// Binds the listener (port `0` picks a free port — see
    /// [`EventLoop::local_addr`]) and switches it to non-blocking mode.
    pub fn bind(addr: &str, options: EvloopOptions) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            listener,
            local_addr,
            options,
            conns: BTreeMap::new(),
            next_seq: 0,
            deferred: Vec::new(),
        })
    }

    /// The listener's resolved address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of currently open connections.
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    /// One scan pass: accept ready connections, flush registered write
    /// interest, read and frame inbound bytes, convict idle connections.
    /// Appends observations to `events` and returns whether the pass
    /// made progress (accepted, read, wrote or emitted anything) — when
    /// it did not, the caller should sleep briefly before the next pass.
    pub fn poll(&mut self, events: &mut Vec<Event>) -> bool {
        let before = events.len();
        let mut progress = !self.deferred.is_empty();
        events.append(&mut self.deferred);
        progress |= self.accept_ready(events);
        let now = Instant::now();
        let ids: Vec<ConnId> = self.conns.keys().copied().collect();
        for id in ids {
            let (moved, verdict) = self.service(id, now, events);
            progress |= moved;
            if let Some(reason) = verdict {
                self.drop_conn(id, reason, Some(events));
                progress = true;
            }
        }
        progress || events.len() > before
    }

    /// Queues `payload` as one client frame on `conn` and attempts an
    /// immediate flush. Returns `false` — and convicts the connection
    /// for backpressure — when the unflushed backlog would exceed
    /// [`EvloopOptions::max_write_buffer`]; also `false` for unknown
    /// ids. The `Closed` event surfaces at the next [`EventLoop::poll`].
    pub fn send(&mut self, conn: ConnId, payload: &[u8]) -> bool {
        let frame = client_frame(payload);
        let max = self.options.max_write_buffer;
        let Some(c) = self.conns.get_mut(&conn) else {
            return false;
        };
        // Drain what the peer is ready to take before judging backlog.
        if let Err(reason) = flush_writes(c) {
            self.drop_conn(conn, reason, None);
            return false;
        }
        let c = self.conns.get_mut(&conn).expect("conn present");
        if c.pending_write() + frame.len() > max {
            self.drop_conn(conn, CloseReason::Backpressure, None);
            return false;
        }
        c.write_buf.extend_from_slice(&frame);
        c.want_write = true;
        if let Err(reason) = flush_writes(c) {
            self.drop_conn(conn, reason, None);
            return false;
        }
        true
    }

    /// Closes one connection deliberately (flushing nothing further);
    /// the `Closed { reason: Shutdown }` event surfaces at the next
    /// [`EventLoop::poll`]. Unknown ids are ignored.
    pub fn close(&mut self, conn: ConnId) {
        if self.conns.contains_key(&conn) {
            self.drop_conn(conn, CloseReason::Shutdown, None);
        }
    }

    /// Closes every open connection (used at server shutdown).
    pub fn close_all(&mut self) {
        let ids: Vec<ConnId> = self.conns.keys().copied().collect();
        for id in ids {
            self.drop_conn(id, CloseReason::Shutdown, None);
        }
    }

    fn accept_ready(&mut self, events: &mut Vec<Event>) -> bool {
        let mut progress = false;
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    progress = true;
                    if self.conns.len() >= self.options.max_connections {
                        atom_obs::count("net.evloop.overflow", 1);
                        let _ = stream.shutdown(Shutdown::Both);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(self.options.nodelay);
                    let fd = stream.as_raw_fd() as u64;
                    self.next_seq += 1;
                    let conn: ConnId = (fd << 32) | (self.next_seq & 0xFFFF_FFFF);
                    self.conns.insert(
                        conn,
                        Conn {
                            stream,
                            read_buf: Vec::new(),
                            write_buf: Vec::new(),
                            write_off: 0,
                            want_write: false,
                            last_frame: Instant::now(),
                        },
                    );
                    atom_obs::count("net.evloop.accepted", 1);
                    atom_obs::gauge_max("net.evloop.connections.peak", self.conns.len() as u64);
                    events.push(Event::Opened { conn, peer });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        progress
    }

    /// Services one connection for a pass; returns whether any bytes
    /// moved plus the close verdict, if one was reached.
    fn service(
        &mut self,
        id: ConnId,
        now: Instant,
        events: &mut Vec<Event>,
    ) -> (bool, Option<CloseReason>) {
        let max_frame = self.options.max_frame;
        let read_budget = self.options.read_budget;
        let idle = self.options.idle_timeout;
        let Some(c) = self.conns.get_mut(&id) else {
            return (false, None);
        };

        let mut moved = false;
        if c.want_write {
            let pending_before = c.pending_write();
            if let Err(reason) = flush_writes(c) {
                return (true, Some(reason));
            }
            moved |= c.pending_write() != pending_before;
        }

        let mut taken = 0usize;
        let mut chunk = [0u8; 16 << 10];
        loop {
            if taken >= read_budget {
                break;
            }
            match c.stream.read(&mut chunk) {
                Ok(0) => {
                    // Parse what already arrived, then report EOF.
                    if let Err(m) = parse_frames(c, id, max_frame, now, events) {
                        return (true, Some(CloseReason::Malformed(m)));
                    }
                    return (true, Some(CloseReason::Eof));
                }
                Ok(n) => {
                    taken += n;
                    c.read_buf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return (true, Some(CloseReason::Io(e.to_string()))),
            }
        }
        moved |= taken > 0;
        if let Err(m) = parse_frames(c, id, max_frame, now, events) {
            return (moved, Some(CloseReason::Malformed(m)));
        }
        if now.duration_since(c.last_frame) > idle {
            atom_obs::count("net.evloop.idle_convictions", 1);
            return (moved, Some(CloseReason::IdleTimeout));
        }
        (moved, None)
    }

    fn drop_conn(&mut self, id: ConnId, reason: CloseReason, events: Option<&mut Vec<Event>>) {
        if let Some(c) = self.conns.remove(&id) {
            if matches!(reason, CloseReason::Malformed(_)) {
                atom_obs::count("net.evloop.malformed", 1);
            }
            let _ = c.stream.shutdown(Shutdown::Both);
            let ev = Event::Closed { conn: id, reason };
            // Reached both from `poll` (events vec live) and from
            // `send`/`close` (no vec); defer to the next poll otherwise.
            match events {
                Some(events) => events.push(ev),
                None => self.deferred.push(ev),
            }
        }
    }
}

/// Flushes a connection's pending writes as far as the socket allows.
fn flush_writes(c: &mut Conn) -> Result<(), CloseReason> {
    while c.write_off < c.write_buf.len() {
        match c.stream.write(&c.write_buf[c.write_off..]) {
            Ok(0) => return Err(CloseReason::Io("write returned 0".into())),
            Ok(n) => c.write_off += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(CloseReason::Io(e.to_string())),
        }
    }
    c.write_buf.clear();
    c.write_off = 0;
    c.want_write = false;
    Ok(())
}

/// Extracts every complete frame from a connection's read buffer,
/// emitting `Frame` events and refreshing the idle timer. Errors carry
/// the framing violation.
fn parse_frames(
    c: &mut Conn,
    id: ConnId,
    max_frame: usize,
    now: Instant,
    events: &mut Vec<Event>,
) -> Result<(), String> {
    let mut consumed = 0usize;
    loop {
        let buf = &c.read_buf[consumed..];
        if buf.len() < CLIENT_HEADER_LEN {
            break;
        }
        let magic = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
        if magic != CLIENT_MAGIC {
            return Err(format!("bad client frame magic 0x{magic:08X}"));
        }
        if buf[4] != CLIENT_VERSION {
            return Err(format!("unsupported client frame version {}", buf[4]));
        }
        let len = u32::from_le_bytes([buf[5], buf[6], buf[7], buf[8]]) as usize;
        if len > max_frame {
            return Err(format!(
                "frame claims {len} payload bytes, cap is {max_frame}"
            ));
        }
        if buf.len() < CLIENT_HEADER_LEN + len {
            break;
        }
        let payload = buf[CLIENT_HEADER_LEN..CLIENT_HEADER_LEN + len].to_vec();
        consumed += CLIENT_HEADER_LEN + len;
        c.last_frame = now;
        atom_obs::count("net.evloop.frames", 1);
        events.push(Event::Frame { conn: id, payload });
    }
    if consumed > 0 {
        c.read_buf.drain(..consumed);
    }
    Ok(())
}

/// Encodes one client frame (`ATOC` header + payload) — the encoding
/// side of the framing [`EventLoop`] decodes; used by client drivers.
pub fn client_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(CLIENT_HEADER_LEN + payload.len());
    out.extend_from_slice(&CLIENT_MAGIC.to_le_bytes());
    out.push(CLIENT_VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Blocking helper for simple clients: reads exactly one client frame
/// from `stream` and returns its payload. `max_frame` bounds the length
/// claim before allocation.
pub fn read_client_frame(stream: &mut TcpStream, max_frame: usize) -> io::Result<Vec<u8>> {
    let mut header = [0u8; CLIENT_HEADER_LEN];
    stream.read_exact(&mut header)?;
    let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    if magic != CLIENT_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad client frame magic",
        ));
    }
    if header[4] != CLIENT_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad client frame version",
        ));
    }
    let len = u32::from_le_bytes([header[5], header[6], header[7], header[8]]) as usize;
    if len > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "oversized client frame",
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn options() -> EvloopOptions {
        EvloopOptions {
            idle_timeout: Duration::from_secs(5),
            ..EvloopOptions::default()
        }
    }

    /// Polls until `done(events)` or the deadline; panics on timeout.
    fn poll_until(
        evloop: &mut EventLoop,
        events: &mut Vec<Event>,
        timeout: Duration,
        mut done: impl FnMut(&[Event]) -> bool,
    ) {
        let deadline = Instant::now() + timeout;
        while !done(events) {
            assert!(
                Instant::now() < deadline,
                "poll_until timed out; events: {events:?}"
            );
            if !evloop.poll(events) {
                thread::sleep(Duration::from_micros(200));
            }
        }
    }

    fn frames(events: &[Event]) -> Vec<(ConnId, Vec<u8>)> {
        events
            .iter()
            .filter_map(|e| match e {
                Event::Frame { conn, payload } => Some((*conn, payload.clone())),
                _ => None,
            })
            .collect()
    }

    fn closes(events: &[Event]) -> Vec<(ConnId, CloseReason)> {
        events
            .iter()
            .filter_map(|e| match e {
                Event::Closed { conn, reason } => Some((*conn, reason.clone())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn frame_roundtrip_over_a_real_socket() {
        let mut evloop = EventLoop::bind("127.0.0.1:0", options()).unwrap();
        let addr = evloop.local_addr();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(&client_frame(b"hello ingress")).unwrap();

        let mut events = Vec::new();
        poll_until(&mut evloop, &mut events, Duration::from_secs(5), |ev| {
            !frames(ev).is_empty()
        });
        let got = frames(&events);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, b"hello ingress");

        assert!(evloop.send(got[0].0, b"ack!"));
        let mut drained = Vec::new();
        // A pass or two flushes the ack.
        for _ in 0..10 {
            evloop.poll(&mut drained);
        }
        let reply = read_client_frame(&mut client, 1 << 20).unwrap();
        assert_eq!(reply, b"ack!");
    }

    #[test]
    fn multiplexes_many_connections_on_one_loop() {
        let mut evloop = EventLoop::bind("127.0.0.1:0", options()).unwrap();
        let addr = evloop.local_addr();
        let n = 50usize;
        let mut clients: Vec<TcpStream> = (0..n)
            .map(|i| {
                let mut s = TcpStream::connect(addr).unwrap();
                s.write_all(&client_frame(format!("client-{i}").as_bytes()))
                    .unwrap();
                s
            })
            .collect();

        let mut events = Vec::new();
        poll_until(&mut evloop, &mut events, Duration::from_secs(10), |ev| {
            frames(ev).len() >= n
        });
        let got = frames(&events);
        assert_eq!(got.len(), n);
        let mut ids: Vec<ConnId> = got.iter().map(|(c, _)| *c).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "every frame arrived on a distinct connection");
        assert_eq!(evloop.connections(), n);

        // Echo each payload back on its own connection.
        for (conn, payload) in &got {
            assert!(evloop.send(*conn, payload));
        }
        let mut drained = Vec::new();
        for _ in 0..20 {
            evloop.poll(&mut drained);
        }
        let mut replies: Vec<String> = clients
            .iter_mut()
            .map(|s| String::from_utf8(read_client_frame(s, 1 << 20).unwrap()).unwrap())
            .collect();
        replies.sort();
        let mut expect: Vec<String> = (0..n).map(|i| format!("client-{i}")).collect();
        expect.sort();
        assert_eq!(replies, expect);
    }

    #[test]
    fn malformed_magic_closes_only_that_connection() {
        let mut evloop = EventLoop::bind("127.0.0.1:0", options()).unwrap();
        let addr = evloop.local_addr();
        let mut bad = TcpStream::connect(addr).unwrap();
        bad.write_all(b"GARBAGE???").unwrap();
        let mut good = TcpStream::connect(addr).unwrap();
        good.write_all(&client_frame(b"still fine")).unwrap();

        let mut events = Vec::new();
        poll_until(&mut evloop, &mut events, Duration::from_secs(5), |ev| {
            !frames(ev).is_empty() && !closes(ev).is_empty()
        });
        let cl = closes(&events);
        assert_eq!(cl.len(), 1);
        assert!(
            matches!(&cl[0].1, CloseReason::Malformed(m) if m.contains("magic")),
            "unexpected close: {:?}",
            cl[0].1
        );
        assert_eq!(frames(&events)[0].1, b"still fine");
        assert_eq!(evloop.connections(), 1);
    }

    #[test]
    fn oversized_length_claim_rejected_at_the_header() {
        let opts = EvloopOptions {
            max_frame: 1024,
            ..options()
        };
        let mut evloop = EventLoop::bind("127.0.0.1:0", opts).unwrap();
        let addr = evloop.local_addr();
        let mut client = TcpStream::connect(addr).unwrap();
        let mut header = Vec::new();
        header.extend_from_slice(&CLIENT_MAGIC.to_le_bytes());
        header.push(CLIENT_VERSION);
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        client.write_all(&header).unwrap();

        let mut events = Vec::new();
        poll_until(&mut evloop, &mut events, Duration::from_secs(5), |ev| {
            !closes(ev).is_empty()
        });
        let cl = closes(&events);
        assert!(
            matches!(&cl[0].1, CloseReason::Malformed(m) if m.contains("cap")),
            "unexpected close: {:?}",
            cl[0].1
        );
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut evloop = EventLoop::bind("127.0.0.1:0", options()).unwrap();
        let addr = evloop.local_addr();
        let mut client = TcpStream::connect(addr).unwrap();
        let mut frame = client_frame(b"x");
        frame[4] = 9;
        client.write_all(&frame).unwrap();
        let mut events = Vec::new();
        poll_until(&mut evloop, &mut events, Duration::from_secs(5), |ev| {
            !closes(ev).is_empty()
        });
        assert!(
            matches!(&closes(&events)[0].1, CloseReason::Malformed(m) if m.contains("version"))
        );
    }

    #[test]
    fn slow_drip_client_is_convicted_without_hanging_the_loop() {
        let opts = EvloopOptions {
            idle_timeout: Duration::from_millis(150),
            ..EvloopOptions::default()
        };
        let mut evloop = EventLoop::bind("127.0.0.1:0", opts).unwrap();
        let addr = evloop.local_addr();

        // The dripper feeds one header byte at a time, never completing a
        // frame: byte activity must NOT reset the idle clock.
        let dripper = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let frame = client_frame(b"never finishes");
            for b in frame.iter().take(6) {
                if s.write_all(&[*b]).is_err() {
                    return;
                }
                thread::sleep(Duration::from_millis(40));
            }
            // Hold the socket open; the server must convict us anyway.
            thread::sleep(Duration::from_millis(400));
        });

        // A healthy client must still be served while the drip is live.
        let mut healthy = TcpStream::connect(addr).unwrap();
        healthy.write_all(&client_frame(b"prompt")).unwrap();

        let start = Instant::now();
        let mut events = Vec::new();
        poll_until(&mut evloop, &mut events, Duration::from_secs(5), |ev| {
            closes(ev)
                .iter()
                .any(|(_, r)| *r == CloseReason::IdleTimeout)
        });
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "conviction took {:?}",
            start.elapsed()
        );
        assert_eq!(
            frames(&events).len(),
            1,
            "healthy client served during the drip"
        );
        assert_eq!(frames(&events)[0].1, b"prompt");
        dripper.join().unwrap();
    }

    #[test]
    fn unresponsive_reader_is_convicted_for_backpressure() {
        let opts = EvloopOptions {
            max_frame: 1 << 22,
            max_write_buffer: 4096,
            ..options()
        };
        let mut evloop = EventLoop::bind("127.0.0.1:0", opts).unwrap();
        let addr = evloop.local_addr();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(&client_frame(b"hi")).unwrap();

        let mut events = Vec::new();
        poll_until(&mut evloop, &mut events, Duration::from_secs(5), |ev| {
            !frames(ev).is_empty()
        });
        let conn = frames(&events)[0].0;

        // The client never reads. Keep shoving large frames until the OS
        // socket buffer fills and our bounded write buffer overflows.
        let big = vec![0xABu8; 256 << 10];
        let mut convicted = false;
        for _ in 0..256 {
            if !evloop.send(conn, &big) {
                convicted = true;
                break;
            }
        }
        assert!(convicted, "send never hit the backpressure cap");
        let mut drained = Vec::new();
        evloop.poll(&mut drained);
        assert!(closes(&drained)
            .iter()
            .any(|(c, r)| *c == conn && *r == CloseReason::Backpressure));
        assert_eq!(evloop.connections(), 0);
    }

    #[test]
    fn accepts_beyond_max_connections_are_shed() {
        let opts = EvloopOptions {
            max_connections: 2,
            ..options()
        };
        let mut evloop = EventLoop::bind("127.0.0.1:0", opts).unwrap();
        let addr = evloop.local_addr();
        let _a = TcpStream::connect(addr).unwrap();
        let _b = TcpStream::connect(addr).unwrap();
        let mut events = Vec::new();
        poll_until(&mut evloop, &mut events, Duration::from_secs(5), |ev| {
            ev.iter()
                .filter(|e| matches!(e, Event::Opened { .. }))
                .count()
                >= 2
        });
        assert_eq!(evloop.connections(), 2);

        let mut third = TcpStream::connect(addr).unwrap();
        third
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        // The overflow accept is closed immediately: our read sees EOF or
        // a reset, never data.
        let deadline = Instant::now() + Duration::from_secs(5);
        let shed = loop {
            assert!(Instant::now() < deadline, "third connection never shed");
            let mut ev = Vec::new();
            evloop.poll(&mut ev);
            let mut byte = [0u8; 1];
            match third.read(&mut byte) {
                Ok(0) => break true,
                Ok(_) => break false,
                Err(e) if e.kind() == io::ErrorKind::ConnectionReset => break true,
                Err(_) => {}
            }
        };
        assert!(
            shed,
            "overflow connection delivered data instead of closing"
        );
        assert_eq!(evloop.connections(), 2);
    }

    #[test]
    fn split_delivery_reassembles_frames() {
        let mut evloop = EventLoop::bind("127.0.0.1:0", options()).unwrap();
        let addr = evloop.local_addr();
        let mut client = TcpStream::connect(addr).unwrap();
        let frame = client_frame(b"split across writes");
        let (a, b) = frame.split_at(7);
        client.write_all(a).unwrap();
        let mut events = Vec::new();
        for _ in 0..5 {
            evloop.poll(&mut events);
        }
        assert!(frames(&events).is_empty(), "half a frame must not surface");
        client.write_all(b).unwrap();
        poll_until(&mut evloop, &mut events, Duration::from_secs(5), |ev| {
            !frames(ev).is_empty()
        });
        assert_eq!(frames(&events)[0].1, b"split across writes");
    }

    #[test]
    fn two_frames_in_one_write_both_surface() {
        let mut evloop = EventLoop::bind("127.0.0.1:0", options()).unwrap();
        let addr = evloop.local_addr();
        let mut client = TcpStream::connect(addr).unwrap();
        let mut bytes = client_frame(b"first");
        bytes.extend_from_slice(&client_frame(b"second"));
        client.write_all(&bytes).unwrap();
        let mut events = Vec::new();
        poll_until(&mut evloop, &mut events, Duration::from_secs(5), |ev| {
            frames(ev).len() >= 2
        });
        let got = frames(&events);
        assert_eq!(got[0].1, b"first");
        assert_eq!(got[1].1, b"second");
        assert_eq!(got[0].0, got[1].0);
    }
}
