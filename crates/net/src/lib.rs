//! # atom-net
//!
//! In-process transport substrate for the Rust reproduction of
//! *Atom: Horizontally Scaling Strong Anonymity* (SOSP 2017).
//!
//! The paper deploys Atom on 1,024 EC2 machines talking TLS with 40–160 ms
//! of injected pairwise latency and a Tor-derived bandwidth distribution
//! (§6). Here the servers run in one process; this crate provides the pieces
//! that stand in for the wire:
//!
//! * [`latency`] — per-link latency models, the heterogeneous server-class
//!   mix, and transmission-time accounting.
//! * [`transport`] — a metered in-memory network with mailboxes per node and
//!   a virtual clock for accumulating simulated network time along the
//!   protocol's critical path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod latency;
pub mod transport;

pub use latency::{assign_server_classes, paper_server_mix, LatencyModel, ServerClass};
pub use transport::{Envelope, InMemoryNetwork, NodeId, TrafficStats, VirtualClock};
