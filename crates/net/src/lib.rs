//! # atom-net
//!
//! Transport substrate for the Rust reproduction of *Atom: Horizontally
//! Scaling Strong Anonymity* (SOSP 2017).
//!
//! The paper deploys Atom on 1,024 EC2 machines talking TLS with 40–160 ms
//! of injected pairwise latency and a Tor-derived bandwidth distribution
//! (§6). This crate abstracts the wire behind the [`Transport`] trait — a
//! mailbox-per-node send/receive API with traffic metering and a delivery
//! hook for scheduler wake-ups — with two backends:
//!
//! * [`transport::InMemoryNetwork`] — every node in one process; sends are
//!   charged simulated propagation latency and transmission time, which a
//!   [`VirtualClock`] accumulates along the protocol's critical path.
//! * [`tcp::TcpTransport`] — nodes partitioned across OS processes; the
//!   same envelopes travel as length-delimited frames over blocking TCP
//!   sockets (frame layout in the [`tcp`] module docs). Simulated-latency
//!   accounting stays with the caller, so virtual-clock figures are
//!   identical across backends.
//!
//! [`evloop`] adds the client-facing edge: a single-threaded, poll-based
//! readiness loop ([`evloop::EventLoop`]) that multiplexes thousands of
//! non-blocking client connections — length-framed submissions in, acks
//! out, with write backpressure and idle conviction — without spending a
//! reader thread per connection the way the server mesh does.
//!
//! [`latency`] provides the per-link latency models, the heterogeneous
//! server-class mix, and transmission-time accounting both backends and the
//! figure harnesses share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod evloop;
pub mod latency;
pub mod tcp;
pub mod transport;

pub use evloop::{
    client_frame, read_client_frame, CloseReason, ConnId, Event, EventLoop, EvloopOptions,
};
pub use latency::{assign_server_classes, paper_server_mix, LatencyModel, ServerClass};
pub use tcp::{TcpOptions, TcpTransport};
pub use transport::{
    DeliveryHook, Envelope, InMemoryNetwork, NodeId, TrafficStats, Transport, VirtualClock,
};
