//! Link-latency and bandwidth models.
//!
//! The paper's evaluation runs on EC2 with artificially injected pairwise
//! latencies of 40–160 ms (via `tc`) and a Tor-derived bandwidth
//! distribution (§6). This module reproduces those models so that both the
//! in-process deployment and the large-scale simulator can charge realistic
//! network time to each transfer.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Deterministic pseudo-random 64-bit mix (splitmix64) used to derive
/// per-link latencies from a seed without carrying an RNG around.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A model assigning a one-way propagation latency to every ordered node
/// pair.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// No propagation delay (pure computation experiments).
    Zero,
    /// The same fixed latency on every link.
    Fixed {
        /// One-way delay in milliseconds.
        millis: u64,
    },
    /// Per-link latency drawn uniformly from `[min_millis, max_millis]`,
    /// deterministic in the (seed, src, dst) triple and symmetric.
    Uniform {
        /// Lower bound in milliseconds.
        min_millis: u64,
        /// Upper bound in milliseconds.
        max_millis: u64,
        /// Seed for the per-link draw.
        seed: u64,
    },
}

impl LatencyModel {
    /// The paper's wide-area emulation: 40–160 ms per link (§6).
    pub fn paper_wan(seed: u64) -> Self {
        LatencyModel::Uniform {
            min_millis: 40,
            max_millis: 160,
            seed,
        }
    }

    /// One-way latency between two nodes.
    pub fn link(&self, src: usize, dst: usize) -> Duration {
        match *self {
            LatencyModel::Zero => Duration::ZERO,
            LatencyModel::Fixed { millis } => Duration::from_millis(millis),
            LatencyModel::Uniform {
                min_millis,
                max_millis,
                seed,
            } => {
                if src == dst {
                    return Duration::ZERO;
                }
                // Symmetric: order the endpoints before hashing.
                let (a, b) = if src < dst { (src, dst) } else { (dst, src) };
                let h = splitmix64(seed ^ ((a as u64) << 32) ^ b as u64);
                let span = max_millis.saturating_sub(min_millis) + 1;
                Duration::from_millis(min_millis + h % span)
            }
        }
    }

    /// The maximum latency the model can produce (used for conservative
    /// round-trip budgeting).
    pub fn max_latency(&self) -> Duration {
        match *self {
            LatencyModel::Zero => Duration::ZERO,
            LatencyModel::Fixed { millis } => Duration::from_millis(millis),
            LatencyModel::Uniform { max_millis, .. } => Duration::from_millis(max_millis),
        }
    }
}

/// Bandwidth classes matching the Tor-derived distribution used in §6.2:
/// 80% of servers below 100 Mbps, 10% at 100–200, 5% at 200–300, 5% above
/// 300 Mbps; paired with the core counts used for the EC2 instance mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerClass {
    /// Available bandwidth in megabits per second.
    pub bandwidth_mbps: u64,
    /// Number of cores.
    pub cores: u32,
}

/// The heterogeneous server mix of the paper's large-scale evaluation
/// (§6.2): fractions of the fleet in each class.
pub fn paper_server_mix() -> Vec<(f64, ServerClass)> {
    vec![
        (
            0.80,
            ServerClass {
                bandwidth_mbps: 100,
                cores: 4,
            },
        ),
        (
            0.10,
            ServerClass {
                bandwidth_mbps: 200,
                cores: 8,
            },
        ),
        (
            0.05,
            ServerClass {
                bandwidth_mbps: 300,
                cores: 16,
            },
        ),
        (
            0.05,
            ServerClass {
                bandwidth_mbps: 400,
                cores: 32,
            },
        ),
    ]
}

/// Assigns a server class to each of `count` servers following the given
/// mix, deterministically in the seed.
pub fn assign_server_classes(
    count: usize,
    mix: &[(f64, ServerClass)],
    seed: u64,
) -> Vec<ServerClass> {
    assert!(!mix.is_empty());
    (0..count)
        .map(|i| {
            let h = splitmix64(seed ^ i as u64) as f64 / u64::MAX as f64;
            let mut acc = 0.0;
            for (fraction, class) in mix {
                acc += fraction;
                if h < acc {
                    return *class;
                }
            }
            mix.last().unwrap().1
        })
        .collect()
}

/// Time to push `bytes` through a link of `bandwidth_mbps`.
pub fn transmission_time(bytes: u64, bandwidth_mbps: u64) -> Duration {
    if bandwidth_mbps == 0 {
        return Duration::ZERO;
    }
    let bits = bytes as f64 * 8.0;
    Duration::from_secs_f64(bits / (bandwidth_mbps as f64 * 1_000_000.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_fixed_models() {
        assert_eq!(LatencyModel::Zero.link(1, 2), Duration::ZERO);
        assert_eq!(
            LatencyModel::Fixed { millis: 25 }.link(4, 9),
            Duration::from_millis(25)
        );
    }

    #[test]
    fn uniform_model_is_symmetric_deterministic_and_in_range() {
        let model = LatencyModel::paper_wan(7);
        for src in 0..20 {
            for dst in 0..20 {
                let latency = model.link(src, dst);
                if src == dst {
                    assert_eq!(latency, Duration::ZERO);
                    continue;
                }
                assert_eq!(latency, model.link(dst, src));
                assert_eq!(latency, model.link(src, dst));
                let ms = latency.as_millis() as u64;
                assert!((40..=160).contains(&ms), "latency out of range: {ms}");
            }
        }
    }

    #[test]
    fn uniform_model_varies_across_links() {
        let model = LatencyModel::paper_wan(7);
        let values: Vec<u128> = (1..30).map(|dst| model.link(0, dst).as_millis()).collect();
        let distinct: std::collections::HashSet<_> = values.iter().collect();
        assert!(distinct.len() > 5);
    }

    #[test]
    fn server_mix_fractions_sum_to_one() {
        let total: f64 = paper_server_mix().iter().map(|(f, _)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn class_assignment_roughly_matches_mix() {
        let classes = assign_server_classes(10_000, &paper_server_mix(), 11);
        let four_core = classes.iter().filter(|c| c.cores == 4).count();
        let big = classes.iter().filter(|c| c.cores == 32).count();
        assert!((7_500..=8_500).contains(&four_core), "{four_core}");
        assert!((300..=700).contains(&big), "{big}");
    }

    #[test]
    fn class_assignment_is_deterministic() {
        let a = assign_server_classes(100, &paper_server_mix(), 3);
        let b = assign_server_classes(100, &paper_server_mix(), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn transmission_time_scales_linearly() {
        let one_mb = transmission_time(1_000_000, 100);
        assert!((one_mb.as_secs_f64() - 0.08).abs() < 1e-9);
        let two_mb = transmission_time(2_000_000, 100);
        assert!((two_mb.as_secs_f64() - 0.16).abs() < 1e-9);
        assert_eq!(transmission_time(1_000_000, 0), Duration::ZERO);
    }
}
