//! Multi-process [`Transport`] backend over blocking TCP sockets.
//!
//! [`TcpTransport`] lets the node ids of one logical deployment span
//! several OS processes: each process hosts the mailboxes of the nodes
//! assigned to it and forwards everything else to the process that owns the
//! destination. The build environment has no async runtime (the vendored
//! dependency set is `std`-only), so the backend is deliberately classic:
//! blocking sockets, one listener per process, one reader thread per
//! inbound connection and one lazily-established outbound stream per peer
//! process.
//!
//! ## Frame layout
//!
//! Envelopes travel as length-delimited frames (all integers
//! little-endian):
//!
//! ```text
//! magic    u32  = 0x4D4F5441 ("ATOM")
//! version  u8   = 1
//! from     u32  sending node id
//! to       u32  receiving node id
//! label_len u16 ‖ payload_len u32
//! label    [u8; label_len]   (UTF-8, validated)
//! payload  [u8; payload_len]
//! ```
//!
//! The frame header is the *transport's* validation boundary: magic and
//! version are checked, `label_len`/`payload_len` are bounded
//! ([`TcpOptions::max_frame`]) before any allocation, and `to` must be a
//! node this process hosts. A malformed frame poisons only its connection —
//! the reader logs and hangs up, exactly what a real deployment does with a
//! misbehaving peer. The *payload* stays opaque here; protocol-level
//! validation of untrusted bytes happens in `atom_runtime::wire`, which
//! treats every decoded field as adversarial.
//!
//! ## Lifecycle
//!
//! [`TcpTransport::bind`] starts the listener (an address of port `0`
//! picks a free port, see [`TcpTransport::local_addr`]),
//! [`TcpTransport::connect_peers`] establishes outbound streams with a
//! retry loop so processes may start in any order, and
//! [`TcpTransport::shutdown`] tears the sockets down and joins the
//! listener. Sends that hit a dead peer panic with context: the runtime
//! catches the panic at each protocol send site and converts it into a
//! failure of the affected round, which is strictly better than silently
//! dropping protocol traffic and deadlocking the round.

use std::borrow::Cow;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::transport::{DeliveryHook, Envelope, NodeId, TrafficStats, Transport};

const FRAME_MAGIC: u32 = 0x4D4F_5441; // "ATOM" in little-endian byte order.
const FRAME_VERSION: u8 = 1;
const FRAME_HEADER_LEN: usize = 4 + 1 + 4 + 4 + 2 + 4;
const MAX_LABEL_LEN: usize = 1024;

/// Tuning knobs of a [`TcpTransport`].
#[derive(Clone, Debug)]
pub struct TcpOptions {
    /// Total retry budget when establishing an outbound connection to a
    /// peer process (peers may start later than we do).
    pub connect_timeout: Duration,
    /// Upper bound on a frame's payload length; larger claims are rejected
    /// before any allocation.
    pub max_frame: usize,
    /// Sets `TCP_NODELAY` on every stream (mixing batches are
    /// latency-sensitive and already coalesced).
    pub nodelay: bool,
}

impl Default for TcpOptions {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(10),
            max_frame: 64 << 20,
            nodelay: true,
        }
    }
}

struct TcpInner {
    /// `owner[node]` is the index (into `peer_addrs`) of the process
    /// hosting `node`'s mailbox.
    owner: Vec<usize>,
    /// This process's index.
    me: usize,
    /// One outbound stream slot per process (slot `me` stays empty).
    outbound: Vec<Mutex<Option<TcpStream>>>,
    /// Listen address of every process. Entries other than `me`'s may be
    /// filled in after construction ([`TcpTransport::set_peer_addr`]) so a
    /// mesh can bind every listener on port `0` first and exchange the
    /// resolved addresses afterwards — no reserve-then-rebind races.
    peer_addrs: Mutex<Vec<String>>,
    mailboxes: Vec<Mutex<VecDeque<Envelope>>>,
    sent: Vec<Mutex<TrafficStats>>,
    received: Vec<Mutex<TrafficStats>>,
    hook: Mutex<Option<DeliveryHook>>,
    options: TcpOptions,
    closing: AtomicBool,
}

impl TcpInner {
    fn deliver_local(&self, envelope: Envelope) {
        let to = envelope.to;
        self.mailboxes[to].lock().push_back(envelope);
        let hook = self.hook.lock().clone();
        if let Some(hook) = hook {
            hook(to);
        }
    }

    fn credit_received(&self, node: NodeId, envelopes: &[Envelope]) {
        if envelopes.is_empty() {
            return;
        }
        let mut stats = self.received[node].lock();
        for envelope in envelopes {
            stats.messages += 1;
            stats.bytes += envelope.payload.len() as u64;
        }
    }
}

/// A [`Transport`] whose nodes are partitioned across OS processes. See the
/// module docs for the frame layout and lifecycle.
pub struct TcpTransport {
    inner: Arc<TcpInner>,
    local_addr: SocketAddr,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl TcpTransport {
    /// Binds the listener of process `me` and starts accepting inbound
    /// connections.
    ///
    /// `peer_addrs[p]` is the listen address of process `p` (as passed to
    /// `TcpListener::bind`; `me`'s entry may use port `0` to pick a free
    /// port). `owner[node]` names the process hosting each node id; every
    /// node whose owner is `me` gets a local mailbox.
    pub fn bind(
        peer_addrs: Vec<String>,
        owner: Vec<usize>,
        me: usize,
        options: TcpOptions,
    ) -> io::Result<Self> {
        assert!(me < peer_addrs.len(), "own process index out of range");
        assert!(
            owner.iter().all(|&p| p < peer_addrs.len()),
            "node owner names an unknown process"
        );
        let listener = TcpListener::bind(&peer_addrs[me])?;
        let local_addr = listener.local_addr()?;
        let nodes = owner.len();
        let inner = Arc::new(TcpInner {
            owner,
            me,
            outbound: (0..peer_addrs.len()).map(|_| Mutex::new(None)).collect(),
            peer_addrs: Mutex::new(peer_addrs),
            mailboxes: (0..nodes).map(|_| Mutex::new(VecDeque::new())).collect(),
            sent: (0..nodes)
                .map(|_| Mutex::new(TrafficStats::default()))
                .collect(),
            received: (0..nodes)
                .map(|_| Mutex::new(TrafficStats::default()))
                .collect(),
            hook: Mutex::new(None),
            options,
            closing: AtomicBool::new(false),
        });
        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::spawn(move || accept_loop(listener, accept_inner));
        Ok(Self {
            inner,
            local_addr,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// Binds on a free loopback port with peer addresses unknown:
    /// `processes` empty slots, to be filled via
    /// [`TcpTransport::set_peer_addr`] once the other listeners have bound.
    /// This is how in-process tests and harnesses build a race-free mesh;
    /// multi-process deployments know their addresses up front and use
    /// [`TcpTransport::bind`].
    pub fn bind_any(
        processes: usize,
        owner: Vec<usize>,
        me: usize,
        options: TcpOptions,
    ) -> io::Result<Self> {
        let mut peer_addrs = vec![String::new(); processes];
        peer_addrs[me] = "127.0.0.1:0".to_string();
        let transport = Self::bind(peer_addrs, owner, me, options)?;
        transport.set_peer_addr(me, transport.local_addr().to_string());
        Ok(transport)
    }

    /// Records the (resolved) listen address of peer `process`, replacing
    /// whatever was configured. Outbound connections established later use
    /// the new address; existing streams are untouched.
    pub fn set_peer_addr(&self, process: usize, addr: String) {
        self.inner.peer_addrs.lock()[process] = addr;
    }

    /// The address the listener actually bound (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// This process's index.
    pub fn process_index(&self) -> usize {
        self.inner.me
    }

    /// Node ids hosted by this process.
    pub fn local_nodes(&self) -> Vec<NodeId> {
        (0..self.inner.owner.len())
            .filter(|&n| self.inner.owner[n] == self.inner.me)
            .collect()
    }

    /// Eagerly connects to every peer process, retrying each until
    /// [`TcpOptions::connect_timeout`] elapses (peers may not have bound
    /// their listeners yet). Sends connect lazily as a fallback, but
    /// calling this first keeps connection churn off the mixing path.
    pub fn connect_peers(&self) -> io::Result<()> {
        let processes = self.inner.peer_addrs.lock().len();
        for process in 0..processes {
            if process != self.inner.me {
                connect_retry(&self.inner, process)?;
            }
        }
        Ok(())
    }

    /// Closes every stream and joins the listener thread. Idempotent; also
    /// run on drop.
    pub fn shutdown(&self) {
        if self.inner.closing.swap(true, Ordering::SeqCst) {
            return;
        }
        for slot in &self.inner.outbound {
            if let Some(stream) = slot.lock().take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        // Wake the accept loop so it observes `closing`.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn connect_retry(inner: &Arc<TcpInner>, process: usize) -> io::Result<()> {
    let mut slot = inner.outbound[process].lock();
    if slot.is_some() {
        return Ok(());
    }
    let deadline = Instant::now() + inner.options.connect_timeout;
    loop {
        // Re-read each attempt: the address may be filled in concurrently
        // by `set_peer_addr` while we retry.
        let addr = inner.peer_addrs.lock()[process].clone();
        match TcpStream::connect(&addr) {
            Ok(stream) => {
                if inner.options.nodelay {
                    let _ = stream.set_nodelay(true);
                }
                *slot = Some(stream);
                return Ok(());
            }
            Err(error) => {
                atom_obs::count("net.tcp.connect_retries", 1);
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        error.kind(),
                        format!("connecting to peer process {process} at {addr}: {error}"),
                    ));
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<TcpInner>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if inner.closing.load(Ordering::SeqCst) {
                    return;
                }
                if inner.options.nodelay {
                    let _ = stream.set_nodelay(true);
                }
                let reader_inner = Arc::clone(&inner);
                // Reader threads are detached: they exit on EOF, which
                // `shutdown` forces by closing the peer streams (and a
                // vanishing peer process forces by itself).
                std::thread::spawn(move || reader_loop(stream, reader_inner));
            }
            Err(_) => {
                if inner.closing.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn reader_loop(mut stream: TcpStream, inner: Arc<TcpInner>) {
    loop {
        match read_frame(&mut stream, &inner.options) {
            Ok(Some(envelope)) => {
                if inner.owner.get(envelope.to) != Some(&inner.me) {
                    eprintln!(
                        "atom-net: dropping connection after a frame for node {} \
                         not hosted by process {}",
                        envelope.to, inner.me
                    );
                    return;
                }
                inner.deliver_local(envelope);
            }
            Ok(None) => return, // clean EOF
            Err(error) => {
                if !inner.closing.load(Ordering::SeqCst) {
                    eprintln!("atom-net: dropping connection on malformed frame: {error}");
                }
                return;
            }
        }
    }
}

fn write_frame(stream: &mut TcpStream, envelope: &Envelope) -> io::Result<()> {
    let label = envelope.label.as_bytes();
    assert!(label.len() <= MAX_LABEL_LEN, "envelope label too long");
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + label.len() + envelope.payload.len());
    frame.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    frame.push(FRAME_VERSION);
    frame.extend_from_slice(&(envelope.from as u32).to_le_bytes());
    frame.extend_from_slice(&(envelope.to as u32).to_le_bytes());
    frame.extend_from_slice(&(label.len() as u16).to_le_bytes());
    frame.extend_from_slice(&(envelope.payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(label);
    frame.extend_from_slice(&envelope.payload);
    stream.write_all(&frame)
}

/// Reads one frame; `Ok(None)` on clean EOF at a frame boundary. Length
/// fields are untrusted: both are bounds-checked before any allocation.
fn read_frame(stream: &mut TcpStream, options: &TcpOptions) -> io::Result<Option<Envelope>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    match stream.read_exact(&mut header) {
        Ok(()) => {}
        Err(error) if error.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(error) => return Err(error),
    }
    let malformed = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    if u32::from_le_bytes(header[0..4].try_into().unwrap()) != FRAME_MAGIC {
        return Err(malformed("bad frame magic"));
    }
    if header[4] != FRAME_VERSION {
        return Err(malformed("unsupported frame version"));
    }
    let from = u32::from_le_bytes(header[5..9].try_into().unwrap()) as usize;
    let to = u32::from_le_bytes(header[9..13].try_into().unwrap()) as usize;
    let label_len = u16::from_le_bytes(header[13..15].try_into().unwrap()) as usize;
    let payload_len = u32::from_le_bytes(header[15..19].try_into().unwrap()) as usize;
    if label_len > MAX_LABEL_LEN {
        return Err(malformed("frame label too long"));
    }
    if payload_len > options.max_frame {
        return Err(malformed("frame payload exceeds max_frame"));
    }
    let mut label = vec![0u8; label_len];
    stream.read_exact(&mut label)?;
    let label = String::from_utf8(label).map_err(|_| malformed("frame label is not UTF-8"))?;
    let mut payload = vec![0u8; payload_len];
    stream.read_exact(&mut payload)?;
    Ok(Some(Envelope {
        from,
        to,
        label: Cow::Owned(label),
        payload,
        delay: Duration::ZERO,
    }))
}

impl Transport for TcpTransport {
    fn nodes(&self) -> usize {
        self.inner.owner.len()
    }

    fn is_local(&self, node: NodeId) -> bool {
        self.inner.owner.get(node) == Some(&self.inner.me)
    }

    fn send(
        &self,
        from: NodeId,
        to: NodeId,
        label: Cow<'static, str>,
        payload: Vec<u8>,
    ) -> Duration {
        assert!(
            from < self.nodes() && to < self.nodes(),
            "unknown node in TCP send"
        );
        {
            let mut stats = self.inner.sent[from].lock();
            stats.messages += 1;
            stats.bytes += payload.len() as u64;
        }
        let envelope = Envelope {
            from,
            to,
            label,
            payload,
            delay: Duration::ZERO,
        };
        let process = self.inner.owner[to];
        if atom_obs::enabled() {
            let label = &envelope.label;
            atom_obs::count(&format!("net.tcp.frames.{label}"), 1);
            atom_obs::count(
                &format!("net.tcp.bytes.{label}"),
                envelope.payload.len() as u64,
            );
            atom_obs::count(&format!("net.tcp.to_process.{process}.frames"), 1);
        }
        if process == self.inner.me {
            self.inner.deliver_local(envelope);
            return Duration::ZERO;
        }
        if self.inner.outbound[process].lock().is_none() {
            connect_retry(&self.inner, process)
                .unwrap_or_else(|error| panic!("tcp transport: {error}"));
        }
        let mut slot = self.inner.outbound[process].lock();
        let stream = slot.as_mut().expect("peer stream established above");
        write_frame(stream, &envelope).unwrap_or_else(|error| {
            panic!(
                "tcp transport: sending {} -> {} via process {process} failed: {error}",
                envelope.from, envelope.to
            )
        });
        Duration::ZERO
    }

    fn try_receive(&self, node: NodeId) -> Option<Envelope> {
        let envelope = self.inner.mailboxes[node].lock().pop_front();
        if let Some(envelope) = &envelope {
            self.inner
                .credit_received(node, std::slice::from_ref(envelope));
        }
        envelope
    }

    fn drain(&self, node: NodeId) -> Vec<Envelope> {
        let drained: Vec<Envelope> = {
            let mut mailbox = self.inner.mailboxes[node].lock();
            mailbox.drain(..).collect()
        };
        self.inner.credit_received(node, &drained);
        drained
    }

    fn pending(&self, node: NodeId) -> usize {
        self.inner.mailboxes[node].lock().len()
    }

    fn sent_stats(&self, node: NodeId) -> TrafficStats {
        *self.inner.sent[node].lock()
    }

    fn received_stats(&self, node: NodeId) -> TrafficStats {
        *self.inner.received[node].lock()
    }

    fn set_delivery_hook(&self, hook: Option<DeliveryHook>) {
        *self.inner.hook.lock() = hook;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two transports in one process, exercising both the loopback and the
    /// socket path. Both listeners bind port 0 and exchange resolved
    /// addresses afterwards, so concurrent tests cannot race on ports.
    fn pair(owner: Vec<usize>) -> (TcpTransport, TcpTransport) {
        let a = TcpTransport::bind_any(2, owner.clone(), 0, TcpOptions::default()).unwrap();
        let b = TcpTransport::bind_any(2, owner, 1, TcpOptions::default()).unwrap();
        a.set_peer_addr(1, b.local_addr().to_string());
        b.set_peer_addr(0, a.local_addr().to_string());
        a.connect_peers().unwrap();
        b.connect_peers().unwrap();
        (a, b)
    }

    fn wait_pending(transport: &TcpTransport, node: NodeId) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while Transport::pending(transport, node) == 0 {
            assert!(Instant::now() < deadline, "message never arrived");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn local_and_remote_sends_deliver() {
        let (a, b) = pair(vec![0, 0, 1]);
        // Loopback within process 0.
        Transport::send(&a, 0, 1, "local".into(), vec![1, 2]);
        let envelope = Transport::try_receive(&a, 1).unwrap();
        assert_eq!(envelope.payload, vec![1, 2]);
        assert_eq!(envelope.from, 0);
        // Across the socket to process 1.
        Transport::send(&a, 0, 2, "remote".into(), vec![3, 4, 5]);
        wait_pending(&b, 2);
        let envelope = Transport::try_receive(&b, 2).unwrap();
        assert_eq!(envelope.label, "remote");
        assert_eq!(envelope.payload, vec![3, 4, 5]);
        assert_eq!(envelope.delay, Duration::ZERO);
        // Metering: sent credited at process 0, received at process 1.
        assert_eq!(Transport::sent_stats(&a, 0).messages, 2);
        assert_eq!(Transport::received_stats(&b, 2).bytes, 3);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn delivery_hook_fires_for_remote_arrivals() {
        let (a, b) = pair(vec![0, 1]);
        let hits = Arc::new(Mutex::new(Vec::new()));
        let sink = hits.clone();
        Transport::set_delivery_hook(&b, Some(Arc::new(move |node| sink.lock().push(node))));
        Transport::send(&a, 0, 1, "hooked".into(), vec![9]);
        let deadline = Instant::now() + Duration::from_secs(5);
        while hits.lock().is_empty() {
            assert!(Instant::now() < deadline, "hook never fired");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(*hits.lock(), vec![1]);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn malformed_frames_poison_only_their_connection() {
        let (a, b) = pair(vec![0, 1]);
        // A raw connection writing garbage: the reader must hang up without
        // panicking or allocating the claimed length.
        let mut rogue = TcpStream::connect(b.local_addr()).unwrap();
        let mut bogus = Vec::new();
        bogus.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        bogus.push(FRAME_VERSION);
        bogus.extend_from_slice(&0u32.to_le_bytes()); // from
        bogus.extend_from_slice(&1u32.to_le_bytes()); // to
        bogus.extend_from_slice(&0u16.to_le_bytes()); // label_len
        bogus.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd payload_len
        rogue.write_all(&bogus).unwrap();
        // The healthy connection keeps working.
        Transport::send(&a, 0, 1, "still-fine".into(), vec![7]);
        wait_pending(&b, 1);
        assert_eq!(Transport::drain(&b, 1).len(), 1);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn frames_for_foreign_nodes_are_rejected() {
        let (a, b) = pair(vec![0, 1]);
        // Process 0 hosts node 0; a frame addressed to it arriving at
        // process 1 is a routing violation and drops the connection.
        let mut rogue = TcpStream::connect(b.local_addr()).unwrap();
        let envelope = Envelope {
            from: 1,
            to: 0,
            label: "misrouted".into(),
            payload: vec![1],
            delay: Duration::ZERO,
        };
        write_frame(&mut rogue, &envelope).unwrap();
        // Give the reader a moment; node 0's mailbox lives in `a` and must
        // stay empty in `b` (which doesn't even host it).
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(Transport::pending(&a, 0), 0);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_joins_the_listener() {
        let (a, b) = pair(vec![0, 1]);
        a.shutdown();
        a.shutdown();
        b.shutdown();
    }
}
