//! Multi-process [`Transport`] backend over blocking TCP sockets.
//!
//! [`TcpTransport`] lets the node ids of one logical deployment span
//! several OS processes: each process hosts the mailboxes of the nodes
//! assigned to it and forwards everything else to the process that owns the
//! destination. The build environment has no async runtime (the vendored
//! dependency set is `std`-only), so the backend is deliberately classic:
//! blocking sockets, one listener per process, one reader thread per
//! inbound connection and one lazily-established outbound stream per peer
//! process.
//!
//! ## Frame layout
//!
//! Envelopes travel as length-delimited frames (all integers
//! little-endian):
//!
//! ```text
//! magic    u32  = 0x4D4F5441 ("ATOM")
//! version  u8   = 1
//! from     u32  sending node id
//! to       u32  receiving node id
//! label_len u16 ‖ payload_len u32
//! label    [u8; label_len]   (UTF-8, validated)
//! payload  [u8; payload_len]
//! ```
//!
//! The frame header is the *transport's* validation boundary: magic and
//! version are checked, `label_len`/`payload_len` are bounded
//! ([`TcpOptions::max_frame`]) before any allocation, and `to` must be a
//! node this process hosts. A malformed frame poisons only its connection —
//! the reader logs and hangs up, exactly what a real deployment does with a
//! misbehaving peer. The *payload* stays opaque here; protocol-level
//! validation of untrusted bytes happens in `atom_runtime::wire`, which
//! treats every decoded field as adversarial.
//!
//! ## Lifecycle
//!
//! [`TcpTransport::bind`] starts the listener (an address of port `0`
//! picks a free port, see [`TcpTransport::local_addr`]),
//! [`TcpTransport::connect_peers`] establishes outbound streams with a
//! retry loop so processes may start in any order, and
//! [`TcpTransport::shutdown`] tears the sockets down and joins the
//! listener. Sends that hit a dead peer panic with context: the runtime
//! catches the panic at each protocol send site and converts it into a
//! failure of the affected round, which is strictly better than silently
//! dropping protocol traffic and deadlocking the round.

use std::borrow::Cow;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::transport::{DeliveryHook, Envelope, NodeId, TrafficStats, Transport};

const FRAME_MAGIC: u32 = 0x4D4F_5441; // "ATOM" in little-endian byte order.
const FRAME_VERSION: u8 = 1;
const FRAME_HEADER_LEN: usize = 4 + 1 + 4 + 4 + 2 + 4;
const MAX_LABEL_LEN: usize = 1024;

/// Tuning knobs of a [`TcpTransport`].
#[derive(Clone, Debug)]
pub struct TcpOptions {
    /// Total retry budget when establishing an outbound connection to a
    /// peer process (peers may start later than we do).
    pub connect_timeout: Duration,
    /// Upper bound on a frame's payload length; larger claims are rejected
    /// before any allocation.
    pub max_frame: usize,
    /// Sets `TCP_NODELAY` on every stream (mixing batches are
    /// latency-sensitive and already coalesced).
    pub nodelay: bool,
}

impl Default for TcpOptions {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(10),
            max_frame: 64 << 20,
            nodelay: true,
        }
    }
}

struct TcpInner {
    /// `owner[node]` is the index (into `peer_addrs`) of the process
    /// hosting `node`'s mailbox. Mutable because fleet recovery reassigns
    /// a dead process's nodes to survivors ([`TcpTransport::set_owner`]);
    /// the vector's length — the node-id space — never changes.
    owner: Mutex<Vec<usize>>,
    /// Cached `owner.len()`, so the hot paths never lock just for bounds.
    num_nodes: usize,
    /// This process's index.
    me: usize,
    /// One outbound stream slot per process (slot `me` stays empty).
    outbound: Vec<Mutex<Option<TcpStream>>>,
    /// Listen address of every process. Entries other than `me`'s may be
    /// filled in after construction ([`TcpTransport::set_peer_addr`]) so a
    /// mesh can bind every listener on port `0` first and exchange the
    /// resolved addresses afterwards — no reserve-then-rebind races.
    peer_addrs: Mutex<Vec<String>>,
    /// Clones of the accepted inbound streams, so `shutdown` can force the
    /// detached reader threads off their blocking reads (without this, an
    /// in-process "restart" leaves the old readers absorbing frames meant
    /// for the new transport on the same address).
    inbound: Mutex<Vec<TcpStream>>,
    /// Join handles of the per-connection reader threads, pushed by the
    /// accept loop and joined by `shutdown` after the inbound streams are
    /// closed. Without the join there is a teardown window where a reader
    /// whose peer never closes its half outlives the transport.
    readers: Mutex<Vec<JoinHandle<()>>>,
    /// Readers currently running (incremented before spawn, decremented
    /// at reader exit) — lets teardown tests assert none leaked.
    live_readers: AtomicUsize,
    mailboxes: Vec<Mutex<VecDeque<Envelope>>>,
    sent: Vec<Mutex<TrafficStats>>,
    received: Vec<Mutex<TrafficStats>>,
    hook: Mutex<Option<DeliveryHook>>,
    options: TcpOptions,
    closing: AtomicBool,
}

impl TcpInner {
    fn deliver_local(&self, envelope: Envelope) {
        let to = envelope.to;
        self.mailboxes[to].lock().push_back(envelope);
        let hook = self.hook.lock().clone();
        if let Some(hook) = hook {
            hook(to);
        }
    }

    fn credit_received(&self, node: NodeId, envelopes: &[Envelope]) {
        if envelopes.is_empty() {
            return;
        }
        let mut stats = self.received[node].lock();
        for envelope in envelopes {
            stats.messages += 1;
            stats.bytes += envelope.payload.len() as u64;
        }
    }
}

/// A [`Transport`] whose nodes are partitioned across OS processes. See the
/// module docs for the frame layout and lifecycle.
pub struct TcpTransport {
    inner: Arc<TcpInner>,
    local_addr: SocketAddr,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl TcpTransport {
    /// Binds the listener of process `me` and starts accepting inbound
    /// connections.
    ///
    /// `peer_addrs[p]` is the listen address of process `p` (as passed to
    /// `TcpListener::bind`; `me`'s entry may use port `0` to pick a free
    /// port). `owner[node]` names the process hosting each node id; every
    /// node whose owner is `me` gets a local mailbox.
    pub fn bind(
        peer_addrs: Vec<String>,
        owner: Vec<usize>,
        me: usize,
        options: TcpOptions,
    ) -> io::Result<Self> {
        assert!(me < peer_addrs.len(), "own process index out of range");
        assert!(
            owner.iter().all(|&p| p < peer_addrs.len()),
            "node owner names an unknown process"
        );
        let listener = TcpListener::bind(&peer_addrs[me])?;
        let local_addr = listener.local_addr()?;
        let nodes = owner.len();
        let inner = Arc::new(TcpInner {
            owner: Mutex::new(owner),
            num_nodes: nodes,
            me,
            outbound: (0..peer_addrs.len()).map(|_| Mutex::new(None)).collect(),
            peer_addrs: Mutex::new(peer_addrs),
            inbound: Mutex::new(Vec::new()),
            readers: Mutex::new(Vec::new()),
            live_readers: AtomicUsize::new(0),
            mailboxes: (0..nodes).map(|_| Mutex::new(VecDeque::new())).collect(),
            sent: (0..nodes)
                .map(|_| Mutex::new(TrafficStats::default()))
                .collect(),
            received: (0..nodes)
                .map(|_| Mutex::new(TrafficStats::default()))
                .collect(),
            hook: Mutex::new(None),
            options,
            closing: AtomicBool::new(false),
        });
        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::spawn(move || accept_loop(listener, accept_inner));
        Ok(Self {
            inner,
            local_addr,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// Binds on a free loopback port with peer addresses unknown:
    /// `processes` empty slots, to be filled via
    /// [`TcpTransport::set_peer_addr`] once the other listeners have bound.
    /// This is how in-process tests and harnesses build a race-free mesh;
    /// multi-process deployments know their addresses up front and use
    /// [`TcpTransport::bind`].
    pub fn bind_any(
        processes: usize,
        owner: Vec<usize>,
        me: usize,
        options: TcpOptions,
    ) -> io::Result<Self> {
        let mut peer_addrs = vec![String::new(); processes];
        peer_addrs[me] = "127.0.0.1:0".to_string();
        let transport = Self::bind(peer_addrs, owner, me, options)?;
        transport.set_peer_addr(me, transport.local_addr().to_string());
        Ok(transport)
    }

    /// Records the (resolved) listen address of peer `process`, replacing
    /// whatever was configured. Outbound connections established later use
    /// the new address; existing streams are untouched.
    pub fn set_peer_addr(&self, process: usize, addr: String) {
        self.inner.peer_addrs.lock()[process] = addr;
    }

    /// The address the listener actually bound (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// This process's index.
    pub fn process_index(&self) -> usize {
        self.inner.me
    }

    /// Node ids hosted by this process.
    pub fn local_nodes(&self) -> Vec<NodeId> {
        let owner = self.inner.owner.lock();
        (0..owner.len())
            .filter(|&n| owner[n] == self.inner.me)
            .collect()
    }

    /// Reassigns the mailbox of `node` to `process`. Fleet recovery uses
    /// this to hand a dead process's nodes to survivors (and to hand them
    /// back when the process rejoins); envelopes already queued in the
    /// local mailbox stay put, so reassign between rounds and drain first.
    pub fn set_owner(&self, node: NodeId, process: usize) {
        assert!(node < self.inner.num_nodes, "unknown node in set_owner");
        assert!(
            process < self.inner.outbound.len(),
            "unknown process in set_owner"
        );
        self.inner.owner.lock()[node] = process;
    }

    /// The process currently hosting `node`'s mailbox.
    pub fn owner_of(&self, node: NodeId) -> usize {
        self.inner.owner.lock()[node]
    }

    /// Sends an envelope straight to `process`, regardless of who owns the
    /// destination mailbox. Recovery handshakes need this: a coordinator
    /// answering a rejoin request must reach the *restarted* process even
    /// while the node's mailbox is still assigned to a survivor.
    pub fn send_to_process(
        &self,
        process: usize,
        from: NodeId,
        to: NodeId,
        label: Cow<'static, str>,
        payload: Vec<u8>,
    ) {
        assert!(
            from < self.inner.num_nodes && to < self.inner.num_nodes,
            "unknown node in TCP send"
        );
        let envelope = Envelope {
            from,
            to,
            label,
            payload,
            delay: Duration::ZERO,
        };
        if process == self.inner.me {
            self.inner.deliver_local(envelope);
            return;
        }
        send_remote(&self.inner, process, &envelope);
    }

    /// Best-effort variant of [`send_to_process`](Self::send_to_process):
    /// writes the envelope only if an outbound stream to `process` is
    /// already established — it never connects, never retries and never
    /// panics. Returns whether the frame was written. Recovery uses this to
    /// courtesy-copy plans to convicted processes: a slow-but-alive victim
    /// still holds its connection open and learns of its eviction, while a
    /// genuinely crashed one costs nothing (no connect-timeout stall).
    pub fn try_send_to_process(
        &self,
        process: usize,
        from: NodeId,
        to: NodeId,
        label: Cow<'static, str>,
        payload: Vec<u8>,
    ) -> bool {
        assert!(
            from < self.inner.num_nodes && to < self.inner.num_nodes,
            "unknown node in TCP send"
        );
        let envelope = Envelope {
            from,
            to,
            label,
            payload,
            delay: Duration::ZERO,
        };
        if process == self.inner.me {
            self.inner.deliver_local(envelope);
            return true;
        }
        let mut slot = self.inner.outbound[process].lock();
        let Some(stream) = slot.as_mut() else {
            return false;
        };
        match write_frame(stream, &envelope) {
            Ok(()) => true,
            Err(_) => {
                // Half-dead socket: clear it so a later authoritative send
                // goes through the reconnect-and-repair path cleanly.
                *slot = None;
                false
            }
        }
    }

    /// Drops the outbound stream to `process`, forcing the next send to
    /// reconnect. Call when a peer is known to have restarted on the same
    /// address: the old half-dead socket accepts one buffered write before
    /// erroring, so the lazy in-band repair alone would silently lose the
    /// first frame to the restarted process.
    pub fn reset_peer(&self, process: usize) {
        assert!(
            process < self.inner.outbound.len(),
            "unknown process in reset_peer"
        );
        if let Some(stream) = self.inner.outbound[process].lock().take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// Eagerly connects to every peer process, retrying each until
    /// [`TcpOptions::connect_timeout`] elapses (peers may not have bound
    /// their listeners yet). Sends connect lazily as a fallback, but
    /// calling this first keeps connection churn off the mixing path.
    pub fn connect_peers(&self) -> io::Result<()> {
        let processes = self.inner.peer_addrs.lock().len();
        for process in 0..processes {
            if process != self.inner.me {
                connect_retry(&self.inner, process)?;
            }
        }
        Ok(())
    }

    /// Closes every stream and joins the listener thread. Idempotent; also
    /// run on drop.
    pub fn shutdown(&self) {
        if self.inner.closing.swap(true, Ordering::SeqCst) {
            return;
        }
        for slot in &self.inner.outbound {
            if let Some(stream) = slot.lock().take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        for stream in self.inner.inbound.lock().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // Wake the accept loop so it observes `closing`.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.lock().take() {
            let _ = handle.join();
        }
        // With the accept thread gone, no new readers can appear; join
        // the existing ones. Their streams were all shut down above, so
        // each blocking read has already returned (or will immediately),
        // even when the remote peer never closes its half.
        let readers: Vec<JoinHandle<()>> = self.inner.readers.lock().drain(..).collect();
        for handle in readers {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// First retry delay of the exponential backoff in [`connect_retry`].
const CONNECT_BACKOFF_BASE_MS: u64 = 5;
/// Ceiling on a single backoff sleep.
const CONNECT_BACKOFF_CAP_MS: u64 = 200;

/// Backoff before retry `attempt` (0-based): `min(base · 2ᵃ, cap)` plus a
/// deterministic jitter of up to half that, de-phased per `(me, peer)`
/// pair so a fleet restarting in lockstep does not hammer one listener at
/// synchronized instants.
fn connect_backoff(me: usize, peer: usize, attempt: u32) -> Duration {
    let exp = CONNECT_BACKOFF_BASE_MS
        .saturating_mul(1u64 << attempt.min(16))
        .min(CONNECT_BACKOFF_CAP_MS);
    // Cheap multiplicative hash — only the spread matters, not quality.
    let hash = (me as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((peer as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
        .wrapping_add((attempt as u64).wrapping_mul(0x1656_67B1_9E37_79F9));
    Duration::from_millis(exp + hash % (exp / 2 + 1))
}

fn connect_retry(inner: &Arc<TcpInner>, process: usize) -> io::Result<()> {
    let mut slot = inner.outbound[process].lock();
    if slot.is_some() {
        return Ok(());
    }
    let deadline = Instant::now() + inner.options.connect_timeout;
    let mut attempt = 0u32;
    loop {
        // Re-read each attempt: the address may be filled in concurrently
        // by `set_peer_addr` while we retry.
        let addr = inner.peer_addrs.lock()[process].clone();
        match TcpStream::connect(&addr) {
            Ok(stream) => {
                if inner.options.nodelay {
                    let _ = stream.set_nodelay(true);
                }
                *slot = Some(stream);
                return Ok(());
            }
            Err(error) => {
                atom_obs::count("net.tcp.connect_retries", 1);
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        error.kind(),
                        format!("connecting to peer process {process} at {addr}: {error}"),
                    ));
                }
                std::thread::sleep(connect_backoff(inner.me, process, attempt));
                attempt += 1;
            }
        }
    }
}

/// Writes `envelope` to the outbound stream of `process`, establishing it
/// if absent. A write failure means the peer died since the stream was
/// established (or the peer restarted, leaving a half-dead socket): the
/// slot is cleared and ONE reconnect-and-resend repair is attempted — a
/// restarted peer listening on the same address picks the frame up — before
/// panicking like any other dead-peer send.
fn send_remote(inner: &Arc<TcpInner>, process: usize, envelope: &Envelope) {
    if inner.outbound[process].lock().is_none() {
        connect_retry(inner, process).unwrap_or_else(|error| panic!("tcp transport: {error}"));
    }
    {
        let mut slot = inner.outbound[process].lock();
        let stream = slot.as_mut().expect("peer stream established above");
        match write_frame(stream, envelope) {
            Ok(()) => return,
            Err(_) => {
                atom_obs::count("net.tcp.send_repairs", 1);
                *slot = None;
            }
        }
    }
    connect_retry(inner, process).unwrap_or_else(|error| {
        panic!(
            "tcp transport: sending {} -> {} via process {process} failed and \
             the peer is unreachable: {error}",
            envelope.from, envelope.to
        )
    });
    let mut slot = inner.outbound[process].lock();
    let stream = slot.as_mut().expect("peer stream established above");
    write_frame(stream, envelope).unwrap_or_else(|error| {
        panic!(
            "tcp transport: sending {} -> {} via process {process} failed after \
             reconnect: {error}",
            envelope.from, envelope.to
        )
    });
}

fn accept_loop(listener: TcpListener, inner: Arc<TcpInner>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if inner.closing.load(Ordering::SeqCst) {
                    return;
                }
                if inner.options.nodelay {
                    let _ = stream.set_nodelay(true);
                }
                // Without a registered clone, `shutdown` could not force
                // this reader off its blocking read and the join below
                // would hang on a peer that never closes its half — so a
                // failed clone means no reader at all.
                match stream.try_clone() {
                    Ok(clone) => inner.inbound.lock().push(clone),
                    Err(_) => {
                        let _ = stream.shutdown(Shutdown::Both);
                        continue;
                    }
                }
                let reader_inner = Arc::clone(&inner);
                // Readers are joined at teardown: `shutdown` closes the
                // registered stream clones (forcing EOF even under a peer
                // that holds its half open), then drains `readers`.
                inner.live_readers.fetch_add(1, Ordering::SeqCst);
                let handle = std::thread::spawn(move || {
                    reader_loop(stream, Arc::clone(&reader_inner));
                    reader_inner.live_readers.fetch_sub(1, Ordering::SeqCst);
                });
                inner.readers.lock().push(handle);
            }
            Err(_) => {
                if inner.closing.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn reader_loop(mut stream: TcpStream, inner: Arc<TcpInner>) {
    loop {
        match read_frame(&mut stream, &inner.options) {
            Ok(Some(envelope)) => {
                if inner.closing.load(Ordering::SeqCst) {
                    return;
                }
                // Buffer frames for ANY node of the deployment, not just
                // currently-hosted ones: during recovery a peer may send to
                // a mailbox this process is about to take over (ownership
                // reassignment), and rejoin responses are addressed
                // directly. Only out-of-range node ids poison the
                // connection.
                if envelope.to >= inner.num_nodes {
                    eprintln!(
                        "atom-net: dropping connection after a frame for unknown \
                         node {} at process {}",
                        envelope.to, inner.me
                    );
                    return;
                }
                inner.deliver_local(envelope);
            }
            Ok(None) => return, // clean EOF
            Err(error) => {
                if !inner.closing.load(Ordering::SeqCst) {
                    eprintln!("atom-net: dropping connection on malformed frame: {error}");
                }
                return;
            }
        }
    }
}

fn write_frame(stream: &mut TcpStream, envelope: &Envelope) -> io::Result<()> {
    let label = envelope.label.as_bytes();
    assert!(label.len() <= MAX_LABEL_LEN, "envelope label too long");
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + label.len() + envelope.payload.len());
    frame.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    frame.push(FRAME_VERSION);
    frame.extend_from_slice(&(envelope.from as u32).to_le_bytes());
    frame.extend_from_slice(&(envelope.to as u32).to_le_bytes());
    frame.extend_from_slice(&(label.len() as u16).to_le_bytes());
    frame.extend_from_slice(&(envelope.payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(label);
    frame.extend_from_slice(&envelope.payload);
    stream.write_all(&frame)
}

/// Reads one frame; `Ok(None)` on clean EOF at a frame boundary. Length
/// fields are untrusted: both are bounds-checked before any allocation.
fn read_frame(stream: &mut TcpStream, options: &TcpOptions) -> io::Result<Option<Envelope>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    match stream.read_exact(&mut header) {
        Ok(()) => {}
        Err(error) if error.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(error) => return Err(error),
    }
    let malformed = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    if u32::from_le_bytes(header[0..4].try_into().unwrap()) != FRAME_MAGIC {
        return Err(malformed("bad frame magic"));
    }
    if header[4] != FRAME_VERSION {
        return Err(malformed("unsupported frame version"));
    }
    let from = u32::from_le_bytes(header[5..9].try_into().unwrap()) as usize;
    let to = u32::from_le_bytes(header[9..13].try_into().unwrap()) as usize;
    let label_len = u16::from_le_bytes(header[13..15].try_into().unwrap()) as usize;
    let payload_len = u32::from_le_bytes(header[15..19].try_into().unwrap()) as usize;
    if label_len > MAX_LABEL_LEN {
        return Err(malformed("frame label too long"));
    }
    if payload_len > options.max_frame {
        return Err(malformed("frame payload exceeds max_frame"));
    }
    let mut label = vec![0u8; label_len];
    stream.read_exact(&mut label)?;
    let label = String::from_utf8(label).map_err(|_| malformed("frame label is not UTF-8"))?;
    let mut payload = vec![0u8; payload_len];
    stream.read_exact(&mut payload)?;
    Ok(Some(Envelope {
        from,
        to,
        label: Cow::Owned(label),
        payload,
        delay: Duration::ZERO,
    }))
}

impl Transport for TcpTransport {
    fn nodes(&self) -> usize {
        self.inner.num_nodes
    }

    fn is_local(&self, node: NodeId) -> bool {
        node < self.inner.num_nodes && self.inner.owner.lock()[node] == self.inner.me
    }

    fn send(
        &self,
        from: NodeId,
        to: NodeId,
        label: Cow<'static, str>,
        payload: Vec<u8>,
    ) -> Duration {
        assert!(
            from < self.nodes() && to < self.nodes(),
            "unknown node in TCP send"
        );
        {
            let mut stats = self.inner.sent[from].lock();
            stats.messages += 1;
            stats.bytes += payload.len() as u64;
        }
        let envelope = Envelope {
            from,
            to,
            label,
            payload,
            delay: Duration::ZERO,
        };
        let process = self.inner.owner.lock()[to];
        if atom_obs::enabled() {
            let label = &envelope.label;
            atom_obs::count(&format!("net.tcp.frames.{label}"), 1);
            atom_obs::count(
                &format!("net.tcp.bytes.{label}"),
                envelope.payload.len() as u64,
            );
            atom_obs::count(&format!("net.tcp.to_process.{process}.frames"), 1);
        }
        if process == self.inner.me {
            self.inner.deliver_local(envelope);
            return Duration::ZERO;
        }
        send_remote(&self.inner, process, &envelope);
        Duration::ZERO
    }

    fn try_receive(&self, node: NodeId) -> Option<Envelope> {
        let envelope = self.inner.mailboxes[node].lock().pop_front();
        if let Some(envelope) = &envelope {
            self.inner
                .credit_received(node, std::slice::from_ref(envelope));
        }
        envelope
    }

    fn drain(&self, node: NodeId) -> Vec<Envelope> {
        let drained: Vec<Envelope> = {
            let mut mailbox = self.inner.mailboxes[node].lock();
            mailbox.drain(..).collect()
        };
        self.inner.credit_received(node, &drained);
        drained
    }

    fn pending(&self, node: NodeId) -> usize {
        self.inner.mailboxes[node].lock().len()
    }

    fn sent_stats(&self, node: NodeId) -> TrafficStats {
        *self.inner.sent[node].lock()
    }

    fn received_stats(&self, node: NodeId) -> TrafficStats {
        *self.inner.received[node].lock()
    }

    fn set_delivery_hook(&self, hook: Option<DeliveryHook>) {
        *self.inner.hook.lock() = hook;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two transports in one process, exercising both the loopback and the
    /// socket path. Both listeners bind port 0 and exchange resolved
    /// addresses afterwards, so concurrent tests cannot race on ports.
    fn pair(owner: Vec<usize>) -> (TcpTransport, TcpTransport) {
        let a = TcpTransport::bind_any(2, owner.clone(), 0, TcpOptions::default()).unwrap();
        let b = TcpTransport::bind_any(2, owner, 1, TcpOptions::default()).unwrap();
        a.set_peer_addr(1, b.local_addr().to_string());
        b.set_peer_addr(0, a.local_addr().to_string());
        a.connect_peers().unwrap();
        b.connect_peers().unwrap();
        (a, b)
    }

    fn wait_pending(transport: &TcpTransport, node: NodeId) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while Transport::pending(transport, node) == 0 {
            assert!(Instant::now() < deadline, "message never arrived");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn local_and_remote_sends_deliver() {
        let (a, b) = pair(vec![0, 0, 1]);
        // Loopback within process 0.
        Transport::send(&a, 0, 1, "local".into(), vec![1, 2]);
        let envelope = Transport::try_receive(&a, 1).unwrap();
        assert_eq!(envelope.payload, vec![1, 2]);
        assert_eq!(envelope.from, 0);
        // Across the socket to process 1.
        Transport::send(&a, 0, 2, "remote".into(), vec![3, 4, 5]);
        wait_pending(&b, 2);
        let envelope = Transport::try_receive(&b, 2).unwrap();
        assert_eq!(envelope.label, "remote");
        assert_eq!(envelope.payload, vec![3, 4, 5]);
        assert_eq!(envelope.delay, Duration::ZERO);
        // Metering: sent credited at process 0, received at process 1.
        assert_eq!(Transport::sent_stats(&a, 0).messages, 2);
        assert_eq!(Transport::received_stats(&b, 2).bytes, 3);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn delivery_hook_fires_for_remote_arrivals() {
        let (a, b) = pair(vec![0, 1]);
        let hits = Arc::new(Mutex::new(Vec::new()));
        let sink = hits.clone();
        Transport::set_delivery_hook(&b, Some(Arc::new(move |node| sink.lock().push(node))));
        Transport::send(&a, 0, 1, "hooked".into(), vec![9]);
        let deadline = Instant::now() + Duration::from_secs(5);
        while hits.lock().is_empty() {
            assert!(Instant::now() < deadline, "hook never fired");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(*hits.lock(), vec![1]);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn malformed_frames_poison_only_their_connection() {
        let (a, b) = pair(vec![0, 1]);
        // A raw connection writing garbage: the reader must hang up without
        // panicking or allocating the claimed length.
        let mut rogue = TcpStream::connect(b.local_addr()).unwrap();
        let mut bogus = Vec::new();
        bogus.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        bogus.push(FRAME_VERSION);
        bogus.extend_from_slice(&0u32.to_le_bytes()); // from
        bogus.extend_from_slice(&1u32.to_le_bytes()); // to
        bogus.extend_from_slice(&0u16.to_le_bytes()); // label_len
        bogus.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd payload_len
        rogue.write_all(&bogus).unwrap();
        // The healthy connection keeps working.
        Transport::send(&a, 0, 1, "still-fine".into(), vec![7]);
        wait_pending(&b, 1);
        assert_eq!(Transport::drain(&b, 1).len(), 1);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn frames_for_unknown_nodes_are_rejected_but_unowned_ones_buffer() {
        let (a, b) = pair(vec![0, 1]);
        // A frame for a node id outside the deployment poisons its
        // connection.
        let mut rogue = TcpStream::connect(b.local_addr()).unwrap();
        let envelope = Envelope {
            from: 1,
            to: 99,
            label: "unknown".into(),
            payload: vec![1],
            delay: Duration::ZERO,
        };
        write_frame(&mut rogue, &envelope).unwrap();
        // A frame for a valid node this process does NOT currently own is
        // buffered — recovery reassigns mailboxes between rounds and the
        // frame may arrive first.
        let mut early = TcpStream::connect(b.local_addr()).unwrap();
        let envelope = Envelope {
            from: 1,
            to: 0,
            label: "early".into(),
            payload: vec![2],
            delay: Duration::ZERO,
        };
        write_frame(&mut early, &envelope).unwrap();
        wait_pending(&b, 0);
        assert_eq!(Transport::drain(&b, 0)[0].payload, vec![2]);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn ownership_handoff_redirects_sends() {
        // Nodes 1 and 2 start on process 1; after the handoff of node 2,
        // process 0 delivers to itself locally.
        let (a, b) = pair(vec![0, 1, 1]);
        Transport::send(&a, 0, 2, "before".into(), vec![1]);
        wait_pending(&b, 2);
        assert_eq!(Transport::drain(&b, 2).len(), 1);
        assert!(!Transport::is_local(&a, 2));
        a.set_owner(2, 0);
        assert!(Transport::is_local(&a, 2));
        assert_eq!(a.owner_of(2), 0);
        assert_eq!(a.local_nodes(), vec![0, 2]);
        Transport::send(&a, 0, 2, "after".into(), vec![2]);
        assert_eq!(Transport::drain(&a, 2)[0].payload, vec![2]);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn try_send_is_best_effort_and_never_connects() {
        let (a, b) = pair(vec![0, 1]);
        // Established stream: the frame goes through like a normal send.
        assert!(a.try_send_to_process(1, 0, 0, "courtesy".into(), vec![9]));
        wait_pending(&b, 0);
        assert_eq!(Transport::drain(&b, 0)[0].payload, vec![9]);
        // Local delivery always succeeds.
        assert!(a.try_send_to_process(0, 0, 1, "loop".into(), vec![3]));
        assert_eq!(Transport::try_receive(&a, 1).unwrap().payload, vec![3]);
        // No established stream (and nobody listening): returns false
        // immediately instead of spinning in the connect-retry loop.
        a.reset_peer(1);
        b.shutdown();
        let start = Instant::now();
        assert!(!a.try_send_to_process(1, 0, 0, "courtesy".into(), vec![9]));
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "blocked on connect"
        );
        a.shutdown();
    }

    #[test]
    fn send_to_process_bypasses_the_owner_map() {
        let (a, b) = pair(vec![0, 1]);
        // Node 0's mailbox is owned by process 0, but the direct-addressed
        // send reaches process 1's buffer for it anyway.
        a.send_to_process(1, 0, 0, "direct".into(), vec![7]);
        wait_pending(&b, 0);
        assert_eq!(Transport::drain(&b, 0)[0].payload, vec![7]);
        // Loopback path.
        a.send_to_process(0, 0, 0, "loop".into(), vec![8]);
        assert_eq!(Transport::drain(&a, 0)[0].payload, vec![8]);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn send_repairs_a_dead_stream_to_a_restarted_peer() {
        let owner = vec![0usize, 1];
        let a = TcpTransport::bind_any(2, owner.clone(), 0, TcpOptions::default()).unwrap();
        let b = TcpTransport::bind_any(2, owner.clone(), 1, TcpOptions::default()).unwrap();
        a.set_peer_addr(1, b.local_addr().to_string());
        a.connect_peers().unwrap();
        Transport::send(&a, 0, 1, "first".into(), vec![1]);
        wait_pending(&b, 1);
        // The peer process "restarts": same address, fresh listener. The
        // old stream dies with it.
        let addr = b.local_addr();
        b.shutdown();
        drop(b);
        let b2 = TcpTransport::bind(
            vec![String::new(), addr.to_string()],
            owner,
            1,
            TcpOptions::default(),
        )
        .unwrap();
        // The first send after the restart hits the dead socket (possibly
        // only on the second write, once the kernel notices the reset);
        // the repair path reconnects and the frame arrives.
        let deadline = Instant::now() + Duration::from_secs(5);
        while Transport::pending(&b2, 1) == 0 {
            assert!(Instant::now() < deadline, "repair never delivered");
            Transport::send(&a, 0, 1, "after-restart".into(), vec![2]);
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(Transport::try_receive(&b2, 1).unwrap().payload, vec![2]);
        a.shutdown();
        b2.shutdown();
    }

    #[test]
    fn connect_backoff_grows_exponentially_to_a_cap() {
        // Deterministic: delay(n) ∈ [exp, 1.5·exp] with exp = min(5·2ⁿ, 200).
        for attempt in 0..24u32 {
            let exp = CONNECT_BACKOFF_BASE_MS
                .saturating_mul(1u64 << attempt.min(16))
                .min(CONNECT_BACKOFF_CAP_MS);
            for (me, peer) in [(0usize, 1usize), (3, 7), (11, 2)] {
                let delay = connect_backoff(me, peer, attempt).as_millis() as u64;
                assert!(
                    delay >= exp && delay <= exp + exp / 2,
                    "attempt {attempt}: delay {delay} outside [{exp}, {}]",
                    exp + exp / 2
                );
            }
        }
        // The jitter actually de-phases distinct processes somewhere.
        assert!((0..8).any(|me| connect_backoff(me, 1, 3) != connect_backoff(me + 8, 1, 3)));
    }

    #[test]
    fn failed_connects_meter_retries() {
        atom_obs::set_enabled(true);
        let before = retries_counter();
        // Nobody listens on the peer address: the connect loop must retry
        // (metering each attempt) until the budget expires.
        let options = TcpOptions {
            connect_timeout: Duration::from_millis(60),
            ..TcpOptions::default()
        };
        let a = TcpTransport::bind_any(2, vec![0, 1], 0, options).unwrap();
        // A port from the dynamic range with no listener; connecting fails
        // fast on loopback.
        a.set_peer_addr(1, "127.0.0.1:59999".to_string());
        assert!(a.connect_peers().is_err());
        let after = retries_counter();
        assert!(
            after > before,
            "net.tcp.connect_retries must increment ({before} -> {after})"
        );
        a.shutdown();
        atom_obs::set_enabled(false);
    }

    fn retries_counter() -> u64 {
        atom_obs::counter_snapshot()
            .into_iter()
            .find(|(name, _)| name == "net.tcp.connect_retries")
            .map(|(_, value)| value)
            .unwrap_or(0)
    }

    #[test]
    fn shutdown_is_idempotent_and_joins_the_listener() {
        let (a, b) = pair(vec![0, 1]);
        a.shutdown();
        a.shutdown();
        b.shutdown();
    }

    /// Regression: reader threads used to be detached, so a peer that
    /// held its half of the connection open could leave a reader alive
    /// (blocked or draining) after `shutdown` returned. Readers are now
    /// joined, so teardown must return promptly with zero readers left —
    /// even under a rogue peer that never closes and never reads.
    #[test]
    fn shutdown_joins_readers_despite_a_peer_that_never_closes() {
        let a = TcpTransport::bind_any(2, vec![0, 1], 0, TcpOptions::default()).unwrap();
        // A rogue "peer": sends one valid frame to prove its reader is
        // live, then sits on the open socket without closing either half.
        let mut rogue = TcpStream::connect(a.local_addr()).unwrap();
        let envelope = Envelope {
            from: 1,
            to: 0,
            label: "rogue".into(),
            payload: vec![9; 16],
            delay: Duration::ZERO,
        };
        write_frame(&mut rogue, &envelope).unwrap();
        wait_pending(&a, 0);
        assert_eq!(a.inner.live_readers.load(Ordering::SeqCst), 1);

        let start = Instant::now();
        a.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "shutdown hung on the reader join"
        );
        assert_eq!(
            a.inner.live_readers.load(Ordering::SeqCst),
            0,
            "a reader thread outlived transport teardown"
        );
        assert!(
            a.inner.readers.lock().is_empty(),
            "join handles not drained"
        );
        drop(rogue);
    }
}
