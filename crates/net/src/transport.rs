//! The [`Transport`] abstraction and its in-process backend.
//!
//! Atom's servers communicate over authenticated channels (TLS in the
//! paper's deployment). This reproduction routes every protocol message
//! through the [`Transport`] trait — a mailbox-per-node send/receive API
//! with traffic metering — so the same engine code runs against:
//!
//! * [`InMemoryNetwork`] (this module): a single-process backend whose
//!   sends are metered (bytes and message counts per node), charged
//!   propagation latency from a [`LatencyModel`] and transmission time
//!   from the sender's bandwidth class, and delivered through a
//!   lock-protected mailbox.
//! * [`TcpTransport`](crate::tcp::TcpTransport): a multi-process backend
//!   shipping the same envelopes as length-delimited frames over blocking
//!   TCP sockets.
//!
//! A [`VirtualClock`] accumulates the simulated network time along the
//! protocol's critical path, which is what the end-to-end latency figures
//! (Fig. 9–11) report on top of measured compute time.

use std::borrow::Cow;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::latency::{transmission_time, LatencyModel, ServerClass};

/// Identifies a protocol endpoint (a server, a trustee, or the orchestrator).
pub type NodeId = usize;

/// An addressed, metered protocol message.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Application-level label (used for tracing and per-phase accounting).
    /// Static labels — the common case on the mixing hot path — are borrowed
    /// rather than allocated per message.
    pub label: Cow<'static, str>,
    /// Serialized payload.
    pub payload: Vec<u8>,
    /// Simulated network delay this message experienced.
    pub delay: Duration,
}

/// Aggregate traffic statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Total messages sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
}

/// Callback a [`Transport`] invokes every time an envelope lands in one of
/// its *local* mailboxes (whether the sender was local or a remote peer).
/// The runtime registers one to turn arrivals into scheduler wake-ups
/// instead of polling; transports with no hook registered just enqueue.
pub type DeliveryHook = Arc<dyn Fn(NodeId) + Send + Sync>;

/// A mailbox-per-node message substrate.
///
/// Endpoints are dense ids `0..nodes()`. A backend may host only a subset
/// of them locally ([`Transport::is_local`]); sends to non-local nodes are
/// forwarded to the backend that hosts them (over TCP, say), and only local
/// mailboxes can be received from. All methods are callable from any
/// thread.
///
/// Metering contract (shared by every backend): sent-side statistics are
/// credited when [`Transport::send`] accepts the payload; received-side
/// statistics only when an envelope is actually handed out through
/// [`Transport::try_receive`] or [`Transport::drain`], so in-flight
/// messages are never counted as received.
///
/// The returned [`Duration`] of a send is the *simulated* network delay
/// charged to the message (propagation + transmission under the backend's
/// latency model). Real-network backends return [`Duration::ZERO`]: their
/// cost shows up on the wall clock instead, and virtual-clock accounting
/// stays with the caller (the runtime charges hops from its own
/// [`LatencyModel`], so simulated latency figures are identical across
/// backends).
pub trait Transport: Send + Sync {
    /// Number of endpoints.
    fn nodes(&self) -> usize;

    /// Whether `node`'s mailbox lives in this process.
    fn is_local(&self, node: NodeId) -> bool;

    /// Sends `payload` from `from` to `to`, returning the simulated delay
    /// charged to the message.
    fn send(
        &self,
        from: NodeId,
        to: NodeId,
        label: Cow<'static, str>,
        payload: Vec<u8>,
    ) -> Duration;

    /// Receives the next envelope queued for local node `node`, if any.
    fn try_receive(&self, node: NodeId) -> Option<Envelope>;

    /// Drains every queued envelope for local node `node`.
    fn drain(&self, node: NodeId) -> Vec<Envelope>;

    /// Number of envelopes waiting for local node `node`.
    fn pending(&self, node: NodeId) -> usize;

    /// Traffic sent by `node` so far (local nodes only).
    fn sent_stats(&self, node: NodeId) -> TrafficStats;

    /// Traffic delivered to `node` so far (local nodes only).
    fn received_stats(&self, node: NodeId) -> TrafficStats;

    /// Registers (or, with `None`, removes) the delivery hook. At most one
    /// hook is active; setting replaces. The hook may be invoked
    /// concurrently from multiple threads and must not call back into the
    /// transport.
    fn set_delivery_hook(&self, hook: Option<DeliveryHook>);
}

/// A monotonically advancing virtual clock tracking simulated elapsed time.
#[derive(Clone, Debug, Default)]
pub struct VirtualClock {
    now: Arc<Mutex<Duration>>,
}

impl VirtualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> Duration {
        *self.now.lock()
    }

    /// Advances the clock by `delta`.
    pub fn advance(&self, delta: Duration) {
        *self.now.lock() += delta;
    }

    /// Advances the clock to at least `instant`.
    pub fn advance_to(&self, instant: Duration) {
        let mut now = self.now.lock();
        if instant > *now {
            *now = instant;
        }
    }
}

/// Per-node mailbox state.
#[derive(Default)]
struct Mailbox {
    queue: VecDeque<Envelope>,
}

/// Shared state of the in-memory network.
struct NetworkInner {
    latency: LatencyModel,
    classes: Vec<ServerClass>,
    mailboxes: Vec<Mutex<Mailbox>>,
    sent: Vec<Mutex<TrafficStats>>,
    received: Vec<Mutex<TrafficStats>>,
    hook: Mutex<Option<DeliveryHook>>,
}

/// An in-process network connecting `nodes` endpoints.
#[derive(Clone)]
pub struct InMemoryNetwork {
    inner: Arc<NetworkInner>,
}

impl InMemoryNetwork {
    /// Creates a network of `nodes` endpoints with the given latency model
    /// and per-node server classes (`classes.len()` must equal `nodes`, or be
    /// empty to give every node an unmetered-bandwidth class).
    pub fn new(nodes: usize, latency: LatencyModel, classes: Vec<ServerClass>) -> Self {
        let classes = if classes.is_empty() {
            vec![
                ServerClass {
                    bandwidth_mbps: 0,
                    cores: 4
                };
                nodes
            ]
        } else {
            assert_eq!(classes.len(), nodes, "one server class per node required");
            classes
        };
        let inner = NetworkInner {
            latency,
            classes,
            mailboxes: (0..nodes).map(|_| Mutex::new(Mailbox::default())).collect(),
            sent: (0..nodes)
                .map(|_| Mutex::new(TrafficStats::default()))
                .collect(),
            received: (0..nodes)
                .map(|_| Mutex::new(TrafficStats::default()))
                .collect(),
            hook: Mutex::new(None),
        };
        Self {
            inner: Arc::new(inner),
        }
    }

    /// Convenience constructor with no latency and unmetered bandwidth.
    pub fn local(nodes: usize) -> Self {
        Self::new(nodes, LatencyModel::Zero, Vec::new())
    }

    /// Number of endpoints.
    pub fn nodes(&self) -> usize {
        self.inner.mailboxes.len()
    }

    /// Sends `payload` from `from` to `to`, returning the simulated network
    /// delay charged to this message (propagation + transmission).
    ///
    /// Sent-side statistics are credited immediately; received-side
    /// statistics only when the message is actually delivered through
    /// [`Self::try_receive`] or [`Self::drain`], so in-flight messages are
    /// never counted as received.
    pub fn send(
        &self,
        from: NodeId,
        to: NodeId,
        label: impl Into<Cow<'static, str>>,
        payload: Vec<u8>,
    ) -> Duration {
        assert!(from < self.nodes() && to < self.nodes(), "unknown node");
        let label = label.into();
        let bytes = payload.len() as u64;
        let propagation = self.inner.latency.link(from, to);
        let transmission = transmission_time(bytes, self.inner.classes[from].bandwidth_mbps);
        let delay = propagation + transmission;

        if atom_obs::enabled() {
            atom_obs::count(&format!("net.mem.frames.{label}"), 1);
            atom_obs::count(&format!("net.mem.bytes.{label}"), bytes);
        }
        {
            let mut stats = self.inner.sent[from].lock();
            stats.messages += 1;
            stats.bytes += bytes;
        }
        self.inner.mailboxes[to].lock().queue.push_back(Envelope {
            from,
            to,
            label,
            payload,
            delay,
        });
        // Outside the mailbox lock: the hook may fan out into scheduler
        // state that itself sends.
        let hook = self.inner.hook.lock().clone();
        if let Some(hook) = hook {
            hook(to);
        }
        delay
    }

    fn credit_received(&self, node: NodeId, envelopes: &[Envelope]) {
        if envelopes.is_empty() {
            return;
        }
        let mut stats = self.inner.received[node].lock();
        for envelope in envelopes {
            stats.messages += 1;
            stats.bytes += envelope.payload.len() as u64;
        }
    }

    /// Receives the next message queued for `node`, if any.
    pub fn try_receive(&self, node: NodeId) -> Option<Envelope> {
        let envelope = self.inner.mailboxes[node].lock().queue.pop_front();
        if let Some(envelope) = &envelope {
            self.credit_received(node, std::slice::from_ref(envelope));
        }
        envelope
    }

    /// Drains every queued message for `node`.
    pub fn drain(&self, node: NodeId) -> Vec<Envelope> {
        let drained: Vec<Envelope> = {
            let mut mailbox = self.inner.mailboxes[node].lock();
            mailbox.queue.drain(..).collect()
        };
        self.credit_received(node, &drained);
        drained
    }

    /// Number of messages waiting for `node`.
    pub fn pending(&self, node: NodeId) -> usize {
        self.inner.mailboxes[node].lock().queue.len()
    }

    /// Traffic sent by `node` so far.
    pub fn sent_stats(&self, node: NodeId) -> TrafficStats {
        *self.inner.sent[node].lock()
    }

    /// Traffic received by `node` so far.
    pub fn received_stats(&self, node: NodeId) -> TrafficStats {
        *self.inner.received[node].lock()
    }

    /// Total traffic across all nodes.
    pub fn total_sent(&self) -> TrafficStats {
        let mut total = TrafficStats::default();
        for stats in &self.inner.sent {
            let s = stats.lock();
            total.messages += s.messages;
            total.bytes += s.bytes;
        }
        total
    }

    /// The server class of `node`.
    pub fn class(&self, node: NodeId) -> ServerClass {
        self.inner.classes[node]
    }

    /// The latency model in force.
    pub fn latency_model(&self) -> LatencyModel {
        self.inner.latency
    }
}

impl Transport for InMemoryNetwork {
    fn nodes(&self) -> usize {
        InMemoryNetwork::nodes(self)
    }

    fn is_local(&self, _node: NodeId) -> bool {
        true
    }

    fn send(
        &self,
        from: NodeId,
        to: NodeId,
        label: Cow<'static, str>,
        payload: Vec<u8>,
    ) -> Duration {
        InMemoryNetwork::send(self, from, to, label, payload)
    }

    fn try_receive(&self, node: NodeId) -> Option<Envelope> {
        InMemoryNetwork::try_receive(self, node)
    }

    fn drain(&self, node: NodeId) -> Vec<Envelope> {
        InMemoryNetwork::drain(self, node)
    }

    fn pending(&self, node: NodeId) -> usize {
        InMemoryNetwork::pending(self, node)
    }

    fn sent_stats(&self, node: NodeId) -> TrafficStats {
        InMemoryNetwork::sent_stats(self, node)
    }

    fn received_stats(&self, node: NodeId) -> TrafficStats {
        InMemoryNetwork::received_stats(self, node)
    }

    fn set_delivery_hook(&self, hook: Option<DeliveryHook>) {
        *self.inner.hook.lock() = hook;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive_roundtrip() {
        let net = InMemoryNetwork::local(3);
        net.send(0, 2, "hello", vec![1, 2, 3]);
        assert_eq!(net.pending(2), 1);
        let envelope = net.try_receive(2).unwrap();
        assert_eq!(envelope.from, 0);
        assert_eq!(envelope.payload, vec![1, 2, 3]);
        assert_eq!(envelope.label, "hello");
        assert!(net.try_receive(2).is_none());
        assert!(net.try_receive(1).is_none());
    }

    #[test]
    fn traffic_is_metered_per_node() {
        let net = InMemoryNetwork::local(2);
        net.send(0, 1, "a", vec![0u8; 100]);
        net.send(0, 1, "b", vec![0u8; 50]);
        net.send(1, 0, "c", vec![0u8; 10]);
        net.drain(1);
        net.drain(0);
        assert_eq!(
            net.sent_stats(0),
            TrafficStats {
                messages: 2,
                bytes: 150
            }
        );
        assert_eq!(
            net.received_stats(1),
            TrafficStats {
                messages: 2,
                bytes: 150
            }
        );
        assert_eq!(net.sent_stats(1).bytes, 10);
        assert_eq!(net.total_sent().bytes, 160);
        assert_eq!(net.total_sent().messages, 3);
    }

    #[test]
    fn received_stats_credit_on_delivery_not_send() {
        // Regression test: received-side stats used to be credited at send
        // time, counting in-flight messages as received.
        let net = InMemoryNetwork::local(2);
        net.send(0, 1, "inflight", vec![0u8; 64]);
        net.send(0, 1, "inflight", vec![0u8; 36]);
        assert_eq!(net.received_stats(1), TrafficStats::default());

        let first = net.try_receive(1).unwrap();
        assert_eq!(first.payload.len(), 64);
        assert_eq!(
            net.received_stats(1),
            TrafficStats {
                messages: 1,
                bytes: 64
            }
        );

        let rest = net.drain(1);
        assert_eq!(rest.len(), 1);
        assert_eq!(
            net.received_stats(1),
            TrafficStats {
                messages: 2,
                bytes: 100
            }
        );

        // Draining an empty mailbox credits nothing further.
        assert!(net.drain(1).is_empty());
        assert_eq!(net.received_stats(1).messages, 2);
    }

    #[test]
    fn sends_feed_the_observability_counters_when_enabled() {
        let net = InMemoryNetwork::local(2);
        // Disabled (the default): nothing is recorded.
        net.send(0, 1, "meter-probe", vec![0u8; 5]);
        let disabled: u64 = atom_obs::counter_snapshot()
            .into_iter()
            .filter(|(name, _)| name == "net.mem.frames.meter-probe")
            .map(|(_, v)| v)
            .sum();
        assert_eq!(disabled, 0);

        atom_obs::set_enabled(true);
        net.send(0, 1, "meter-probe", vec![0u8; 9]);
        net.send(1, 0, "meter-probe", vec![0u8; 4]);
        atom_obs::set_enabled(false);
        let snapshot = atom_obs::counter_snapshot();
        let get = |name: &str| -> u64 {
            snapshot
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        // The label is unique to this test, so exact counts are safe even
        // with other tests running concurrently in this binary.
        assert_eq!(get("net.mem.frames.meter-probe"), 2);
        assert_eq!(get("net.mem.bytes.meter-probe"), 13);
    }

    #[test]
    fn static_labels_are_borrowed_not_allocated() {
        let net = InMemoryNetwork::local(2);
        net.send(0, 1, "static-label", Vec::new());
        let envelope = net.try_receive(1).unwrap();
        assert!(matches!(envelope.label, std::borrow::Cow::Borrowed(_)));
        // Owned labels still work for dynamic tracing.
        net.send(0, 1, format!("round-{}", 7), Vec::new());
        let envelope = net.try_receive(1).unwrap();
        assert_eq!(envelope.label, "round-7");
    }

    #[test]
    fn latency_and_bandwidth_are_charged() {
        let classes = vec![
            ServerClass {
                bandwidth_mbps: 100,
                cores: 4,
            };
            2
        ];
        let net = InMemoryNetwork::new(2, LatencyModel::Fixed { millis: 50 }, classes);
        // 1 MB at 100 Mbps = 80 ms transmission + 50 ms propagation.
        let delay = net.send(0, 1, "bulk", vec![0u8; 1_000_000]);
        assert!((delay.as_secs_f64() - 0.13).abs() < 1e-6, "{delay:?}");
        let envelope = net.try_receive(1).unwrap();
        assert_eq!(envelope.delay, delay);
    }

    #[test]
    fn drain_returns_messages_in_order() {
        let net = InMemoryNetwork::local(2);
        for i in 0..5u8 {
            net.send(0, 1, "seq", vec![i]);
        }
        let drained = net.drain(1);
        assert_eq!(drained.len(), 5);
        for (i, envelope) in drained.iter().enumerate() {
            assert_eq!(envelope.payload, vec![i as u8]);
        }
        assert_eq!(net.pending(1), 0);
    }

    #[test]
    fn virtual_clock_advances_monotonically() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.advance(Duration::from_millis(120));
        clock.advance_to(Duration::from_millis(100)); // No going backwards.
        assert_eq!(clock.now(), Duration::from_millis(120));
        clock.advance_to(Duration::from_millis(500));
        assert_eq!(clock.now(), Duration::from_millis(500));
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn sending_to_unknown_node_panics() {
        let net = InMemoryNetwork::local(1);
        net.send(0, 3, "x", Vec::new());
    }

    #[test]
    fn delivery_hook_fires_per_enqueued_envelope() {
        let net = InMemoryNetwork::local(3);
        let hits = Arc::new(Mutex::new(Vec::new()));
        let sink = hits.clone();
        net.set_delivery_hook(Some(Arc::new(move |node| sink.lock().push(node))));
        net.send(0, 2, "a", vec![1]);
        net.send(1, 2, "b", vec![2]);
        net.send(2, 0, "c", vec![3]);
        assert_eq!(*hits.lock(), vec![2, 2, 0]);
        // Removing the hook stops notifications; mailboxes still fill.
        net.set_delivery_hook(None);
        net.send(0, 1, "d", vec![4]);
        assert_eq!(hits.lock().len(), 3);
        assert_eq!(net.pending(1), 1);
    }
}
