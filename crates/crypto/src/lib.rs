//! # atom-crypto
//!
//! Cryptographic substrate for the Rust reproduction of
//! *Atom: Horizontally Scaling Strong Anonymity* (SOSP 2017).
//!
//! This crate implements everything from §2.3 and Appendix A of the paper:
//!
//! * [`elgamal`] — rerandomizable ElGamal with **out-of-order decryption and
//!   re-encryption**, the key primitive that lets a group peel its layers
//!   while already re-encrypting toward the next (unknown-to-the-user) group.
//! * [`batch`] — the batched public-key engine: precomputed fixed-base
//!   tables, Straus multi-exponentiation, and random-linear-combination
//!   batch verification of `EncProof`/`ReEncProof` with per-proof fallback.
//! * [`nizk`] — the three NIZK families the paper requires: `EncProof`,
//!   `ReEncProof` and `ShufProof` (verifiable shuffle).
//! * [`dkg`] / [`sharing`] — dealer-less distributed key generation and
//!   threshold ElGamal for anytrust and many-trust groups (§4.1, §4.5).
//! * [`cca2`] — IND-CCA2 hybrid encryption for trap-variant inner
//!   ciphertexts (§4.4).
//! * [`commit`] — SHA-3 commitments for trap messages.
//! * [`encoding`] — embedding byte messages into group elements.
//! * [`keccak`], [`aead`] — SHA-3/SHAKE256 and ChaCha20-Poly1305 implemented
//!   from scratch.
//! * [`pedersen`], [`transcript`] — Pedersen commitments and the Fiat-Shamir
//!   transcript used by the proofs.
//!
//! The group is Ristretto255 (`curve25519-dalek`); see DESIGN.md for the
//! substitution notes relative to the paper's NIST P-256 implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod batch;
pub mod cca2;
pub mod commit;
pub mod dkg;
pub mod elgamal;
pub mod encoding;
pub mod error;
pub mod keccak;
pub mod nizk;
pub mod pedersen;
pub mod sharing;
pub mod transcript;

pub use curve25519_dalek::ristretto::RistrettoPoint;
pub use curve25519_dalek::scalar::Scalar;

pub use elgamal::{Ciphertext, KeyPair, MessageCiphertext, PublicKey, SecretKey};
pub use error::{CryptoError, CryptoResult};
