//! Dealer-less distributed key generation (DVSS) for Atom's anytrust and
//! many-trust groups (§4.5, ref. \[67\] in the paper).
//!
//! Every group member acts as a dealer: it samples a random polynomial of
//! degree `threshold − 1`, broadcasts Feldman commitments to its
//! coefficients, and privately sends an evaluation ("share") to every other
//! member. Members verify received shares against the commitments and file
//! complaints against misbehaving dealers; honest dealings are aggregated by
//! summing. The group public key is the sum of the dealers' constant-term
//! commitments, and each member ends up with a Shamir share of the (never
//! materialized) group secret key.
//!
//! Threshold decryption: any `threshold` members can jointly peel the group
//! layer, each using its Lagrange-weighted share as the effective exponent,
//! which is exactly the `peel_secret` consumed by
//! [`crate::elgamal::reencrypt`]. For plain anytrust groups the threshold is
//! the full group size.

use curve25519_dalek::ristretto::RistrettoPoint;
use curve25519_dalek::scalar::Scalar;
use curve25519_dalek::traits::Identity;
use rand::{CryptoRng, RngCore};
use serde::{Deserialize, Serialize};

use crate::elgamal::PublicKey;
use crate::error::{CryptoError, CryptoResult};
use crate::sharing::{
    evaluate_commitments, lagrange_coefficient, reconstruct, verify_share, Polynomial, Share,
};

/// Group-size and threshold parameters for a DKG run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DkgParams {
    /// Number of participants `k`.
    pub participants: usize,
    /// Reconstruction threshold `t = k − (h − 1)` (shares needed to decrypt).
    pub threshold: usize,
}

impl DkgParams {
    /// Creates parameters, validating the threshold.
    pub fn new(participants: usize, threshold: usize) -> CryptoResult<Self> {
        if participants == 0 || threshold == 0 || threshold > participants {
            return Err(CryptoError::Parameter(format!(
                "invalid DKG parameters: {threshold}-of-{participants}"
            )));
        }
        Ok(Self {
            participants,
            threshold,
        })
    }

    /// Anytrust parameters: every member must participate (`t = k`).
    pub fn anytrust(participants: usize) -> CryptoResult<Self> {
        Self::new(participants, participants)
    }

    /// Many-trust parameters tolerating `h − 1` failures (`t = k − (h−1)`).
    pub fn many_trust(participants: usize, honest: usize) -> CryptoResult<Self> {
        if honest == 0 || honest > participants {
            return Err(CryptoError::Parameter(format!(
                "invalid honest-count {honest} for group of {participants}"
            )));
        }
        Self::new(participants, participants - (honest - 1))
    }
}

/// A dealing broadcast by one participant: public Feldman commitments and the
/// private shares destined for each member (index `i + 1` for member `i`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dealing {
    /// 1-based index of the dealer.
    pub dealer: u64,
    /// Feldman commitments to the dealer's polynomial coefficients.
    pub commitments: Vec<RistrettoPoint>,
    /// Shares for members 1..=k (share `i` belongs to member index `i + 1`).
    pub shares: Vec<Share>,
}

/// Creates the dealing for participant `dealer_index` (1-based).
pub fn deal<R: RngCore + CryptoRng>(dealer_index: u64, params: &DkgParams, rng: &mut R) -> Dealing {
    let poly = Polynomial::random(Scalar::random(rng), params.threshold, rng);
    let commitments = poly.feldman_commitments();
    let shares = (1..=params.participants as u64)
        .map(|i| poly.share(i))
        .collect();
    Dealing {
        dealer: dealer_index,
        commitments,
        shares,
    }
}

/// A complaint filed by a member against a dealer whose share failed to
/// verify against its Feldman commitments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Complaint {
    /// The complaining member (1-based).
    pub member: u64,
    /// The accused dealer (1-based).
    pub dealer: u64,
}

/// Verifies the share destined for `member_index` inside a dealing.
pub fn verify_dealing_for(dealing: &Dealing, member_index: u64, params: &DkgParams) -> bool {
    if dealing.commitments.len() != params.threshold || dealing.shares.len() != params.participants
    {
        return false;
    }
    dealing
        .shares
        .iter()
        .find(|s| s.index == member_index)
        .map(|share| verify_share(share, &dealing.commitments))
        .unwrap_or(false)
}

/// Collects complaints from `member_index` against all invalid dealings.
pub fn complaints_for(
    dealings: &[Dealing],
    member_index: u64,
    params: &DkgParams,
) -> Vec<Complaint> {
    dealings
        .iter()
        .filter(|d| !verify_dealing_for(d, member_index, params))
        .map(|d| Complaint {
            member: member_index,
            dealer: d.dealer,
        })
        .collect()
}

/// The per-member output of a DKG run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DkgShare {
    /// The member's 1-based index.
    pub index: u64,
    /// The member's share of the group secret key.
    pub secret_share: Scalar,
    /// The group public key.
    pub group_public: PublicKey,
    /// Feldman verification keys for every member (`V_j = x_j · B`).
    pub verification_keys: Vec<RistrettoPoint>,
    /// The parameters the group was generated with.
    pub params: DkgParams,
}

impl DkgShare {
    /// The verification key of this member.
    pub fn own_verification_key(&self) -> RistrettoPoint {
        self.verification_keys[(self.index - 1) as usize]
    }

    /// The effective peeling exponent for this member when the set
    /// `participating` (1-based indices, including this member) runs the
    /// threshold decryption/re-encryption.
    pub fn peel_exponent(&self, participating: &[u64]) -> CryptoResult<Scalar> {
        let lambda = lagrange_coefficient(participating, self.index)?;
        Ok(lambda * self.secret_share)
    }

    /// The public verification key matching [`Self::peel_exponent`], which is
    /// what a `ReEncProof` is verified against.
    pub fn peel_verification_key(
        &self,
        participating: &[u64],
        member_index: u64,
    ) -> CryptoResult<RistrettoPoint> {
        let lambda = lagrange_coefficient(participating, member_index)?;
        Ok(lambda * self.verification_keys[(member_index - 1) as usize])
    }
}

/// Aggregates the valid dealings into the outputs of every member.
///
/// `disqualified` lists dealer indices excluded after the complaint round;
/// their dealings are ignored. At least one qualified dealing must remain.
pub fn aggregate(
    dealings: &[Dealing],
    params: &DkgParams,
    disqualified: &[u64],
) -> CryptoResult<Vec<DkgShare>> {
    let qualified: Vec<&Dealing> = dealings
        .iter()
        .filter(|d| !disqualified.contains(&d.dealer))
        .collect();
    if qualified.is_empty() {
        return Err(CryptoError::Sharing("no qualified dealings".into()));
    }
    for dealing in &qualified {
        if dealing.commitments.len() != params.threshold
            || dealing.shares.len() != params.participants
        {
            return Err(CryptoError::Sharing(format!(
                "dealing from {} has the wrong shape",
                dealing.dealer
            )));
        }
    }

    // Group public key: sum of constant-term commitments.
    let group_public = PublicKey(
        qualified
            .iter()
            .map(|d| d.commitments[0])
            .fold(RistrettoPoint::identity(), |acc, c| acc + c),
    );

    // Verification keys for every member.
    let verification_keys: Vec<RistrettoPoint> = (1..=params.participants as u64)
        .map(|index| {
            qualified
                .iter()
                .map(|d| evaluate_commitments(&d.commitments, index))
                .fold(RistrettoPoint::identity(), |acc, p| acc + p)
        })
        .collect();

    // Each member's aggregated share.
    let mut outputs = Vec::with_capacity(params.participants);
    for member in 1..=params.participants as u64 {
        let mut secret_share = Scalar::ZERO;
        for dealing in &qualified {
            let share = dealing
                .shares
                .iter()
                .find(|s| s.index == member)
                .ok_or_else(|| {
                    CryptoError::Sharing(format!(
                        "dealing from {} is missing a share for member {member}",
                        dealing.dealer
                    ))
                })?;
            if !verify_share(share, &dealing.commitments) {
                return Err(CryptoError::Sharing(format!(
                    "invalid share from dealer {} for member {member}",
                    dealing.dealer
                )));
            }
            secret_share += share.value;
        }
        outputs.push(DkgShare {
            index: member,
            secret_share,
            group_public,
            verification_keys: verification_keys.clone(),
            params: *params,
        });
    }
    Ok(outputs)
}

/// Runs a complete DKG among `params.participants` simulated members:
/// everyone deals, complaints are gathered, offending dealers are
/// disqualified, and the qualified dealings are aggregated.
pub fn run_dkg<R: RngCore + CryptoRng>(
    params: &DkgParams,
    rng: &mut R,
) -> CryptoResult<(PublicKey, Vec<DkgShare>)> {
    let dealings: Vec<Dealing> = (1..=params.participants as u64)
        .map(|i| deal(i, params, rng))
        .collect();
    let mut disqualified: Vec<u64> = Vec::new();
    for member in 1..=params.participants as u64 {
        for complaint in complaints_for(&dealings, member, params) {
            if !disqualified.contains(&complaint.dealer) {
                disqualified.push(complaint.dealer);
            }
        }
    }
    let shares = aggregate(&dealings, params, &disqualified)?;
    let group_public = shares[0].group_public;
    Ok((group_public, shares))
}

/// Reconstructs the group secret key from at least `threshold` member shares.
///
/// Used when trustees deliberately release their key shares at the end of a
/// trap-variant round (§4.4) and for buddy-group recovery tests.
pub fn reconstruct_group_secret(shares: &[&DkgShare]) -> CryptoResult<Scalar> {
    let plain: Vec<Share> = shares
        .iter()
        .map(|s| Share {
            index: s.index,
            value: s.secret_share,
        })
        .collect();
    reconstruct(&plain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elgamal::{decrypt, encrypt, reencrypt, SecretKey};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(23)
    }

    #[test]
    fn params_validation() {
        assert!(DkgParams::new(4, 0).is_err());
        assert!(DkgParams::new(4, 5).is_err());
        assert!(DkgParams::new(0, 0).is_err());
        assert_eq!(DkgParams::anytrust(8).unwrap().threshold, 8);
        let mt = DkgParams::many_trust(33, 2).unwrap();
        assert_eq!(mt.threshold, 32);
        assert!(DkgParams::many_trust(4, 0).is_err());
        assert!(DkgParams::many_trust(4, 5).is_err());
    }

    #[test]
    fn dkg_produces_consistent_group_key() {
        let mut rng = rng();
        let params = DkgParams::new(5, 3).unwrap();
        let (group_public, shares) = run_dkg(&params, &mut rng).unwrap();
        for share in &shares {
            assert_eq!(share.group_public, group_public);
            assert_eq!(
                share.own_verification_key(),
                crate::elgamal::KeyPair::from_secret(share.secret_share)
                    .public
                    .0
            );
        }
        // Reconstructing from any threshold-sized subset matches the group key.
        let secret = reconstruct_group_secret(&shares.iter().take(3).collect::<Vec<_>>()).unwrap();
        assert_eq!(
            crate::elgamal::KeyPair::from_secret(secret).public,
            group_public
        );
    }

    #[test]
    fn threshold_decryption_via_lagrange_peeling() {
        let mut rng = rng();
        let params = DkgParams::many_trust(5, 2).unwrap(); // 4-of-5
        let (group_public, shares) = run_dkg(&params, &mut rng).unwrap();

        let message = RistrettoPoint::random(&mut rng);
        let (ct, _) = encrypt(&group_public, &message, &mut rng);

        // Members 1, 2, 4, 5 participate (member 3 failed).
        let participating = [1u64, 2, 4, 5];
        let mut current = ct;
        for &index in &participating {
            let share = &shares[(index - 1) as usize];
            let exponent = share.peel_exponent(&participating).unwrap();
            let (next, _) = reencrypt(&exponent, None, &current, &mut rng);
            current = next;
        }
        assert_eq!(current.into_plaintext_point(), message);
    }

    #[test]
    fn anytrust_group_requires_all_members() {
        let mut rng = rng();
        let params = DkgParams::anytrust(4).unwrap();
        let (group_public, shares) = run_dkg(&params, &mut rng).unwrap();
        let message = RistrettoPoint::random(&mut rng);
        let (ct, _) = encrypt(&group_public, &message, &mut rng);

        // Full participation decrypts.
        let participating = [1u64, 2, 3, 4];
        let mut current = ct;
        for &index in &participating {
            let exponent = shares[(index - 1) as usize]
                .peel_exponent(&participating)
                .unwrap();
            let (next, _) = reencrypt(&exponent, None, &current, &mut rng);
            current = next;
        }
        assert_eq!(current.into_plaintext_point(), message);

        // A colluding strict subset cannot decrypt directly.
        let subset_secret: Scalar = shares[..3]
            .iter()
            .map(|s| lagrange_coefficient(&[1, 2, 3], s.index).unwrap() * s.secret_share)
            .sum();
        assert_ne!(decrypt(&SecretKey(subset_secret), &ct).unwrap(), message);
    }

    #[test]
    fn peel_verification_key_matches_exponent() {
        let mut rng = rng();
        let params = DkgParams::new(6, 4).unwrap();
        let (_, shares) = run_dkg(&params, &mut rng).unwrap();
        let participating = [1u64, 3, 4, 6];
        for &index in &participating {
            let share = &shares[(index - 1) as usize];
            let exponent = share.peel_exponent(&participating).unwrap();
            let expected = crate::elgamal::KeyPair::from_secret(exponent).public.0;
            let vk = shares[0]
                .peel_verification_key(&participating, index)
                .unwrap();
            assert_eq!(vk, expected);
        }
    }

    #[test]
    fn bad_dealer_is_detected_and_disqualified() {
        let mut rng = rng();
        let params = DkgParams::new(4, 3).unwrap();
        let mut dealings: Vec<Dealing> = (1..=4u64).map(|i| deal(i, &params, &mut rng)).collect();
        // Dealer 2 corrupts the share destined for member 3.
        dealings[1].shares[2].value += Scalar::ONE;

        let complaints = complaints_for(&dealings, 3, &params);
        assert_eq!(
            complaints,
            vec![Complaint {
                member: 3,
                dealer: 2
            }]
        );
        assert!(complaints_for(&dealings, 1, &params).is_empty());

        // Aggregating with the bad dealer present fails; excluding it works.
        assert!(aggregate(&dealings, &params, &[]).is_err());
        let shares = aggregate(&dealings, &params, &[2]).unwrap();
        assert_eq!(shares.len(), 4);
    }

    #[test]
    fn malformed_dealing_rejected() {
        let mut rng = rng();
        let params = DkgParams::new(4, 3).unwrap();
        let mut dealings: Vec<Dealing> = (1..=4u64).map(|i| deal(i, &params, &mut rng)).collect();
        dealings[0].shares.pop();
        assert!(!verify_dealing_for(&dealings[0], 4, &params));
        assert!(aggregate(&dealings, &params, &[]).is_err());
    }

    #[test]
    fn dealings_from_wrong_params_rejected() {
        let mut rng = rng();
        let params = DkgParams::new(4, 3).unwrap();
        let other = DkgParams::new(4, 2).unwrap();
        let dealings: Vec<Dealing> = (1..=4u64).map(|i| deal(i, &other, &mut rng)).collect();
        assert!(aggregate(&dealings, &params, &[]).is_err());
    }
}
