//! The batched public-key engine: fixed-base tables, multi-exponentiation
//! and random-linear-combination (RLC) batch proof verification.
//!
//! Modular exponentiation dominates Atom's cost model — every submission
//! carries NIZK proofs and every mixing hop re-encrypts — so this module
//! concentrates the three amortization layers the hot paths share:
//!
//! * **Fixed-base tables** ([`fixed_base_table`] / [`mul_fixed`]): 4-bit
//!   windows of `base^(j·16^i)` precomputed once per base, so a fixed-base
//!   exponentiation is at most 64 multiplies and *no squarings*. The group
//!   generator uses the process-wide
//!   [`RISTRETTO_BASEPOINT_TABLE`](curve25519_dalek::constants); other
//!   heavily reused bases (each round's DKG group public keys, the Pedersen
//!   blinding generator) go through a small keyed cache here. A table costs
//!   ~15·64 multiplies to build and pays for itself after three or four
//!   uses; round keys are reused thousands of times.
//!
//! * **Multi-exponentiation** ([`multiscalar_mul`]): the two-term checks of
//!   `ReEncProof`/`ShufProof` verification and the big RLC combinations
//!   below share a single squaring chain across all terms. Small products
//!   use Straus/Shamir interleaving (4-bit windows); past the backend's
//!   `PIPPENGER_CUTOFF` the vendored `multi_pow` switches to the Pippenger
//!   bucket method, whose per-term cost keeps shrinking as the combined
//!   shuffle-chain products grow into the thousands of terms. Subtractions
//!   are folded in as negated scalar coefficients, which also eliminates
//!   the per-`Sub` Fermat inversion of the vendored group (`a − b` costs a
//!   full inverse exponentiation there).
//!
//! * **RLC batch verification** ([`verify_encryption_batch`],
//!   [`verify_reencryption_batch`], [`verify_shuffle_batch`]): N
//!   Schnorr-style proof equations `LHS_e = RHS_e` collapse into the single
//!   check `Σ_e ρ_e·LHS_e = Σ_e ρ_e·RHS_e`, evaluated as one fixed-base
//!   multiplication plus one multi-exponentiation. For shuffle proofs the
//!   combination spans *all* equations of *all* proofs of a group step's
//!   shuffle chain (~5n per proof), so the multi-exponentiation routinely
//!   exceeds the Pippenger crossover of the backend's `multi_pow`.
//!
//! ## Soundness of the RLC combination
//!
//! The coefficients `ρ_e` are derived from a SHAKE256 Fiat-Shamir
//! transcript that absorbs every per-proof challenge and response before
//! the first coefficient is squeezed, so a prover must commit to all
//! equations before learning any `ρ_e`. If some equation has error
//! `Δ_e = LHS_e − RHS_e ≠ 0`, the combined check passes only when
//! `Σ_e ρ_e·Δ_e = 0`; with the coefficients uniform 128-bit values
//! (modelling the sponge as a random oracle) that event has probability
//! `2^-128` per batch — the standard small-exponent batching trade-off,
//! which halves the multi-exponentiation window walks for the `ρ_e`-only
//! terms. Batch acceptance therefore implies per-proof acceptance except
//! with negligible probability, and batch **rejection** automatically falls
//! back to per-proof verification, so callers always receive the *same*
//! verdict — including which proof (and hence which server, for blame
//! assignment in `atom-core`) failed — as the sequential verifier.
//!
//! ## Algorithm choices
//!
//! * Window size 4: with 254-bit exponents, w = 4 minimizes
//!   `16·2^w + 256/w·(1 + 2^w⁻¹/2^w)`-style cost for both the one-shot and
//!   precomputed cases, and keeps tables at 512 bytes per base row.
//! * Montgomery multiplication (`Modulus::mont_mul`) is implemented and
//!   tested in the vendored field, but the moduli here have the special
//!   form `2^k − c` whose fold reduction needs ~20 word multiplies against
//!   REDC's ~36, so the exponentiation ladders use the fold form. The
//!   `crypto_batch` microbench keeps the comparison honest.
//! * Leading zero windows are skipped (`U256::bits`), so short exponents
//!   (Lagrange indices, Feldman evaluation points) cost proportionally
//!   less.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use atom_obs::Counter;
use curve25519_dalek::constants::RISTRETTO_BASEPOINT_TABLE;
use curve25519_dalek::ristretto::{RistrettoBasepointTable, RistrettoPoint};
use curve25519_dalek::scalar::Scalar;
use parking_lot::Mutex;

use crate::elgamal::{MessageCiphertext, PublicKey};
use crate::error::{CryptoError, CryptoResult};
use crate::nizk::enc::{self, EncProof};
use crate::nizk::reenc::{self, ReEncProof, ReEncStatement};
use crate::nizk::shuffle::{self, ShuffleProof};
use crate::transcript::Transcript;

/// Entries kept in the fixed-base table cache before it is flushed. Keys are
/// per-round, so steady state holds one table per live group key; the cap
/// only bounds pathological key churn (e.g. key-per-message tests).
const TABLE_CACHE_CAP: usize = 64;

/// Table-cache lookups that found an existing window table.
static TABLE_CACHE_HITS: Counter = Counter::new("crypto.table_cache.hits");
/// Table-cache lookups that had to build a fresh window table.
static TABLE_CACHE_MISSES: Counter = Counter::new("crypto.table_cache.misses");
/// Fixed-base scalar multiplications served through [`mul_fixed`].
static FIXED_BASE_CALLS: Counter = Counter::new("crypto.fixed_base.calls");
/// Multi-exponentiation invocations ([`multiscalar_mul`]).
static MULTIEXP_CALLS: Counter = Counter::new("crypto.multiexp.calls");
/// Total terms fed into multi-exponentiations (pre-coalescing).
static MULTIEXP_TERMS: Counter = Counter::new("crypto.multiexp.terms");
/// RLC-batched `EncProof` verification calls.
static VERIFY_ENC_BATCHES: Counter = Counter::new("crypto.verify_enc.batches");
/// Individual `EncProof`s covered by batched verification calls.
static VERIFY_ENC_ITEMS: Counter = Counter::new("crypto.verify_enc.items");
/// `EncProof` batches whose RLC check missed and fell back per-proof.
static VERIFY_ENC_FALLBACKS: Counter = Counter::new("crypto.verify_enc.fallbacks");
/// RLC-batched `ReEncProof` verification calls.
static VERIFY_REENC_BATCHES: Counter = Counter::new("crypto.verify_reenc.batches");
/// Individual `ReEncProof`s covered by batched verification calls.
static VERIFY_REENC_ITEMS: Counter = Counter::new("crypto.verify_reenc.items");
/// `ReEncProof` batches whose RLC check missed and fell back per-proof.
static VERIFY_REENC_FALLBACKS: Counter = Counter::new("crypto.verify_reenc.fallbacks");
/// RLC-batched `ShuffleProof` verification calls.
static VERIFY_SHUF_BATCHES: Counter = Counter::new("crypto.verify_shuffle.batches");
/// Individual `ShuffleProof`s covered by batched verification calls.
static VERIFY_SHUF_ITEMS: Counter = Counter::new("crypto.verify_shuffle.items");
/// `ShuffleProof` batches whose RLC check missed and fell back per-proof.
static VERIFY_SHUF_FALLBACKS: Counter = Counter::new("crypto.verify_shuffle.fallbacks");

fn table_cache() -> &'static Mutex<HashMap<[u8; 32], Arc<RistrettoBasepointTable>>> {
    static CACHE: OnceLock<Mutex<HashMap<[u8; 32], Arc<RistrettoBasepointTable>>>> =
        OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The shared precomputed window table for `point`, building and caching it
/// on first use. The window build itself happens lazily outside the cache
/// lock, so concurrent callers never serialize on table construction.
pub fn fixed_base_table(point: &RistrettoPoint) -> Arc<RistrettoBasepointTable> {
    let key = point.compress().to_bytes();
    let mut cache = table_cache().lock();
    if let Some(table) = cache.get(&key) {
        TABLE_CACHE_HITS.add(1);
        return table.clone();
    }
    TABLE_CACHE_MISSES.add(1);
    if cache.len() >= TABLE_CACHE_CAP {
        // Evict a single arbitrary entry rather than flushing the map: with
        // more live bases than the cap, a full flush would degenerate into
        // a table build per use — worse than no cache at all.
        if let Some(evict) = cache.keys().next().copied() {
            cache.remove(&evict);
        }
    }
    let table = Arc::new(RistrettoBasepointTable::create(point));
    cache.insert(key, table.clone());
    table
}

/// Fixed-base scalar multiplication `scalar · point` through the cached
/// window table for `point`.
pub fn mul_fixed(point: &RistrettoPoint, scalar: &Scalar) -> RistrettoPoint {
    FIXED_BASE_CALLS.add(1);
    fixed_base_table(point).mul_scalar(scalar)
}

/// `Σ scalars[k] · points[k]` by Straus/Shamir interleaving (one shared
/// doubling chain). Duplicate points are coalesced by summing their
/// coefficients first, which matters for batches whose statements share
/// bases (every re-encryption proof of a sub-batch names the same peeling
/// key and next-group key).
pub fn multiscalar_mul(scalars: &[Scalar], points: &[RistrettoPoint]) -> RistrettoPoint {
    debug_assert_eq!(scalars.len(), points.len());
    MULTIEXP_CALLS.add(1);
    MULTIEXP_TERMS.add(scalars.len() as u64);
    let mut index: HashMap<RistrettoPoint, usize> = HashMap::with_capacity(points.len());
    let mut unique_points: Vec<RistrettoPoint> = Vec::with_capacity(points.len());
    let mut coefficients: Vec<Scalar> = Vec::with_capacity(points.len());
    for (scalar, point) in scalars.iter().zip(points.iter()) {
        match index.get(point) {
            Some(&slot) => coefficients[slot] += scalar,
            None => {
                index.insert(*point, unique_points.len());
                unique_points.push(*point);
                coefficients.push(*scalar);
            }
        }
    }
    RistrettoPoint::multiscalar_mul(&coefficients, &unique_points)
}

/// Batched scalar inversion (Montgomery's trick): one Fermat exponentiation
/// for the whole slice. Panics on zero, like `Scalar::invert`.
pub fn batch_invert(scalars: &[Scalar]) -> Vec<Scalar> {
    Scalar::batch_invert(scalars)
}

/// Draws a 128-bit RLC coefficient from the transcript (see the module docs
/// for the soundness trade-off).
pub(crate) fn rlc_coefficient(transcript: &mut Transcript, label: &'static [u8]) -> Scalar {
    let mut bytes = [0u8; 32];
    transcript.challenge_bytes(label, &mut bytes[..16]);
    Scalar::from_bytes_mod_order(bytes)
}

/// One `EncProof` verification instance for [`verify_encryption_batch`].
pub struct EncVerification<'a> {
    /// The entry group's public key the proof is bound to.
    pub pk: &'a PublicKey,
    /// The entry group id the proof is bound to.
    pub group_id: u64,
    /// The submitted ciphertext.
    pub ciphertext: &'a MessageCiphertext,
    /// The proof of knowledge of the encryption randomness.
    pub proof: &'a EncProof,
}

/// Verifies a batch of `EncProof`s with one RLC check, falling back to
/// per-proof verification when the combined check rejects. `Err((i, e))`
/// identifies the first item (in slice order) that fails individually —
/// exactly the verdict the sequential verifier would produce.
pub fn verify_encryption_batch(items: &[EncVerification<'_>]) -> Result<(), (usize, CryptoError)> {
    VERIFY_ENC_BATCHES.add(1);
    VERIFY_ENC_ITEMS.add(items.len() as u64);
    if items.len() > 1 && try_verify_encryption_rlc(items).is_ok() {
        return Ok(());
    }
    if items.len() > 1 {
        VERIFY_ENC_FALLBACKS.add(1);
    }
    // Single item, structural oddity, or combined-check rejection: decide
    // per proof so error identity matches the sequential path.
    for (i, item) in items.iter().enumerate() {
        enc::verify_encryption(item.pk, item.group_id, item.ciphertext, item.proof)
            .map_err(|e| (i, e))?;
    }
    Ok(())
}

/// The RLC fast path for `EncProof` batches: checks
/// `Σ ρ_{i,l}·u_{i,l} · B  ==  Σ ρ_{i,l}·A_{i,l} + Σ ρ_{i,l}·t_i·R_{i,l}`.
fn try_verify_encryption_rlc(items: &[EncVerification<'_>]) -> CryptoResult<()> {
    let mut rlc = Transcript::new(b"atom-batch-enc");
    let mut challenges = Vec::with_capacity(items.len());
    for item in items {
        let components = item.ciphertext.components.len();
        if item.proof.announcements.len() != components || item.proof.responses.len() != components
        {
            return Err(CryptoError::ProofInvalid("batch shape mismatch".into()));
        }
        if item.ciphertext.components.iter().any(|c| c.y.is_some()) {
            return Err(CryptoError::ProofInvalid(
                "batch contains a non-fresh ciphertext".into(),
            ));
        }
        // The per-proof Fiat-Shamir challenge already binds the statement
        // and announcements; absorbing it plus the responses commits the
        // whole equation before any ρ is squeezed.
        let challenge = enc::batch_challenge(item.pk, item.group_id, item.ciphertext, item.proof);
        rlc.append_scalar(b"challenge", &challenge);
        for response in &item.proof.responses {
            rlc.append_scalar(b"response", response);
        }
        challenges.push(challenge);
    }

    let mut basepoint_coeff = Scalar::ZERO;
    let mut scalars = Vec::new();
    let mut points = Vec::new();
    for (item, challenge) in items.iter().zip(challenges.iter()) {
        for ((component, announcement), response) in item
            .ciphertext
            .components
            .iter()
            .zip(item.proof.announcements.iter())
            .zip(item.proof.responses.iter())
        {
            let rho = rlc_coefficient(&mut rlc, b"rho");
            basepoint_coeff += rho * response;
            scalars.push(rho);
            points.push(*announcement);
            scalars.push(rho * challenge);
            points.push(component.r);
        }
    }

    let lhs = RISTRETTO_BASEPOINT_TABLE.mul_scalar(&basepoint_coeff);
    if lhs == multiscalar_mul(&scalars, &points) {
        Ok(())
    } else {
        Err(CryptoError::ProofInvalid(
            "batched EncProof check failed".into(),
        ))
    }
}

/// Verifies a batch of `ReEncProof`s with one RLC check, falling back to
/// per-proof verification when the combined check rejects. `Err((i, e))`
/// identifies the first statement/proof pair (in slice order) that fails
/// individually, so blame assignment localizes the same faulty server as
/// the sequential verifier.
pub fn verify_reencryption_batch(
    statements: &[ReEncStatement<'_>],
    proofs: &[ReEncProof],
) -> Result<(), (usize, CryptoError)> {
    assert_eq!(
        statements.len(),
        proofs.len(),
        "one proof per re-encryption statement"
    );
    VERIFY_REENC_BATCHES.add(1);
    VERIFY_REENC_ITEMS.add(statements.len() as u64);
    if statements.len() > 1 && try_verify_reencryption_rlc(statements, proofs).is_ok() {
        return Ok(());
    }
    if statements.len() > 1 {
        VERIFY_REENC_FALLBACKS.add(1);
    }
    for (i, (stmt, proof)) in statements.iter().zip(proofs.iter()).enumerate() {
        reenc::verify_reencryption(stmt, proof).map_err(|e| (i, e))?;
    }
    Ok(())
}

/// The RLC fast path for `ReEncProof` batches. Every per-proof relation is
/// rewritten with all terms on the multi-exponentiation side except the
/// basepoint contribution:
///
/// ```text
///   key:      ρ·rk · B = ρ·K + ρt·P
///   fresh:    ρ·rf · B = ρ·F + ρt·R' − ρt·R₀            (skipped when X' = ⊥)
///   payload:  0 · B     = ρ·Pay + ρt·c − ρt·c' − ρ·rk·Y₀ [+ ρ·rf·X']
/// ```
fn try_verify_reencryption_rlc(
    statements: &[ReEncStatement<'_>],
    proofs: &[ReEncProof],
) -> CryptoResult<()> {
    let mut rlc = Transcript::new(b"atom-batch-reenc");
    let mut prepared = Vec::with_capacity(statements.len());
    for (stmt, proof) in statements.iter().zip(proofs.iter()) {
        let views = reenc::check_structure(stmt)?;
        if proof.components.len() != stmt.input.components.len() {
            return Err(CryptoError::ProofInvalid("batch shape mismatch".into()));
        }
        let challenge = reenc::batch_challenge(stmt, proof);
        rlc.append_scalar(b"challenge", &challenge);
        rlc.append_scalar(b"response-key", &proof.response_key);
        for comp in &proof.components {
            rlc.append_scalar(b"response-fresh", &comp.response_fresh);
        }
        prepared.push((views, challenge));
    }

    let mut basepoint_coeff = Scalar::ZERO;
    let mut scalars = Vec::new();
    let mut points = Vec::new();
    for ((stmt, proof), (views, challenge)) in
        statements.iter().zip(proofs.iter()).zip(prepared.iter())
    {
        // Peeling-key relation.
        let rho = rlc_coefficient(&mut rlc, b"rho-key");
        basepoint_coeff += rho * proof.response_key;
        scalars.push(rho);
        points.push(proof.announce_key);
        scalars.push(rho * challenge);
        points.push(*stmt.peel_public);

        for (((inp, out), (r0, y0)), comp) in stmt
            .input
            .components
            .iter()
            .zip(stmt.output.components.iter())
            .zip(views.iter())
            .zip(proof.components.iter())
        {
            if let Some(next) = stmt.next_pk {
                // Fresh-randomness relation.
                let rho = rlc_coefficient(&mut rlc, b"rho-fresh");
                basepoint_coeff += rho * comp.response_fresh;
                scalars.push(rho);
                points.push(comp.announce_fresh);
                scalars.push(rho * challenge);
                points.push(out.r);
                scalars.push(-(rho * challenge));
                points.push(*r0);

                // Payload relation (with the X' term).
                let rho = rlc_coefficient(&mut rlc, b"rho-payload");
                scalars.push(rho);
                points.push(comp.announce_payload);
                scalars.push(rho * challenge);
                points.push(inp.c);
                scalars.push(-(rho * challenge));
                points.push(out.c);
                scalars.push(-(rho * proof.response_key));
                points.push(*y0);
                scalars.push(rho * comp.response_fresh);
                points.push(next.0);
            } else {
                // Payload relation for final decryption (X' = ⊥).
                let rho = rlc_coefficient(&mut rlc, b"rho-payload");
                scalars.push(rho);
                points.push(comp.announce_payload);
                scalars.push(rho * challenge);
                points.push(inp.c);
                scalars.push(-(rho * challenge));
                points.push(out.c);
                scalars.push(-(rho * proof.response_key));
                points.push(*y0);
            }
        }
    }

    let lhs = RISTRETTO_BASEPOINT_TABLE.mul_scalar(&basepoint_coeff);
    if lhs == multiscalar_mul(&scalars, &points) {
        Ok(())
    } else {
        Err(CryptoError::ProofInvalid(
            "batched ReEncProof check failed".into(),
        ))
    }
}

/// One `ShuffleProof` verification instance for [`verify_shuffle_batch`]:
/// the statement (group key, input batch, output batch) plus the proof.
pub struct ShuffleVerification<'a> {
    /// The group public key the shuffle rerandomizes under.
    pub pk: &'a PublicKey,
    /// The batch entering this member's shuffle.
    pub inputs: &'a [MessageCiphertext],
    /// The batch leaving it.
    pub outputs: &'a [MessageCiphertext],
    /// The member's shuffle proof.
    pub proof: &'a ShuffleProof,
}

/// Verifies a batch of `ShuffleProof`s — typically one per member of a
/// group's shuffle chain — with one combined RLC check, falling back to
/// per-proof verification when the combined check rejects. `Err((i, e))`
/// identifies the first item (in slice order) that fails individually, so
/// blame assignment localizes the same faulty server as verifying each
/// member's proof inline.
pub fn verify_shuffle_batch(items: &[ShuffleVerification<'_>]) -> Result<(), (usize, CryptoError)> {
    VERIFY_SHUF_BATCHES.add(1);
    VERIFY_SHUF_ITEMS.add(items.len() as u64);
    if items.len() > 1 && try_verify_shuffle_rlc(items).is_ok() {
        return Ok(());
    }
    if items.len() > 1 {
        VERIFY_SHUF_FALLBACKS.add(1);
    }
    // Single item, structural oddity, or combined-check rejection: decide
    // per proof so error identity matches the sequential path. (The single
    // item still takes its own intra-proof RLC fast path.)
    for (i, item) in items.iter().enumerate() {
        shuffle::verify_shuffle(item.pk, item.inputs, item.outputs, item.proof)
            .map_err(|e| (i, e))?;
    }
    Ok(())
}

/// The RLC fast path for `ShuffleProof` batches: every equation of every
/// proof joins one [`shuffle::RlcAccumulator`] combination, settled by a
/// single multiscalar multiplication across the whole chain. All challenges
/// and responses are absorbed before the first coefficient is squeezed.
fn try_verify_shuffle_rlc(items: &[ShuffleVerification<'_>]) -> CryptoResult<()> {
    let mut rlc = Transcript::new(shuffle::RLC_DOMAIN);
    rlc.append_u64(b"count", items.len() as u64);
    let mut challenges = Vec::with_capacity(items.len());
    for item in items {
        let ch = shuffle::replay_challenges(item.pk, item.inputs, item.outputs, item.proof)?;
        shuffle::absorb_proof(&mut rlc, &ch, item.proof);
        challenges.push(ch);
    }
    let mut acc = shuffle::RlcAccumulator::new();
    for (item, ch) in items.iter().zip(challenges.iter()) {
        acc.accumulate(&mut rlc, item.pk, item.inputs, item.outputs, item.proof, ch);
    }
    if acc.check() {
        Ok(())
    } else {
        Err(CryptoError::ProofInvalid(
            "batched ShuffleProof check failed".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elgamal::{encrypt_message, reencrypt_message, KeyPair};
    use crate::encoding::encode_message;
    use crate::nizk::enc::prove_encryption;
    use crate::nizk::reenc::prove_reencryption;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_base_cache_matches_direct_multiplication() {
        let mut rng = StdRng::seed_from_u64(1);
        let point = RistrettoPoint::random(&mut rng);
        for _ in 0..3 {
            let s = Scalar::random(&mut rng);
            assert_eq!(mul_fixed(&point, &s), s * point);
        }
    }

    #[test]
    fn counters_record_only_while_recording_is_enabled() {
        let mut rng = StdRng::seed_from_u64(77);
        let point = RistrettoPoint::random(&mut rng);
        let s = Scalar::random(&mut rng);

        // Disabled (the default): no counter movement at all.
        atom_obs::set_enabled(false);
        let before = FIXED_BASE_CALLS.get();
        mul_fixed(&point, &s);
        assert_eq!(FIXED_BASE_CALLS.get(), before);

        // Enabled: the same call is counted. Other tests in this binary may
        // run concurrently and also bump the counters, so assert growth
        // rather than exact deltas.
        atom_obs::set_enabled(true);
        let calls = FIXED_BASE_CALLS.get();
        let terms = MULTIEXP_TERMS.get();
        mul_fixed(&point, &s);
        multiscalar_mul(&[s, s], &[point, point]);
        assert!(FIXED_BASE_CALLS.get() > calls);
        assert!(MULTIEXP_TERMS.get() >= terms + 2);
        atom_obs::set_enabled(false);
    }

    #[test]
    fn coalescing_multiscalar_matches_naive_sum() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = RistrettoPoint::random(&mut rng);
        let b = RistrettoPoint::random(&mut rng);
        let (s1, s2, s3) = (
            Scalar::random(&mut rng),
            Scalar::random(&mut rng),
            Scalar::random(&mut rng),
        );
        // `a` appears twice: coefficients must be summed, not dropped.
        let got = multiscalar_mul(&[s1, s2, s3], &[a, b, a]);
        assert_eq!(got, s1 * a + s2 * b + s3 * a);
    }

    fn enc_fixture(count: usize, seed: u64) -> (KeyPair, Vec<(MessageCiphertext, EncProof)>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = KeyPair::generate(&mut rng);
        let items = (0..count)
            .map(|i| {
                let points = encode_message(format!("submission {i}").as_bytes()).unwrap();
                let (ct, randomness) = encrypt_message(&kp.public, &points, &mut rng);
                let proof = prove_encryption(&kp.public, 7, &ct, &randomness, &mut rng).unwrap();
                (ct, proof)
            })
            .collect();
        (kp, items)
    }

    #[test]
    fn enc_batch_accepts_iff_every_proof_accepts() {
        for seed in 0..4u64 {
            let (kp, items) = enc_fixture(5, 100 + seed);
            let refs: Vec<EncVerification<'_>> = items
                .iter()
                .map(|(ct, proof)| EncVerification {
                    pk: &kp.public,
                    group_id: 7,
                    ciphertext: ct,
                    proof,
                })
                .collect();
            let individually_ok = refs.iter().all(|item| {
                enc::verify_encryption(item.pk, item.group_id, item.ciphertext, item.proof).is_ok()
            });
            assert!(individually_ok);
            assert!(verify_encryption_batch(&refs).is_ok());
        }
    }

    #[test]
    fn enc_batch_with_one_corrupted_proof_names_its_index() {
        for corrupt in 0..5usize {
            let (kp, mut items) = enc_fixture(5, 42);
            items[corrupt].1.responses[0] += Scalar::ONE;
            let refs: Vec<EncVerification<'_>> = items
                .iter()
                .map(|(ct, proof)| EncVerification {
                    pk: &kp.public,
                    group_id: 7,
                    ciphertext: ct,
                    proof,
                })
                .collect();
            let (index, error) = verify_encryption_batch(&refs).unwrap_err();
            assert_eq!(index, corrupt);
            assert!(matches!(error, CryptoError::ProofInvalid(_)));
        }
    }

    #[test]
    fn enc_batch_rejects_wrong_group_id_binding() {
        let (kp, items) = enc_fixture(3, 43);
        let refs: Vec<EncVerification<'_>> = items
            .iter()
            .map(|(ct, proof)| EncVerification {
                pk: &kp.public,
                group_id: 8, // proved for 7
                ciphertext: ct,
                proof,
            })
            .collect();
        let (index, _) = verify_encryption_batch(&refs).unwrap_err();
        assert_eq!(index, 0);
    }

    struct ReEncFixture {
        server: KeyPair,
        next_pk: PublicKey,
        pairs: Vec<(MessageCiphertext, MessageCiphertext, ReEncProof)>,
    }

    fn reenc_fixture(count: usize, seed: u64, exit_layer: bool) -> ReEncFixture {
        let mut rng = StdRng::seed_from_u64(seed);
        let server = KeyPair::generate(&mut rng);
        let next = KeyPair::generate(&mut rng);
        let next_pk = next.public;
        let pairs = (0..count)
            .map(|i| {
                let points = encode_message(format!("hop {i}").as_bytes()).unwrap();
                let (input, _) = encrypt_message(&server.public, &points, &mut rng);
                let next_key = (!exit_layer).then_some(&next_pk);
                let (output, witnesses) =
                    reencrypt_message(&server.secret.0, next_key, &input, &mut rng);
                let stmt = ReEncStatement {
                    peel_public: &server.public.0,
                    next_pk: next_key,
                    input: &input,
                    output: &output,
                };
                let proof = prove_reencryption(&stmt, &witnesses, &mut rng).unwrap();
                (input, output, proof)
            })
            .collect();
        ReEncFixture {
            server,
            next_pk,
            pairs,
        }
    }

    fn statements<'a>(
        fixture: &'a ReEncFixture,
        exit_layer: bool,
    ) -> (Vec<ReEncStatement<'a>>, Vec<ReEncProof>) {
        let stmts = fixture
            .pairs
            .iter()
            .map(|(input, output, _)| ReEncStatement {
                peel_public: &fixture.server.public.0,
                next_pk: (!exit_layer).then_some(&fixture.next_pk),
                input,
                output,
            })
            .collect();
        let proofs = fixture.pairs.iter().map(|(_, _, p)| p.clone()).collect();
        (stmts, proofs)
    }

    #[test]
    fn reenc_batch_accepts_iff_every_proof_accepts() {
        for (seed, exit_layer) in [(7u64, false), (8, true)] {
            let fixture = reenc_fixture(4, seed, exit_layer);
            let (stmts, proofs) = statements(&fixture, exit_layer);
            for (stmt, proof) in stmts.iter().zip(proofs.iter()) {
                assert!(reenc::verify_reencryption(stmt, proof).is_ok());
            }
            assert!(verify_reencryption_batch(&stmts, &proofs).is_ok());
        }
    }

    #[test]
    fn reenc_batch_with_one_corrupted_proof_names_its_index() {
        for corrupt in 0..4usize {
            let fixture = reenc_fixture(4, 9, false);
            let (stmts, mut proofs) = statements(&fixture, false);
            proofs[corrupt].response_key += Scalar::ONE;
            let (index, error) = verify_reencryption_batch(&stmts, &proofs).unwrap_err();
            assert_eq!(index, corrupt);
            assert!(matches!(error, CryptoError::ProofInvalid(_)));
            // Per-proof agreement: the same index is the unique failure.
            for (i, (stmt, proof)) in stmts.iter().zip(proofs.iter()).enumerate() {
                assert_eq!(
                    reenc::verify_reencryption(stmt, proof).is_ok(),
                    i != corrupt
                );
            }
        }
    }

    #[test]
    fn reenc_batch_detects_tampered_component_announcement() {
        let mut rng = StdRng::seed_from_u64(10);
        let fixture = reenc_fixture(3, 11, false);
        let (stmts, mut proofs) = statements(&fixture, false);
        proofs[1].components[0].announce_payload = RistrettoPoint::random(&mut rng);
        let (index, _) = verify_reencryption_batch(&stmts, &proofs).unwrap_err();
        assert_eq!(index, 1);
    }

    #[test]
    fn property_batch_agrees_with_per_proof_over_random_corruptions() {
        // Randomized agreement sweep: corrupt a random proof field (or
        // nothing) and require batch verdict == sequential verdict.
        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(900 + seed);
            let fixture = reenc_fixture(3, 300 + seed, seed % 2 == 0);
            let (stmts, mut proofs) = statements(&fixture, seed % 2 == 0);
            let corrupt = (seed as usize) % 4;
            if corrupt < 3 {
                match seed % 3 {
                    0 => proofs[corrupt].response_key += Scalar::ONE,
                    1 => {
                        proofs[corrupt].components[0].response_fresh += Scalar::ONE;
                    }
                    _ => {
                        proofs[corrupt].announce_key = RistrettoPoint::random(&mut rng);
                    }
                }
            }
            let sequential: Result<(), (usize, CryptoError)> = stmts
                .iter()
                .zip(proofs.iter())
                .enumerate()
                .try_for_each(|(i, (stmt, proof))| {
                    reenc::verify_reencryption(stmt, proof).map_err(|e| (i, e))
                });
            let batched = verify_reencryption_batch(&stmts, &proofs);
            match (&sequential, &batched) {
                (Ok(()), Ok(())) => {}
                (Err((i, _)), Err((j, _))) => assert_eq!(i, j, "seed {seed}"),
                other => panic!("verdicts diverge at seed {seed}: {other:?}"),
            }
        }
    }

    /// A `members`-stage shuffle chain (the shape `verify_shuffle_batch` is
    /// built for): stage `m` feeds member `m`'s shuffle, whose output is
    /// stage `m + 1`.
    fn shuffle_chain(
        rng: &mut StdRng,
        kp: &KeyPair,
        members: usize,
        count: usize,
    ) -> (Vec<Vec<MessageCiphertext>>, Vec<ShuffleProof>) {
        let initial: Vec<MessageCiphertext> = (0..count)
            .map(|i| {
                let points = encode_message(&[i as u8 + 1; 24]).unwrap();
                encrypt_message(&kp.public, &points, rng).0
            })
            .collect();
        let mut stages = vec![initial];
        let mut proofs = Vec::with_capacity(members);
        for _ in 0..members {
            let inputs = stages.last().unwrap();
            let (outputs, witness) = crate::elgamal::shuffle(&kp.public, inputs, rng).unwrap();
            let proof =
                shuffle::prove_shuffle(&kp.public, inputs, &outputs, &witness, rng).unwrap();
            stages.push(outputs);
            proofs.push(proof);
        }
        (stages, proofs)
    }

    fn chain_items<'a>(
        pk: &'a PublicKey,
        stages: &'a [Vec<MessageCiphertext>],
        proofs: &'a [ShuffleProof],
    ) -> Vec<ShuffleVerification<'a>> {
        proofs
            .iter()
            .enumerate()
            .map(|(m, proof)| ShuffleVerification {
                pk,
                inputs: &stages[m],
                outputs: &stages[m + 1],
                proof,
            })
            .collect()
    }

    fn sequential_shuffle_verdict(
        items: &[ShuffleVerification<'_>],
    ) -> Result<(), (usize, CryptoError)> {
        items.iter().enumerate().try_for_each(|(i, item)| {
            shuffle::verify_shuffle_sequential(item.pk, item.inputs, item.outputs, item.proof)
                .map_err(|e| (i, e))
        })
    }

    #[test]
    fn shuffle_batch_accepts_honest_chain_via_combined_rlc() {
        let mut rng = StdRng::seed_from_u64(50);
        let kp = KeyPair::generate(&mut rng);
        let (stages, proofs) = shuffle_chain(&mut rng, &kp, 3, 6);
        let items = chain_items(&kp.public, &stages, &proofs);
        // The combined check itself must accept — no hiding behind the
        // per-proof fallback.
        assert!(try_verify_shuffle_rlc(&items).is_ok());
        assert!(verify_shuffle_batch(&items).is_ok());
        // Degenerate batch sizes.
        assert!(verify_shuffle_batch(&[]).is_ok());
        assert!(verify_shuffle_batch(&items[..1]).is_ok());
    }

    #[test]
    fn shuffle_batch_with_one_tampered_proof_names_its_member() {
        for corrupt in 0..3usize {
            let mut rng = StdRng::seed_from_u64(51);
            let kp = KeyPair::generate(&mut rng);
            let (stages, mut proofs) = shuffle_chain(&mut rng, &kp, 3, 5);
            proofs[corrupt].response_final += Scalar::ONE;
            let items = chain_items(&kp.public, &stages, &proofs);
            let (index, error) = verify_shuffle_batch(&items).unwrap_err();
            assert_eq!(index, corrupt);
            assert!(matches!(error, CryptoError::ProofInvalid(_)));
            // Verdict-identical to the sequential path, message included.
            let (seq_index, seq_error) = sequential_shuffle_verdict(&items).unwrap_err();
            assert_eq!(index, seq_index);
            assert_eq!(format!("{error:?}"), format!("{seq_error:?}"));
        }
    }

    #[test]
    fn shuffle_batch_with_tampered_stage_blames_first_affected_member() {
        let mut rng = StdRng::seed_from_u64(52);
        let kp = KeyPair::generate(&mut rng);
        let (mut stages, proofs) = shuffle_chain(&mut rng, &kp, 3, 5);
        // Mauling stage 2 invalidates member 1's outputs (and member 2's
        // inputs); the first failing item in slice order is member 1 —
        // the verdict inline verification would reach.
        let g = crate::pedersen::CommitmentKey::atom().g;
        stages[2][3].components[0].c += g;
        let items = chain_items(&kp.public, &stages, &proofs);
        let (index, error) = verify_shuffle_batch(&items).unwrap_err();
        assert_eq!(index, 1);
        let (seq_index, seq_error) = sequential_shuffle_verdict(&items).unwrap_err();
        assert_eq!(index, seq_index);
        assert_eq!(format!("{error:?}"), format!("{seq_error:?}"));
    }

    #[test]
    fn shuffle_batch_rejects_wrong_shapes_and_duplicate_proofs() {
        let mut rng = StdRng::seed_from_u64(53);
        let kp = KeyPair::generate(&mut rng);
        let (stages, proofs) = shuffle_chain(&mut rng, &kp, 3, 5);

        // Truncated inputs: shape error, attributed to the malformed item.
        let mut items = chain_items(&kp.public, &stages, &proofs);
        items[1].inputs = &stages[1][..3];
        let (index, error) = verify_shuffle_batch(&items).unwrap_err();
        assert_eq!(index, 1);
        assert!(matches!(error, CryptoError::Parameter(_)));

        // A proof replayed for the wrong link of the chain.
        let mut items = chain_items(&kp.public, &stages, &proofs);
        items[2].proof = &proofs[0];
        let (index, _) = verify_shuffle_batch(&items).unwrap_err();
        assert_eq!(index, 2);

        // The same (valid) proof presented twice for the same link still
        // verifies per item; duplicating the *item* must not confuse blame
        // when one copy is broken.
        let mut dup_proofs = [proofs[0].clone(), proofs[0].clone()];
        dup_proofs[1].response_final += Scalar::ONE;
        let dup_items: Vec<ShuffleVerification<'_>> = dup_proofs
            .iter()
            .map(|proof| ShuffleVerification {
                pk: &kp.public,
                inputs: &stages[0],
                outputs: &stages[1],
                proof,
            })
            .collect();
        let (index, _) = verify_shuffle_batch(&dup_items).unwrap_err();
        assert_eq!(index, 1);
    }

    #[test]
    fn property_shuffle_batch_agrees_with_per_proof_over_random_corruptions() {
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(700 + seed);
            let kp = KeyPair::generate(&mut rng);
            let (mut stages, mut proofs) = shuffle_chain(&mut rng, &kp, 3, 4);
            let corrupt = (seed as usize) % 4;
            if corrupt < 3 {
                match seed % 3 {
                    0 => proofs[corrupt].response_powers[0] += Scalar::ONE,
                    1 => {
                        proofs[corrupt].announce_rand[0] = RistrettoPoint::random(&mut rng);
                    }
                    _ => {
                        let g = crate::pedersen::CommitmentKey::atom().g;
                        stages[corrupt + 1][0].components[0].r += g;
                    }
                }
            }
            let items = chain_items(&kp.public, &stages, &proofs);
            let sequential = sequential_shuffle_verdict(&items);
            let batched = verify_shuffle_batch(&items);
            match (&sequential, &batched) {
                (Ok(()), Ok(())) => {}
                (Err((i, ei)), Err((j, ej))) => {
                    assert_eq!(i, j, "seed {seed}");
                    assert_eq!(format!("{ei:?}"), format!("{ej:?}"), "seed {seed}");
                }
                other => panic!("verdicts diverge at seed {seed}: {other:?}"),
            }
        }
    }
}
