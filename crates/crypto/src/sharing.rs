//! Shamir secret sharing, Lagrange interpolation, and Feldman verifiable
//! secret sharing.
//!
//! These are the building blocks of Atom's threshold ("many-trust") groups
//! (§4.5): the DVSS-based distributed key generation in [`crate::dkg`] uses
//! Feldman commitments to verify dealt shares, threshold decryption uses
//! Lagrange coefficients, and buddy-group recovery re-shares each server's
//! share with Shamir.

use curve25519_dalek::constants::RISTRETTO_BASEPOINT_TABLE;
use curve25519_dalek::ristretto::RistrettoPoint;
use curve25519_dalek::scalar::Scalar;
use curve25519_dalek::traits::Identity;
use rand::{CryptoRng, RngCore};
use serde::{Deserialize, Serialize};

use crate::error::{CryptoError, CryptoResult};

/// A share of a secret, evaluated at a non-zero index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Share {
    /// The evaluation index (1-based; index 0 is the secret itself).
    pub index: u64,
    /// The share value `f(index)`.
    pub value: Scalar,
}

/// A random polynomial of degree `threshold − 1` with `f(0) = secret`.
#[derive(Clone, Debug)]
pub struct Polynomial {
    coefficients: Vec<Scalar>,
}

impl Polynomial {
    /// Samples a polynomial with the given constant term and threshold.
    pub fn random<R: RngCore + CryptoRng>(secret: Scalar, threshold: usize, rng: &mut R) -> Self {
        assert!(threshold >= 1, "threshold must be at least 1");
        let mut coefficients = Vec::with_capacity(threshold);
        coefficients.push(secret);
        for _ in 1..threshold {
            coefficients.push(Scalar::random(rng));
        }
        Self { coefficients }
    }

    /// The threshold (number of shares needed to reconstruct).
    pub fn threshold(&self) -> usize {
        self.coefficients.len()
    }

    /// Evaluates the polynomial at `index` (Horner's rule).
    pub fn evaluate(&self, index: u64) -> Scalar {
        let x = Scalar::from(index);
        let mut acc = Scalar::ZERO;
        for coeff in self.coefficients.iter().rev() {
            acc = acc * x + coeff;
        }
        acc
    }

    /// Produces the share for participant `index`.
    pub fn share(&self, index: u64) -> Share {
        Share {
            index,
            value: self.evaluate(index),
        }
    }

    /// Feldman commitments to every coefficient (`A_m = a_m · B`).
    pub fn feldman_commitments(&self) -> Vec<RistrettoPoint> {
        self.coefficients
            .iter()
            .map(|c| c * RISTRETTO_BASEPOINT_TABLE)
            .collect()
    }

    /// The secret (constant term).
    pub fn secret(&self) -> Scalar {
        self.coefficients[0]
    }
}

/// Splits `secret` into `count` shares with the given reconstruction
/// threshold.
pub fn split<R: RngCore + CryptoRng>(
    secret: Scalar,
    threshold: usize,
    count: usize,
    rng: &mut R,
) -> CryptoResult<Vec<Share>> {
    if threshold == 0 || threshold > count {
        return Err(CryptoError::Sharing(format!(
            "invalid threshold {threshold} for {count} shares"
        )));
    }
    let poly = Polynomial::random(secret, threshold, rng);
    Ok((1..=count as u64).map(|i| poly.share(i)).collect())
}

/// Computes the Lagrange coefficient for `index` within the participating
/// set `indices`, evaluated at zero.
pub fn lagrange_coefficient(indices: &[u64], index: u64) -> CryptoResult<Scalar> {
    if !indices.contains(&index) {
        return Err(CryptoError::Sharing(format!(
            "index {index} is not in the participating set"
        )));
    }
    let mut numerator = Scalar::ONE;
    let mut denominator = Scalar::ONE;
    let xi = Scalar::from(index);
    for &other in indices {
        if other == index {
            continue;
        }
        let xj = Scalar::from(other);
        numerator *= xj;
        denominator *= xj - xi;
    }
    if denominator == Scalar::ZERO {
        return Err(CryptoError::Sharing("duplicate share indices".into()));
    }
    Ok(numerator * denominator.invert())
}

/// Computes the Lagrange coefficients for *every* index of the
/// participating set at once, with a single Fermat inversion for all
/// denominators (Montgomery's trick) instead of one per index. The result
/// is ordered like `indices`; duplicate indices are rejected.
pub fn lagrange_coefficients(indices: &[u64]) -> CryptoResult<Vec<Scalar>> {
    let mut sorted = indices.to_vec();
    sorted.sort_unstable();
    if sorted.windows(2).any(|w| w[0] == w[1]) {
        return Err(CryptoError::Sharing("duplicate share indices".into()));
    }
    let mut numerators = Vec::with_capacity(indices.len());
    let mut denominators = Vec::with_capacity(indices.len());
    for &index in indices {
        let xi = Scalar::from(index);
        let mut numerator = Scalar::ONE;
        let mut denominator = Scalar::ONE;
        for &other in indices {
            if other == index {
                continue;
            }
            let xj = Scalar::from(other);
            numerator *= xj;
            denominator *= xj - xi;
        }
        numerators.push(numerator);
        denominators.push(denominator);
    }
    let inverses = Scalar::batch_invert(&denominators);
    Ok(numerators
        .into_iter()
        .zip(inverses)
        .map(|(n, d)| n * d)
        .collect())
}

/// Reconstructs the secret from at least `threshold` distinct shares.
pub fn reconstruct(shares: &[Share]) -> CryptoResult<Scalar> {
    if shares.is_empty() {
        return Err(CryptoError::Sharing("no shares provided".into()));
    }
    let indices: Vec<u64> = shares.iter().map(|s| s.index).collect();
    let mut unique = indices.clone();
    unique.sort_unstable();
    unique.dedup();
    if unique.len() != indices.len() {
        return Err(CryptoError::Sharing("duplicate share indices".into()));
    }
    let mut secret = Scalar::ZERO;
    for (share, lambda) in shares.iter().zip(lagrange_coefficients(&indices)?) {
        secret += lambda * share.value;
    }
    Ok(secret)
}

/// Verifies a share against Feldman commitments:
/// `share.value · B == Σ_m index^m · A_m`.
pub fn verify_share(share: &Share, commitments: &[RistrettoPoint]) -> bool {
    let expected = evaluate_commitments(commitments, share.index);
    share.value * RISTRETTO_BASEPOINT_TABLE == expected
}

/// Evaluates Feldman commitments at `index`, yielding `f(index) · B` without
/// knowing the polynomial.
pub fn evaluate_commitments(commitments: &[RistrettoPoint], index: u64) -> RistrettoPoint {
    let x = Scalar::from(index);
    let mut acc = RistrettoPoint::identity();
    for commitment in commitments.iter().rev() {
        acc = x * acc + commitment;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    #[test]
    fn split_and_reconstruct_exact_threshold() {
        let mut rng = rng();
        let secret = Scalar::random(&mut rng);
        let shares = split(secret, 3, 5, &mut rng).unwrap();
        assert_eq!(reconstruct(&shares[..3]).unwrap(), secret);
        assert_eq!(reconstruct(&shares[1..4]).unwrap(), secret);
        assert_eq!(reconstruct(&shares).unwrap(), secret);
    }

    #[test]
    fn non_contiguous_share_subsets_reconstruct() {
        let mut rng = rng();
        let secret = Scalar::random(&mut rng);
        let shares = split(secret, 3, 7, &mut rng).unwrap();
        let subset = [shares[0], shares[3], shares[6]];
        assert_eq!(reconstruct(&subset).unwrap(), secret);
    }

    #[test]
    fn too_few_shares_yield_wrong_secret() {
        let mut rng = rng();
        let secret = Scalar::random(&mut rng);
        let shares = split(secret, 3, 5, &mut rng).unwrap();
        // With fewer than `threshold` shares, interpolation succeeds but does
        // not recover the secret (information-theoretic hiding).
        assert_ne!(reconstruct(&shares[..2]).unwrap(), secret);
    }

    #[test]
    fn duplicate_shares_rejected() {
        let mut rng = rng();
        let secret = Scalar::random(&mut rng);
        let shares = split(secret, 2, 3, &mut rng).unwrap();
        let duplicated = [shares[0], shares[0]];
        assert!(reconstruct(&duplicated).is_err());
    }

    #[test]
    fn invalid_threshold_rejected() {
        let mut rng = rng();
        assert!(split(Scalar::ONE, 0, 3, &mut rng).is_err());
        assert!(split(Scalar::ONE, 4, 3, &mut rng).is_err());
    }

    #[test]
    fn feldman_commitments_verify_honest_shares() {
        let mut rng = rng();
        let poly = Polynomial::random(Scalar::random(&mut rng), 4, &mut rng);
        let commitments = poly.feldman_commitments();
        for i in 1..=6u64 {
            assert!(verify_share(&poly.share(i), &commitments));
        }
    }

    #[test]
    fn feldman_commitments_reject_tampered_share() {
        let mut rng = rng();
        let poly = Polynomial::random(Scalar::random(&mut rng), 3, &mut rng);
        let commitments = poly.feldman_commitments();
        let mut share = poly.share(2);
        share.value += Scalar::ONE;
        assert!(!verify_share(&share, &commitments));
        let wrong_index = Share {
            index: 3,
            value: poly.share(2).value,
        };
        assert!(!verify_share(&wrong_index, &commitments));
    }

    #[test]
    fn lagrange_coefficients_sum_interpolates_constant() {
        // For a constant polynomial every share equals the secret, so the
        // Lagrange coefficients must sum to one.
        let indices = [1u64, 4, 9, 11];
        let sum: Scalar = indices
            .iter()
            .map(|&i| lagrange_coefficient(&indices, i).unwrap())
            .sum();
        assert_eq!(sum, Scalar::ONE);
    }

    #[test]
    fn lagrange_requires_membership() {
        assert!(lagrange_coefficient(&[1, 2, 3], 5).is_err());
    }

    #[test]
    fn batched_lagrange_matches_individual_coefficients() {
        let indices = [2u64, 5, 6, 9, 13];
        let batched = lagrange_coefficients(&indices).unwrap();
        for (&index, lambda) in indices.iter().zip(batched.iter()) {
            assert_eq!(*lambda, lagrange_coefficient(&indices, index).unwrap());
        }
        assert!(lagrange_coefficients(&[1, 1, 2]).is_err());
    }

    #[test]
    fn additive_shares_of_two_secrets_reconstruct_sum() {
        // Linearity: reconstructing component-wise sums of shares yields the
        // sum of the secrets. The DKG relies on this.
        let mut rng = rng();
        let s1 = Scalar::random(&mut rng);
        let s2 = Scalar::random(&mut rng);
        let sh1 = split(s1, 3, 5, &mut rng).unwrap();
        let sh2 = split(s2, 3, 5, &mut rng).unwrap();
        let combined: Vec<Share> = sh1
            .iter()
            .zip(sh2.iter())
            .map(|(a, b)| Share {
                index: a.index,
                value: a.value + b.value,
            })
            .collect();
        assert_eq!(reconstruct(&combined[..3]).unwrap(), s1 + s2);
    }
}
