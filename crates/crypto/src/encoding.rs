//! Embedding byte messages into Ristretto group elements and back.
//!
//! Atom's rerandomizable ElGamal operates on group elements, so plaintext
//! bytes must be embedded into curve points before encryption and recovered
//! after decryption (the paper embeds 32 bytes per NIST P-256 point; here we
//! embed [`PAYLOAD_PER_POINT`] bytes per Ristretto point — see DESIGN.md).
//!
//! The embedding is a try-and-increment search over the canonical 32-byte
//! Ristretto encoding: the payload occupies fixed byte positions and two
//! counter bytes are varied until the candidate string decompresses to a
//! valid point. Roughly one in eight candidates is a valid encoding, so with
//! `256 × 127` counter values the failure probability is negligible
//! (≈ (7/8)^32512).

use curve25519_dalek::ristretto::{CompressedRistretto, RistrettoPoint};

use crate::error::{CryptoError, CryptoResult};

/// Number of message payload bytes carried by a single group element.
pub const PAYLOAD_PER_POINT: usize = 29;

/// Byte offset of the low counter byte within the 32-byte encoding.
const CTR_LO: usize = 0;
/// Byte range of the payload within the 32-byte encoding.
const PAYLOAD_RANGE: core::ops::Range<usize> = 1..30;
/// Byte offset of the payload-length byte.
const LEN_BYTE: usize = 30;
/// Byte offset of the high counter byte (kept ≤ 0x7e so the little-endian
/// field element stays below 2^255 − 19).
const CTR_HI: usize = 31;

/// Returns the number of points needed to carry `len` payload bytes.
///
/// A zero-length message still occupies one point so that every message in a
/// batch has the same shape after fixed-length padding.
pub fn points_needed(len: usize) -> usize {
    if len == 0 {
        1
    } else {
        len.div_ceil(PAYLOAD_PER_POINT)
    }
}

/// Embeds a chunk of at most [`PAYLOAD_PER_POINT`] bytes into a point.
pub fn encode_chunk(chunk: &[u8]) -> CryptoResult<RistrettoPoint> {
    if chunk.len() > PAYLOAD_PER_POINT {
        return Err(CryptoError::EncodingFailed(format!(
            "chunk of {} bytes exceeds {} bytes per point",
            chunk.len(),
            PAYLOAD_PER_POINT
        )));
    }
    let mut candidate = [0u8; 32];
    candidate[PAYLOAD_RANGE][..chunk.len()].copy_from_slice(chunk);
    candidate[LEN_BYTE] = chunk.len() as u8;

    for hi in 0..=0x7eu8 {
        candidate[CTR_HI] = hi;
        for lo in 0..=0xffu8 {
            candidate[CTR_LO] = lo;
            if let Some(point) = CompressedRistretto(candidate).decompress() {
                return Ok(point);
            }
        }
    }
    Err(CryptoError::EncodingFailed(
        "exhausted embedding counter space".to_string(),
    ))
}

/// Recovers the payload bytes embedded in a point by [`encode_chunk`].
pub fn decode_chunk(point: &RistrettoPoint) -> CryptoResult<Vec<u8>> {
    let bytes = point.compress().to_bytes();
    let len = bytes[LEN_BYTE] as usize;
    if len > PAYLOAD_PER_POINT {
        return Err(CryptoError::DecodingFailed(format!(
            "length byte {len} exceeds payload capacity"
        )));
    }
    Ok(bytes[PAYLOAD_RANGE][..len].to_vec())
}

/// Embeds an arbitrary byte message into a vector of points.
pub fn encode_message(message: &[u8]) -> CryptoResult<Vec<RistrettoPoint>> {
    if message.is_empty() {
        return Ok(vec![encode_chunk(&[])?]);
    }
    message
        .chunks(PAYLOAD_PER_POINT)
        .map(encode_chunk)
        .collect()
}

/// Recovers a byte message from a vector of points produced by
/// [`encode_message`].
pub fn decode_message(points: &[RistrettoPoint]) -> CryptoResult<Vec<u8>> {
    let mut out = Vec::with_capacity(points.len() * PAYLOAD_PER_POINT);
    for point in points {
        out.extend(decode_chunk(point)?);
    }
    Ok(out)
}

/// Pads `message` with zero bytes up to `target_len` and embeds it.
///
/// All Atom users in a round pad their plaintext to a fixed length (§2), so
/// every ciphertext in a batch consists of the same number of points.
pub fn encode_message_padded(
    message: &[u8],
    target_len: usize,
) -> CryptoResult<Vec<RistrettoPoint>> {
    if message.len() > target_len {
        return Err(CryptoError::EncodingFailed(format!(
            "message of {} bytes exceeds padded length {}",
            message.len(),
            target_len
        )));
    }
    let mut padded = message.to_vec();
    padded.resize(target_len, 0);
    encode_message(&padded)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_roundtrip_various_lengths() {
        for len in 0..=PAYLOAD_PER_POINT {
            let chunk: Vec<u8> = (0..len as u8).collect();
            let point = encode_chunk(&chunk).unwrap();
            assert_eq!(decode_chunk(&point).unwrap(), chunk);
        }
    }

    #[test]
    fn oversized_chunk_rejected() {
        let chunk = vec![1u8; PAYLOAD_PER_POINT + 1];
        assert!(encode_chunk(&chunk).is_err());
    }

    #[test]
    fn message_roundtrip() {
        let message = b"Atom: Horizontally Scaling Strong Anonymity (SOSP 2017)";
        let points = encode_message(message).unwrap();
        assert_eq!(points.len(), points_needed(message.len()));
        assert_eq!(decode_message(&points).unwrap(), message);
    }

    #[test]
    fn empty_message_roundtrip() {
        let points = encode_message(b"").unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(decode_message(&points).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn padded_message_has_fixed_shape() {
        let a = encode_message_padded(b"short", 160).unwrap();
        let b = encode_message_padded(b"a considerably longer tweet-like message", 160).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), points_needed(160));
        let decoded = decode_message(&a).unwrap();
        assert_eq!(&decoded[..5], b"short");
        assert!(decoded[5..].iter().all(|&b| b == 0));
    }

    #[test]
    fn padded_rejects_oversized() {
        assert!(encode_message_padded(&[1u8; 200], 160).is_err());
    }

    #[test]
    fn points_needed_boundaries() {
        assert_eq!(points_needed(0), 1);
        assert_eq!(points_needed(1), 1);
        assert_eq!(points_needed(PAYLOAD_PER_POINT), 1);
        assert_eq!(points_needed(PAYLOAD_PER_POINT + 1), 2);
        assert_eq!(points_needed(160), 6);
    }

    #[test]
    fn binary_payload_roundtrip() {
        // Exercise non-ASCII payloads including 0xff bytes near the field top.
        let message: Vec<u8> = (0..=255u8).collect();
        let points = encode_message(&message).unwrap();
        assert_eq!(decode_message(&points).unwrap(), message);
    }
}
