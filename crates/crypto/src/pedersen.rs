//! Pedersen commitments used by the verifiable-shuffle argument.

use curve25519_dalek::constants::RISTRETTO_BASEPOINT_POINT;
use curve25519_dalek::ristretto::RistrettoPoint;
use curve25519_dalek::scalar::Scalar;
use rand::{CryptoRng, RngCore};

use crate::keccak::Shake256;

/// Derives an independent generator by hashing a label to the group.
///
/// `RistrettoPoint::from_uniform_bytes` applies the Elligator map twice, so
/// nobody knows the discrete log of the result with respect to the basepoint.
pub fn derive_generator(label: &[u8]) -> RistrettoPoint {
    let mut xof = Shake256::new();
    xof.absorb(b"atom-pedersen-generator");
    xof.absorb(&(label.len() as u64).to_le_bytes());
    xof.absorb(label);
    let mut wide = [0u8; 64];
    xof.squeeze(&mut wide);
    RistrettoPoint::from_uniform_bytes(&wide)
}

/// Commitment key: the pair of generators `(G, H)`.
#[derive(Clone, Copy, Debug)]
pub struct CommitmentKey {
    /// Value generator (the Ristretto basepoint).
    pub g: RistrettoPoint,
    /// Blinding generator (nothing-up-my-sleeve derived).
    pub h: RistrettoPoint,
}

impl Default for CommitmentKey {
    fn default() -> Self {
        Self::atom()
    }
}

impl CommitmentKey {
    /// The fixed commitment key used throughout Atom's shuffle proofs.
    pub fn atom() -> Self {
        Self {
            g: RISTRETTO_BASEPOINT_POINT,
            h: derive_generator(b"shuffle-blinding-H"),
        }
    }

    /// Commits to `value` with blinding factor `blinding`.
    pub fn commit(&self, value: &Scalar, blinding: &Scalar) -> RistrettoPoint {
        // Both generators are fixed for the lifetime of the process, so the
        // precomputed window tables make this two table walks.
        crate::batch::mul_fixed(&self.g, value) + crate::batch::mul_fixed(&self.h, blinding)
    }

    /// Commits to `value` with fresh randomness, returning the blinding.
    pub fn commit_random<R: RngCore + CryptoRng>(
        &self,
        value: &Scalar,
        rng: &mut R,
    ) -> (RistrettoPoint, Scalar) {
        let blinding = Scalar::random(rng);
        (self.commit(value, &blinding), blinding)
    }

    /// Verifies an opening of a commitment.
    pub fn verify_opening(
        &self,
        commitment: &RistrettoPoint,
        value: &Scalar,
        blinding: &Scalar,
    ) -> bool {
        self.commit(value, blinding) == *commitment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn commitment_opens_correctly() {
        let mut rng = StdRng::seed_from_u64(1);
        let key = CommitmentKey::atom();
        let value = Scalar::from(42u64);
        let (commitment, blinding) = key.commit_random(&value, &mut rng);
        assert!(key.verify_opening(&commitment, &value, &blinding));
        assert!(!key.verify_opening(&commitment, &Scalar::from(43u64), &blinding));
    }

    #[test]
    fn commitment_is_hiding_under_fresh_randomness() {
        let mut rng = StdRng::seed_from_u64(2);
        let key = CommitmentKey::atom();
        let value = Scalar::from(7u64);
        let (c1, _) = key.commit_random(&value, &mut rng);
        let (c2, _) = key.commit_random(&value, &mut rng);
        assert_ne!(c1, c2);
    }

    #[test]
    fn commitment_is_homomorphic() {
        let key = CommitmentKey::atom();
        let (a, ra) = (Scalar::from(3u64), Scalar::from(11u64));
        let (b, rb) = (Scalar::from(9u64), Scalar::from(13u64));
        let sum = key.commit(&a, &ra) + key.commit(&b, &rb);
        assert!(key.verify_opening(&sum, &(a + b), &(ra + rb)));
    }

    #[test]
    fn derived_generators_differ_per_label() {
        assert_ne!(derive_generator(b"a"), derive_generator(b"b"));
        assert_ne!(derive_generator(b"a"), RISTRETTO_BASEPOINT_POINT);
    }

    #[test]
    fn derived_generator_is_deterministic() {
        assert_eq!(
            derive_generator(b"shuffle-blinding-H"),
            CommitmentKey::atom().h
        );
    }
}
