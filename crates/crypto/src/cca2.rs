//! IND-CCA2 hybrid encryption (KEM-DEM) for Atom's inner ciphertexts.
//!
//! The trap variant of Atom double-envelopes every real message: the
//! plaintext is first encrypted to the trustees' key with an IND-CCA2 secure
//! scheme so that no server can meaningfully tamper with it, and the result
//! (the *inner ciphertext*) is then routed through the mix as an opaque
//! payload (§4.4). Following Appendix A, the scheme is an ElGamal key
//! encapsulation: `R = rB`, `k = KDF(rX ‖ R ‖ X)`, `c = AEnc(k, m)` where
//! `AEnc` is an authenticated cipher (ChaCha20-Poly1305 here, NaCl in the
//! paper).

use curve25519_dalek::constants::RISTRETTO_BASEPOINT_TABLE;
use curve25519_dalek::ristretto::{CompressedRistretto, RistrettoPoint};
use curve25519_dalek::scalar::Scalar;
use rand::{CryptoRng, RngCore};
use serde::{Deserialize, Serialize};

use crate::aead;
use crate::elgamal::{PublicKey, SecretKey};
use crate::error::{CryptoError, CryptoResult};
use crate::keccak::Shake256;

/// An IND-CCA2 hybrid ciphertext.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HybridCiphertext {
    /// The KEM encapsulation `R = rB`.
    pub encapsulation: RistrettoPoint,
    /// The AEAD ciphertext (body ‖ tag).
    pub body: Vec<u8>,
}

impl HybridCiphertext {
    /// Serializes the ciphertext to bytes (32-byte encapsulation ‖ body).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.body.len());
        out.extend_from_slice(self.encapsulation.compress().as_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses a ciphertext serialized by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> CryptoResult<Self> {
        if bytes.len() < 32 + aead::TAG_LEN {
            return Err(CryptoError::Malformed("hybrid ciphertext too short".into()));
        }
        let compressed: [u8; 32] = bytes[..32].try_into().unwrap();
        let encapsulation = CompressedRistretto(compressed)
            .decompress()
            .ok_or_else(|| CryptoError::Malformed("invalid KEM encapsulation".into()))?;
        Ok(Self {
            encapsulation,
            body: bytes[32..].to_vec(),
        })
    }

    /// Total serialized length in bytes.
    pub fn len(&self) -> usize {
        32 + self.body.len()
    }

    /// Always false: a hybrid ciphertext carries at least a tag.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Derives the DEM key from the shared secret, encapsulation and recipient
/// key.
fn derive_key(
    shared: &RistrettoPoint,
    encapsulation: &RistrettoPoint,
    recipient: &PublicKey,
) -> [u8; aead::KEY_LEN] {
    let mut xof = Shake256::new();
    xof.absorb(b"atom-cca2-kdf");
    xof.absorb(shared.compress().as_bytes());
    xof.absorb(encapsulation.compress().as_bytes());
    xof.absorb(recipient.0.compress().as_bytes());
    let mut key = [0u8; aead::KEY_LEN];
    xof.squeeze(&mut key);
    key
}

/// Encrypts `message` to `recipient` with associated data `aad`.
pub fn encrypt<R: RngCore + CryptoRng>(
    recipient: &PublicKey,
    aad: &[u8],
    message: &[u8],
    rng: &mut R,
) -> HybridCiphertext {
    let r = Scalar::random(rng);
    let encapsulation = r * RISTRETTO_BASEPOINT_TABLE;
    let shared = r * recipient.0;
    let key = derive_key(&shared, &encapsulation, recipient);
    let nonce = [0u8; aead::NONCE_LEN]; // Fresh key per message, so a fixed nonce is safe.
    let body = aead::seal(&key, &nonce, aad, message);
    HybridCiphertext {
        encapsulation,
        body,
    }
}

/// Decrypts a hybrid ciphertext with the recipient's secret key.
pub fn decrypt(
    secret: &SecretKey,
    recipient: &PublicKey,
    aad: &[u8],
    ciphertext: &HybridCiphertext,
) -> CryptoResult<Vec<u8>> {
    let shared = secret.0 * ciphertext.encapsulation;
    let key = derive_key(&shared, &ciphertext.encapsulation, recipient);
    let nonce = [0u8; aead::NONCE_LEN];
    aead::open(&key, &nonce, aad, &ciphertext.body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elgamal::KeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31)
    }

    #[test]
    fn roundtrip() {
        let mut rng = rng();
        let kp = KeyPair::generate(&mut rng);
        let ct = encrypt(&kp.public, b"round-7", b"dial me maybe", &mut rng);
        let pt = decrypt(&kp.secret, &kp.public, b"round-7", &ct).unwrap();
        assert_eq!(pt, b"dial me maybe");
    }

    #[test]
    fn serialization_roundtrip() {
        let mut rng = rng();
        let kp = KeyPair::generate(&mut rng);
        let ct = encrypt(&kp.public, b"", &[7u8; 160], &mut rng);
        let bytes = ct.to_bytes();
        assert_eq!(bytes.len(), ct.len());
        let parsed = HybridCiphertext::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, ct);
        assert_eq!(
            decrypt(&kp.secret, &kp.public, b"", &parsed).unwrap(),
            vec![7u8; 160]
        );
    }

    #[test]
    fn tampering_detected() {
        // Non-malleability is what the trap variant relies on: a server that
        // flips any bit of an inner ciphertext produces a decryption failure
        // rather than a related plaintext.
        let mut rng = rng();
        let kp = KeyPair::generate(&mut rng);
        let ct = encrypt(&kp.public, b"", b"whistleblower report", &mut rng);

        let mut flipped_body = ct.clone();
        flipped_body.body[0] ^= 1;
        assert!(decrypt(&kp.secret, &kp.public, b"", &flipped_body).is_err());

        let mut flipped_kem = ct.clone();
        flipped_kem.encapsulation += RISTRETTO_BASEPOINT_TABLE.basepoint();
        assert!(decrypt(&kp.secret, &kp.public, b"", &flipped_kem).is_err());
    }

    #[test]
    fn wrong_recipient_cannot_decrypt() {
        let mut rng = rng();
        let kp = KeyPair::generate(&mut rng);
        let other = KeyPair::generate(&mut rng);
        let ct = encrypt(&kp.public, b"", b"secret", &mut rng);
        assert!(decrypt(&other.secret, &other.public, b"", &ct).is_err());
        assert!(decrypt(&other.secret, &kp.public, b"", &ct).is_err());
    }

    #[test]
    fn aad_mismatch_detected() {
        let mut rng = rng();
        let kp = KeyPair::generate(&mut rng);
        let ct = encrypt(&kp.public, b"round-1", b"secret", &mut rng);
        assert!(decrypt(&kp.secret, &kp.public, b"round-2", &ct).is_err());
    }

    #[test]
    fn malformed_bytes_rejected() {
        assert!(HybridCiphertext::from_bytes(&[0u8; 10]).is_err());
        // 32 bytes of 0xff is not a valid Ristretto encoding.
        let mut bad = vec![0xffu8; 64];
        bad[33] = 1;
        assert!(HybridCiphertext::from_bytes(&bad).is_err());
    }

    #[test]
    fn ciphertexts_are_randomized() {
        let mut rng = rng();
        let kp = KeyPair::generate(&mut rng);
        let a = encrypt(&kp.public, b"", b"same message", &mut rng);
        let b = encrypt(&kp.public, b"", b"same message", &mut rng);
        assert_ne!(a, b);
    }
}
