//! Hash commitments for trap messages (§4.4).
//!
//! Trap messages contain a high-entropy random nonce, so a plain SHA-3 hash
//! is binding and hiding, exactly as the paper argues ("since the nonces are
//! high-entropy, we can use a cryptographic hash like SHA-3 as a
//! commitment").

use serde::{Deserialize, Serialize};

use crate::keccak::sha3_256_multi;

/// A 32-byte SHA-3 commitment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Commitment(pub [u8; 32]);

/// Commits to `data` under a domain-separation label.
pub fn commit(label: &[u8], data: &[u8]) -> Commitment {
    Commitment(sha3_256_multi(&[
        b"atom-commitment",
        &(label.len() as u64).to_le_bytes(),
        label,
        &(data.len() as u64).to_le_bytes(),
        data,
    ]))
}

/// Verifies that `data` opens `commitment` under `label`.
pub fn verify(commitment: &Commitment, label: &[u8], data: &[u8]) -> bool {
    commit(label, data) == *commitment
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commitment_verifies() {
        let c = commit(b"trap", b"gid=3;nonce=abcdef");
        assert!(verify(&c, b"trap", b"gid=3;nonce=abcdef"));
    }

    #[test]
    fn wrong_data_rejected() {
        let c = commit(b"trap", b"gid=3;nonce=abcdef");
        assert!(!verify(&c, b"trap", b"gid=3;nonce=abcdeg"));
    }

    #[test]
    fn wrong_label_rejected() {
        let c = commit(b"trap", b"payload");
        assert!(!verify(&c, b"inner", b"payload"));
    }

    #[test]
    fn label_data_boundary_is_unambiguous() {
        assert_ne!(commit(b"ab", b"c"), commit(b"a", b"bc"));
    }
}
