//! ChaCha20-Poly1305 AEAD (RFC 8439), implemented from scratch.
//!
//! The Atom paper uses NaCl's authenticated encryption for the IND-CCA2
//! "inner ciphertext" layer of the trap variant (§4.4, Appendix A). We use
//! the ChaCha20-Poly1305 construction in the same family; it plays the role
//! of `AEnc`/`ADec` in the paper's key-encapsulation scheme.

use crate::error::CryptoError;

/// Size of a ChaCha20-Poly1305 key in bytes.
pub const KEY_LEN: usize = 32;
/// Size of a nonce in bytes.
pub const NONCE_LEN: usize = 12;
/// Size of the authentication tag in bytes.
pub const TAG_LEN: usize = 16;

/// The ChaCha20 quarter round.
#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 keystream block.
fn chacha20_block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().unwrap());
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().unwrap());
    }

    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }

    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Encrypts or decrypts `data` in place with the ChaCha20 stream cipher,
/// starting at block `counter`.
pub fn chacha20_xor(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32, data: &mut [u8]) {
    for (block_idx, chunk) in data.chunks_mut(64).enumerate() {
        let block = chacha20_block(key, counter.wrapping_add(block_idx as u32), nonce);
        for (byte, key_byte) in chunk.iter_mut().zip(block.iter()) {
            *byte ^= key_byte;
        }
    }
}

/// Poly1305 one-time authenticator state.
///
/// The accumulator is kept in five 26-bit limbs to stay within u64 products,
/// following the classic "donna"-style reference layout.
struct Poly1305 {
    r: [u32; 5],
    s: [u32; 4],
    acc: [u64; 5],
    buffer: [u8; 16],
    buffered: usize,
}

impl Poly1305 {
    fn new(key: &[u8; 32]) -> Self {
        // Clamp r per RFC 8439.
        let t0 = u32::from_le_bytes(key[0..4].try_into().unwrap());
        let t1 = u32::from_le_bytes(key[4..8].try_into().unwrap());
        let t2 = u32::from_le_bytes(key[8..12].try_into().unwrap());
        let t3 = u32::from_le_bytes(key[12..16].try_into().unwrap());

        let r = [
            t0 & 0x03ff_ffff,
            ((t0 >> 26) | (t1 << 6)) & 0x03ff_ff03,
            ((t1 >> 20) | (t2 << 12)) & 0x03ff_c0ff,
            ((t2 >> 14) | (t3 << 18)) & 0x03f0_3fff,
            (t3 >> 8) & 0x000f_ffff,
        ];
        let s = [
            u32::from_le_bytes(key[16..20].try_into().unwrap()),
            u32::from_le_bytes(key[20..24].try_into().unwrap()),
            u32::from_le_bytes(key[24..28].try_into().unwrap()),
            u32::from_le_bytes(key[28..32].try_into().unwrap()),
        ];
        Self {
            r,
            s,
            acc: [0; 5],
            buffer: [0; 16],
            buffered: 0,
        }
    }

    /// Processes one 16-byte block (with the high bit set unless `partial`).
    fn block(&mut self, block: &[u8; 16], partial_len: Option<usize>) {
        let mut padded = [0u8; 17];
        match partial_len {
            None => {
                padded[..16].copy_from_slice(block);
                padded[16] = 1;
            }
            Some(len) => {
                padded[..len].copy_from_slice(&block[..len]);
                padded[len] = 1;
            }
        }

        let t0 = u32::from_le_bytes(padded[0..4].try_into().unwrap());
        let t1 = u32::from_le_bytes(padded[4..8].try_into().unwrap());
        let t2 = u32::from_le_bytes(padded[8..12].try_into().unwrap());
        let t3 = u32::from_le_bytes(padded[12..16].try_into().unwrap());
        let hi = padded[16] as u32;

        self.acc[0] += (t0 & 0x03ff_ffff) as u64;
        self.acc[1] += (((t0 >> 26) | (t1 << 6)) & 0x03ff_ffff) as u64;
        self.acc[2] += (((t1 >> 20) | (t2 << 12)) & 0x03ff_ffff) as u64;
        self.acc[3] += (((t2 >> 14) | (t3 << 18)) & 0x03ff_ffff) as u64;
        self.acc[4] += ((t3 >> 8) | (hi << 24)) as u64;

        // acc = (acc * r) mod 2^130 - 5, schoolbook with limb reduction.
        let r0 = self.r[0] as u64;
        let r1 = self.r[1] as u64;
        let r2 = self.r[2] as u64;
        let r3 = self.r[3] as u64;
        let r4 = self.r[4] as u64;
        let s1 = r1 * 5;
        let s2 = r2 * 5;
        let s3 = r3 * 5;
        let s4 = r4 * 5;

        let h0 = self.acc[0];
        let h1 = self.acc[1];
        let h2 = self.acc[2];
        let h3 = self.acc[3];
        let h4 = self.acc[4];

        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        let mut c;
        let mut acc = [0u64; 5];
        c = d0 >> 26;
        acc[0] = d0 & 0x03ff_ffff;
        let d1 = d1 + c;
        c = d1 >> 26;
        acc[1] = d1 & 0x03ff_ffff;
        let d2 = d2 + c;
        c = d2 >> 26;
        acc[2] = d2 & 0x03ff_ffff;
        let d3 = d3 + c;
        c = d3 >> 26;
        acc[3] = d3 & 0x03ff_ffff;
        let d4 = d4 + c;
        c = d4 >> 26;
        acc[4] = d4 & 0x03ff_ffff;
        acc[0] += c * 5;
        c = acc[0] >> 26;
        acc[0] &= 0x03ff_ffff;
        acc[1] += c;

        self.acc = acc;
    }

    fn update(&mut self, mut data: &[u8]) {
        if self.buffered > 0 {
            let take = (16 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 16 {
                let block = self.buffer;
                self.block(&block, None);
                self.buffered = 0;
            }
        }
        while data.len() >= 16 {
            let block: [u8; 16] = data[..16].try_into().unwrap();
            self.block(&block, None);
            data = &data[16..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buffered > 0 {
            let block = self.buffer;
            let len = self.buffered;
            self.block(&block, Some(len));
        }

        // Fully reduce the accumulator modulo 2^130 - 5.
        let mut h = self.acc;
        let mut c = h[1] >> 26;
        h[1] &= 0x03ff_ffff;
        h[2] += c;
        c = h[2] >> 26;
        h[2] &= 0x03ff_ffff;
        h[3] += c;
        c = h[3] >> 26;
        h[3] &= 0x03ff_ffff;
        h[4] += c;
        c = h[4] >> 26;
        h[4] &= 0x03ff_ffff;
        h[0] += c * 5;
        c = h[0] >> 26;
        h[0] &= 0x03ff_ffff;
        h[1] += c;

        // Compute h + -p and select it if h >= p.
        let mut g = [0u64; 5];
        g[0] = h[0] + 5;
        c = g[0] >> 26;
        g[0] &= 0x03ff_ffff;
        g[1] = h[1] + c;
        c = g[1] >> 26;
        g[1] &= 0x03ff_ffff;
        g[2] = h[2] + c;
        c = g[2] >> 26;
        g[2] &= 0x03ff_ffff;
        g[3] = h[3] + c;
        c = g[3] >> 26;
        g[3] &= 0x03ff_ffff;
        g[4] = h[4].wrapping_add(c).wrapping_sub(1 << 26);

        let use_g = (g[4] >> 63) == 0;
        let sel = if use_g { g } else { h };
        // The g branch has already wrapped off the carry bit; mask to 26 bits.
        let h0 = sel[0] & 0x03ff_ffff;
        let h1 = sel[1] & 0x03ff_ffff;
        let h2 = sel[2] & 0x03ff_ffff;
        let h3 = sel[3] & 0x03ff_ffff;
        let h4 = sel[4] & 0x03ff_ffff;

        // Convert back to four 32-bit words.
        let w0 = (h0 | (h1 << 26)) as u32;
        let w1 = ((h1 >> 6) | (h2 << 20)) as u32;
        let w2 = ((h2 >> 12) | (h3 << 14)) as u32;
        let w3 = ((h3 >> 18) | (h4 << 8)) as u32;

        // Add s with carry.
        let mut tag = [0u8; TAG_LEN];
        let mut carry: u64 = 0;
        for (i, word) in [w0, w1, w2, w3].iter().enumerate() {
            let sum = *word as u64 + self.s[i] as u64 + carry;
            tag[4 * i..4 * i + 4].copy_from_slice(&(sum as u32).to_le_bytes());
            carry = sum >> 32;
        }
        tag
    }
}

/// Computes the Poly1305 tag over the AEAD input layout of RFC 8439.
fn poly1305_aead_tag(otk: &[u8; 32], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
    let mut mac = Poly1305::new(otk);
    mac.update(aad);
    let pad = [0u8; 16];
    if !aad.len().is_multiple_of(16) {
        mac.update(&pad[..16 - aad.len() % 16]);
    }
    mac.update(ciphertext);
    if !ciphertext.len().is_multiple_of(16) {
        mac.update(&pad[..16 - ciphertext.len() % 16]);
    }
    mac.update(&(aad.len() as u64).to_le_bytes());
    mac.update(&(ciphertext.len() as u64).to_le_bytes());
    mac.finalize()
}

/// Encrypts `plaintext` with ChaCha20-Poly1305, returning ciphertext || tag.
pub fn seal(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let otk_block = chacha20_block(key, 0, nonce);
    let otk: [u8; 32] = otk_block[..32].try_into().unwrap();

    let mut out = plaintext.to_vec();
    chacha20_xor(key, nonce, 1, &mut out);
    let tag = poly1305_aead_tag(&otk, aad, &out);
    out.extend_from_slice(&tag);
    out
}

/// Decrypts and authenticates a ciphertext produced by [`seal`].
pub fn open(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    ciphertext: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    if ciphertext.len() < TAG_LEN {
        return Err(CryptoError::AuthenticationFailed);
    }
    let (body, tag) = ciphertext.split_at(ciphertext.len() - TAG_LEN);

    let otk_block = chacha20_block(key, 0, nonce);
    let otk: [u8; 32] = otk_block[..32].try_into().unwrap();
    let expected = poly1305_aead_tag(&otk, aad, body);

    // Constant-time-ish comparison: accumulate differences before branching.
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(tag.iter()) {
        diff |= a ^ b;
    }
    if diff != 0 {
        return Err(CryptoError::AuthenticationFailed);
    }

    let mut out = body.to_vec();
    chacha20_xor(key, nonce, 1, &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn seal_matches_reference_implementation() {
        // Vector generated with the `cryptography` library's ChaCha20Poly1305.
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = core::array::from_fn(|i| i as u8);
        let aad = b"atom-aad";
        let msg = b"The quick brown fox jumps over the lazy dog, anonymously.";
        let ct = seal(&key, &nonce, aad, msg);
        assert_eq!(
            hex(&ct),
            "dd936d205862cc23dca35d81f76a6043af1fcac73b01c0c995b740b310b28648\
             84e50c9f8764c8b8535d11f445f5e14c10fdc41b885bd4e23c93d98d8d56f84f\
             063b4dac99ce8ffc0d"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn seal_empty_matches_reference_implementation() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce = [0u8; 12];
        let ct = seal(&key, &nonce, b"", b"");
        assert_eq!(hex(&ct), "10324f800a160bd9a1794255be7ec29d");
    }

    #[test]
    fn roundtrip() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let aad = b"header";
        let msg = b"hello atom";
        let ct = seal(&key, &nonce, aad, msg);
        let pt = open(&key, &nonce, aad, &ct).unwrap();
        assert_eq!(pt, msg);
    }

    #[test]
    fn roundtrip_various_lengths() {
        let key = [42u8; 32];
        let nonce = [1u8; 12];
        for len in [0usize, 1, 15, 16, 17, 63, 64, 65, 160, 1000] {
            let msg: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let ct = seal(&key, &nonce, b"", &msg);
            assert_eq!(ct.len(), len + TAG_LEN);
            assert_eq!(open(&key, &nonce, b"", &ct).unwrap(), msg);
        }
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let key = [3u8; 32];
        let nonce = [4u8; 12];
        let mut ct = seal(&key, &nonce, b"ad", b"secret message");
        ct[0] ^= 1;
        assert!(open(&key, &nonce, b"ad", &ct).is_err());
    }

    #[test]
    fn tampered_tag_rejected() {
        let key = [3u8; 32];
        let nonce = [4u8; 12];
        let mut ct = seal(&key, &nonce, b"ad", b"secret message");
        let last = ct.len() - 1;
        ct[last] ^= 0x80;
        assert!(open(&key, &nonce, b"ad", &ct).is_err());
    }

    #[test]
    fn wrong_aad_rejected() {
        let key = [3u8; 32];
        let nonce = [4u8; 12];
        let ct = seal(&key, &nonce, b"ad", b"secret message");
        assert!(open(&key, &nonce, b"other", &ct).is_err());
    }

    #[test]
    fn wrong_key_rejected() {
        let key = [3u8; 32];
        let other = [5u8; 32];
        let nonce = [4u8; 12];
        let ct = seal(&key, &nonce, b"", b"secret message");
        assert!(open(&other, &nonce, b"", &ct).is_err());
    }

    #[test]
    fn truncated_ciphertext_rejected() {
        let key = [3u8; 32];
        let nonce = [4u8; 12];
        let ct = seal(&key, &nonce, b"", b"secret message");
        assert!(open(&key, &nonce, b"", &ct[..TAG_LEN - 1]).is_err());
        assert!(open(&key, &nonce, b"", &[]).is_err());
    }
}
