//! Fiat-Shamir transcript built on the SHAKE256 sponge.
//!
//! All non-interactive zero-knowledge proofs in this crate (EncProof,
//! ReEncProof, ShufProof) derive their challenges from a transcript that
//! absorbs a domain-separation label, the full public statement, and every
//! prover announcement in order. Binding the statement (including the entry
//! group id for EncProof) into the challenge is what makes the proofs
//! non-malleable across groups, as required by §3 and Appendix A.

use curve25519_dalek::ristretto::{CompressedRistretto, RistrettoPoint};
use curve25519_dalek::scalar::Scalar;

use crate::keccak::Shake256;

/// A Fiat-Shamir transcript.
///
/// Each absorbed item is framed as `len(label) || label || len(data) || data`
/// so that distinct sequences of appends can never collide.
#[derive(Clone)]
pub struct Transcript {
    xof: Shake256,
}

impl Transcript {
    /// Creates a transcript with a protocol-level domain separation label.
    pub fn new(domain: &'static [u8]) -> Self {
        let mut xof = Shake256::new();
        xof.absorb(b"atom-transcript-v1");
        let mut t = Self { xof };
        t.append_bytes(b"domain", domain);
        t
    }

    /// Appends a labelled byte string.
    pub fn append_bytes(&mut self, label: &'static [u8], data: &[u8]) {
        self.xof.absorb(&(label.len() as u64).to_le_bytes());
        self.xof.absorb(label);
        self.xof.absorb(&(data.len() as u64).to_le_bytes());
        self.xof.absorb(data);
    }

    /// Appends a labelled u64.
    pub fn append_u64(&mut self, label: &'static [u8], value: u64) {
        self.append_bytes(label, &value.to_le_bytes());
    }

    /// Appends a labelled group element.
    pub fn append_point(&mut self, label: &'static [u8], point: &RistrettoPoint) {
        self.append_bytes(label, point.compress().as_bytes());
    }

    /// Appends a labelled compressed group element.
    pub fn append_compressed(&mut self, label: &'static [u8], point: &CompressedRistretto) {
        self.append_bytes(label, point.as_bytes());
    }

    /// Appends a labelled scalar.
    pub fn append_scalar(&mut self, label: &'static [u8], scalar: &Scalar) {
        self.append_bytes(label, scalar.as_bytes());
    }

    /// Derives a challenge scalar. The transcript state advances, so repeated
    /// calls yield independent challenges.
    pub fn challenge_scalar(&mut self, label: &'static [u8]) -> Scalar {
        let mut wide = [0u8; 64];
        self.challenge_bytes(label, &mut wide);
        Scalar::from_bytes_mod_order_wide(&wide)
    }

    /// Derives challenge bytes. The transcript state advances.
    pub fn challenge_bytes(&mut self, label: &'static [u8], out: &mut [u8]) {
        // Fork the sponge for output, then fold a commitment to this
        // challenge back into the main transcript so later challenges depend
        // on earlier ones.
        self.append_bytes(b"challenge-label", label);
        let mut fork = self.xof.clone();
        fork.squeeze(out);
        self.append_bytes(b"challenge-consumed", &[out.len() as u8]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use curve25519_dalek::constants::RISTRETTO_BASEPOINT_POINT;

    #[test]
    fn deterministic_for_same_inputs() {
        let mut a = Transcript::new(b"test");
        let mut b = Transcript::new(b"test");
        a.append_u64(b"x", 7);
        b.append_u64(b"x", 7);
        assert_eq!(a.challenge_scalar(b"c"), b.challenge_scalar(b"c"));
    }

    #[test]
    fn different_domains_differ() {
        let mut a = Transcript::new(b"test-a");
        let mut b = Transcript::new(b"test-b");
        assert_ne!(a.challenge_scalar(b"c"), b.challenge_scalar(b"c"));
    }

    #[test]
    fn different_appended_data_differ() {
        let mut a = Transcript::new(b"test");
        let mut b = Transcript::new(b"test");
        a.append_u64(b"x", 7);
        b.append_u64(b"x", 8);
        assert_ne!(a.challenge_scalar(b"c"), b.challenge_scalar(b"c"));
    }

    #[test]
    fn framing_prevents_concatenation_collision() {
        let mut a = Transcript::new(b"test");
        let mut b = Transcript::new(b"test");
        a.append_bytes(b"x", b"ab");
        a.append_bytes(b"y", b"c");
        b.append_bytes(b"x", b"a");
        b.append_bytes(b"y", b"bc");
        assert_ne!(a.challenge_scalar(b"c"), b.challenge_scalar(b"c"));
    }

    #[test]
    fn sequential_challenges_differ_and_depend_on_history() {
        let mut a = Transcript::new(b"test");
        let c1 = a.challenge_scalar(b"c");
        let c2 = a.challenge_scalar(b"c");
        assert_ne!(c1, c2);

        // A transcript that diverges after the first challenge produces a
        // different second challenge.
        let mut b = Transcript::new(b"test");
        let d1 = b.challenge_scalar(b"c");
        assert_eq!(c1, d1);
        b.append_point(b"p", &RISTRETTO_BASEPOINT_POINT);
        assert_ne!(a.challenge_scalar(b"c"), b.challenge_scalar(b"c"));
    }
}
