//! Rerandomizable ElGamal with out-of-order decryption and re-encryption.
//!
//! This is the cryptosystem of Appendix A of the Atom paper, written
//! additively over the Ristretto group. A ciphertext is a triple
//! `(R, c, Y)` where `Y` is an optional auxiliary element (⊥ in the paper):
//!
//! * `Enc(X, m)`: pick `r`, output `(rB, m + rX, ⊥)`.
//! * `Dec(x, (R, c, ⊥))`: output `c − xR`.
//! * `Shuffle`: rerandomize `(R, c, ⊥) → (R + r'B, c + r'X, ⊥)` and permute.
//! * `ReEnc(x, X', (R, c, Y))`: if `Y = ⊥`, set `Y := R`, `R := 0`. Peel one
//!   layer with `x` (`c := c − xY`), then add a layer for the next group's
//!   key `X'` (`R := R + r'B`, `c := c + r'X'`).
//!
//! `Y` carries the randomness binding the ciphertext to the *current* group's
//! key while `R` accumulates randomness for the *next* group's key, which is
//! what lets each server in a group peel its own layer even though the
//! ciphertext has already been partially re-encrypted toward the next group
//! ("out-of-order" decryption). The last server of a group drops `Y` before
//! forwarding (see [`Ciphertext::finalize_handoff`]).

use curve25519_dalek::constants::RISTRETTO_BASEPOINT_TABLE;
use curve25519_dalek::ristretto::RistrettoPoint;
use curve25519_dalek::scalar::Scalar;
use curve25519_dalek::traits::Identity;
use rand::rngs::OsRng;
use rand::{CryptoRng, RngCore};
use serde::{Deserialize, Serialize};

use crate::error::{CryptoError, CryptoResult};

/// An ElGamal secret key (a scalar).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecretKey(pub Scalar);

/// An ElGamal public key (a group element).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicKey(pub RistrettoPoint);

/// A secret/public keypair.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KeyPair {
    /// The secret scalar.
    pub secret: SecretKey,
    /// The matching public key.
    pub public: PublicKey,
}

impl KeyPair {
    /// Generates a fresh keypair (`KeyGen` in the paper).
    pub fn generate<R: RngCore + CryptoRng>(rng: &mut R) -> Self {
        let x = Scalar::random(rng);
        Self::from_secret(x)
    }

    /// Generates a fresh keypair from the operating-system RNG.
    pub fn generate_default() -> Self {
        Self::generate(&mut OsRng)
    }

    /// Builds a keypair from an existing secret scalar.
    pub fn from_secret(x: Scalar) -> Self {
        let public = PublicKey(x * RISTRETTO_BASEPOINT_TABLE);
        Self {
            secret: SecretKey(x),
            public,
        }
    }
}

impl PublicKey {
    /// Combines several public keys into an anytrust group key
    /// (the "product of the public keys of all servers" in §4.2).
    pub fn combine<'a>(keys: impl IntoIterator<Item = &'a PublicKey>) -> PublicKey {
        let mut sum = RistrettoPoint::identity();
        for key in keys {
            sum += key.0;
        }
        PublicKey(sum)
    }

    /// The canonical 32-byte encoding of the key.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0.compress().to_bytes()
    }

    /// Parses a key from its canonical 32-byte encoding.
    pub fn from_bytes(bytes: &[u8]) -> CryptoResult<PublicKey> {
        let array: [u8; 32] = bytes
            .try_into()
            .map_err(|_| CryptoError::Malformed("public key must be 32 bytes".into()))?;
        curve25519_dalek::ristretto::CompressedRistretto(array)
            .decompress()
            .map(PublicKey)
            .ok_or_else(|| CryptoError::Malformed("invalid public key encoding".into()))
    }
}

/// A rerandomizable ElGamal ciphertext `(R, c, Y)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ciphertext {
    /// Randomness component for the *next* group's key.
    pub r: RistrettoPoint,
    /// Payload component.
    pub c: RistrettoPoint,
    /// Auxiliary randomness component for the *current* group's key
    /// (`None` encodes ⊥).
    pub y: Option<RistrettoPoint>,
}

impl Ciphertext {
    /// True if the auxiliary component is ⊥.
    pub fn is_fresh(&self) -> bool {
        self.y.is_none()
    }

    /// Drops the auxiliary component before handing the ciphertext to the
    /// next group. Called by the last server of a group once every member has
    /// peeled its layer; at that point all layers for the current group have
    /// been removed and the ciphertext is encrypted only under the next
    /// group's key.
    pub fn finalize_handoff(&self) -> Ciphertext {
        Ciphertext {
            r: self.r,
            c: self.c,
            y: None,
        }
    }

    /// Extracts the plaintext group element after the final exit-group
    /// decryption (all layers peeled with no next key).
    pub fn into_plaintext_point(self) -> RistrettoPoint {
        self.c
    }
}

/// Encrypts a group element `m` under `pk`, returning the ciphertext and the
/// encryption randomness (needed to build an `EncProof`).
pub fn encrypt<R: RngCore + CryptoRng>(
    pk: &PublicKey,
    m: &RistrettoPoint,
    rng: &mut R,
) -> (Ciphertext, Scalar) {
    encrypt_with_table(&crate::batch::fixed_base_table(&pk.0), m, rng)
}

/// [`encrypt`] against an already-fetched key table (one cache lookup per
/// batch instead of per component).
fn encrypt_with_table<R: RngCore + CryptoRng>(
    pk_table: &curve25519_dalek::ristretto::RistrettoBasepointTable,
    m: &RistrettoPoint,
    rng: &mut R,
) -> (Ciphertext, Scalar) {
    let r = Scalar::random(rng);
    let ct = Ciphertext {
        r: r * RISTRETTO_BASEPOINT_TABLE,
        c: m + pk_table.mul_scalar(&r),
        y: None,
    };
    (ct, r)
}

/// Decrypts a ciphertext with a single secret key (`Dec` in the paper).
///
/// Fails if the auxiliary component is present, mirroring Appendix A.
pub fn decrypt(sk: &SecretKey, ct: &Ciphertext) -> CryptoResult<RistrettoPoint> {
    if ct.y.is_some() {
        return Err(CryptoError::UnexpectedAuxComponent);
    }
    // `c + (−x)·R` rather than `c − x·R`: point subtraction costs a Fermat
    // inversion in the vendored group, scalar negation is free.
    Ok(ct.c + -sk.0 * ct.r)
}

/// Rerandomizes a ciphertext for public key `pk`, returning the fresh
/// randomness (needed for shuffle proofs). Fails if `Y ≠ ⊥`.
pub fn rerandomize<R: RngCore + CryptoRng>(
    pk: &PublicKey,
    ct: &Ciphertext,
    rng: &mut R,
) -> CryptoResult<(Ciphertext, Scalar)> {
    if ct.y.is_some() {
        return Err(CryptoError::UnexpectedAuxComponent);
    }
    let r = Scalar::random(rng);
    Ok((rerandomize_with(pk, ct, &r), r))
}

/// Rerandomizes a ciphertext with caller-provided randomness.
pub fn rerandomize_with(pk: &PublicKey, ct: &Ciphertext, r: &Scalar) -> Ciphertext {
    rerandomize_with_table(&crate::batch::fixed_base_table(&pk.0), ct, r)
}

/// [`rerandomize_with`] against an already-fetched key table.
fn rerandomize_with_table(
    pk_table: &curve25519_dalek::ristretto::RistrettoBasepointTable,
    ct: &Ciphertext,
    r: &Scalar,
) -> Ciphertext {
    Ciphertext {
        r: ct.r + r * RISTRETTO_BASEPOINT_TABLE,
        c: ct.c + pk_table.mul_scalar(r),
        y: ct.y,
    }
}

/// Witness data produced by [`reencrypt`], needed for a `ReEncProof`.
#[derive(Clone, Debug)]
pub struct ReEncWitness {
    /// The effective peeling exponent used (server secret or Lagrange-weighted
    /// threshold share).
    pub peel_secret: Scalar,
    /// Fresh randomness added toward the next group's key (zero when the next
    /// key is ⊥).
    pub fresh_randomness: Scalar,
    /// Whether the `Y := R, R := 0` swap was applied (i.e. the input had
    /// `Y = ⊥`).
    pub swapped: bool,
}

/// `ReEnc(x, X', (R, c, Y))` from Appendix A.
///
/// `peel_secret` is the exponent this server removes: its own secret key in
/// the anytrust variant, or its Lagrange-weighted threshold share in the
/// many-trust variant. `next_pk = None` encodes `X' = ⊥` (final decryption).
pub fn reencrypt<R: RngCore + CryptoRng>(
    peel_secret: &Scalar,
    next_pk: Option<&PublicKey>,
    ct: &Ciphertext,
    rng: &mut R,
) -> (Ciphertext, ReEncWitness) {
    let next_table = next_pk.map(|next| crate::batch::fixed_base_table(&next.0));
    reencrypt_with_table(peel_secret, next_table.as_deref(), ct, rng)
}

/// [`reencrypt`] against an already-fetched next-key table.
fn reencrypt_with_table<R: RngCore + CryptoRng>(
    peel_secret: &Scalar,
    next_table: Option<&curve25519_dalek::ristretto::RistrettoBasepointTable>,
    ct: &Ciphertext,
    rng: &mut R,
) -> (Ciphertext, ReEncWitness) {
    let fresh = match next_table {
        Some(_) => Scalar::random(rng),
        None => Scalar::ZERO,
    };
    let out = reencrypt_with_table_core(peel_secret, next_table, ct, &fresh);
    let witness = ReEncWitness {
        peel_secret: *peel_secret,
        fresh_randomness: fresh,
        swapped: ct.y.is_none(),
    };
    (out, witness)
}

/// Deterministic core of [`reencrypt`] with caller-provided randomness.
pub fn reencrypt_with(
    peel_secret: &Scalar,
    next_pk: Option<&PublicKey>,
    ct: &Ciphertext,
    fresh: &Scalar,
) -> Ciphertext {
    let next_table = next_pk.map(|next| crate::batch::fixed_base_table(&next.0));
    reencrypt_with_table_core(peel_secret, next_table.as_deref(), ct, fresh)
}

fn reencrypt_with_table_core(
    peel_secret: &Scalar,
    next_table: Option<&curve25519_dalek::ristretto::RistrettoBasepointTable>,
    ct: &Ciphertext,
    fresh: &Scalar,
) -> Ciphertext {
    // Step 1: if Y = ⊥, move the current randomness into Y and reset R.
    let (mut r, y) = match ct.y {
        Some(y) => (ct.r, y),
        None => (RistrettoPoint::identity(), ct.r),
    };
    // Step 2: peel one layer of the current group's encryption
    // (`c + (−x)·Y` avoids the point-subtraction inversion).
    let mut c = ct.c + -*peel_secret * y;
    // Step 3: add a layer toward the next group's key (if any).
    if let Some(next) = next_table {
        r += fresh * RISTRETTO_BASEPOINT_TABLE;
        c += next.mul_scalar(fresh);
    }
    Ciphertext { r, c, y: Some(y) }
}

/// The public "swap view" of a ciphertext as seen by a re-encryption proof:
/// the `(R, Y)` pair after the deterministic `Y := R, R := 0` swap has been
/// applied when `Y = ⊥`. Both prover and verifier compute this locally.
pub fn swap_view(ct: &Ciphertext) -> (RistrettoPoint, RistrettoPoint) {
    match ct.y {
        Some(y) => (ct.r, y),
        None => (RistrettoPoint::identity(), ct.r),
    }
}

/// A message ciphertext: one ElGamal ciphertext per embedded point.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageCiphertext {
    /// Component ciphertexts, one per plaintext group element.
    pub components: Vec<Ciphertext>,
}

impl MessageCiphertext {
    /// Number of group-element components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True if the ciphertext has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// True if every component has `Y = ⊥`.
    pub fn is_fresh(&self) -> bool {
        self.components.iter().all(Ciphertext::is_fresh)
    }

    /// Applies [`Ciphertext::finalize_handoff`] to every component.
    pub fn finalize_handoff(&self) -> MessageCiphertext {
        MessageCiphertext {
            components: self
                .components
                .iter()
                .map(Ciphertext::finalize_handoff)
                .collect(),
        }
    }
}

/// Encrypts a multi-point message under `pk`; returns the per-component
/// encryption randomness for proof generation.
pub fn encrypt_message<R: RngCore + CryptoRng>(
    pk: &PublicKey,
    points: &[RistrettoPoint],
    rng: &mut R,
) -> (MessageCiphertext, Vec<Scalar>) {
    let pk_table = crate::batch::fixed_base_table(&pk.0);
    let mut components = Vec::with_capacity(points.len());
    let mut randomness = Vec::with_capacity(points.len());
    for point in points {
        let (ct, r) = encrypt_with_table(&pk_table, point, rng);
        components.push(ct);
        randomness.push(r);
    }
    (MessageCiphertext { components }, randomness)
}

/// Decrypts a multi-point message with a single secret key.
pub fn decrypt_message(
    sk: &SecretKey,
    ct: &MessageCiphertext,
) -> CryptoResult<Vec<RistrettoPoint>> {
    ct.components.iter().map(|c| decrypt(sk, c)).collect()
}

/// Re-encrypts every component of a message ciphertext.
pub fn reencrypt_message<R: RngCore + CryptoRng>(
    peel_secret: &Scalar,
    next_pk: Option<&PublicKey>,
    ct: &MessageCiphertext,
    rng: &mut R,
) -> (MessageCiphertext, Vec<ReEncWitness>) {
    let next_table = next_pk.map(|next| crate::batch::fixed_base_table(&next.0));
    let mut components = Vec::with_capacity(ct.components.len());
    let mut witnesses = Vec::with_capacity(ct.components.len());
    for component in &ct.components {
        let (out, witness) =
            reencrypt_with_table(peel_secret, next_table.as_deref(), component, rng);
        components.push(out);
        witnesses.push(witness);
    }
    (MessageCiphertext { components }, witnesses)
}

/// The witness of a batch shuffle: the permutation applied and the
/// rerandomization scalars, indexed `[output slot][component]`.
#[derive(Clone, Debug)]
pub struct ShuffleWitness {
    /// `permutation[j]` is the input index that was placed at output slot `j`.
    pub permutation: Vec<usize>,
    /// `randomness[j][l]` re-randomized component `l` of that input.
    pub randomness: Vec<Vec<Scalar>>,
}

/// `Shuffle(pk, C)` from Appendix A applied to a batch of message
/// ciphertexts: rerandomize every component and apply a uniformly random
/// permutation to the batch. Fails if any component has `Y ≠ ⊥`.
pub fn shuffle<R: RngCore + CryptoRng>(
    pk: &PublicKey,
    batch: &[MessageCiphertext],
    rng: &mut R,
) -> CryptoResult<(Vec<MessageCiphertext>, ShuffleWitness)> {
    for message in batch {
        if !message.is_fresh() {
            return Err(CryptoError::UnexpectedAuxComponent);
        }
    }

    // Fisher-Yates permutation.
    let n = batch.len();
    let mut permutation: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (rng.next_u64() as usize) % (i + 1);
        permutation.swap(i, j);
    }

    let pk_table = crate::batch::fixed_base_table(&pk.0);
    let mut output = Vec::with_capacity(n);
    let mut randomness = Vec::with_capacity(n);
    for &src in &permutation {
        let mut components = Vec::with_capacity(batch[src].components.len());
        let mut rs = Vec::with_capacity(batch[src].components.len());
        for component in &batch[src].components {
            let r = Scalar::random(rng);
            components.push(rerandomize_with_table(&pk_table, component, &r));
            rs.push(r);
        }
        output.push(MessageCiphertext { components });
        randomness.push(rs);
    }

    Ok((
        output,
        ShuffleWitness {
            permutation,
            randomness,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{decode_message, encode_message};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x41544f4d)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let mut rng = rng();
        let kp = KeyPair::generate(&mut rng);
        let m = RistrettoPoint::random(&mut rng);
        let (ct, _) = encrypt(&kp.public, &m, &mut rng);
        assert_eq!(decrypt(&kp.secret, &ct).unwrap(), m);
    }

    #[test]
    fn rerandomize_preserves_plaintext_and_changes_ciphertext() {
        let mut rng = rng();
        let kp = KeyPair::generate(&mut rng);
        let m = RistrettoPoint::random(&mut rng);
        let (ct, _) = encrypt(&kp.public, &m, &mut rng);
        let (ct2, _) = rerandomize(&kp.public, &ct, &mut rng).unwrap();
        assert_ne!(ct, ct2);
        assert_eq!(decrypt(&kp.secret, &ct2).unwrap(), m);
    }

    #[test]
    fn rerandomize_rejects_aux_component() {
        let mut rng = rng();
        let kp = KeyPair::generate(&mut rng);
        let m = RistrettoPoint::random(&mut rng);
        let (ct, _) = encrypt(&kp.public, &m, &mut rng);
        let (mid, _) = reencrypt(&kp.secret.0, Some(&kp.public), &ct, &mut rng);
        assert!(rerandomize(&kp.public, &mid, &mut rng).is_err());
        assert!(decrypt(&kp.secret, &mid).is_err());
    }

    #[test]
    fn anytrust_group_decryption_via_sequential_reencrypt() {
        // One group of 4 servers peels its layers while re-encrypting toward
        // a second group of 3 servers, which then decrypts (next key ⊥).
        let mut rng = rng();
        let group_a: Vec<KeyPair> = (0..4).map(|_| KeyPair::generate(&mut rng)).collect();
        let group_b: Vec<KeyPair> = (0..3).map(|_| KeyPair::generate(&mut rng)).collect();
        let pk_a = PublicKey::combine(group_a.iter().map(|k| &k.public));
        let pk_b = PublicKey::combine(group_b.iter().map(|k| &k.public));

        let m = RistrettoPoint::random(&mut rng);
        let (ct, _) = encrypt(&pk_a, &m, &mut rng);

        // Group A: each server peels its own layer and re-encrypts for B.
        let mut current = ct;
        for server in &group_a {
            let (next, _) = reencrypt(&server.secret.0, Some(&pk_b), &current, &mut rng);
            current = next;
        }
        let handoff = current.finalize_handoff();
        assert!(handoff.is_fresh());
        // The ciphertext is now a plain ElGamal encryption under B's key.
        let sk_b_combined = SecretKey(group_b.iter().map(|k| k.secret.0).sum());
        assert_eq!(decrypt(&sk_b_combined, &handoff).unwrap(), m);

        // Group B: exit group, peels with next key ⊥.
        let mut current = handoff;
        for server in &group_b {
            let (next, _) = reencrypt(&server.secret.0, None, &current, &mut rng);
            current = next;
        }
        assert_eq!(current.into_plaintext_point(), m);
    }

    #[test]
    fn out_of_order_reencryption_intermediate_not_decryptable_by_next_group() {
        // While group A is mid-way through peeling, the ciphertext must not be
        // decryptable by group B alone (it is still protected by the remaining
        // honest server of A).
        let mut rng = rng();
        let group_a: Vec<KeyPair> = (0..3).map(|_| KeyPair::generate(&mut rng)).collect();
        let group_b: Vec<KeyPair> = (0..3).map(|_| KeyPair::generate(&mut rng)).collect();
        let pk_a = PublicKey::combine(group_a.iter().map(|k| &k.public));
        let pk_b = PublicKey::combine(group_b.iter().map(|k| &k.public));

        let m = RistrettoPoint::random(&mut rng);
        let (ct, _) = encrypt(&pk_a, &m, &mut rng);

        // Only two of A's three servers have processed the ciphertext.
        let (step1, _) = reencrypt(&group_a[0].secret.0, Some(&pk_b), &ct, &mut rng);
        let (step2, _) = reencrypt(&group_a[1].secret.0, Some(&pk_b), &step1, &mut rng);

        let sk_b_combined = SecretKey(group_b.iter().map(|k| k.secret.0).sum());
        let premature = step2.finalize_handoff();
        assert_ne!(decrypt(&sk_b_combined, &premature).unwrap(), m);
    }

    #[test]
    fn multi_group_chain_preserves_message_bytes() {
        let mut rng = rng();
        let text = b"a 160-byte style microblog message travels across three anytrust groups";
        let points = encode_message(text).unwrap();

        let groups: Vec<Vec<KeyPair>> = (0..3)
            .map(|_| (0..4).map(|_| KeyPair::generate(&mut rng)).collect())
            .collect();
        let group_pks: Vec<PublicKey> = groups
            .iter()
            .map(|g| PublicKey::combine(g.iter().map(|k| &k.public)))
            .collect();

        let (mut current, _) = encrypt_message(&group_pks[0], &points, &mut rng);
        for (idx, group) in groups.iter().enumerate() {
            let next_pk = group_pks.get(idx + 1);
            for server in group {
                let (out, _) = reencrypt_message(&server.secret.0, next_pk, &current, &mut rng);
                current = out;
            }
            current = current.finalize_handoff();
        }
        let plaintext_points: Vec<RistrettoPoint> = current
            .components
            .iter()
            .map(|c| c.into_plaintext_point())
            .collect();
        assert_eq!(decode_message(&plaintext_points).unwrap(), text);
    }

    #[test]
    fn shuffle_preserves_plaintext_multiset() {
        let mut rng = rng();
        let kp = KeyPair::generate(&mut rng);
        let messages: Vec<Vec<RistrettoPoint>> = (0..8)
            .map(|i| encode_message(format!("message number {i}").as_bytes()).unwrap())
            .collect();
        let batch: Vec<MessageCiphertext> = messages
            .iter()
            .map(|pts| encrypt_message(&kp.public, pts, &mut rng).0)
            .collect();

        let (shuffled, witness) = shuffle(&kp.public, &batch, &mut rng).unwrap();
        assert_eq!(shuffled.len(), batch.len());

        // Decrypt the shuffled batch and compare the multiset of plaintexts.
        let mut decrypted: Vec<Vec<u8>> = shuffled
            .iter()
            .map(|ct| {
                let points = decrypt_message(&kp.secret, ct).unwrap();
                decode_message(&points).unwrap()
            })
            .collect();
        let mut expected: Vec<Vec<u8>> = messages
            .iter()
            .map(|pts| decode_message(pts).unwrap())
            .collect();
        decrypted.sort();
        expected.sort();
        assert_eq!(decrypted, expected);

        // The witness permutation maps outputs back to inputs.
        for (j, &src) in witness.permutation.iter().enumerate() {
            let points = decrypt_message(&kp.secret, &shuffled[j]).unwrap();
            let original = decode_message(&messages[src]).unwrap();
            assert_eq!(decode_message(&points).unwrap(), original);
        }
    }

    #[test]
    fn shuffle_rejects_partially_reencrypted_batch() {
        let mut rng = rng();
        let kp = KeyPair::generate(&mut rng);
        let m = RistrettoPoint::random(&mut rng);
        let (ct, _) = encrypt(&kp.public, &m, &mut rng);
        let (mid, _) = reencrypt(&kp.secret.0, Some(&kp.public), &ct, &mut rng);
        let batch = vec![MessageCiphertext {
            components: vec![mid],
        }];
        assert!(shuffle(&kp.public, &batch, &mut rng).is_err());
    }

    #[test]
    fn combine_public_keys_matches_sum_of_secrets() {
        let mut rng = rng();
        let keys: Vec<KeyPair> = (0..5).map(|_| KeyPair::generate(&mut rng)).collect();
        let combined = PublicKey::combine(keys.iter().map(|k| &k.public));
        let secret_sum: Scalar = keys.iter().map(|k| k.secret.0).sum();
        assert_eq!(combined, KeyPair::from_secret(secret_sum).public);
    }
}
