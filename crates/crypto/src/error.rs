//! Error types for the Atom cryptographic substrate.

use std::fmt;

/// Errors produced by the cryptographic layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// AEAD or MAC authentication failed.
    AuthenticationFailed,
    /// A message could not be embedded into group elements.
    EncodingFailed(String),
    /// A group element did not decode to a valid message chunk.
    DecodingFailed(String),
    /// Attempted an operation that requires the auxiliary component `Y` to be
    /// absent (⊥), e.g. `Dec` or `Shuffle` on a partially re-encrypted
    /// ciphertext (Appendix A of the paper).
    UnexpectedAuxComponent,
    /// A zero-knowledge proof failed to verify.
    ProofInvalid(String),
    /// Secret-sharing or DKG failure (bad share, too few shares, ...).
    Sharing(String),
    /// Mismatched parameters (vector lengths, group sizes, ...).
    Parameter(String),
    /// Malformed serialized data.
    Malformed(String),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::AuthenticationFailed => write!(f, "authentication failed"),
            CryptoError::EncodingFailed(msg) => write!(f, "message encoding failed: {msg}"),
            CryptoError::DecodingFailed(msg) => write!(f, "message decoding failed: {msg}"),
            CryptoError::UnexpectedAuxComponent => {
                write!(f, "operation requires the auxiliary component Y to be ⊥")
            }
            CryptoError::ProofInvalid(msg) => write!(f, "proof invalid: {msg}"),
            CryptoError::Sharing(msg) => write!(f, "secret sharing error: {msg}"),
            CryptoError::Parameter(msg) => write!(f, "parameter error: {msg}"),
            CryptoError::Malformed(msg) => write!(f, "malformed data: {msg}"),
        }
    }
}

impl std::error::Error for CryptoError {}

/// Convenience result alias for crypto operations.
pub type CryptoResult<T> = Result<T, CryptoError>;
