//! Non-interactive zero-knowledge proofs used by Atom (§2.3, Appendix A).
//!
//! Three proof systems are provided, matching the paper's interface:
//!
//! * [`enc`] — `EncProof`: proof of knowledge of the plaintext/randomness of
//!   a user-submitted ciphertext, bound to the entry group id so a proof
//!   cannot be replayed at a different group.
//! * [`reenc`] — `ReEncProof`: proof that a server correctly peeled its layer
//!   and re-encrypted toward the next group's key (Chaum-Pedersen style).
//! * [`shuffle`] — `ShufProof`: proof that a batch of ciphertexts was
//!   permuted and rerandomized correctly (a Bayer-Groth-style argument with
//!   linear-size sub-arguments standing in for Neff's shuffle; the module
//!   docs carry the substitution note). Verification is RLC-batched: the
//!   default verifier settles a whole proof in one multiscalar equation,
//!   and `crate::batch::verify_shuffle_batch` extends the combination
//!   across every proof of a shuffle chain.

pub mod enc;
pub mod reenc;
pub mod shuffle;

pub use enc::{prove_encryption, verify_encryption, EncProof};
pub use reenc::{prove_reencryption, verify_reencryption, ReEncProof};
pub use shuffle::{prove_shuffle, verify_shuffle, verify_shuffle_sequential, ShuffleProof};
