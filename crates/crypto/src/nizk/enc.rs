//! `EncProof`: proof of knowledge of the encryption randomness of a
//! user-submitted ciphertext (Appendix A).
//!
//! The proof is a Schnorr proof of knowledge of `r` such that `R = rB`, with
//! the whole ciphertext, the group public key, and the entry group id bound
//! into the Fiat-Shamir challenge. Binding the group id prevents a malicious
//! user from replaying another user's ciphertext-and-proof at a different
//! entry group (§3); knowledge of `r` prevents submitting a rerandomized copy
//! of an honest user's ciphertext, which would create duplicate plaintexts at
//! the exit and deanonymize the honest sender.

use curve25519_dalek::constants::RISTRETTO_BASEPOINT_TABLE;
use curve25519_dalek::ristretto::RistrettoPoint;
use curve25519_dalek::scalar::Scalar;
use rand::{CryptoRng, RngCore};
use serde::{Deserialize, Serialize};

use crate::elgamal::{MessageCiphertext, PublicKey};
use crate::error::{CryptoError, CryptoResult};
use crate::transcript::Transcript;

/// Proof of knowledge of the encryption randomness of every component of a
/// [`MessageCiphertext`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncProof {
    /// Per-component Schnorr announcements `A_l = s_l · B`.
    pub announcements: Vec<RistrettoPoint>,
    /// Per-component responses `u_l = s_l + t · r_l`.
    pub responses: Vec<Scalar>,
}

/// Builds the transcript shared by prover and verifier.
fn transcript(pk: &PublicKey, group_id: u64, ct: &MessageCiphertext) -> Transcript {
    let mut t = Transcript::new(b"atom-enc-proof");
    t.append_point(b"group-pk", &pk.0);
    t.append_u64(b"entry-group-id", group_id);
    t.append_u64(b"components", ct.components.len() as u64);
    for component in &ct.components {
        t.append_point(b"R", &component.r);
        t.append_point(b"c", &component.c);
        if let Some(y) = &component.y {
            t.append_point(b"Y", y);
        } else {
            t.append_bytes(b"Y", b"bottom");
        }
    }
    t
}

/// Recomputes a proof's Fiat-Shamir challenge from its statement and
/// announcements (shared with the batch verifier in [`crate::batch`]).
pub(crate) fn batch_challenge(
    pk: &PublicKey,
    group_id: u64,
    ct: &MessageCiphertext,
    proof: &EncProof,
) -> Scalar {
    let mut t = transcript(pk, group_id, ct);
    for a in &proof.announcements {
        t.append_point(b"announcement", a);
    }
    t.challenge_scalar(b"challenge")
}

/// Produces an `EncProof` for a ciphertext encrypted with `randomness`
/// (the per-component scalars returned by [`crate::elgamal::encrypt_message`]).
pub fn prove_encryption<R: RngCore + CryptoRng>(
    pk: &PublicKey,
    group_id: u64,
    ct: &MessageCiphertext,
    randomness: &[Scalar],
    rng: &mut R,
) -> CryptoResult<EncProof> {
    if randomness.len() != ct.components.len() {
        return Err(CryptoError::Parameter(
            "randomness length does not match ciphertext components".into(),
        ));
    }
    let mut t = transcript(pk, group_id, ct);

    let secrets: Vec<Scalar> = (0..ct.components.len())
        .map(|_| Scalar::random(rng))
        .collect();
    let announcements: Vec<RistrettoPoint> = secrets
        .iter()
        .map(|s| s * RISTRETTO_BASEPOINT_TABLE)
        .collect();
    for a in &announcements {
        t.append_point(b"announcement", a);
    }
    let challenge = t.challenge_scalar(b"challenge");

    let responses = secrets
        .iter()
        .zip(randomness.iter())
        .map(|(s, r)| s + challenge * r)
        .collect();

    Ok(EncProof {
        announcements,
        responses,
    })
}

/// Verifies an `EncProof` against the ciphertext, group key and group id it
/// claims to be bound to.
pub fn verify_encryption(
    pk: &PublicKey,
    group_id: u64,
    ct: &MessageCiphertext,
    proof: &EncProof,
) -> CryptoResult<()> {
    if proof.announcements.len() != ct.components.len()
        || proof.responses.len() != ct.components.len()
    {
        return Err(CryptoError::ProofInvalid(
            "EncProof shape does not match ciphertext".into(),
        ));
    }
    if ct.components.iter().any(|c| c.y.is_some()) {
        return Err(CryptoError::ProofInvalid(
            "EncProof only applies to fresh ciphertexts".into(),
        ));
    }

    let mut t = transcript(pk, group_id, ct);
    for a in &proof.announcements {
        t.append_point(b"announcement", a);
    }
    let challenge = t.challenge_scalar(b"challenge");

    for ((component, a), u) in ct
        .components
        .iter()
        .zip(proof.announcements.iter())
        .zip(proof.responses.iter())
    {
        if u * RISTRETTO_BASEPOINT_TABLE != a + challenge * component.r {
            return Err(CryptoError::ProofInvalid(
                "EncProof response check failed".into(),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elgamal::{encrypt_message, rerandomize, Ciphertext, KeyPair};
    use crate::encoding::encode_message;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (StdRng, KeyPair, MessageCiphertext, Vec<Scalar>) {
        let mut rng = StdRng::seed_from_u64(7);
        let kp = KeyPair::generate(&mut rng);
        let points = encode_message(b"hello anonymous world").unwrap();
        let (ct, randomness) = encrypt_message(&kp.public, &points, &mut rng);
        (rng, kp, ct, randomness)
    }

    #[test]
    fn honest_proof_verifies() {
        let (mut rng, kp, ct, randomness) = setup();
        let proof = prove_encryption(&kp.public, 3, &ct, &randomness, &mut rng).unwrap();
        assert!(verify_encryption(&kp.public, 3, &ct, &proof).is_ok());
    }

    #[test]
    fn proof_bound_to_group_id() {
        let (mut rng, kp, ct, randomness) = setup();
        let proof = prove_encryption(&kp.public, 3, &ct, &randomness, &mut rng).unwrap();
        assert!(verify_encryption(&kp.public, 4, &ct, &proof).is_err());
    }

    #[test]
    fn proof_bound_to_public_key() {
        let (mut rng, kp, ct, randomness) = setup();
        let other = KeyPair::generate(&mut rng);
        let proof = prove_encryption(&kp.public, 3, &ct, &randomness, &mut rng).unwrap();
        assert!(verify_encryption(&other.public, 3, &ct, &proof).is_err());
    }

    #[test]
    fn rerandomized_copy_cannot_reuse_proof() {
        // A malicious user who rerandomizes an honest ciphertext does not know
        // the combined randomness, so the old proof must not verify on the
        // rerandomized copy.
        let (mut rng, kp, ct, randomness) = setup();
        let proof = prove_encryption(&kp.public, 3, &ct, &randomness, &mut rng).unwrap();

        let copied: Vec<Ciphertext> = ct
            .components
            .iter()
            .map(|c| rerandomize(&kp.public, c, &mut rng).unwrap().0)
            .collect();
        let copied = MessageCiphertext { components: copied };
        assert!(verify_encryption(&kp.public, 3, &copied, &proof).is_err());
    }

    #[test]
    fn wrong_randomness_rejected() {
        let (mut rng, kp, ct, mut randomness) = setup();
        randomness[0] += Scalar::ONE;
        let proof = prove_encryption(&kp.public, 3, &ct, &randomness, &mut rng).unwrap();
        assert!(verify_encryption(&kp.public, 3, &ct, &proof).is_err());
    }

    #[test]
    fn mismatched_shape_rejected() {
        let (mut rng, kp, ct, randomness) = setup();
        let mut proof = prove_encryption(&kp.public, 3, &ct, &randomness, &mut rng).unwrap();
        proof.announcements.pop();
        assert!(verify_encryption(&kp.public, 3, &ct, &proof).is_err());
        assert!(prove_encryption(&kp.public, 3, &ct, &randomness[1..], &mut rng).is_err());
    }

    #[test]
    fn tampered_response_rejected() {
        let (mut rng, kp, ct, randomness) = setup();
        let mut proof = prove_encryption(&kp.public, 3, &ct, &randomness, &mut rng).unwrap();
        proof.responses[0] += Scalar::ONE;
        assert!(verify_encryption(&kp.public, 3, &ct, &proof).is_err());
    }
}
