//! `ShufProof`: a NIZK argument that a batch of message ciphertexts was
//! correctly shuffled (permuted and rerandomized) under a group public key.
//!
//! The paper instantiates this with Neff's verifiable shuffle (ref. \[59\]
//! in the paper); we use a
//! Bayer-Groth-style argument with linear-size sub-arguments, which fills the
//! same role with the same asymptotic cost (a small constant number of
//! exponentiations per shuffled element for both prover and verifier). See
//! DESIGN.md for the substitution note.
//!
//! ## Protocol sketch
//!
//! Statement: group key `X`, inputs `C[i][l]`, outputs `C'[j][l]` (n messages
//! of L components each). Claim: there are a permutation σ and scalars
//! `ρ[j][l]` with `C'[j][l] = C[σ(j)][l] + ρ[j][l]·(B, X)`.
//!
//! 1. The prover commits (per element, Pedersen) to `a_j = σ(j) + 1`.
//!    Challenge `x`.
//! 2. The prover commits to `b_j = x^{a_j}`. Challenges `y`, `z`.
//! 3. **Product argument.** Both sides form commitments to
//!    `v_j = y·a_j + b_j − z` homomorphically. The prover shows
//!    `∏_j v_j = ∏_{i=1..n} (y·i + x^i − z)` by committing to the partial
//!    products and proving each multiplicative step with a Σ-protocol, then
//!    opening the last partial product to the public value. By Schwartz-Zippel
//!    (over `z`, then `y`) this forces `{(a_j, b_j)} = {(i, x^i)}` as
//!    multisets, i.e. `a` is a permutation and `b_j = x^{a_j}`.
//! 4. **Linear multi-exponentiation argument.** For every component `l` the
//!    prover shows knowledge of openings `b_j` of the step-2 commitments and
//!    of a scalar `ρ*_l` with
//!    `Σ_j b_j·C'[j][l] − ρ*_l·(B, X) = Σ_i x^i·C[i][l]`,
//!    which for a correct shuffle holds with `ρ*_l = Σ_j b_j·ρ[j][l]`.
//!
//! All challenges are Fiat-Shamir derived from a transcript binding the group
//! key, the entire input and output batches, and every commitment and
//! announcement in order.

use curve25519_dalek::constants::RISTRETTO_BASEPOINT_TABLE;
use curve25519_dalek::ristretto::RistrettoPoint;
use curve25519_dalek::scalar::Scalar;
use rand::{CryptoRng, RngCore};
use serde::{Deserialize, Serialize};

use crate::elgamal::{MessageCiphertext, PublicKey, ShuffleWitness};
use crate::error::{CryptoError, CryptoResult};
use crate::pedersen::CommitmentKey;
use crate::transcript::Transcript;

/// One multiplicative step of the product argument: proves that the `j`-th
/// partial-product commitment opens to the product of the previous partial
/// product and `v_j`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProductStepProof {
    /// Announcement `α·G + β·H` for the opening of `c_v[j]`.
    pub announce_value: RistrettoPoint,
    /// Announcement `α·c_p[j−1] + γ·H` for the multiplicative relation.
    pub announce_step: RistrettoPoint,
    /// Response for `v_j`.
    pub response_value: Scalar,
    /// Response for the blinding of `c_v[j]`.
    pub response_value_blinding: Scalar,
    /// Response for the step blinding `s_j = r_p[j] − v_j·r_p[j−1]`.
    pub response_step_blinding: Scalar,
}

/// The verifiable-shuffle proof.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShuffleProof {
    /// Commitments to the permutation indices `a_j = σ(j) + 1`.
    pub commit_perm: Vec<RistrettoPoint>,
    /// Commitments to the permuted challenge powers `b_j = x^{a_j}`.
    pub commit_powers: Vec<RistrettoPoint>,
    /// Commitments to the partial products `p_j` (index 0 is omitted; it
    /// equals the homomorphically derived `c_v[0]`).
    pub commit_partial: Vec<RistrettoPoint>,
    /// Per-step multiplication proofs (one for each `j ≥ 1`).
    pub product_steps: Vec<ProductStepProof>,
    /// Announcement of the final-opening proof (`c_p[n−1] − P·G = r·H`).
    pub announce_final: RistrettoPoint,
    /// Response of the final-opening proof.
    pub response_final: Scalar,
    /// Announcements for the openings of `commit_powers`.
    pub announce_powers: Vec<RistrettoPoint>,
    /// Announcements for the R-half of the multi-exponentiation relation,
    /// one per component.
    pub announce_rand: Vec<RistrettoPoint>,
    /// Announcements for the payload-half of the multi-exponentiation
    /// relation, one per component.
    pub announce_payload: Vec<RistrettoPoint>,
    /// Responses for `b_j`.
    pub response_powers: Vec<Scalar>,
    /// Responses for the blindings of `commit_powers`.
    pub response_power_blindings: Vec<Scalar>,
    /// Responses for the aggregated rerandomizers `ρ*_l`, one per component.
    pub response_rho: Vec<Scalar>,
}

/// Builds the statement transcript shared by prover and verifier.
fn statement_transcript(
    pk: &PublicKey,
    inputs: &[MessageCiphertext],
    outputs: &[MessageCiphertext],
) -> Transcript {
    let mut t = Transcript::new(b"atom-shuffle-proof");
    t.append_point(b"group-pk", &pk.0);
    t.append_u64(b"n", inputs.len() as u64);
    let components = inputs.first().map(|m| m.components.len()).unwrap_or(0);
    t.append_u64(b"components", components as u64);
    for batch_label in [(b"input" as &'static [u8], inputs), (b"output", outputs)] {
        let (label, batch) = batch_label;
        for message in batch {
            for ct in &message.components {
                t.append_bytes(b"side", label);
                t.append_point(b"R", &ct.r);
                t.append_point(b"c", &ct.c);
            }
        }
    }
    t
}

/// Checks the statement shape; returns (n, L).
fn check_shape(
    inputs: &[MessageCiphertext],
    outputs: &[MessageCiphertext],
) -> CryptoResult<(usize, usize)> {
    let n = inputs.len();
    if n == 0 || outputs.len() != n {
        return Err(CryptoError::Parameter(
            "shuffle proof needs equally sized, non-empty batches".into(),
        ));
    }
    let components = inputs[0].components.len();
    if components == 0 {
        return Err(CryptoError::Parameter("empty message ciphertext".into()));
    }
    for message in inputs.iter().chain(outputs.iter()) {
        if message.components.len() != components {
            return Err(CryptoError::Parameter(
                "all messages must have the same number of components".into(),
            ));
        }
        if message.components.iter().any(|c| c.y.is_some()) {
            return Err(CryptoError::Parameter(
                "shuffle proof applies to fresh ciphertexts only".into(),
            ));
        }
    }
    Ok((n, components))
}

/// Computes the public product `∏_{i=1..n} (y·i + x^i − z)`.
fn public_product(n: usize, x: &Scalar, y: &Scalar, z: &Scalar) -> Scalar {
    let mut product = Scalar::ONE;
    let mut x_power = Scalar::ONE;
    for i in 1..=n {
        x_power *= x;
        product *= y * Scalar::from(i as u64) + x_power - z;
    }
    product
}

/// Computes the public multi-exponentiation targets
/// `T_R[l] = Σ_i x^{i+1}·R_i[l]` and `T_c[l] = Σ_i x^{i+1}·c_i[l]`.
fn public_targets(
    inputs: &[MessageCiphertext],
    components: usize,
    x: &Scalar,
) -> (Vec<RistrettoPoint>, Vec<RistrettoPoint>) {
    let mut x_powers = Vec::with_capacity(inputs.len());
    let mut x_power = Scalar::ONE;
    for _ in inputs {
        x_power *= x;
        x_powers.push(x_power);
    }
    let mut t_rand = Vec::with_capacity(components);
    let mut t_payload = Vec::with_capacity(components);
    for l in 0..components {
        let rs: Vec<RistrettoPoint> = inputs.iter().map(|m| m.components[l].r).collect();
        let cs: Vec<RistrettoPoint> = inputs.iter().map(|m| m.components[l].c).collect();
        t_rand.push(RistrettoPoint::multiscalar_mul(&x_powers, &rs));
        t_payload.push(RistrettoPoint::multiscalar_mul(&x_powers, &cs));
    }
    (t_rand, t_payload)
}

/// Produces a shuffle proof from the witness returned by
/// [`crate::elgamal::shuffle`].
pub fn prove_shuffle<R: RngCore + CryptoRng>(
    pk: &PublicKey,
    inputs: &[MessageCiphertext],
    outputs: &[MessageCiphertext],
    witness: &ShuffleWitness,
    rng: &mut R,
) -> CryptoResult<ShuffleProof> {
    let (n, components) = check_shape(inputs, outputs)?;
    if witness.permutation.len() != n || witness.randomness.len() != n {
        return Err(CryptoError::Parameter("witness shape mismatch".into()));
    }
    let key = CommitmentKey::atom();
    let mut t = statement_transcript(pk, inputs, outputs);

    // Step 1: commit to the permutation (a_j = σ(j) + 1).
    let perm_values: Vec<Scalar> = witness
        .permutation
        .iter()
        .map(|&src| Scalar::from((src + 1) as u64))
        .collect();
    let mut perm_blindings = Vec::with_capacity(n);
    let mut commit_perm = Vec::with_capacity(n);
    for value in &perm_values {
        let (c, r) = key.commit_random(value, rng);
        commit_perm.push(c);
        perm_blindings.push(r);
    }
    for c in &commit_perm {
        t.append_point(b"commit-perm", c);
    }
    let x = t.challenge_scalar(b"x");

    // Step 2: commit to the permuted powers b_j = x^{σ(j)+1}.
    let mut x_powers = Vec::with_capacity(n + 1);
    x_powers.push(Scalar::ONE);
    for i in 0..n {
        let next = x_powers[i] * x;
        x_powers.push(next);
    }
    let power_values: Vec<Scalar> = witness
        .permutation
        .iter()
        .map(|&src| x_powers[src + 1])
        .collect();
    let mut power_blindings = Vec::with_capacity(n);
    let mut commit_powers = Vec::with_capacity(n);
    for value in &power_values {
        let (c, r) = key.commit_random(value, rng);
        commit_powers.push(c);
        power_blindings.push(r);
    }
    for c in &commit_powers {
        t.append_point(b"commit-powers", c);
    }
    let y = t.challenge_scalar(b"y");
    let z = t.challenge_scalar(b"z");

    // Step 3: product argument over v_j = y·a_j + b_j − z.
    let v_values: Vec<Scalar> = perm_values
        .iter()
        .zip(power_values.iter())
        .map(|(a, b)| y * a + b - z)
        .collect();
    let v_blindings: Vec<Scalar> = perm_blindings
        .iter()
        .zip(power_blindings.iter())
        .map(|(ra, rb)| y * ra + rb)
        .collect();
    // `−z·G` is constant across the batch: one fixed-base walk, no
    // per-element subtraction (each `Sub` costs a Fermat inversion).
    let neg_z_g = crate::batch::mul_fixed(&key.g, &-z);
    let v_commitments: Vec<RistrettoPoint> = commit_perm
        .iter()
        .zip(commit_powers.iter())
        .map(|(ca, cb)| y * ca + cb + neg_z_g)
        .collect();

    // Partial products p_j and their commitments (p_0 reuses c_v[0]).
    let mut partial_values = Vec::with_capacity(n);
    let mut partial_blindings = Vec::with_capacity(n);
    let mut commit_partial = Vec::with_capacity(n - 1);
    partial_values.push(v_values[0]);
    partial_blindings.push(v_blindings[0]);
    for j in 1..n {
        let value = partial_values[j - 1] * v_values[j];
        let (c, r) = key.commit_random(&value, rng);
        partial_values.push(value);
        partial_blindings.push(r);
        commit_partial.push(c);
    }
    for c in &commit_partial {
        t.append_point(b"commit-partial", c);
    }

    // Announcements for the per-step multiplication proofs. The blinding
    // generator's window table is looked up once for the whole loop.
    let h_table = crate::batch::fixed_base_table(&key.h);
    let mut step_secrets = Vec::with_capacity(n.saturating_sub(1));
    let mut step_announcements = Vec::with_capacity(n.saturating_sub(1));
    for j in 1..n {
        let prev_commit = if j == 1 {
            v_commitments[0]
        } else {
            commit_partial[j - 2]
        };
        let alpha = Scalar::random(rng);
        let beta = Scalar::random(rng);
        let gamma = Scalar::random(rng);
        let announce_value = key.commit(&alpha, &beta);
        let announce_step = alpha * prev_commit + h_table.mul_scalar(&gamma);
        t.append_point(b"product-announce-value", &announce_value);
        t.append_point(b"product-announce-step", &announce_step);
        step_secrets.push((alpha, beta, gamma, prev_commit));
        step_announcements.push((announce_value, announce_step));
    }

    // Final opening announcement: c_p[n−1] − P·G = r·H.
    let final_secret = Scalar::random(rng);
    let announce_final = crate::batch::mul_fixed(&key.h, &final_secret);
    t.append_point(b"final-announce", &announce_final);

    // Step 4: multi-exponentiation announcements.
    let mut power_nonces = Vec::with_capacity(n);
    let mut power_blinding_nonces = Vec::with_capacity(n);
    let mut announce_powers = Vec::with_capacity(n);
    for _ in 0..n {
        let d = Scalar::random(rng);
        let e = Scalar::random(rng);
        announce_powers.push(key.commit(&d, &e));
        power_nonces.push(d);
        power_blinding_nonces.push(e);
    }
    let mut rho_nonces = Vec::with_capacity(components);
    let mut announce_rand = Vec::with_capacity(components);
    let mut announce_payload = Vec::with_capacity(components);
    for l in 0..components {
        let t_nonce = Scalar::random(rng);
        let rs: Vec<RistrettoPoint> = outputs.iter().map(|m| m.components[l].r).collect();
        let cs: Vec<RistrettoPoint> = outputs.iter().map(|m| m.components[l].c).collect();
        let acc_rand = RistrettoPoint::multiscalar_mul(&power_nonces, &rs)
            + -t_nonce * RISTRETTO_BASEPOINT_TABLE;
        let acc_payload = RistrettoPoint::multiscalar_mul(&power_nonces, &cs)
            + crate::batch::mul_fixed(&pk.0, &-t_nonce);
        rho_nonces.push(t_nonce);
        announce_rand.push(acc_rand);
        announce_payload.push(acc_payload);
    }
    for a in &announce_powers {
        t.append_point(b"announce-powers", a);
    }
    for a in announce_rand.iter().chain(announce_payload.iter()) {
        t.append_point(b"announce-multiexp", a);
    }

    let challenge = t.challenge_scalar(b"challenge");

    // Responses: product argument steps.
    let product_steps = (1..n)
        .map(|j| {
            let (alpha, beta, gamma, _) = step_secrets[j - 1];
            let (announce_value, announce_step) = step_announcements[j - 1];
            let step_blinding = partial_blindings[j] - v_values[j] * partial_blindings[j - 1];
            ProductStepProof {
                announce_value,
                announce_step,
                response_value: alpha + challenge * v_values[j],
                response_value_blinding: beta + challenge * v_blindings[j],
                response_step_blinding: gamma + challenge * step_blinding,
            }
        })
        .collect();

    // Final opening response.
    let response_final = final_secret + challenge * partial_blindings[n - 1];

    // Multi-exponentiation responses.
    let response_powers: Vec<Scalar> = power_nonces
        .iter()
        .zip(power_values.iter())
        .map(|(d, b)| d + challenge * b)
        .collect();
    let response_power_blindings: Vec<Scalar> = power_blinding_nonces
        .iter()
        .zip(power_blindings.iter())
        .map(|(e, r)| e + challenge * r)
        .collect();
    let response_rho: Vec<Scalar> = (0..components)
        .map(|l| {
            let rho_star: Scalar = (0..n)
                .map(|j| power_values[j] * witness.randomness[j][l])
                .sum();
            rho_nonces[l] + challenge * rho_star
        })
        .collect();

    Ok(ShuffleProof {
        commit_perm,
        commit_powers,
        commit_partial,
        product_steps,
        announce_final,
        response_final,
        announce_powers,
        announce_rand,
        announce_payload,
        response_powers,
        response_power_blindings,
        response_rho,
    })
}

/// Verifies a shuffle proof.
pub fn verify_shuffle(
    pk: &PublicKey,
    inputs: &[MessageCiphertext],
    outputs: &[MessageCiphertext],
    proof: &ShuffleProof,
) -> CryptoResult<()> {
    let (n, components) = check_shape(inputs, outputs)?;
    let key = CommitmentKey::atom();

    // Shape checks on the proof itself.
    if proof.commit_perm.len() != n
        || proof.commit_powers.len() != n
        || proof.commit_partial.len() != n - 1
        || proof.product_steps.len() != n - 1
        || proof.announce_powers.len() != n
        || proof.response_powers.len() != n
        || proof.response_power_blindings.len() != n
        || proof.announce_rand.len() != components
        || proof.announce_payload.len() != components
        || proof.response_rho.len() != components
    {
        return Err(CryptoError::ProofInvalid(
            "shuffle proof shape mismatch".into(),
        ));
    }

    let mut t = statement_transcript(pk, inputs, outputs);
    for c in &proof.commit_perm {
        t.append_point(b"commit-perm", c);
    }
    let x = t.challenge_scalar(b"x");
    for c in &proof.commit_powers {
        t.append_point(b"commit-powers", c);
    }
    let y = t.challenge_scalar(b"y");
    let z = t.challenge_scalar(b"z");
    for c in &proof.commit_partial {
        t.append_point(b"commit-partial", c);
    }
    for step in &proof.product_steps {
        t.append_point(b"product-announce-value", &step.announce_value);
        t.append_point(b"product-announce-step", &step.announce_step);
    }
    t.append_point(b"final-announce", &proof.announce_final);
    for a in &proof.announce_powers {
        t.append_point(b"announce-powers", a);
    }
    for a in proof
        .announce_rand
        .iter()
        .chain(proof.announce_payload.iter())
    {
        t.append_point(b"announce-multiexp", a);
    }
    let challenge = t.challenge_scalar(b"challenge");

    // Homomorphically derived commitments to v_j (`−z·G` hoisted: one
    // fixed-base walk instead of an inversion per element).
    let neg_z_g = crate::batch::mul_fixed(&key.g, &-z);
    let v_commitments: Vec<RistrettoPoint> = proof
        .commit_perm
        .iter()
        .zip(proof.commit_powers.iter())
        .map(|(ca, cb)| y * ca + cb + neg_z_g)
        .collect();

    // Product argument: each multiplicative step (the blinding generator's
    // window table is looked up once for the whole loop).
    let h_table = crate::batch::fixed_base_table(&key.h);
    for j in 1..n {
        let step = &proof.product_steps[j - 1];
        let prev_commit = if j == 1 {
            v_commitments[0]
        } else {
            proof.commit_partial[j - 2]
        };
        let current_commit = proof.commit_partial[j - 1];

        if key.commit(&step.response_value, &step.response_value_blinding)
            != step.announce_value + challenge * v_commitments[j]
        {
            return Err(CryptoError::ProofInvalid(
                "product argument: value opening failed".into(),
            ));
        }
        if step.response_value * prev_commit + h_table.mul_scalar(&step.response_step_blinding)
            != step.announce_step + challenge * current_commit
        {
            return Err(CryptoError::ProofInvalid(
                "product argument: multiplicative step failed".into(),
            ));
        }
    }

    // Final opening: the last partial product equals the public product
    // (`challenge·(c_p − P·G)` expanded so the `G` share stays fixed-base).
    let product = public_product(n, &x, &y, &z);
    let last_commit = if n == 1 {
        v_commitments[0]
    } else {
        proof.commit_partial[n - 2]
    };
    if crate::batch::mul_fixed(&key.h, &proof.response_final)
        != proof.announce_final
            + challenge * last_commit
            + crate::batch::mul_fixed(&key.g, &-(challenge * product))
    {
        return Err(CryptoError::ProofInvalid(
            "product argument: final opening failed".into(),
        ));
    }

    // Multi-exponentiation argument.
    for j in 0..n {
        if key.commit(
            &proof.response_powers[j],
            &proof.response_power_blindings[j],
        ) != proof.announce_powers[j] + challenge * proof.commit_powers[j]
        {
            return Err(CryptoError::ProofInvalid(
                "multi-exponentiation: power opening failed".into(),
            ));
        }
    }
    let (t_rand, t_payload) = public_targets(inputs, components, &x);
    for l in 0..components {
        let rs: Vec<RistrettoPoint> = outputs.iter().map(|m| m.components[l].r).collect();
        let cs: Vec<RistrettoPoint> = outputs.iter().map(|m| m.components[l].c).collect();
        let acc_rand = RistrettoPoint::multiscalar_mul(&proof.response_powers, &rs)
            + -proof.response_rho[l] * RISTRETTO_BASEPOINT_TABLE;
        let acc_payload = RistrettoPoint::multiscalar_mul(&proof.response_powers, &cs)
            + crate::batch::mul_fixed(&pk.0, &-proof.response_rho[l]);

        if acc_rand != proof.announce_rand[l] + challenge * t_rand[l] {
            return Err(CryptoError::ProofInvalid(
                "multi-exponentiation: randomness relation failed".into(),
            ));
        }
        if acc_payload != proof.announce_payload[l] + challenge * t_payload[l] {
            return Err(CryptoError::ProofInvalid(
                "multi-exponentiation: payload relation failed".into(),
            ));
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elgamal::{encrypt_message, shuffle, KeyPair};
    use crate::encoding::encode_message;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn batch(
        rng: &mut StdRng,
        kp: &KeyPair,
        count: usize,
        msg_len: usize,
    ) -> Vec<MessageCiphertext> {
        (0..count)
            .map(|i| {
                let msg = vec![i as u8 + 1; msg_len];
                let points = encode_message(&msg).unwrap();
                encrypt_message(&kp.public, &points, rng).0
            })
            .collect()
    }

    #[test]
    fn honest_shuffle_proof_verifies() {
        let mut rng = StdRng::seed_from_u64(1234);
        let kp = KeyPair::generate(&mut rng);
        let inputs = batch(&mut rng, &kp, 8, 40);
        let (outputs, witness) = shuffle(&kp.public, &inputs, &mut rng).unwrap();
        let proof = prove_shuffle(&kp.public, &inputs, &outputs, &witness, &mut rng).unwrap();
        assert!(verify_shuffle(&kp.public, &inputs, &outputs, &proof).is_ok());
    }

    #[test]
    fn single_message_shuffle_proof_verifies() {
        let mut rng = StdRng::seed_from_u64(5);
        let kp = KeyPair::generate(&mut rng);
        let inputs = batch(&mut rng, &kp, 1, 10);
        let (outputs, witness) = shuffle(&kp.public, &inputs, &mut rng).unwrap();
        let proof = prove_shuffle(&kp.public, &inputs, &outputs, &witness, &mut rng).unwrap();
        assert!(verify_shuffle(&kp.public, &inputs, &outputs, &proof).is_ok());
    }

    #[test]
    fn single_component_messages_verify() {
        let mut rng = StdRng::seed_from_u64(6);
        let kp = KeyPair::generate(&mut rng);
        let inputs = batch(&mut rng, &kp, 5, 8);
        let (outputs, witness) = shuffle(&kp.public, &inputs, &mut rng).unwrap();
        let proof = prove_shuffle(&kp.public, &inputs, &outputs, &witness, &mut rng).unwrap();
        assert!(verify_shuffle(&kp.public, &inputs, &outputs, &proof).is_ok());
    }

    #[test]
    fn replaced_output_ciphertext_detected() {
        let mut rng = StdRng::seed_from_u64(7);
        let kp = KeyPair::generate(&mut rng);
        let inputs = batch(&mut rng, &kp, 6, 40);
        let (mut outputs, witness) = shuffle(&kp.public, &inputs, &mut rng).unwrap();
        let proof = prove_shuffle(&kp.public, &inputs, &outputs, &witness, &mut rng).unwrap();

        // A malicious server swaps in an encryption of its own message.
        let points = encode_message(b"injected").unwrap();
        outputs[2] = encrypt_message(&kp.public, &points, &mut rng).0;
        assert!(verify_shuffle(&kp.public, &inputs, &outputs, &proof).is_err());
    }

    #[test]
    fn duplicated_output_detected() {
        let mut rng = StdRng::seed_from_u64(8);
        let kp = KeyPair::generate(&mut rng);
        let inputs = batch(&mut rng, &kp, 6, 40);
        let (mut outputs, witness) = shuffle(&kp.public, &inputs, &mut rng).unwrap();
        let proof = prove_shuffle(&kp.public, &inputs, &outputs, &witness, &mut rng).unwrap();
        outputs[3] = outputs[4].clone();
        assert!(verify_shuffle(&kp.public, &inputs, &outputs, &proof).is_err());
    }

    #[test]
    fn tampered_component_detected() {
        let mut rng = StdRng::seed_from_u64(9);
        let kp = KeyPair::generate(&mut rng);
        let inputs = batch(&mut rng, &kp, 4, 60);
        let (mut outputs, witness) = shuffle(&kp.public, &inputs, &mut rng).unwrap();
        let proof = prove_shuffle(&kp.public, &inputs, &outputs, &witness, &mut rng).unwrap();
        outputs[1].components[1].c += key_g();
        assert!(verify_shuffle(&kp.public, &inputs, &outputs, &proof).is_err());
    }

    #[test]
    fn proof_for_other_inputs_rejected() {
        let mut rng = StdRng::seed_from_u64(10);
        let kp = KeyPair::generate(&mut rng);
        let inputs = batch(&mut rng, &kp, 5, 40);
        let other_inputs = batch(&mut rng, &kp, 5, 40);
        let (outputs, witness) = shuffle(&kp.public, &inputs, &mut rng).unwrap();
        let proof = prove_shuffle(&kp.public, &inputs, &outputs, &witness, &mut rng).unwrap();
        assert!(verify_shuffle(&kp.public, &other_inputs, &outputs, &proof).is_err());
    }

    #[test]
    fn wrong_group_key_rejected() {
        let mut rng = StdRng::seed_from_u64(11);
        let kp = KeyPair::generate(&mut rng);
        let other = KeyPair::generate(&mut rng);
        let inputs = batch(&mut rng, &kp, 5, 40);
        let (outputs, witness) = shuffle(&kp.public, &inputs, &mut rng).unwrap();
        let proof = prove_shuffle(&kp.public, &inputs, &outputs, &witness, &mut rng).unwrap();
        assert!(verify_shuffle(&other.public, &inputs, &outputs, &proof).is_err());
    }

    #[test]
    fn non_rerandomized_identity_permutation_still_needs_valid_witness() {
        // Passing outputs that are NOT a shuffle of the inputs (fresh
        // encryptions of the same plaintexts) must fail even though the
        // plaintext multiset matches, because the witness does not satisfy
        // the rerandomization relation.
        let mut rng = StdRng::seed_from_u64(12);
        let kp = KeyPair::generate(&mut rng);
        let inputs = batch(&mut rng, &kp, 4, 20);
        let fake_outputs = batch(&mut rng, &kp, 4, 20);
        let witness = ShuffleWitness {
            permutation: (0..4).collect(),
            randomness: vec![vec![Scalar::ZERO; inputs[0].components.len()]; 4],
        };
        let proof = prove_shuffle(&kp.public, &inputs, &fake_outputs, &witness, &mut rng).unwrap();
        assert!(verify_shuffle(&kp.public, &inputs, &fake_outputs, &proof).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut rng = StdRng::seed_from_u64(13);
        let kp = KeyPair::generate(&mut rng);
        let inputs = batch(&mut rng, &kp, 4, 20);
        let (outputs, witness) = shuffle(&kp.public, &inputs, &mut rng).unwrap();
        let proof = prove_shuffle(&kp.public, &inputs, &outputs, &witness, &mut rng).unwrap();
        assert!(verify_shuffle(&kp.public, &inputs[..3], &outputs, &proof).is_err());
        assert!(verify_shuffle(&kp.public, &inputs, &outputs[..3], &proof).is_err());
    }

    fn key_g() -> RistrettoPoint {
        CommitmentKey::atom().g
    }
}
