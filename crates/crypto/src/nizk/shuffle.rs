//! `ShufProof`: a NIZK argument that a batch of message ciphertexts was
//! correctly shuffled (permuted and rerandomized) under a group public key.
//!
//! **Substitution note.** The paper instantiates this with Neff's verifiable
//! shuffle (ref. \[59\] in the paper); we use a Bayer-Groth-style argument
//! with linear-size sub-arguments (commitment to the permutation + a product
//! argument + a multi-exponentiation argument), which fills the same role
//! with the same asymptotic cost — a small constant number of exponentiations
//! per shuffled element for both prover and verifier. Verification further
//! collapses all ~5n per-element equality checks into a single
//! random-linear-combination multiscalar equation ([`verify_shuffle`]), with
//! the textbook per-equation verifier retained as
//! [`verify_shuffle_sequential`] for exact blame attribution;
//! [`crate::batch::verify_shuffle_batch`] extends the same combination
//! across all of a group step's proofs.
//!
//! ## Protocol sketch
//!
//! Statement: group key `X`, inputs `C[i][l]`, outputs `C'[j][l]` (n messages
//! of L components each). Claim: there are a permutation σ and scalars
//! `ρ[j][l]` with `C'[j][l] = C[σ(j)][l] + ρ[j][l]·(B, X)`.
//!
//! 1. The prover commits (per element, Pedersen) to `a_j = σ(j) + 1`.
//!    Challenge `x`.
//! 2. The prover commits to `b_j = x^{a_j}`. Challenges `y`, `z`.
//! 3. **Product argument.** Both sides form commitments to
//!    `v_j = y·a_j + b_j − z` homomorphically. The prover shows
//!    `∏_j v_j = ∏_{i=1..n} (y·i + x^i − z)` by committing to the partial
//!    products and proving each multiplicative step with a Σ-protocol, then
//!    opening the last partial product to the public value. By Schwartz-Zippel
//!    (over `z`, then `y`) this forces `{(a_j, b_j)} = {(i, x^i)}` as
//!    multisets, i.e. `a` is a permutation and `b_j = x^{a_j}`.
//! 4. **Linear multi-exponentiation argument.** For every component `l` the
//!    prover shows knowledge of openings `b_j` of the step-2 commitments and
//!    of a scalar `ρ*_l` with
//!    `Σ_j b_j·C'[j][l] − ρ*_l·(B, X) = Σ_i x^i·C[i][l]`,
//!    which for a correct shuffle holds with `ρ*_l = Σ_j b_j·ρ[j][l]`.
//!
//! All challenges are Fiat-Shamir derived from a transcript binding the group
//! key, the entire input and output batches, and every commitment and
//! announcement in order.

use curve25519_dalek::constants::RISTRETTO_BASEPOINT_TABLE;
use curve25519_dalek::ristretto::RistrettoPoint;
use curve25519_dalek::scalar::Scalar;
use curve25519_dalek::traits::Identity;
use rand::{CryptoRng, RngCore};
use serde::{Deserialize, Serialize};

use crate::elgamal::{MessageCiphertext, PublicKey, ShuffleWitness};
use crate::error::{CryptoError, CryptoResult};
use crate::pedersen::CommitmentKey;
use crate::transcript::Transcript;

/// One multiplicative step of the product argument: proves that the `j`-th
/// partial-product commitment opens to the product of the previous partial
/// product and `v_j`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProductStepProof {
    /// Announcement `α·G + β·H` for the opening of `c_v[j]`.
    pub announce_value: RistrettoPoint,
    /// Announcement `α·c_p[j−1] + γ·H` for the multiplicative relation.
    pub announce_step: RistrettoPoint,
    /// Response for `v_j`.
    pub response_value: Scalar,
    /// Response for the blinding of `c_v[j]`.
    pub response_value_blinding: Scalar,
    /// Response for the step blinding `s_j = r_p[j] − v_j·r_p[j−1]`.
    pub response_step_blinding: Scalar,
}

/// The verifiable-shuffle proof.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShuffleProof {
    /// Commitments to the permutation indices `a_j = σ(j) + 1`.
    pub commit_perm: Vec<RistrettoPoint>,
    /// Commitments to the permuted challenge powers `b_j = x^{a_j}`.
    pub commit_powers: Vec<RistrettoPoint>,
    /// Commitments to the partial products `p_j` (index 0 is omitted; it
    /// equals the homomorphically derived `c_v[0]`).
    pub commit_partial: Vec<RistrettoPoint>,
    /// Per-step multiplication proofs (one for each `j ≥ 1`).
    pub product_steps: Vec<ProductStepProof>,
    /// Announcement of the final-opening proof (`c_p[n−1] − P·G = r·H`).
    pub announce_final: RistrettoPoint,
    /// Response of the final-opening proof.
    pub response_final: Scalar,
    /// Announcements for the openings of `commit_powers`.
    pub announce_powers: Vec<RistrettoPoint>,
    /// Announcements for the R-half of the multi-exponentiation relation,
    /// one per component.
    pub announce_rand: Vec<RistrettoPoint>,
    /// Announcements for the payload-half of the multi-exponentiation
    /// relation, one per component.
    pub announce_payload: Vec<RistrettoPoint>,
    /// Responses for `b_j`.
    pub response_powers: Vec<Scalar>,
    /// Responses for the blindings of `commit_powers`.
    pub response_power_blindings: Vec<Scalar>,
    /// Responses for the aggregated rerandomizers `ρ*_l`, one per component.
    pub response_rho: Vec<Scalar>,
}

/// Builds the statement transcript shared by prover and verifier.
fn statement_transcript(
    pk: &PublicKey,
    inputs: &[MessageCiphertext],
    outputs: &[MessageCiphertext],
) -> Transcript {
    let mut t = Transcript::new(b"atom-shuffle-proof");
    t.append_point(b"group-pk", &pk.0);
    t.append_u64(b"n", inputs.len() as u64);
    let components = inputs.first().map(|m| m.components.len()).unwrap_or(0);
    t.append_u64(b"components", components as u64);
    for batch_label in [(b"input" as &'static [u8], inputs), (b"output", outputs)] {
        let (label, batch) = batch_label;
        for message in batch {
            for ct in &message.components {
                t.append_bytes(b"side", label);
                t.append_point(b"R", &ct.r);
                t.append_point(b"c", &ct.c);
            }
        }
    }
    t
}

/// Checks the statement shape; returns (n, L).
fn check_shape(
    inputs: &[MessageCiphertext],
    outputs: &[MessageCiphertext],
) -> CryptoResult<(usize, usize)> {
    let n = inputs.len();
    if n == 0 || outputs.len() != n {
        return Err(CryptoError::Parameter(
            "shuffle proof needs equally sized, non-empty batches".into(),
        ));
    }
    let components = inputs[0].components.len();
    if components == 0 {
        return Err(CryptoError::Parameter("empty message ciphertext".into()));
    }
    for message in inputs.iter().chain(outputs.iter()) {
        if message.components.len() != components {
            return Err(CryptoError::Parameter(
                "all messages must have the same number of components".into(),
            ));
        }
        if message.components.iter().any(|c| c.y.is_some()) {
            return Err(CryptoError::Parameter(
                "shuffle proof applies to fresh ciphertexts only".into(),
            ));
        }
    }
    Ok((n, components))
}

/// Computes the public product `∏_{i=1..n} (y·i + x^i − z)`.
fn public_product(n: usize, x: &Scalar, y: &Scalar, z: &Scalar) -> Scalar {
    let mut product = Scalar::ONE;
    let mut x_power = Scalar::ONE;
    for i in 1..=n {
        x_power *= x;
        product *= y * Scalar::from(i as u64) + x_power - z;
    }
    product
}

/// Computes the public multi-exponentiation targets
/// `T_R[l] = Σ_i x^{i+1}·R_i[l]` and `T_c[l] = Σ_i x^{i+1}·c_i[l]`.
fn public_targets(
    inputs: &[MessageCiphertext],
    components: usize,
    x: &Scalar,
) -> (Vec<RistrettoPoint>, Vec<RistrettoPoint>) {
    let mut x_powers = Vec::with_capacity(inputs.len());
    let mut x_power = Scalar::ONE;
    for _ in inputs {
        x_power *= x;
        x_powers.push(x_power);
    }
    let mut t_rand = Vec::with_capacity(components);
    let mut t_payload = Vec::with_capacity(components);
    for l in 0..components {
        let rs: Vec<RistrettoPoint> = inputs.iter().map(|m| m.components[l].r).collect();
        let cs: Vec<RistrettoPoint> = inputs.iter().map(|m| m.components[l].c).collect();
        t_rand.push(RistrettoPoint::multiscalar_mul(&x_powers, &rs));
        t_payload.push(RistrettoPoint::multiscalar_mul(&x_powers, &cs));
    }
    (t_rand, t_payload)
}

/// Produces a shuffle proof from the witness returned by
/// [`crate::elgamal::shuffle`].
pub fn prove_shuffle<R: RngCore + CryptoRng>(
    pk: &PublicKey,
    inputs: &[MessageCiphertext],
    outputs: &[MessageCiphertext],
    witness: &ShuffleWitness,
    rng: &mut R,
) -> CryptoResult<ShuffleProof> {
    let (n, components) = check_shape(inputs, outputs)?;
    if witness.permutation.len() != n || witness.randomness.len() != n {
        return Err(CryptoError::Parameter("witness shape mismatch".into()));
    }
    let key = CommitmentKey::atom();
    let mut t = statement_transcript(pk, inputs, outputs);

    // Step 1: commit to the permutation (a_j = σ(j) + 1).
    let perm_values: Vec<Scalar> = witness
        .permutation
        .iter()
        .map(|&src| Scalar::from((src + 1) as u64))
        .collect();
    let mut perm_blindings = Vec::with_capacity(n);
    let mut commit_perm = Vec::with_capacity(n);
    for value in &perm_values {
        let (c, r) = key.commit_random(value, rng);
        commit_perm.push(c);
        perm_blindings.push(r);
    }
    for c in &commit_perm {
        t.append_point(b"commit-perm", c);
    }
    let x = t.challenge_scalar(b"x");

    // Step 2: commit to the permuted powers b_j = x^{σ(j)+1}.
    let mut x_powers = Vec::with_capacity(n + 1);
    x_powers.push(Scalar::ONE);
    for i in 0..n {
        let next = x_powers[i] * x;
        x_powers.push(next);
    }
    let power_values: Vec<Scalar> = witness
        .permutation
        .iter()
        .map(|&src| x_powers[src + 1])
        .collect();
    let mut power_blindings = Vec::with_capacity(n);
    let mut commit_powers = Vec::with_capacity(n);
    for value in &power_values {
        let (c, r) = key.commit_random(value, rng);
        commit_powers.push(c);
        power_blindings.push(r);
    }
    for c in &commit_powers {
        t.append_point(b"commit-powers", c);
    }
    let y = t.challenge_scalar(b"y");
    let z = t.challenge_scalar(b"z");

    // Step 3: product argument over v_j = y·a_j + b_j − z.
    let v_values: Vec<Scalar> = perm_values
        .iter()
        .zip(power_values.iter())
        .map(|(a, b)| y * a + b - z)
        .collect();
    let v_blindings: Vec<Scalar> = perm_blindings
        .iter()
        .zip(power_blindings.iter())
        .map(|(ra, rb)| y * ra + rb)
        .collect();
    // `−z·G` is constant across the batch: one fixed-base walk, no
    // per-element subtraction (each `Sub` costs a Fermat inversion).
    let neg_z_g = crate::batch::mul_fixed(&key.g, &-z);
    let v_commitments: Vec<RistrettoPoint> = commit_perm
        .iter()
        .zip(commit_powers.iter())
        .map(|(ca, cb)| y * ca + cb + neg_z_g)
        .collect();

    // Partial products p_j and their commitments (p_0 reuses c_v[0]).
    let mut partial_values = Vec::with_capacity(n);
    let mut partial_blindings = Vec::with_capacity(n);
    let mut commit_partial = Vec::with_capacity(n - 1);
    partial_values.push(v_values[0]);
    partial_blindings.push(v_blindings[0]);
    for j in 1..n {
        let value = partial_values[j - 1] * v_values[j];
        let (c, r) = key.commit_random(&value, rng);
        partial_values.push(value);
        partial_blindings.push(r);
        commit_partial.push(c);
    }
    for c in &commit_partial {
        t.append_point(b"commit-partial", c);
    }

    // Announcements for the per-step multiplication proofs. The blinding
    // generator's window table is looked up once for the whole loop.
    let h_table = crate::batch::fixed_base_table(&key.h);
    let mut step_secrets = Vec::with_capacity(n.saturating_sub(1));
    let mut step_announcements = Vec::with_capacity(n.saturating_sub(1));
    for j in 1..n {
        let prev_commit = if j == 1 {
            v_commitments[0]
        } else {
            commit_partial[j - 2]
        };
        let alpha = Scalar::random(rng);
        let beta = Scalar::random(rng);
        let gamma = Scalar::random(rng);
        let announce_value = key.commit(&alpha, &beta);
        let announce_step = alpha * prev_commit + h_table.mul_scalar(&gamma);
        t.append_point(b"product-announce-value", &announce_value);
        t.append_point(b"product-announce-step", &announce_step);
        step_secrets.push((alpha, beta, gamma, prev_commit));
        step_announcements.push((announce_value, announce_step));
    }

    // Final opening announcement: c_p[n−1] − P·G = r·H.
    let final_secret = Scalar::random(rng);
    let announce_final = crate::batch::mul_fixed(&key.h, &final_secret);
    t.append_point(b"final-announce", &announce_final);

    // Step 4: multi-exponentiation announcements.
    let mut power_nonces = Vec::with_capacity(n);
    let mut power_blinding_nonces = Vec::with_capacity(n);
    let mut announce_powers = Vec::with_capacity(n);
    for _ in 0..n {
        let d = Scalar::random(rng);
        let e = Scalar::random(rng);
        announce_powers.push(key.commit(&d, &e));
        power_nonces.push(d);
        power_blinding_nonces.push(e);
    }
    let mut rho_nonces = Vec::with_capacity(components);
    let mut announce_rand = Vec::with_capacity(components);
    let mut announce_payload = Vec::with_capacity(components);
    for l in 0..components {
        let t_nonce = Scalar::random(rng);
        let rs: Vec<RistrettoPoint> = outputs.iter().map(|m| m.components[l].r).collect();
        let cs: Vec<RistrettoPoint> = outputs.iter().map(|m| m.components[l].c).collect();
        let acc_rand = RistrettoPoint::multiscalar_mul(&power_nonces, &rs)
            + -t_nonce * RISTRETTO_BASEPOINT_TABLE;
        let acc_payload = RistrettoPoint::multiscalar_mul(&power_nonces, &cs)
            + crate::batch::mul_fixed(&pk.0, &-t_nonce);
        rho_nonces.push(t_nonce);
        announce_rand.push(acc_rand);
        announce_payload.push(acc_payload);
    }
    for a in &announce_powers {
        t.append_point(b"announce-powers", a);
    }
    for a in announce_rand.iter().chain(announce_payload.iter()) {
        t.append_point(b"announce-multiexp", a);
    }

    let challenge = t.challenge_scalar(b"challenge");

    // Responses: product argument steps.
    let product_steps = (1..n)
        .map(|j| {
            let (alpha, beta, gamma, _) = step_secrets[j - 1];
            let (announce_value, announce_step) = step_announcements[j - 1];
            let step_blinding = partial_blindings[j] - v_values[j] * partial_blindings[j - 1];
            ProductStepProof {
                announce_value,
                announce_step,
                response_value: alpha + challenge * v_values[j],
                response_value_blinding: beta + challenge * v_blindings[j],
                response_step_blinding: gamma + challenge * step_blinding,
            }
        })
        .collect();

    // Final opening response.
    let response_final = final_secret + challenge * partial_blindings[n - 1];

    // Multi-exponentiation responses.
    let response_powers: Vec<Scalar> = power_nonces
        .iter()
        .zip(power_values.iter())
        .map(|(d, b)| d + challenge * b)
        .collect();
    let response_power_blindings: Vec<Scalar> = power_blinding_nonces
        .iter()
        .zip(power_blindings.iter())
        .map(|(e, r)| e + challenge * r)
        .collect();
    let response_rho: Vec<Scalar> = (0..components)
        .map(|l| {
            let rho_star: Scalar = (0..n)
                .map(|j| power_values[j] * witness.randomness[j][l])
                .sum();
            rho_nonces[l] + challenge * rho_star
        })
        .collect();

    Ok(ShuffleProof {
        commit_perm,
        commit_powers,
        commit_partial,
        product_steps,
        announce_final,
        response_final,
        announce_powers,
        announce_rand,
        announce_payload,
        response_powers,
        response_power_blindings,
        response_rho,
    })
}

/// Shape-checked statement dimensions plus the Fiat-Shamir challenges
/// replayed from a proof's transcript — everything verification needs
/// besides the equations themselves. Shared by the sequential verifier, the
/// single-proof RLC path and [`crate::batch::verify_shuffle_batch`], so all
/// three reject malformed statements with identical errors.
pub(crate) struct ShuffleChallenges {
    pub(crate) n: usize,
    pub(crate) components: usize,
    pub(crate) x: Scalar,
    pub(crate) y: Scalar,
    pub(crate) z: Scalar,
    pub(crate) challenge: Scalar,
}

/// Checks the statement and proof shapes, replays the Fiat-Shamir transcript
/// and returns the derived challenges.
pub(crate) fn replay_challenges(
    pk: &PublicKey,
    inputs: &[MessageCiphertext],
    outputs: &[MessageCiphertext],
    proof: &ShuffleProof,
) -> CryptoResult<ShuffleChallenges> {
    let (n, components) = check_shape(inputs, outputs)?;

    // Shape checks on the proof itself.
    if proof.commit_perm.len() != n
        || proof.commit_powers.len() != n
        || proof.commit_partial.len() != n - 1
        || proof.product_steps.len() != n - 1
        || proof.announce_powers.len() != n
        || proof.response_powers.len() != n
        || proof.response_power_blindings.len() != n
        || proof.announce_rand.len() != components
        || proof.announce_payload.len() != components
        || proof.response_rho.len() != components
    {
        return Err(CryptoError::ProofInvalid(
            "shuffle proof shape mismatch".into(),
        ));
    }

    let mut t = statement_transcript(pk, inputs, outputs);
    for c in &proof.commit_perm {
        t.append_point(b"commit-perm", c);
    }
    let x = t.challenge_scalar(b"x");
    for c in &proof.commit_powers {
        t.append_point(b"commit-powers", c);
    }
    let y = t.challenge_scalar(b"y");
    let z = t.challenge_scalar(b"z");
    for c in &proof.commit_partial {
        t.append_point(b"commit-partial", c);
    }
    for step in &proof.product_steps {
        t.append_point(b"product-announce-value", &step.announce_value);
        t.append_point(b"product-announce-step", &step.announce_step);
    }
    t.append_point(b"final-announce", &proof.announce_final);
    for a in &proof.announce_powers {
        t.append_point(b"announce-powers", a);
    }
    for a in proof
        .announce_rand
        .iter()
        .chain(proof.announce_payload.iter())
    {
        t.append_point(b"announce-multiexp", a);
    }
    let challenge = t.challenge_scalar(b"challenge");
    Ok(ShuffleChallenges {
        n,
        components,
        x,
        y,
        z,
        challenge,
    })
}

/// Verifies a shuffle proof equation by equation — the textbook path.
///
/// [`verify_shuffle`] collapses all of these checks into one random linear
/// combination; this verifier is retained as its fallback (so a rejection
/// names the exact failing relation) and as the benchmark baseline the
/// batched path is gated against.
pub fn verify_shuffle_sequential(
    pk: &PublicKey,
    inputs: &[MessageCiphertext],
    outputs: &[MessageCiphertext],
    proof: &ShuffleProof,
) -> CryptoResult<()> {
    let ShuffleChallenges {
        n,
        components,
        x,
        y,
        z,
        challenge,
    } = replay_challenges(pk, inputs, outputs, proof)?;
    let key = CommitmentKey::atom();

    // Homomorphically derived commitments to v_j (`−z·G` hoisted: one
    // fixed-base walk instead of an inversion per element).
    let neg_z_g = crate::batch::mul_fixed(&key.g, &-z);
    let v_commitments: Vec<RistrettoPoint> = proof
        .commit_perm
        .iter()
        .zip(proof.commit_powers.iter())
        .map(|(ca, cb)| y * ca + cb + neg_z_g)
        .collect();

    // Product argument: each multiplicative step (the blinding generator's
    // window table is looked up once for the whole loop).
    let h_table = crate::batch::fixed_base_table(&key.h);
    for j in 1..n {
        let step = &proof.product_steps[j - 1];
        let prev_commit = if j == 1 {
            v_commitments[0]
        } else {
            proof.commit_partial[j - 2]
        };
        let current_commit = proof.commit_partial[j - 1];

        if key.commit(&step.response_value, &step.response_value_blinding)
            != step.announce_value + challenge * v_commitments[j]
        {
            return Err(CryptoError::ProofInvalid(
                "product argument: value opening failed".into(),
            ));
        }
        if step.response_value * prev_commit + h_table.mul_scalar(&step.response_step_blinding)
            != step.announce_step + challenge * current_commit
        {
            return Err(CryptoError::ProofInvalid(
                "product argument: multiplicative step failed".into(),
            ));
        }
    }

    // Final opening: the last partial product equals the public product
    // (`challenge·(c_p − P·G)` expanded so the `G` share stays fixed-base).
    let product = public_product(n, &x, &y, &z);
    let last_commit = if n == 1 {
        v_commitments[0]
    } else {
        proof.commit_partial[n - 2]
    };
    if crate::batch::mul_fixed(&key.h, &proof.response_final)
        != proof.announce_final
            + challenge * last_commit
            + crate::batch::mul_fixed(&key.g, &-(challenge * product))
    {
        return Err(CryptoError::ProofInvalid(
            "product argument: final opening failed".into(),
        ));
    }

    // Multi-exponentiation argument.
    for j in 0..n {
        if key.commit(
            &proof.response_powers[j],
            &proof.response_power_blindings[j],
        ) != proof.announce_powers[j] + challenge * proof.commit_powers[j]
        {
            return Err(CryptoError::ProofInvalid(
                "multi-exponentiation: power opening failed".into(),
            ));
        }
    }
    let (t_rand, t_payload) = public_targets(inputs, components, &x);
    for l in 0..components {
        let rs: Vec<RistrettoPoint> = outputs.iter().map(|m| m.components[l].r).collect();
        let cs: Vec<RistrettoPoint> = outputs.iter().map(|m| m.components[l].c).collect();
        let acc_rand = RistrettoPoint::multiscalar_mul(&proof.response_powers, &rs)
            + -proof.response_rho[l] * RISTRETTO_BASEPOINT_TABLE;
        let acc_payload = RistrettoPoint::multiscalar_mul(&proof.response_powers, &cs)
            + crate::batch::mul_fixed(&pk.0, &-proof.response_rho[l]);

        if acc_rand != proof.announce_rand[l] + challenge * t_rand[l] {
            return Err(CryptoError::ProofInvalid(
                "multi-exponentiation: randomness relation failed".into(),
            ));
        }
        if acc_payload != proof.announce_payload[l] + challenge * t_payload[l] {
            return Err(CryptoError::ProofInvalid(
                "multi-exponentiation: payload relation failed".into(),
            ));
        }
    }

    Ok(())
}

/// Domain separator of the RLC transcript that derives the combination
/// coefficients, shared with [`crate::batch::verify_shuffle_batch`].
pub(crate) const RLC_DOMAIN: &[u8] = b"atom-batch-shuffle";

/// Absorbs one proof's challenge and responses into the RLC transcript, so
/// the combination coefficients depend on every verified quantity: the
/// Fiat-Shamir challenge already binds the statement, commitments and
/// announcements, and the responses are appended explicitly.
pub(crate) fn absorb_proof(rlc: &mut Transcript, ch: &ShuffleChallenges, proof: &ShuffleProof) {
    rlc.append_scalar(b"challenge", &ch.challenge);
    for step in &proof.product_steps {
        rlc.append_scalar(b"response-value", &step.response_value);
        rlc.append_scalar(b"response-value-blinding", &step.response_value_blinding);
        rlc.append_scalar(b"response-step-blinding", &step.response_step_blinding);
    }
    rlc.append_scalar(b"response-final", &proof.response_final);
    for s in &proof.response_powers {
        rlc.append_scalar(b"response-powers", s);
    }
    for s in &proof.response_power_blindings {
        rlc.append_scalar(b"response-power-blindings", s);
    }
    for s in &proof.response_rho {
        rlc.append_scalar(b"response-rho", s);
    }
}

/// Accumulator for the random linear combination of shuffle-verification
/// equations. Every equation is rearranged into the canonical form
/// `g·G + h·H = Σ s_k·P_k + Σ ρ·ρ*·X` (fixed bases on the left, statement
/// and proof points on the right, group keys `X` kept separate so their
/// cached fixed-base tables are used), scaled by a fresh 128-bit
/// transcript-derived coefficient, and summed. One [`check`] then settles
/// every equation of every accumulated proof at once: a single pair of
/// fixed-base walks plus one size-O(Σ terms) multiscalar multiplication
/// (coalescing repeated points, Pippenger buckets past the crossover).
/// By Schwartz-Zippel a batch containing any false equation passes with
/// probability ≤ 2^-128 over the coefficients.
///
/// [`check`]: RlcAccumulator::check
pub(crate) struct RlcAccumulator {
    g_coeff: Scalar,
    h_coeff: Scalar,
    /// `Σ ρ·ρ*·X` terms (group keys go through their cached tables).
    rhs_extra: RistrettoPoint,
    scalars: Vec<Scalar>,
    points: Vec<RistrettoPoint>,
}

impl RlcAccumulator {
    pub(crate) fn new() -> Self {
        Self {
            g_coeff: Scalar::ZERO,
            h_coeff: Scalar::ZERO,
            rhs_extra: RistrettoPoint::identity(),
            scalars: Vec::new(),
            points: Vec::new(),
        }
    }

    fn push(&mut self, scalar: Scalar, point: RistrettoPoint) {
        self.scalars.push(scalar);
        self.points.push(point);
    }

    /// Folds every verification equation of one proof into the running
    /// combination, drawing one coefficient per equation from `rlc`.
    pub(crate) fn accumulate(
        &mut self,
        rlc: &mut Transcript,
        pk: &PublicKey,
        inputs: &[MessageCiphertext],
        outputs: &[MessageCiphertext],
        proof: &ShuffleProof,
        ch: &ShuffleChallenges,
    ) {
        let n = ch.n;
        let c = ch.challenge;
        self.scalars
            .reserve(10 * n + 2 * ch.components * (n + 1) + 8);
        self.points
            .reserve(10 * n + 2 * ch.components * (n + 1) + 8);

        // x^{i+1} weights of the public multi-exponentiation targets.
        let mut x_powers = Vec::with_capacity(n);
        let mut x_power = Scalar::ONE;
        for _ in 0..n {
            x_power *= ch.x;
            x_powers.push(x_power);
        }

        // Product argument, per step j: the value opening
        //   rv·G + rvb·H = A_v + c·(y·CP_j + CB_j − z·G)
        // and the multiplicative step
        //   rv·prev + rsb·H = A_s + c·c_p[j−1]
        // with prev = c_v[0] (expanded homomorphically) for j = 1, else
        // c_p[j−2]. Negations fold into scalar coefficients — a point `Sub`
        // on this backend costs a Fermat inversion.
        for j in 1..n {
            let step = &proof.product_steps[j - 1];
            let rho = crate::batch::rlc_coefficient(rlc, b"rho-value");
            self.g_coeff += rho * (step.response_value + c * ch.z);
            self.h_coeff += rho * step.response_value_blinding;
            self.push(rho, step.announce_value);
            self.push(rho * c * ch.y, proof.commit_perm[j]);
            self.push(rho * c, proof.commit_powers[j]);

            let rho = crate::batch::rlc_coefficient(rlc, b"rho-step");
            self.h_coeff += rho * step.response_step_blinding;
            self.push(rho, step.announce_step);
            self.push(rho * c, proof.commit_partial[j - 1]);
            let rv = rho * step.response_value;
            if j == 1 {
                self.push(-(rv * ch.y), proof.commit_perm[0]);
                self.push(-rv, proof.commit_powers[0]);
                self.g_coeff -= rv * ch.z;
            } else {
                self.push(-rv, proof.commit_partial[j - 2]);
            }
        }

        // Final opening: rf·H + c·P·G = A_f + c·c_p[n−1].
        let rho = crate::batch::rlc_coefficient(rlc, b"rho-final");
        let product = public_product(n, &ch.x, &ch.y, &ch.z);
        self.g_coeff += rho * c * product;
        self.h_coeff += rho * proof.response_final;
        self.push(rho, proof.announce_final);
        if n == 1 {
            self.push(rho * c * ch.y, proof.commit_perm[0]);
            self.push(rho * c, proof.commit_powers[0]);
            self.g_coeff += rho * c * ch.z;
        } else {
            self.push(rho * c, proof.commit_partial[n - 2]);
        }

        // Power openings: rp_j·G + rpb_j·H = A_p[j] + c·CB_j.
        for j in 0..n {
            let rho = crate::batch::rlc_coefficient(rlc, b"rho-power");
            self.g_coeff += rho * proof.response_powers[j];
            self.h_coeff += rho * proof.response_power_blindings[j];
            self.push(rho, proof.announce_powers[j]);
            self.push(rho * c, proof.commit_powers[j]);
        }

        // Multi-exponentiation relations, per component l: the randomness
        // half Σ_j rp_j·R'_j − rρ_l·B = A_R[l] + c·Σ_i x^{i+1}·R_i and the
        // payload half with c-components and the group key X in place of B.
        let mut pk_coeff = Scalar::ZERO;
        for l in 0..ch.components {
            let rho = crate::batch::rlc_coefficient(rlc, b"rho-rand");
            self.g_coeff -= rho * proof.response_rho[l];
            self.push(rho, proof.announce_rand[l]);
            for (i, message) in inputs.iter().enumerate() {
                self.push(rho * c * x_powers[i], message.components[l].r);
            }
            for (j, message) in outputs.iter().enumerate() {
                self.push(-(rho * proof.response_powers[j]), message.components[l].r);
            }

            let rho = crate::batch::rlc_coefficient(rlc, b"rho-payload");
            pk_coeff += rho * proof.response_rho[l];
            self.push(rho, proof.announce_payload[l]);
            for (i, message) in inputs.iter().enumerate() {
                self.push(rho * c * x_powers[i], message.components[l].c);
            }
            for (j, message) in outputs.iter().enumerate() {
                self.push(-(rho * proof.response_powers[j]), message.components[l].c);
            }
        }
        self.rhs_extra += crate::batch::mul_fixed(&pk.0, &pk_coeff);
    }

    /// Settles the combined equation.
    pub(crate) fn check(&self) -> bool {
        let key = CommitmentKey::atom();
        let lhs = RISTRETTO_BASEPOINT_TABLE.mul_scalar(&self.g_coeff)
            + crate::batch::mul_fixed(&key.h, &self.h_coeff);
        lhs == crate::batch::multiscalar_mul(&self.scalars, &self.points) + self.rhs_extra
    }
}

/// Verifies a shuffle proof.
///
/// Fast path: all ~5n per-element equality checks are folded into one random
/// linear combination and settled by a single multiscalar multiplication
/// (see `RlcAccumulator`). An RLC miss can only mean some underlying
/// equation is false (an honest proof satisfies every equation identically,
/// so its combination holds for *any* coefficients), in which case the
/// sequential verifier re-runs the equations one by one to report the exact
/// failing relation — the cold path, taken only for invalid proofs.
pub fn verify_shuffle(
    pk: &PublicKey,
    inputs: &[MessageCiphertext],
    outputs: &[MessageCiphertext],
    proof: &ShuffleProof,
) -> CryptoResult<()> {
    let ch = replay_challenges(pk, inputs, outputs, proof)?;
    let mut rlc = Transcript::new(RLC_DOMAIN);
    rlc.append_u64(b"count", 1);
    absorb_proof(&mut rlc, &ch, proof);
    let mut acc = RlcAccumulator::new();
    acc.accumulate(&mut rlc, pk, inputs, outputs, proof, &ch);
    if acc.check() {
        Ok(())
    } else {
        verify_shuffle_sequential(pk, inputs, outputs, proof)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elgamal::{encrypt_message, shuffle, KeyPair};
    use crate::encoding::encode_message;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn batch(
        rng: &mut StdRng,
        kp: &KeyPair,
        count: usize,
        msg_len: usize,
    ) -> Vec<MessageCiphertext> {
        (0..count)
            .map(|i| {
                let msg = vec![i as u8 + 1; msg_len];
                let points = encode_message(&msg).unwrap();
                encrypt_message(&kp.public, &points, rng).0
            })
            .collect()
    }

    #[test]
    fn honest_shuffle_proof_verifies() {
        let mut rng = StdRng::seed_from_u64(1234);
        let kp = KeyPair::generate(&mut rng);
        let inputs = batch(&mut rng, &kp, 8, 40);
        let (outputs, witness) = shuffle(&kp.public, &inputs, &mut rng).unwrap();
        let proof = prove_shuffle(&kp.public, &inputs, &outputs, &witness, &mut rng).unwrap();
        assert!(verify_shuffle(&kp.public, &inputs, &outputs, &proof).is_ok());
    }

    #[test]
    fn single_message_shuffle_proof_verifies() {
        let mut rng = StdRng::seed_from_u64(5);
        let kp = KeyPair::generate(&mut rng);
        let inputs = batch(&mut rng, &kp, 1, 10);
        let (outputs, witness) = shuffle(&kp.public, &inputs, &mut rng).unwrap();
        let proof = prove_shuffle(&kp.public, &inputs, &outputs, &witness, &mut rng).unwrap();
        assert!(verify_shuffle(&kp.public, &inputs, &outputs, &proof).is_ok());
    }

    #[test]
    fn single_component_messages_verify() {
        let mut rng = StdRng::seed_from_u64(6);
        let kp = KeyPair::generate(&mut rng);
        let inputs = batch(&mut rng, &kp, 5, 8);
        let (outputs, witness) = shuffle(&kp.public, &inputs, &mut rng).unwrap();
        let proof = prove_shuffle(&kp.public, &inputs, &outputs, &witness, &mut rng).unwrap();
        assert!(verify_shuffle(&kp.public, &inputs, &outputs, &proof).is_ok());
    }

    #[test]
    fn replaced_output_ciphertext_detected() {
        let mut rng = StdRng::seed_from_u64(7);
        let kp = KeyPair::generate(&mut rng);
        let inputs = batch(&mut rng, &kp, 6, 40);
        let (mut outputs, witness) = shuffle(&kp.public, &inputs, &mut rng).unwrap();
        let proof = prove_shuffle(&kp.public, &inputs, &outputs, &witness, &mut rng).unwrap();

        // A malicious server swaps in an encryption of its own message.
        let points = encode_message(b"injected").unwrap();
        outputs[2] = encrypt_message(&kp.public, &points, &mut rng).0;
        assert!(verify_shuffle(&kp.public, &inputs, &outputs, &proof).is_err());
    }

    #[test]
    fn duplicated_output_detected() {
        let mut rng = StdRng::seed_from_u64(8);
        let kp = KeyPair::generate(&mut rng);
        let inputs = batch(&mut rng, &kp, 6, 40);
        let (mut outputs, witness) = shuffle(&kp.public, &inputs, &mut rng).unwrap();
        let proof = prove_shuffle(&kp.public, &inputs, &outputs, &witness, &mut rng).unwrap();
        outputs[3] = outputs[4].clone();
        assert!(verify_shuffle(&kp.public, &inputs, &outputs, &proof).is_err());
    }

    #[test]
    fn tampered_component_detected() {
        let mut rng = StdRng::seed_from_u64(9);
        let kp = KeyPair::generate(&mut rng);
        let inputs = batch(&mut rng, &kp, 4, 60);
        let (mut outputs, witness) = shuffle(&kp.public, &inputs, &mut rng).unwrap();
        let proof = prove_shuffle(&kp.public, &inputs, &outputs, &witness, &mut rng).unwrap();
        outputs[1].components[1].c += key_g();
        assert!(verify_shuffle(&kp.public, &inputs, &outputs, &proof).is_err());
    }

    #[test]
    fn proof_for_other_inputs_rejected() {
        let mut rng = StdRng::seed_from_u64(10);
        let kp = KeyPair::generate(&mut rng);
        let inputs = batch(&mut rng, &kp, 5, 40);
        let other_inputs = batch(&mut rng, &kp, 5, 40);
        let (outputs, witness) = shuffle(&kp.public, &inputs, &mut rng).unwrap();
        let proof = prove_shuffle(&kp.public, &inputs, &outputs, &witness, &mut rng).unwrap();
        assert!(verify_shuffle(&kp.public, &other_inputs, &outputs, &proof).is_err());
    }

    #[test]
    fn wrong_group_key_rejected() {
        let mut rng = StdRng::seed_from_u64(11);
        let kp = KeyPair::generate(&mut rng);
        let other = KeyPair::generate(&mut rng);
        let inputs = batch(&mut rng, &kp, 5, 40);
        let (outputs, witness) = shuffle(&kp.public, &inputs, &mut rng).unwrap();
        let proof = prove_shuffle(&kp.public, &inputs, &outputs, &witness, &mut rng).unwrap();
        assert!(verify_shuffle(&other.public, &inputs, &outputs, &proof).is_err());
    }

    #[test]
    fn non_rerandomized_identity_permutation_still_needs_valid_witness() {
        // Passing outputs that are NOT a shuffle of the inputs (fresh
        // encryptions of the same plaintexts) must fail even though the
        // plaintext multiset matches, because the witness does not satisfy
        // the rerandomization relation.
        let mut rng = StdRng::seed_from_u64(12);
        let kp = KeyPair::generate(&mut rng);
        let inputs = batch(&mut rng, &kp, 4, 20);
        let fake_outputs = batch(&mut rng, &kp, 4, 20);
        let witness = ShuffleWitness {
            permutation: (0..4).collect(),
            randomness: vec![vec![Scalar::ZERO; inputs[0].components.len()]; 4],
        };
        let proof = prove_shuffle(&kp.public, &inputs, &fake_outputs, &witness, &mut rng).unwrap();
        assert!(verify_shuffle(&kp.public, &inputs, &fake_outputs, &proof).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut rng = StdRng::seed_from_u64(13);
        let kp = KeyPair::generate(&mut rng);
        let inputs = batch(&mut rng, &kp, 4, 20);
        let (outputs, witness) = shuffle(&kp.public, &inputs, &mut rng).unwrap();
        let proof = prove_shuffle(&kp.public, &inputs, &outputs, &witness, &mut rng).unwrap();
        assert!(verify_shuffle(&kp.public, &inputs[..3], &outputs, &proof).is_err());
        assert!(verify_shuffle(&kp.public, &inputs, &outputs[..3], &proof).is_err());
    }

    fn key_g() -> RistrettoPoint {
        CommitmentKey::atom().g
    }

    /// Runs the RLC combination directly (no fallback) so a bug in the
    /// accumulation equations cannot hide behind the sequential verifier.
    fn rlc_check(
        pk: &PublicKey,
        inputs: &[MessageCiphertext],
        outputs: &[MessageCiphertext],
        proof: &ShuffleProof,
    ) -> bool {
        let ch = replay_challenges(pk, inputs, outputs, proof).unwrap();
        let mut rlc = Transcript::new(RLC_DOMAIN);
        rlc.append_u64(b"count", 1);
        absorb_proof(&mut rlc, &ch, proof);
        let mut acc = RlcAccumulator::new();
        acc.accumulate(&mut rlc, pk, inputs, outputs, proof, &ch);
        acc.check()
    }

    #[test]
    fn rlc_fast_path_accepts_honest_proofs_without_fallback() {
        let mut rng = StdRng::seed_from_u64(20);
        let kp = KeyPair::generate(&mut rng);
        // Multi-element, single-element and single-component statements all
        // exercise different accumulation branches (j == 1 expansion,
        // n == 1 final opening).
        for (count, len) in [(8, 40), (1, 10), (5, 8), (2, 20)] {
            let inputs = batch(&mut rng, &kp, count, len);
            let (outputs, witness) = shuffle(&kp.public, &inputs, &mut rng).unwrap();
            let proof = prove_shuffle(&kp.public, &inputs, &outputs, &witness, &mut rng).unwrap();
            assert!(
                rlc_check(&kp.public, &inputs, &outputs, &proof),
                "honest proof (n={count}) must pass the RLC combination itself"
            );
        }
    }

    #[test]
    fn rlc_fast_path_rejects_every_tampered_field() {
        let mut rng = StdRng::seed_from_u64(21);
        let kp = KeyPair::generate(&mut rng);
        let inputs = batch(&mut rng, &kp, 5, 30);
        let (outputs, witness) = shuffle(&kp.public, &inputs, &mut rng).unwrap();
        let proof = prove_shuffle(&kp.public, &inputs, &outputs, &witness, &mut rng).unwrap();
        let one = Scalar::ONE;

        let mut tampered = Vec::new();
        let mut p = proof.clone();
        p.response_final += one;
        tampered.push(("response_final", p));
        let mut p = proof.clone();
        p.response_powers[2] += one;
        tampered.push(("response_powers", p));
        let mut p = proof.clone();
        p.response_power_blindings[0] += one;
        tampered.push(("response_power_blindings", p));
        let mut p = proof.clone();
        p.response_rho[0] += one;
        tampered.push(("response_rho", p));
        let mut p = proof.clone();
        p.product_steps[1].response_value += one;
        tampered.push(("response_value", p));
        let mut p = proof.clone();
        p.product_steps[0].response_step_blinding += one;
        tampered.push(("response_step_blinding", p));
        let mut p = proof.clone();
        p.announce_final += key_g();
        tampered.push(("announce_final", p));
        let mut p = proof.clone();
        p.commit_perm[3] += key_g();
        tampered.push(("commit_perm", p));

        for (field, p) in tampered {
            assert!(
                !rlc_check(&kp.public, &inputs, &outputs, &p),
                "tampered {field} must miss the RLC combination"
            );
            // And the public verifier agrees with the sequential one.
            let fast = verify_shuffle(&kp.public, &inputs, &outputs, &p);
            let slow = verify_shuffle_sequential(&kp.public, &inputs, &outputs, &p);
            assert_eq!(
                format!("{:?}", fast),
                format!("{:?}", slow),
                "verdicts diverge for tampered {field}"
            );
            assert!(fast.is_err());
        }
    }

    #[test]
    fn fast_and_sequential_verdicts_agree_on_statement_tampering() {
        let mut rng = StdRng::seed_from_u64(22);
        let kp = KeyPair::generate(&mut rng);
        let inputs = batch(&mut rng, &kp, 6, 40);
        let (outputs, witness) = shuffle(&kp.public, &inputs, &mut rng).unwrap();
        let proof = prove_shuffle(&kp.public, &inputs, &outputs, &witness, &mut rng).unwrap();

        let mut mauled = outputs.clone();
        mauled[4].components[0].c += key_g();
        let fast = verify_shuffle(&kp.public, &inputs, &mauled, &proof);
        let slow = verify_shuffle_sequential(&kp.public, &inputs, &mauled, &proof);
        assert!(fast.is_err());
        assert_eq!(format!("{:?}", fast), format!("{:?}", slow));
    }
}
