//! `ReEncProof`: proof that a server correctly executed
//! `ReEnc(sk, pk', ·)` on a batch component (Appendix A, cf. Chaum-Pedersen).
//!
//! Let `(R₀, Y₀)` be the input ciphertext after the deterministic
//! `Y := R, R := 0` swap (applied when the input has `Y = ⊥`; both prover and
//! verifier compute it locally with [`crate::elgamal::swap_view`]). The server
//! holds a peeling exponent `p` with public verification key `P = pB` (its
//! own public key in the anytrust variant, or the Lagrange-weighted Feldman
//! verification share in the many-trust variant) and fresh randomness `f_l`
//! per component. The proved relations are, for every component `l`:
//!
//! ```text
//!   P          = p · B
//!   R'_l − R₀_l = f_l · B                    (omitted when the next key is ⊥)
//!   c_l − c'_l  = p · Y₀_l − f_l · X'        (X' term omitted when ⊥)
//! ```
//!
//! together with the structural checks `Y'_l = Y₀_l`. A single Schnorr
//! response is used for `p` across all components, so the proof also shows
//! the *same* key was used for every component.

use curve25519_dalek::constants::RISTRETTO_BASEPOINT_TABLE;
use curve25519_dalek::ristretto::RistrettoPoint;
use curve25519_dalek::scalar::Scalar;
use rand::{CryptoRng, RngCore};
use serde::{Deserialize, Serialize};

use crate::elgamal::{swap_view, MessageCiphertext, PublicKey, ReEncWitness};
use crate::error::{CryptoError, CryptoResult};
use crate::transcript::Transcript;

/// Per-component part of a [`ReEncProof`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReEncComponentProof {
    /// Announcement for the fresh-randomness relation (`β_l · B`).
    pub announce_fresh: RistrettoPoint,
    /// Announcement for the payload relation (`α · Y₀_l − β_l · X'`).
    pub announce_payload: RistrettoPoint,
    /// Response for the fresh randomness.
    pub response_fresh: Scalar,
}

/// Proof of correct re-encryption of a whole [`MessageCiphertext`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReEncProof {
    /// Announcement for the peeling key relation (`α · B`).
    pub announce_key: RistrettoPoint,
    /// Shared response for the peeling exponent.
    pub response_key: Scalar,
    /// Per-component announcements and responses.
    pub components: Vec<ReEncComponentProof>,
}

/// The public statement of a re-encryption proof.
pub struct ReEncStatement<'a> {
    /// Verification key of the peeling exponent (`P = pB`).
    pub peel_public: &'a RistrettoPoint,
    /// Public key of the next group, or `None` for final decryption.
    pub next_pk: Option<&'a PublicKey>,
    /// Input message ciphertext.
    pub input: &'a MessageCiphertext,
    /// Output message ciphertext.
    pub output: &'a MessageCiphertext,
}

fn transcript(stmt: &ReEncStatement<'_>) -> Transcript {
    let mut t = Transcript::new(b"atom-reenc-proof");
    t.append_point(b"peel-public", stmt.peel_public);
    match stmt.next_pk {
        Some(pk) => t.append_point(b"next-pk", &pk.0),
        None => t.append_bytes(b"next-pk", b"bottom"),
    }
    t.append_u64(b"components", stmt.input.components.len() as u64);
    for ct in stmt
        .input
        .components
        .iter()
        .chain(stmt.output.components.iter())
    {
        t.append_point(b"R", &ct.r);
        t.append_point(b"c", &ct.c);
        match &ct.y {
            Some(y) => t.append_point(b"Y", y),
            None => t.append_bytes(b"Y", b"bottom"),
        }
    }
    t
}

/// Recomputes a proof's Fiat-Shamir challenge from its statement and
/// announcements (shared with the batch verifier in [`crate::batch`]).
pub(crate) fn batch_challenge(stmt: &ReEncStatement<'_>, proof: &ReEncProof) -> Scalar {
    let mut t = transcript(stmt);
    t.append_point(b"announce-key", &proof.announce_key);
    for comp in &proof.components {
        t.append_point(b"announce-fresh", &comp.announce_fresh);
        t.append_point(b"announce-payload", &comp.announce_payload);
    }
    t.challenge_scalar(b"challenge")
}

/// Structural checks shared by prover and verifier; returns the swap views.
pub(crate) fn check_structure(
    stmt: &ReEncStatement<'_>,
) -> CryptoResult<Vec<(RistrettoPoint, RistrettoPoint)>> {
    if stmt.input.components.len() != stmt.output.components.len() {
        return Err(CryptoError::Parameter(
            "input/output component count mismatch".into(),
        ));
    }
    let mut views = Vec::with_capacity(stmt.input.components.len());
    for (inp, out) in stmt
        .input
        .components
        .iter()
        .zip(stmt.output.components.iter())
    {
        let (r0, y0) = swap_view(inp);
        if out.y != Some(y0) {
            return Err(CryptoError::ProofInvalid(
                "output Y does not carry over the input randomness".into(),
            ));
        }
        if stmt.next_pk.is_none() && out.r != r0 {
            return Err(CryptoError::ProofInvalid(
                "final decryption must not change R".into(),
            ));
        }
        views.push((r0, y0));
    }
    Ok(views)
}

/// Produces a `ReEncProof` from the witnesses returned by
/// [`crate::elgamal::reencrypt_message`].
pub fn prove_reencryption<R: RngCore + CryptoRng>(
    stmt: &ReEncStatement<'_>,
    witnesses: &[ReEncWitness],
    rng: &mut R,
) -> CryptoResult<ReEncProof> {
    let views = check_structure(stmt)?;
    if witnesses.len() != stmt.input.components.len() {
        return Err(CryptoError::Parameter(
            "witness count does not match components".into(),
        ));
    }
    let peel_secret = witnesses
        .first()
        .map(|w| w.peel_secret)
        .ok_or_else(|| CryptoError::Parameter("empty ciphertext".into()))?;
    if witnesses.iter().any(|w| w.peel_secret != peel_secret) {
        return Err(CryptoError::Parameter(
            "all components must be peeled with the same exponent".into(),
        ));
    }

    let mut t = transcript(stmt);

    let alpha = Scalar::random(rng);
    let announce_key = alpha * RISTRETTO_BASEPOINT_TABLE;
    t.append_point(b"announce-key", &announce_key);

    let mut betas = Vec::with_capacity(views.len());
    let mut component_proofs = Vec::with_capacity(views.len());
    for (_, y0) in &views {
        let beta = Scalar::random(rng);
        let announce_fresh = beta * RISTRETTO_BASEPOINT_TABLE;
        let announce_payload = match stmt.next_pk {
            // One joint two-term exponentiation; the negated coefficient
            // sidesteps the point-subtraction inversion.
            Some(next) => RistrettoPoint::multiscalar_mul(&[alpha, -beta], &[*y0, next.0]),
            None => alpha * y0,
        };
        t.append_point(b"announce-fresh", &announce_fresh);
        t.append_point(b"announce-payload", &announce_payload);
        betas.push(beta);
        component_proofs.push((announce_fresh, announce_payload));
    }

    let challenge = t.challenge_scalar(b"challenge");
    let response_key = alpha + challenge * peel_secret;
    let components = component_proofs
        .into_iter()
        .zip(betas.iter())
        .zip(witnesses.iter())
        .map(
            |(((announce_fresh, announce_payload), beta), witness)| ReEncComponentProof {
                announce_fresh,
                announce_payload,
                response_fresh: beta + challenge * witness.fresh_randomness,
            },
        )
        .collect();

    Ok(ReEncProof {
        announce_key,
        response_key,
        components,
    })
}

/// Verifies a `ReEncProof`.
pub fn verify_reencryption(stmt: &ReEncStatement<'_>, proof: &ReEncProof) -> CryptoResult<()> {
    let views = check_structure(stmt)?;
    if proof.components.len() != stmt.input.components.len() {
        return Err(CryptoError::ProofInvalid(
            "ReEncProof shape does not match ciphertext".into(),
        ));
    }

    let mut t = transcript(stmt);
    t.append_point(b"announce-key", &proof.announce_key);
    for comp in &proof.components {
        t.append_point(b"announce-fresh", &comp.announce_fresh);
        t.append_point(b"announce-payload", &comp.announce_payload);
    }
    let challenge = t.challenge_scalar(b"challenge");

    // Peeling key relation.
    if proof.response_key * RISTRETTO_BASEPOINT_TABLE
        != proof.announce_key + challenge * stmt.peel_public
    {
        return Err(CryptoError::ProofInvalid("peel-key check failed".into()));
    }

    for (((inp, out), (r0, y0)), comp) in stmt
        .input
        .components
        .iter()
        .zip(stmt.output.components.iter())
        .zip(views.iter())
        .zip(proof.components.iter())
    {
        // Fresh-randomness relation (skipped when the next key is ⊥: the
        // structural check already forced R' = R₀ and f = 0). The
        // `challenge·(R' − R₀)` term is evaluated as a joint
        // exponentiation with a negated coefficient, avoiding the
        // point-subtraction inversion of the vendored group.
        if stmt.next_pk.is_some()
            && comp.response_fresh * RISTRETTO_BASEPOINT_TABLE
                != comp.announce_fresh
                    + RistrettoPoint::multiscalar_mul(&[challenge, -challenge], &[out.r, *r0])
        {
            return Err(CryptoError::ProofInvalid(
                "fresh-randomness check failed".into(),
            ));
        }
        // Payload relation.
        let lhs = match stmt.next_pk {
            Some(next) => RistrettoPoint::multiscalar_mul(
                &[proof.response_key, -comp.response_fresh],
                &[*y0, next.0],
            ),
            None => proof.response_key * y0,
        };
        if lhs
            != comp.announce_payload
                + RistrettoPoint::multiscalar_mul(&[challenge, -challenge], &[inp.c, out.c])
        {
            return Err(CryptoError::ProofInvalid("payload check failed".into()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elgamal::{encrypt_message, reencrypt_message, KeyPair, PublicKey};
    use crate::encoding::encode_message;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        rng: StdRng,
        server: KeyPair,
        group_pk: PublicKey,
        next_pk: PublicKey,
        input: MessageCiphertext,
    }

    fn fixture() -> Fixture {
        let mut rng = StdRng::seed_from_u64(99);
        let server = KeyPair::generate(&mut rng);
        let other = KeyPair::generate(&mut rng);
        let group_pk = PublicKey::combine([&server.public, &other.public]);
        let next_group: Vec<KeyPair> = (0..3).map(|_| KeyPair::generate(&mut rng)).collect();
        let next_pk = PublicKey::combine(next_group.iter().map(|k| &k.public));
        let points = encode_message(b"reencryption proof test message").unwrap();
        let (input, _) = encrypt_message(&group_pk, &points, &mut rng);
        Fixture {
            rng,
            server,
            group_pk,
            next_pk,
            input,
        }
    }

    #[test]
    fn honest_reencryption_proof_verifies() {
        let mut f = fixture();
        let (output, witnesses) =
            reencrypt_message(&f.server.secret.0, Some(&f.next_pk), &f.input, &mut f.rng);
        let stmt = ReEncStatement {
            peel_public: &f.server.public.0,
            next_pk: Some(&f.next_pk),
            input: &f.input,
            output: &output,
        };
        let proof = prove_reencryption(&stmt, &witnesses, &mut f.rng).unwrap();
        assert!(verify_reencryption(&stmt, &proof).is_ok());
    }

    #[test]
    fn honest_final_decryption_proof_verifies() {
        let mut f = fixture();
        let single = KeyPair::generate(&mut f.rng);
        let points = encode_message(b"exit layer").unwrap();
        let (input, _) = encrypt_message(&single.public, &points, &mut f.rng);
        let (output, witnesses) = reencrypt_message(&single.secret.0, None, &input, &mut f.rng);
        let stmt = ReEncStatement {
            peel_public: &single.public.0,
            next_pk: None,
            input: &input,
            output: &output,
        };
        let proof = prove_reencryption(&stmt, &witnesses, &mut f.rng).unwrap();
        assert!(verify_reencryption(&stmt, &proof).is_ok());
    }

    #[test]
    fn wrong_key_detected() {
        // A malicious server peels with a key other than its registered one.
        let mut f = fixture();
        let rogue = KeyPair::generate(&mut f.rng);
        let (output, witnesses) =
            reencrypt_message(&rogue.secret.0, Some(&f.next_pk), &f.input, &mut f.rng);
        let stmt = ReEncStatement {
            peel_public: &f.server.public.0,
            next_pk: Some(&f.next_pk),
            input: &f.input,
            output: &output,
        };
        let proof = prove_reencryption(&stmt, &witnesses, &mut f.rng).unwrap();
        assert!(verify_reencryption(&stmt, &proof).is_err());
    }

    #[test]
    fn tampered_output_detected() {
        // The server replaces one payload component after proving.
        let mut f = fixture();
        let (output, witnesses) =
            reencrypt_message(&f.server.secret.0, Some(&f.next_pk), &f.input, &mut f.rng);
        let stmt = ReEncStatement {
            peel_public: &f.server.public.0,
            next_pk: Some(&f.next_pk),
            input: &f.input,
            output: &output,
        };
        let proof = prove_reencryption(&stmt, &witnesses, &mut f.rng).unwrap();

        let mut tampered = output.clone();
        tampered.components[0].c += RISTRETTO_BASEPOINT_TABLE.basepoint();
        let bad_stmt = ReEncStatement {
            peel_public: &f.server.public.0,
            next_pk: Some(&f.next_pk),
            input: &f.input,
            output: &tampered,
        };
        assert!(verify_reencryption(&bad_stmt, &proof).is_err());
    }

    #[test]
    fn dropped_y_component_detected() {
        let mut f = fixture();
        let (output, witnesses) =
            reencrypt_message(&f.server.secret.0, Some(&f.next_pk), &f.input, &mut f.rng);
        let mut tampered = output.clone();
        tampered.components[0].y = None;
        let stmt = ReEncStatement {
            peel_public: &f.server.public.0,
            next_pk: Some(&f.next_pk),
            input: &f.input,
            output: &tampered,
        };
        assert!(prove_reencryption(&stmt, &witnesses, &mut f.rng).is_err());
        let good_stmt = ReEncStatement {
            peel_public: &f.server.public.0,
            next_pk: Some(&f.next_pk),
            input: &f.input,
            output: &output,
        };
        let proof = prove_reencryption(&good_stmt, &witnesses, &mut f.rng).unwrap();
        assert!(verify_reencryption(&stmt, &proof).is_err());
    }

    #[test]
    fn proof_not_valid_for_different_group_key() {
        // Binding to the next group's key: verifying against another key fails.
        let mut f = fixture();
        let (output, witnesses) =
            reencrypt_message(&f.server.secret.0, Some(&f.next_pk), &f.input, &mut f.rng);
        let stmt = ReEncStatement {
            peel_public: &f.server.public.0,
            next_pk: Some(&f.next_pk),
            input: &f.input,
            output: &output,
        };
        let proof = prove_reencryption(&stmt, &witnesses, &mut f.rng).unwrap();
        let other_stmt = ReEncStatement {
            peel_public: &f.server.public.0,
            next_pk: Some(&f.group_pk),
            input: &f.input,
            output: &output,
        };
        assert!(verify_reencryption(&other_stmt, &proof).is_err());
    }
}
