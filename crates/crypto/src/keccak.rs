//! Keccak-f\[1600\] sponge, SHA3-256 and SHAKE256, implemented from scratch.
//!
//! Atom uses SHA-3 as its cryptographic commitment function for trap messages
//! (§4.4 of the paper) and this crate additionally uses SHAKE256 as the
//! extendable-output function behind the Fiat-Shamir transcript and the KEM
//! key-derivation function. The implementation follows FIPS 202; test vectors
//! are checked against a reference implementation.

/// Keccak round constants for the 24 rounds of Keccak-f\[1600\].
const ROUND_CONSTANTS: [u64; 24] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

/// Rotation offsets for the rho step, indexed as `RHO[x][y]` with lane (x, y).
const RHO: [[u32; 5]; 5] = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
];

/// Applies the full 24-round Keccak-f\[1600\] permutation to the state.
///
/// The state is indexed as `state[x + 5 * y]` holding lane (x, y), matching
/// the FIPS 202 byte ordering when lanes are loaded little-endian.
pub fn keccak_f1600(state: &mut [u64; 25]) {
    for rc in ROUND_CONSTANTS {
        // Theta.
        let mut c = [0u64; 5];
        for (x, cx) in c.iter_mut().enumerate() {
            *cx = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
        }
        let mut d = [0u64; 5];
        for x in 0..5 {
            d[x] = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
        }
        for y in 0..5 {
            for x in 0..5 {
                state[x + 5 * y] ^= d[x];
            }
        }

        // Rho and Pi combined: B[y][(2x + 3y) mod 5] = rot(A[x][y], RHO[x][y]).
        let mut b = [0u64; 25];
        for y in 0..5 {
            for x in 0..5 {
                let nx = y;
                let ny = (2 * x + 3 * y) % 5;
                b[nx + 5 * ny] = state[x + 5 * y].rotate_left(RHO[x][y]);
            }
        }

        // Chi.
        for y in 0..5 {
            for x in 0..5 {
                state[x + 5 * y] =
                    b[x + 5 * y] ^ ((!b[(x + 1) % 5 + 5 * y]) & b[(x + 2) % 5 + 5 * y]);
            }
        }

        // Iota.
        state[0] ^= rc;
    }
}

/// An incremental Keccak sponge with a configurable rate and domain padding.
#[derive(Clone)]
pub struct KeccakSponge {
    state: [u64; 25],
    /// Rate in bytes (136 for SHA3-256 / SHAKE256).
    rate: usize,
    /// Number of bytes absorbed into the current block.
    offset: usize,
    /// Domain separation / padding byte (0x06 for SHA-3, 0x1f for SHAKE).
    pad: u8,
    /// Whether the sponge has switched to the squeezing phase.
    squeezing: bool,
    /// Offset within the current squeezed block.
    squeeze_offset: usize,
}

impl KeccakSponge {
    /// Creates a sponge with the given byte rate and padding byte.
    pub fn new(rate: usize, pad: u8) -> Self {
        assert!(
            rate > 0 && rate < 200 && rate.is_multiple_of(8),
            "invalid Keccak rate"
        );
        Self {
            state: [0u64; 25],
            rate,
            offset: 0,
            pad,
            squeezing: false,
            squeeze_offset: 0,
        }
    }

    /// XORs a single byte into the state at the given byte position.
    fn xor_byte(&mut self, pos: usize, byte: u8) {
        let lane = pos / 8;
        let shift = (pos % 8) * 8;
        self.state[lane] ^= (byte as u64) << shift;
    }

    /// Reads a single byte of the state at the given byte position.
    fn read_byte(&self, pos: usize) -> u8 {
        let lane = pos / 8;
        let shift = (pos % 8) * 8;
        (self.state[lane] >> shift) as u8
    }

    /// Absorbs input into the sponge. Panics if called after squeezing began.
    pub fn absorb(&mut self, data: &[u8]) {
        assert!(!self.squeezing, "cannot absorb after squeezing started");
        for &byte in data {
            self.xor_byte(self.offset, byte);
            self.offset += 1;
            if self.offset == self.rate {
                keccak_f1600(&mut self.state);
                self.offset = 0;
            }
        }
    }

    /// Applies padding and switches to the squeezing phase.
    fn finish_absorbing(&mut self) {
        self.xor_byte(self.offset, self.pad);
        self.xor_byte(self.rate - 1, 0x80);
        keccak_f1600(&mut self.state);
        self.squeezing = true;
        self.squeeze_offset = 0;
    }

    /// Squeezes `out.len()` bytes from the sponge. May be called repeatedly.
    pub fn squeeze(&mut self, out: &mut [u8]) {
        if !self.squeezing {
            self.finish_absorbing();
        }
        for byte in out.iter_mut() {
            if self.squeeze_offset == self.rate {
                keccak_f1600(&mut self.state);
                self.squeeze_offset = 0;
            }
            *byte = self.read_byte(self.squeeze_offset);
            self.squeeze_offset += 1;
        }
    }
}

/// Computes the SHA3-256 digest of `data`.
pub fn sha3_256(data: &[u8]) -> [u8; 32] {
    let mut sponge = KeccakSponge::new(136, 0x06);
    sponge.absorb(data);
    let mut out = [0u8; 32];
    sponge.squeeze(&mut out);
    out
}

/// Computes a SHA3-256 digest over several input slices, as if concatenated.
pub fn sha3_256_multi(parts: &[&[u8]]) -> [u8; 32] {
    let mut sponge = KeccakSponge::new(136, 0x06);
    for part in parts {
        sponge.absorb(part);
    }
    let mut out = [0u8; 32];
    sponge.squeeze(&mut out);
    out
}

/// An incremental SHAKE256 extendable-output function.
#[derive(Clone)]
pub struct Shake256 {
    sponge: KeccakSponge,
}

impl Default for Shake256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Shake256 {
    /// Creates an empty SHAKE256 instance.
    pub fn new() -> Self {
        Self {
            sponge: KeccakSponge::new(136, 0x1f),
        }
    }

    /// Absorbs more input.
    pub fn absorb(&mut self, data: &[u8]) {
        self.sponge.absorb(data);
    }

    /// Squeezes `out.len()` bytes of output; callable repeatedly for a stream.
    pub fn squeeze(&mut self, out: &mut [u8]) {
        self.sponge.squeeze(out);
    }

    /// One-shot convenience: SHAKE256(data) truncated/extended to `n` bytes.
    pub fn hash(data: &[u8], n: usize) -> Vec<u8> {
        let mut xof = Self::new();
        xof.absorb(data);
        let mut out = vec![0u8; n];
        xof.squeeze(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha3_256_empty_vector() {
        assert_eq!(
            hex(&sha3_256(b"")),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
        );
    }

    #[test]
    fn sha3_256_abc_vector() {
        assert_eq!(
            hex(&sha3_256(b"abc")),
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
        );
    }

    #[test]
    fn sha3_256_multiblock_vector() {
        // 200 bytes of 'a' spans more than one rate-sized block.
        let data = vec![b'a'; 200];
        assert_eq!(
            hex(&sha3_256(&data)),
            "cce34485baf2bf2aca99b94833892a4f52896d3d153f7b840cc4f9fe695f1387"
        );
    }

    #[test]
    fn sha3_256_multi_matches_concatenation() {
        let joined = sha3_256(b"hello world");
        let parts = sha3_256_multi(&[b"hello", b" ", b"world"]);
        assert_eq!(joined, parts);
    }

    #[test]
    fn shake256_empty_vector() {
        assert_eq!(
            hex(&Shake256::hash(b"", 32)),
            "46b9dd2b0ba88d13233b3feb743eeb243fcd52ea62b81b82b50c27646ed5762f"
        );
    }

    #[test]
    fn shake256_abc_vector() {
        assert_eq!(
            hex(&Shake256::hash(b"abc", 64)),
            "483366601360a8771c6863080cc4114d8db44530f8f1e1ee4f94ea37e78b5739\
             d5a15bef186a5386c75744c0527e1faa9f8726e462a12a4feb06bd8801e751e4"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn shake256_incremental_squeeze_matches_oneshot() {
        let oneshot = Shake256::hash(b"incremental", 96);
        let mut xof = Shake256::new();
        xof.absorb(b"incre");
        xof.absorb(b"mental");
        let mut a = vec![0u8; 10];
        let mut b = vec![0u8; 50];
        let mut c = vec![0u8; 36];
        xof.squeeze(&mut a);
        xof.squeeze(&mut b);
        xof.squeeze(&mut c);
        let combined: Vec<u8> = a.into_iter().chain(b).chain(c).collect();
        assert_eq!(oneshot, combined);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha3_256(b"a"), sha3_256(b"b"));
        assert_ne!(sha3_256(b""), sha3_256(b"\x00"));
    }
}
