//! Anonymous microblogging on top of Atom (§5).
//!
//! Users broadcast short fixed-length posts (160 bytes in the paper's
//! evaluation, Twitter-style); the exit groups publish the anonymized
//! plaintexts to a public bulletin board that anyone can read.

use rand::{CryptoRng, RngCore};
use serde::{Deserialize, Serialize};

use atom_core::config::{AtomConfig, Defense};
use atom_core::error::{AtomError, AtomResult};
use atom_core::message::{
    make_nizk_submission, make_trap_submission, NizkSubmission, SubmissionReceipt, TrapSubmission,
};
use atom_core::round::{RoundDriver, RoundOutput};

/// The fixed post length used in the paper's microblogging evaluation.
pub const PAPER_POST_LEN: usize = 160;

/// A published post on the bulletin board.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Post {
    /// The exit group that published the post.
    pub published_by: usize,
    /// The post text (padding stripped).
    pub text: String,
}

/// The public bulletin board the exit servers write to.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BulletinBoard {
    /// All posts published this round.
    pub posts: Vec<Post>,
}

impl BulletinBoard {
    /// Builds the board from a finished round: every exit-group plaintext
    /// becomes one post, with zero padding stripped and non-UTF-8 posts
    /// replaced lossily.
    pub fn publish(output: &RoundOutput) -> Self {
        let mut posts = Vec::new();
        for (group, messages) in output.per_group.iter().enumerate() {
            for message in messages {
                let unpadded: Vec<u8> = message
                    .iter()
                    .copied()
                    .take_while(|&byte| byte != 0)
                    .collect();
                posts.push(Post {
                    published_by: group,
                    text: String::from_utf8_lossy(&unpadded).into_owned(),
                });
            }
        }
        Self { posts }
    }

    /// Posts containing `needle`, for simple reader-side search.
    pub fn search(&self, needle: &str) -> Vec<&Post> {
        self.posts
            .iter()
            .filter(|p| p.text.contains(needle))
            .collect()
    }

    /// Number of posts on the board.
    pub fn len(&self) -> usize {
        self.posts.len()
    }

    /// True if nothing was published.
    pub fn is_empty(&self) -> bool {
        self.posts.is_empty()
    }
}

/// A batch of microblogging submissions together with the users' receipts.
pub struct MicroblogBatch {
    /// NIZK-variant submissions (if that defence is configured).
    pub nizk: Vec<NizkSubmission>,
    /// Trap-variant submissions (if that defence is configured).
    pub trap: Vec<TrapSubmission>,
    /// Per-user receipts (same order as the posts given).
    pub receipts: Vec<SubmissionReceipt>,
}

/// Encrypts a set of user posts for a round, assigning users to entry groups
/// round-robin (an untrusted load balancer in the paper, §3).
pub fn prepare_posts<R: RngCore + CryptoRng>(
    driver: &RoundDriver,
    posts: &[&str],
    rng: &mut R,
) -> AtomResult<MicroblogBatch> {
    let setup = driver.setup();
    let config: &AtomConfig = &setup.config;
    let mut batch = MicroblogBatch {
        nizk: Vec::new(),
        trap: Vec::new(),
        receipts: Vec::new(),
    };
    for (index, post) in posts.iter().enumerate() {
        let bytes = post.as_bytes();
        if bytes.len() > config.message_len {
            return Err(AtomError::Malformed(format!(
                "post {index} exceeds the {}-byte limit",
                config.message_len
            )));
        }
        let gid = index % config.num_groups;
        match config.defense {
            Defense::Nizk => {
                let (submission, receipt) = make_nizk_submission(
                    gid,
                    &setup.groups[gid].public_key,
                    bytes,
                    config.message_len,
                    rng,
                )?;
                batch.nizk.push(submission);
                batch.receipts.push(receipt);
            }
            Defense::Trap => {
                let (submission, receipt) = make_trap_submission(
                    gid,
                    &setup.groups[gid].public_key,
                    &setup.trustees.public_key,
                    config.round,
                    bytes,
                    config.message_len,
                    rng,
                )?;
                batch.trap.push(submission);
                batch.receipts.push(receipt);
            }
        }
    }
    Ok(batch)
}

/// Runs a complete microblogging round and publishes the bulletin board.
pub fn run_microblog_round<R: RngCore + CryptoRng>(
    driver: &RoundDriver,
    posts: &[&str],
    rng: &mut R,
) -> AtomResult<(BulletinBoard, RoundOutput)> {
    let batch = prepare_posts(driver, posts, rng)?;
    let output = match driver.setup().config.defense {
        Defense::Nizk => driver.run_nizk_round(&batch.nizk, rng)?,
        Defense::Trap => driver.run_trap_round(&batch.trap, rng)?,
    };
    Ok((BulletinBoard::publish(&output), output))
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_core::directory::setup_round;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn driver(defense: Defense) -> (StdRng, RoundDriver) {
        let mut rng = StdRng::seed_from_u64(99);
        let mut config = AtomConfig::test_default();
        config.defense = defense;
        config.message_len = 48;
        config.num_groups = 3;
        config.iterations = 2;
        let setup = setup_round(&config, &mut rng).unwrap();
        (rng, RoundDriver::new(setup))
    }

    #[test]
    fn trap_variant_microblogging_publishes_all_posts() {
        let (mut rng, driver) = driver(Defense::Trap);
        let posts = [
            "rally at dawn",
            "bring water",
            "stay peaceful",
            "tell everyone",
        ];
        let (board, output) = run_microblog_round(&driver, &posts, &mut rng).unwrap();
        assert_eq!(board.len(), posts.len());
        assert_eq!(output.plaintexts.len(), posts.len());
        let mut texts: Vec<&str> = board.posts.iter().map(|p| p.text.as_str()).collect();
        texts.sort_unstable();
        let mut expected = posts.to_vec();
        expected.sort_unstable();
        assert_eq!(texts, expected);
        assert_eq!(board.search("water").len(), 1);
    }

    #[test]
    fn nizk_variant_microblogging_publishes_all_posts() {
        let (mut rng, driver) = driver(Defense::Nizk);
        let posts = ["one", "two", "three"];
        let (board, _) = run_microblog_round(&driver, &posts, &mut rng).unwrap();
        assert_eq!(board.len(), 3);
        assert!(!board.is_empty());
    }

    #[test]
    fn oversized_post_rejected() {
        let (mut rng, driver) = driver(Defense::Trap);
        let long = "x".repeat(100);
        assert!(run_microblog_round(&driver, &[long.as_str()], &mut rng).is_err());
    }
}
