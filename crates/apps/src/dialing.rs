//! A dialing protocol on top of Atom (§5), in the style of Vuvuzela and
//! Alpenhorn.
//!
//! To "dial" Bob, Alice encrypts her public key to Bob's public key and sends
//! the resulting request through the Atom network addressed to Bob's mailbox
//! (`mailbox = H(Bob's identity) mod m`). The exit servers sort the
//! anonymized requests into mailboxes; Bob downloads his mailbox, tries to
//! decrypt every request, and establishes a shared secret with every caller
//! he recognizes. To hide how many calls a user receives, one anytrust group
//! (the trustees in the trap variant) injects a differentially-private number
//! of dummy requests into every mailbox (the Vuvuzela mechanism, ref. \[72\] in the paper).

use rand::{CryptoRng, Rng, RngCore};
use serde::{Deserialize, Serialize};

use atom_core::config::Defense;
use atom_core::error::{AtomError, AtomResult};
use atom_core::message::{make_trap_submission, TrapSubmission};
use atom_core::round::{RoundDriver, RoundOutput};
use atom_crypto::cca2;
use atom_crypto::elgamal::{KeyPair, PublicKey};
use atom_crypto::keccak::sha3_256;

/// The dialing message size used by the paper's prototype ("the simpler
/// 80 byte message dialing scheme").
pub const PAPER_DIAL_LEN: usize = 96;

/// Associated data binding dial requests to their purpose.
const DIAL_AAD: &[u8] = b"atom-dial-v1";

/// A user identity in the dialing system: a long-term keypair.
#[derive(Clone, Debug)]
pub struct DialIdentity {
    /// The long-term keypair.
    pub keys: KeyPair,
}

impl DialIdentity {
    /// Creates a fresh identity.
    pub fn generate<R: RngCore + CryptoRng>(rng: &mut R) -> Self {
        Self {
            keys: KeyPair::generate(rng),
        }
    }

    /// The mailbox this identity listens on, out of `mailboxes`.
    pub fn mailbox(&self, mailboxes: usize) -> usize {
        mailbox_for(&self.keys.public, mailboxes)
    }
}

/// The mailbox assignment function: `H(identity) mod m`.
pub fn mailbox_for(identity: &PublicKey, mailboxes: usize) -> usize {
    let digest = sha3_256(&identity.to_bytes());
    let mut value = 0u64;
    for &byte in &digest[..8] {
        value = (value << 8) | byte as u64;
    }
    (value % mailboxes.max(1) as u64) as usize
}

/// The plaintext of a dial request as routed through Atom:
/// `mailbox (2 bytes LE) ‖ sealed caller key`.
fn encode_dial_request(mailbox: usize, sealed: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + sealed.len());
    out.extend_from_slice(&(mailbox as u16).to_le_bytes());
    out.extend_from_slice(sealed);
    out
}

fn decode_dial_request(bytes: &[u8]) -> Option<(usize, Vec<u8>)> {
    if bytes.len() < 2 {
        return None;
    }
    let mailbox = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
    // Strip the zero padding Atom added; the sealed blob length is fixed.
    Some((mailbox, bytes[2..].to_vec()))
}

/// Builds the Atom submission for dialing `callee` from `caller`.
pub fn make_dial_submission<R: RngCore + CryptoRng>(
    driver: &RoundDriver,
    caller: &DialIdentity,
    callee: &PublicKey,
    mailboxes: usize,
    entry_group: usize,
    rng: &mut R,
) -> AtomResult<TrapSubmission> {
    let setup = driver.setup();
    let config = &setup.config;
    if config.defense != Defense::Trap {
        return Err(AtomError::Config(
            "the dialing application uses the trap variant".into(),
        ));
    }
    let mailbox = mailbox_for(callee, mailboxes);
    let sealed = cca2::encrypt(callee, DIAL_AAD, &caller.keys.public.to_bytes(), rng).to_bytes();
    let request = encode_dial_request(mailbox, &sealed);
    if request.len() > config.message_len {
        return Err(AtomError::Config(format!(
            "dial request of {} bytes exceeds the configured message length {}",
            request.len(),
            config.message_len
        )));
    }
    let (submission, _) = make_trap_submission(
        entry_group,
        &setup.groups[entry_group].public_key,
        &setup.trustees.public_key,
        config.round,
        &request,
        config.message_len,
        rng,
    )?;
    Ok(submission)
}

/// Samples the number of dummy dial requests an anytrust group adds to each
/// mailbox: `max(0, mu + Laplace(scale))`, the Vuvuzela mechanism.
pub fn dummy_count<R: RngCore + CryptoRng>(mu: f64, scale: f64, rng: &mut R) -> usize {
    let uniform: f64 = rng.gen_range(-0.5..0.5);
    let laplace = -scale * uniform.signum() * (1.0 - 2.0 * uniform.abs()).ln();
    (mu + laplace).max(0.0).round() as usize
}

/// Generates `count` dummy dial submissions addressed to random mailboxes.
pub fn make_dummy_submissions<R: RngCore + CryptoRng>(
    driver: &RoundDriver,
    mailboxes: usize,
    count: usize,
    rng: &mut R,
) -> AtomResult<Vec<TrapSubmission>> {
    let setup = driver.setup();
    let config = &setup.config;
    let mut dummies = Vec::with_capacity(count);
    for _ in 0..count {
        let throwaway = DialIdentity::generate(rng);
        let target = DialIdentity::generate(rng);
        let entry_group = rng.gen_range(0..config.num_groups);
        dummies.push(make_dial_submission(
            driver,
            &throwaway,
            &target.keys.public,
            mailboxes,
            entry_group,
            rng,
        )?);
    }
    Ok(dummies)
}

/// The mailboxes produced by the exit servers after a dialing round.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Mailboxes {
    /// `boxes[m]` holds the sealed dial requests for mailbox `m`.
    pub boxes: Vec<Vec<Vec<u8>>>,
}

impl Mailboxes {
    /// Sorts a finished round's plaintexts into `mailboxes` mailboxes.
    pub fn from_round(output: &RoundOutput, mailboxes: usize) -> Self {
        let mut boxes = vec![Vec::new(); mailboxes];
        for plaintext in &output.plaintexts {
            if let Some((mailbox, sealed)) = decode_dial_request(plaintext) {
                if mailbox < mailboxes {
                    boxes[mailbox].push(sealed);
                }
            }
        }
        Self { boxes }
    }

    /// Total number of requests across all mailboxes (including dummies).
    pub fn total_requests(&self) -> usize {
        self.boxes.iter().map(Vec::len).sum()
    }

    /// Downloads and decrypts the mailbox of `identity`, returning the public
    /// keys of everyone who dialed it (dummies fail to decrypt and are
    /// skipped).
    pub fn check_mailbox(&self, identity: &DialIdentity) -> Vec<PublicKey> {
        let mailbox = identity.mailbox(self.boxes.len());
        let mut callers = Vec::new();
        for sealed in &self.boxes[mailbox] {
            // The sealed blob is zero-padded by Atom's fixed-length framing;
            // the true hybrid ciphertext length is 32 (KEM) + 32 (key) + 16
            // (tag) bytes.
            let true_len = 32 + 32 + 16;
            if sealed.len() < true_len {
                continue;
            }
            let Ok(ct) = cca2::HybridCiphertext::from_bytes(&sealed[..true_len]) else {
                continue;
            };
            let Ok(plaintext) =
                cca2::decrypt(&identity.keys.secret, &identity.keys.public, DIAL_AAD, &ct)
            else {
                continue;
            };
            if let Ok(caller) = PublicKey::from_bytes(&plaintext) {
                callers.push(caller);
            }
        }
        callers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_core::config::AtomConfig;
    use atom_core::directory::setup_round;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn driver() -> (StdRng, RoundDriver) {
        let mut rng = StdRng::seed_from_u64(314);
        let mut config = AtomConfig::test_default();
        config.message_len = PAPER_DIAL_LEN;
        config.num_groups = 2;
        config.iterations = 2;
        let setup = setup_round(&config, &mut rng).unwrap();
        (rng, RoundDriver::new(setup))
    }

    #[test]
    fn dialing_round_delivers_requests_to_the_right_mailbox() {
        let (mut rng, driver) = driver();
        let mailboxes = 8;
        let alice = DialIdentity::generate(&mut rng);
        let carol = DialIdentity::generate(&mut rng);
        let bob = DialIdentity::generate(&mut rng);

        let submissions = vec![
            make_dial_submission(&driver, &alice, &bob.keys.public, mailboxes, 0, &mut rng)
                .unwrap(),
            make_dial_submission(&driver, &carol, &bob.keys.public, mailboxes, 1, &mut rng)
                .unwrap(),
            // Unrelated call so Bob's mailbox is not the only busy one.
            make_dial_submission(&driver, &bob, &alice.keys.public, mailboxes, 0, &mut rng)
                .unwrap(),
        ];
        let output = driver.run_trap_round(&submissions, &mut rng).unwrap();
        let boxes = Mailboxes::from_round(&output, mailboxes);
        assert_eq!(boxes.total_requests(), 3);

        let bobs_callers = boxes.check_mailbox(&bob);
        assert_eq!(bobs_callers.len(), 2);
        assert!(bobs_callers.contains(&alice.keys.public));
        assert!(bobs_callers.contains(&carol.keys.public));
        assert!(!bobs_callers.contains(&bob.keys.public));

        let alices_callers = boxes.check_mailbox(&alice);
        assert_eq!(alices_callers, vec![bob.keys.public]);
    }

    #[test]
    fn dummies_hide_call_volume_but_do_not_decrypt() {
        let (mut rng, driver) = driver();
        let mailboxes = 4;
        let bob = DialIdentity::generate(&mut rng);
        let alice = DialIdentity::generate(&mut rng);

        let mut submissions =
            vec![
                make_dial_submission(&driver, &alice, &bob.keys.public, mailboxes, 0, &mut rng)
                    .unwrap(),
            ];
        submissions.extend(make_dummy_submissions(&driver, mailboxes, 5, &mut rng).unwrap());

        let output = driver.run_trap_round(&submissions, &mut rng).unwrap();
        let boxes = Mailboxes::from_round(&output, mailboxes);
        assert_eq!(boxes.total_requests(), 6);
        // Bob only recognizes Alice's call; dummies are indistinguishable
        // noise that fails decryption.
        assert_eq!(boxes.check_mailbox(&bob), vec![alice.keys.public]);
    }

    #[test]
    fn dummy_count_concentrates_around_mu() {
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<usize> = (0..200)
            .map(|_| dummy_count(100.0, 10.0, &mut rng))
            .collect();
        let mean = samples.iter().sum::<usize>() as f64 / samples.len() as f64;
        assert!((mean - 100.0).abs() < 15.0, "mean = {mean}");
        // Noise is actually present.
        assert!(samples.iter().any(|&s| s != samples[0]));
    }

    #[test]
    fn mailbox_assignment_is_stable_and_bounded() {
        let mut rng = StdRng::seed_from_u64(6);
        let identity = DialIdentity::generate(&mut rng);
        let m = identity.mailbox(16);
        assert!(m < 16);
        assert_eq!(m, identity.mailbox(16));
    }

    #[test]
    fn nizk_configuration_rejected_for_dialing() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut config = AtomConfig::test_default();
        config.defense = Defense::Nizk;
        config.message_len = PAPER_DIAL_LEN;
        let setup = setup_round(&config, &mut rng).unwrap();
        let driver = RoundDriver::new(setup);
        let alice = DialIdentity::generate(&mut rng);
        let bob = DialIdentity::generate(&mut rng);
        assert!(make_dial_submission(&driver, &alice, &bob.keys.public, 4, 0, &mut rng).is_err());
    }
}
