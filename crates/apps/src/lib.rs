//! # atom-apps
//!
//! The two applications the Atom paper targets (§5), built on the public API
//! of [`atom_core`]:
//!
//! * [`microblog`] — anonymous microblogging: fixed-length posts are routed
//!   through Atom and published on a bulletin board.
//! * [`dialing`] — a Vuvuzela/Alpenhorn-style dialing protocol: users send
//!   sealed key-exchange requests to per-recipient mailboxes, with
//!   differentially-private dummy traffic hiding call volumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dialing;
pub mod microblog;

pub use dialing::{DialIdentity, Mailboxes, PAPER_DIAL_LEN};
pub use microblog::{run_microblog_round, BulletinBoard, Post, PAPER_POST_LEN};
