//! Deterministic traffic models for million-user Atom deployments.
//!
//! The paper's claim is horizontal scaling of strong anonymity to millions
//! of users; exercising that claim needs workloads *shaped* like real
//! traffic — Zipf-distributed microblog fan-in, diurnal load curves,
//! dialing bursts, mixed trap/NIZK deployments — at sizes that must never
//! be materialized in one `Vec`. Every generator here is a pure function
//! of `(seed, index)`: submission `i` is derived from its own
//! [`StdRng`] seeded by a splitmix64 hash of the workload seed and `i`, so
//! any index range can be generated independently and
//! [`WorkloadSource::generate`] yields byte-identical streams whatever the
//! chunking or [window](atom_runtime::EngineOptions::intake_window) the
//! engine pulls it through.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use atom_core::config::Defense;
use atom_core::directory::RoundSetup;
use atom_core::error::{AtomError, AtomResult};
use atom_core::message::{make_nizk_submission, make_trap_submission};
use atom_core::{NizkSubmission, TrapSubmission};
use atom_runtime::wire::{self, ClientSubmission, SubmitFrame};
use atom_runtime::{RoundSubmissions, SubmissionBlock, SubmissionSource};

/// Sebastiano Vigna's splitmix64 finalizer: the standard cheap bijection
/// for turning a counter into an independent-looking 64-bit seed.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG seed of submission `index` under workload seed `seed`. Mixing
/// the index in *before* the splitmix finalizer keeps adjacent indices
/// statistically unrelated, which is what lets `generate(a..b)` and
/// `generate(b..c)` concatenate into exactly `generate(a..c)`.
pub fn index_seed(seed: u64, index: u64) -> u64 {
    splitmix64(seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F))
}

/// The per-submission RNG: every random choice of submission `index`
/// (author, entry group, encryption randomness, trap nonce) draws from
/// this stream and nothing else.
pub fn index_rng(seed: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(index_seed(seed, index))
}

/// A uniform draw in `[0, 1)` from one `u64` (53 mantissa bits).
fn unit_f64(raw: u64) -> f64 {
    (raw >> 11) as f64 / (1u64 << 53) as f64
}

/// A Zipf(`exponent`) sampler over ranks `0..ranks` via its cumulative
/// distribution: rank `r` has weight `1/(r+1)^exponent`. Microblog fan-in
/// is the canonical use — a handful of prolific authors produce most
/// posts, with a long tail of occasional ones.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `ranks` ranks with the given exponent. Panics on
    /// zero ranks or a non-finite exponent.
    pub fn new(ranks: usize, exponent: f64) -> Self {
        assert!(ranks > 0, "a Zipf law needs at least one rank");
        assert!(exponent.is_finite(), "non-finite Zipf exponent");
        let mut cdf = Vec::with_capacity(ranks);
        let mut acc = 0.0;
        for rank in 0..ranks {
            acc += 1.0 / ((rank + 1) as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for slot in &mut cdf {
            *slot /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }

    /// The rank a uniform `u ∈ [0, 1)` maps to.
    pub fn sample(&self, u: f64) -> usize {
        self.cdf
            .partition_point(|&cum| cum <= u)
            .min(self.cdf.len() - 1)
    }

    /// The probability mass of `rank`.
    pub fn share(&self, rank: usize) -> f64 {
        let below = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - below
    }
}

/// A 24-bucket diurnal load curve: relative traffic weight per hour of
/// day, used to spread a day's submissions over a round schedule the way
/// real load ebbs and flows instead of uniformly.
#[derive(Clone, Debug)]
pub struct DiurnalCurve {
    weights: [f64; 24],
}

impl DiurnalCurve {
    /// A curve from explicit per-hour weights. Panics unless every weight
    /// is positive and finite.
    pub fn new(weights: [f64; 24]) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "diurnal weights must be positive"
        );
        Self { weights }
    }

    /// The classic single-peak shape: a quiet small-hours trough, a ramp
    /// through the morning, and an evening peak — a raised cosine with its
    /// minimum at 04:00.
    pub fn standard() -> Self {
        let mut weights = [0.0; 24];
        for (hour, slot) in weights.iter_mut().enumerate() {
            let phase = (hour as f64 - 4.0) / 24.0 * std::f64::consts::TAU;
            *slot = 1.0 - 0.8 * phase.cos();
        }
        Self::new(weights)
    }

    /// The relative weight of `hour` (mod 24).
    pub fn weight(&self, hour: usize) -> f64 {
        self.weights[hour % 24]
    }

    /// Spreads `total` submissions over `rounds` rounds proportional to
    /// the curve (round `r` maps to hour `r * 24 / rounds`), with
    /// largest-remainder rounding so the counts sum to exactly `total`.
    pub fn round_counts(&self, rounds: usize, total: usize) -> Vec<usize> {
        if rounds == 0 {
            return Vec::new();
        }
        let hour_weights: Vec<f64> = (0..rounds)
            .map(|round| self.weight(round * 24 / rounds))
            .collect();
        let sum: f64 = hour_weights.iter().sum();
        let mut counts = Vec::with_capacity(rounds);
        let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(rounds);
        let mut assigned = 0usize;
        for (round, weight) in hour_weights.iter().enumerate() {
            let exact = total as f64 * weight / sum;
            let floor = exact.floor() as usize;
            assigned += floor;
            counts.push(floor);
            remainders.push((round, exact - floor as f64));
        }
        // Largest remainders (ties to the earlier round) soak up the slack.
        remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        for &(round, _) in remainders.iter().take(total - assigned) {
            counts[round] += 1;
        }
        counts
    }
}

/// Per-round submission counts for a dialing workload with periodic
/// bursts: every round offers `base` dials, and every `burst_every`-th
/// round (starting at the first) multiplies that by `burst_scale` — the
/// "everyone calls at the top of the hour" shape.
pub fn dialing_burst_counts(
    rounds: usize,
    base: usize,
    burst_every: usize,
    burst_scale: usize,
) -> Vec<usize> {
    let period = burst_every.max(1);
    (0..rounds)
        .map(|round| {
            if round % period == 0 {
                base * burst_scale.max(1)
            } else {
                base
            }
        })
        .collect()
}

/// What the submissions of one workload round look like.
#[derive(Clone, Debug)]
pub enum TrafficPattern {
    /// Microblog fan-in: the author of each post is drawn from a
    /// Zipf(`exponent`) law over `users` users.
    ZipfMicroblog {
        /// User population size.
        users: usize,
        /// Zipf exponent (≈1.0 for classic microblog fan-in).
        exponent: f64,
    },
    /// Dialing: each submission is a caller→callee invitation with both
    /// endpoints uniform over `users` users.
    Dialing {
        /// User population size.
        users: usize,
    },
}

/// One round's workload: a traffic pattern, a protocol variant, a size
/// and a seed. Equal specs (against equal directories) generate
/// byte-identical streams.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Shape of the submission payloads.
    pub pattern: TrafficPattern,
    /// Protocol variant the submissions are built for.
    pub defense: Defense,
    /// Submissions the round offers.
    pub submissions: usize,
    /// Seed of every random choice in the stream.
    pub seed: u64,
}

/// A deterministic, range-addressable stream of submissions for one round
/// (the [`SubmissionSource`] the engine's streaming intake pulls from).
/// Holds the round's directory for the group/trustee keys submissions
/// encrypt to.
pub struct WorkloadSource {
    setup: Arc<RoundSetup>,
    spec: WorkloadSpec,
    zipf: Option<Zipf>,
}

impl WorkloadSource {
    /// A stream of `spec` submissions against the `setup` directory.
    pub fn new(setup: Arc<RoundSetup>, spec: WorkloadSpec) -> AtomResult<Self> {
        let zipf = match &spec.pattern {
            TrafficPattern::ZipfMicroblog { users, exponent } => {
                if *users == 0 {
                    return Err(AtomError::Config(
                        "a Zipf microblog workload needs at least one user".into(),
                    ));
                }
                Some(Zipf::new(*users, *exponent))
            }
            TrafficPattern::Dialing { users } => {
                if *users == 0 {
                    return Err(AtomError::Config(
                        "a dialing workload needs at least one user".into(),
                    ));
                }
                None
            }
        };
        Ok(Self { setup, spec, zipf })
    }

    /// The payload text of submission `index` — pattern-shaped, and short
    /// enough for any test-sized `message_len`.
    pub fn text_at(&self, index: usize) -> String {
        let mut rng = index_rng(self.spec.seed, index as u64);
        // First draw: entry group (must match generate()'s draw order).
        let gid = (rng.next_u64() % self.setup.config.num_groups as u64) as usize;
        let _ = gid;
        match &self.spec.pattern {
            TrafficPattern::ZipfMicroblog { .. } => {
                let author = self
                    .zipf
                    .as_ref()
                    .expect("zipf sampler exists for microblog patterns")
                    .sample(unit_f64(rng.next_u64()));
                format!("u{author} p{index}")
            }
            TrafficPattern::Dialing { users } => {
                let caller = rng.next_u64() % *users as u64;
                let callee = rng.next_u64() % *users as u64;
                format!("dial {caller}>{callee} #{index}")
            }
        }
    }

    /// The entry group of submission `index`.
    pub fn entry_group_at(&self, index: usize) -> usize {
        let mut rng = index_rng(self.spec.seed, index as u64);
        (rng.next_u64() % self.setup.config.num_groups as u64) as usize
    }

    /// The author rank of submission `index` (microblog patterns only).
    pub fn author_at(&self, index: usize) -> Option<usize> {
        self.zipf.as_ref().map(|zipf| {
            let mut rng = index_rng(self.spec.seed, index as u64);
            let _gid = rng.next_u64();
            zipf.sample(unit_f64(rng.next_u64()))
        })
    }

    /// Materializes the whole stream as engine-ready submissions — the
    /// equivalence baseline the streaming path is byte-compared against.
    pub fn materialize(&self) -> AtomResult<RoundSubmissions> {
        Ok(match self.generate((0, self.spec.submissions))? {
            SubmissionBlock::Nizk(subs) => RoundSubmissions::Nizk(subs),
            SubmissionBlock::Trap(subs) => RoundSubmissions::Trap(subs),
        })
    }

    /// Submission `index` built for the wire: the [`ClientSubmission`] a
    /// real client at that index would send the ingress tier.
    /// [`generate`](SubmissionSource::generate) delegates to the same
    /// per-index builders, so the socket path and the materialized path
    /// carry byte-identical submissions by construction.
    pub fn submission_at(&self, index: usize) -> AtomResult<ClientSubmission> {
        Ok(match self.spec.defense {
            Defense::Nizk => ClientSubmission::Nizk(self.nizk_at(index)?),
            Defense::Trap => ClientSubmission::Trap(self.trap_at(index)?),
        })
    }

    /// The encoded `submit` wire payload of client `index` (ready to wrap
    /// in an `atom_net` client frame): the client id is the index itself,
    /// so the ingress tier's sort-by-client recovers generation order.
    pub fn submit_payload_at(&self, index: usize, round: usize, app: u16) -> AtomResult<Vec<u8>> {
        Ok(wire::encode_submit(&SubmitFrame {
            round,
            client: index as u64,
            app,
            submission: self.submission_at(index)?,
        }))
    }

    /// The single per-index NIZK builder both `generate` and
    /// `submission_at` share.
    fn nizk_at(&self, index: usize) -> AtomResult<NizkSubmission> {
        let config = &self.setup.config;
        let mut rng = index_rng(self.spec.seed, index as u64);
        let gid = (rng.next_u64() % config.num_groups as u64) as usize;
        let text = self.text_at(index);
        let (submission, _receipt) = make_nizk_submission(
            gid,
            &self.setup.groups[gid].public_key,
            text.as_bytes(),
            config.message_len,
            &mut rng,
        )?;
        Ok(submission)
    }

    /// The single per-index trap builder both `generate` and
    /// `submission_at` share.
    fn trap_at(&self, index: usize) -> AtomResult<TrapSubmission> {
        let config = &self.setup.config;
        let mut rng = index_rng(self.spec.seed, index as u64);
        let gid = (rng.next_u64() % config.num_groups as u64) as usize;
        let text = self.text_at(index);
        let (submission, _receipt) = make_trap_submission(
            gid,
            &self.setup.groups[gid].public_key,
            &self.setup.trustees.public_key,
            config.round,
            text.as_bytes(),
            config.message_len,
            &mut rng,
        )?;
        Ok(submission)
    }
}

impl SubmissionSource for WorkloadSource {
    fn total(&self) -> usize {
        self.spec.submissions
    }

    fn defense(&self) -> Defense {
        self.spec.defense
    }

    fn generate(&self, (start, end): (usize, usize)) -> AtomResult<SubmissionBlock> {
        match self.spec.defense {
            Defense::Nizk => {
                let mut block = Vec::with_capacity(end - start);
                for index in start..end {
                    block.push(self.nizk_at(index)?);
                }
                Ok(SubmissionBlock::Nizk(block))
            }
            Defense::Trap => {
                let mut block = Vec::with_capacity(end - start);
                for index in start..end {
                    block.push(self.trap_at(index)?);
                }
                Ok(SubmissionBlock::Trap(block))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_core::config::AtomConfig;
    use atom_core::directory::derive_setup;

    fn test_setup(defense: Defense, groups: usize, seed: u64) -> Arc<RoundSetup> {
        let mut config = AtomConfig::test_default();
        config.defense = defense;
        config.num_groups = groups;
        config.num_servers = (groups * 2).max(config.group_size);
        config.iterations = 2;
        config.message_len = 32;
        config.beacon_seed = seed;
        Arc::new(derive_setup(&config).unwrap())
    }

    fn microblog_source(defense: Defense, submissions: usize, seed: u64) -> WorkloadSource {
        WorkloadSource::new(
            test_setup(defense, 3, seed ^ 0xD1),
            WorkloadSpec {
                pattern: TrafficPattern::ZipfMicroblog {
                    users: 100,
                    exponent: 1.1,
                },
                defense,
                submissions,
                seed,
            },
        )
        .unwrap()
    }

    #[test]
    fn fixed_seed_means_identical_stream_across_runs() {
        let a = microblog_source(Defense::Nizk, 12, 0x5EED);
        let b = microblog_source(Defense::Nizk, 12, 0x5EED);
        let (SubmissionBlock::Nizk(left), SubmissionBlock::Nizk(right)) =
            (a.generate((0, 12)).unwrap(), b.generate((0, 12)).unwrap())
        else {
            panic!("nizk spec must yield nizk blocks");
        };
        assert_eq!(left, right);

        // A different seed must not reproduce the stream.
        let c = microblog_source(Defense::Nizk, 12, 0x5EEE);
        let SubmissionBlock::Nizk(other) = c.generate((0, 12)).unwrap() else {
            panic!("nizk spec must yield nizk blocks");
        };
        assert_ne!(left, other);
    }

    #[test]
    fn stream_is_identical_across_window_sizes() {
        // generate(0..n) must equal the concatenation of any partition of
        // 0..n — the property the engine's windowed intake stands on.
        let source = microblog_source(Defense::Trap, 13, 0xA11);
        let SubmissionBlock::Trap(whole) = source.generate((0, 13)).unwrap() else {
            panic!("trap spec must yield trap blocks");
        };
        for cuts in [
            vec![0, 13],
            vec![0, 1, 13],
            vec![0, 4, 8, 13],
            vec![0, 5, 5, 13],
        ] {
            let mut stitched = Vec::new();
            for pair in cuts.windows(2) {
                let SubmissionBlock::Trap(part) = source.generate((pair[0], pair[1])).unwrap()
                else {
                    panic!("trap spec must yield trap blocks");
                };
                stitched.extend(part);
            }
            assert_eq!(stitched, whole, "partition {cuts:?}");
        }
    }

    #[test]
    fn zipf_rank_one_share_is_within_tolerance() {
        let zipf = Zipf::new(50, 1.0);
        let samples = 20_000usize;
        let mut rank_one = 0usize;
        for i in 0..samples {
            if zipf.sample(unit_f64(splitmix64(0xBEEF ^ i as u64))) == 0 {
                rank_one += 1;
            }
        }
        let expected = zipf.share(0);
        let observed = rank_one as f64 / samples as f64;
        assert!(
            (observed - expected).abs() < 0.15 * expected,
            "rank-1 share {observed:.4} strays from the law's {expected:.4}"
        );
    }

    #[test]
    fn zipf_bucket_counts_decrease_monotonically() {
        // Bucket the empirical counts of rank decades: a Zipf law's decade
        // masses must be non-increasing.
        let zipf = Zipf::new(100, 1.1);
        let mut buckets = [0usize; 10];
        for i in 0..50_000u64 {
            buckets[zipf.sample(unit_f64(splitmix64(0xCAFE ^ i))) / 10] += 1;
        }
        for pair in buckets.windows(2) {
            assert!(
                pair[0] >= pair[1],
                "bucket counts must be monotone, got {buckets:?}"
            );
        }
        assert!(buckets[0] > buckets[9] * 5, "no fan-in skew: {buckets:?}");
    }

    #[test]
    fn diurnal_counts_sum_exactly_and_follow_the_curve() {
        let curve = DiurnalCurve::standard();
        let counts = curve.round_counts(24, 100_003);
        assert_eq!(counts.iter().sum::<usize>(), 100_003);
        // The 04:00 trough must carry less than the evening peak.
        let trough = counts[4];
        let peak = *counts.iter().max().unwrap();
        assert!(
            trough * 2 < peak,
            "diurnal shape lost: trough {trough} vs peak {peak}"
        );
        // Counts rise monotonically from the trough to the peak hour.
        let peak_at = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        for hour in 4..peak_at {
            assert!(
                counts[hour] <= counts[hour + 1],
                "ramp must be monotone at hour {hour}: {counts:?}"
            );
        }
    }

    #[test]
    fn dialing_bursts_scale_the_burst_rounds_only() {
        let counts = dialing_burst_counts(7, 10, 3, 5);
        assert_eq!(counts, vec![50, 10, 10, 50, 10, 10, 50]);
    }

    #[test]
    fn wire_submissions_match_the_materialized_stream_exactly() {
        // submission_at (what a socket client sends) and generate (what
        // the materialized baseline holds) must agree byte-for-byte, and
        // the wire payload must decode back to the same submission.
        let source = microblog_source(Defense::Nizk, 6, 0x1236);
        let SubmissionBlock::Nizk(block) = source.generate((0, 6)).unwrap() else {
            panic!("nizk spec must yield nizk blocks");
        };
        for (index, expected) in block.iter().enumerate() {
            let ClientSubmission::Nizk(wire_side) = source.submission_at(index).unwrap() else {
                panic!("nizk spec must yield nizk submissions");
            };
            assert_eq!(&wire_side, expected, "index {index} diverged");

            let payload = source.submit_payload_at(index, 3, 9).unwrap();
            let wire::Frame::Submit(frame) = wire::decode(&payload).unwrap() else {
                panic!("submit payload must decode as a submit frame");
            };
            assert_eq!(frame.round, 3);
            assert_eq!(frame.client, index as u64);
            assert_eq!(frame.app, 9);
            let ClientSubmission::Nizk(decoded) = frame.submission else {
                panic!("nizk payload must decode as a nizk submission");
            };
            assert_eq!(&decoded, expected, "index {index} corrupted on the wire");
        }

        let trap = microblog_source(Defense::Trap, 2, 0x1236);
        assert!(matches!(
            trap.submission_at(0).unwrap(),
            ClientSubmission::Trap(_)
        ));
    }

    #[test]
    fn mixed_deployments_generate_both_variants() {
        let trap = microblog_source(Defense::Trap, 3, 0x77);
        let nizk = microblog_source(Defense::Nizk, 3, 0x77);
        assert!(matches!(
            trap.generate((0, 3)).unwrap(),
            SubmissionBlock::Trap(_)
        ));
        assert!(matches!(
            nizk.generate((0, 3)).unwrap(),
            SubmissionBlock::Nizk(_)
        ));
        // Same seed, same pattern: the payload *texts* agree across
        // variants even though the ciphertexts differ.
        assert_eq!(trap.text_at(2), nizk.text_at(2));
    }
}
