//! Anytrust / many-trust group sizing and formation (§4.1, §4.5, Appendix B).
//!
//! Atom's security rests on every group containing at least `h` honest
//! servers with overwhelming probability, assuming the adversary controls at
//! most a fraction `f` of all servers. This module computes the minimum group
//! size `k` for a target failure probability (the paper uses `2⁻⁶⁴`), and
//! forms groups by sampling servers with public randomness from a beacon.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Security parameters for group formation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GroupSecurityParams {
    /// Fraction of servers assumed malicious (`f`, e.g. 0.2).
    pub adversarial_fraction: f64,
    /// Number of groups in the network (`G`).
    pub num_groups: usize,
    /// Required number of honest servers per group (`h`; 1 for plain
    /// anytrust, ≥2 for fault tolerance).
    pub required_honest: usize,
    /// Target security exponent: total failure probability below
    /// `2^(−security_bits)`.
    pub security_bits: u32,
}

impl GroupSecurityParams {
    /// The parameters used throughout the paper's evaluation:
    /// `f = 20%`, `G = 1024`, `2⁻⁶⁴`.
    pub fn paper_defaults(required_honest: usize) -> Self {
        Self {
            adversarial_fraction: 0.2,
            num_groups: 1024,
            required_honest,
            security_bits: 64,
        }
    }
}

/// Natural logarithm of the binomial coefficient `C(n, k)`.
fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    let k = k.min(n - k);
    let mut acc = 0.0f64;
    for i in 0..k {
        acc += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    acc
}

/// Probability (in log₂) that a single group of size `k` contains fewer than
/// `h` honest servers, when each server is malicious independently with
/// probability `f`:
/// `Σ_{i=0}^{h−1} C(k, i) · (1−f)^i · f^(k−i)`.
pub fn log2_group_failure_probability(k: usize, f: f64, h: usize) -> f64 {
    assert!(
        (0.0..1.0).contains(&f),
        "adversarial fraction must be in [0,1)"
    );
    if h == 0 {
        return f64::NEG_INFINITY;
    }
    if h > k {
        return 0.0; // Certain failure: cannot have h honest servers.
    }
    // Sum in log space for numerical robustness.
    let ln2 = std::f64::consts::LN_2;
    let mut max_term = f64::NEG_INFINITY;
    let mut terms = Vec::with_capacity(h);
    for i in 0..h {
        let term = ln_binomial(k as u64, i as u64)
            + (i as f64) * (1.0 - f).ln()
            + ((k - i) as f64) * f.ln();
        terms.push(term);
        if term > max_term {
            max_term = term;
        }
    }
    let sum: f64 = terms.iter().map(|t| (t - max_term).exp()).sum();
    (max_term + sum.ln()) / ln2
}

/// Probability (in log₂) that *any* of the `G` groups is bad (union bound).
pub fn log2_network_failure_probability(k: usize, params: &GroupSecurityParams) -> f64 {
    (params.num_groups as f64).log2()
        + log2_group_failure_probability(k, params.adversarial_fraction, params.required_honest)
}

/// The minimum group size `k` meeting the security target (Appendix B /
/// Figure 13). Returns `None` if no `k ≤ 4096` suffices.
pub fn required_group_size(params: &GroupSecurityParams) -> Option<usize> {
    (params.required_honest..=4096)
        .find(|&k| log2_network_failure_probability(k, params) < -(params.security_bits as f64))
}

/// A group of servers, identified by indices into the global server list.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Group {
    /// Group id (its index in the permutation network).
    pub id: usize,
    /// Member server indices, in protocol order (position matters for
    /// staggering, §4.7).
    pub members: Vec<usize>,
}

/// Forms `num_groups` groups of `group_size` servers each by sampling from
/// `num_servers` servers using the beacon output `seed` (a stand-in for a
/// public unbiased randomness source [14, 68]).
///
/// Members within a group are distinct; a server may serve in many groups
/// (each server emulates multiple vertices of the permutation network when
/// `N < G·k`). Positions are staggered: the member list of group `g` is
/// rotated by `g` so that a server appearing in several groups tends to
/// occupy different positions, which maximizes pipeline utilization (§4.7).
pub fn form_groups(
    num_servers: usize,
    num_groups: usize,
    group_size: usize,
    seed: u64,
) -> Vec<Group> {
    assert!(group_size <= num_servers, "group larger than server pool");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut groups = Vec::with_capacity(num_groups);
    for id in 0..num_groups {
        // Partial Fisher-Yates to sample `group_size` distinct servers.
        let mut pool: Vec<usize> = (0..num_servers).collect();
        for i in 0..group_size {
            let j = rng.gen_range(i..num_servers);
            pool.swap(i, j);
        }
        let mut members: Vec<usize> = pool[..group_size].to_vec();
        members.rotate_left(id % group_size);
        groups.push(Group { id, members });
    }
    groups
}

/// Forms group `gid` alone, byte-identical to `form_groups(..)[gid]`.
///
/// The beacon rng is shared across groups, so earlier groups' draws must be
/// replayed — but only the draws: each group consumes exactly `group_size`
/// `gen_range` calls whose consumption is independent of the pool contents,
/// so the skip costs `gid × group_size` rng steps and no pool allocations.
/// This is what lets a sharded directory derive (and validate) a single
/// group's membership without forming every group.
pub fn form_group(
    num_servers: usize,
    num_groups: usize,
    group_size: usize,
    seed: u64,
    gid: usize,
) -> Group {
    assert!(group_size <= num_servers, "group larger than server pool");
    assert!(gid < num_groups, "group id out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..gid {
        for i in 0..group_size {
            let _ = rng.gen_range(i..num_servers);
        }
    }
    let mut pool: Vec<usize> = (0..num_servers).collect();
    for i in 0..group_size {
        let j = rng.gen_range(i..num_servers);
        pool.swap(i, j);
    }
    let mut members: Vec<usize> = pool[..group_size].to_vec();
    members.rotate_left(gid % group_size);
    Group { id: gid, members }
}

/// Assigns each group `buddy_count` buddy groups (§4.5): group `g`'s buddies
/// are the next `buddy_count` groups in a seed-derived random cycle, so every
/// group has buddies and no group is its own buddy (when `num_groups > 1`).
pub fn assign_buddies(num_groups: usize, buddy_count: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6275_6464_7969_6573);
    let mut order: Vec<usize> = (0..num_groups).collect();
    for i in (1..num_groups).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let position: Vec<usize> = {
        let mut pos = vec![0; num_groups];
        for (idx, &g) in order.iter().enumerate() {
            pos[g] = idx;
        }
        pos
    };
    (0..num_groups)
        .map(|g| {
            (1..=buddy_count.min(num_groups.saturating_sub(1)))
                .map(|offset| order[(position[g] + offset) % num_groups])
                .collect()
        })
        .collect()
}

/// Per-server statistics of a group assignment: how many groups each server
/// belongs to, and the distribution of positions it occupies.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerLoad {
    /// Number of groups the server is a member of.
    pub group_count: usize,
    /// Positions (0-based) the server occupies across its groups.
    pub positions: Vec<usize>,
}

/// Computes per-server load statistics for a group assignment.
pub fn server_loads(num_servers: usize, groups: &[Group]) -> Vec<ServerLoad> {
    let mut loads = vec![ServerLoad::default(); num_servers];
    for group in groups {
        for (position, &server) in group.members.iter().enumerate() {
            loads[server].group_count += 1;
            loads[server].positions.push(position);
        }
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn form_group_matches_form_groups_entry_for_entry() {
        for (servers, groups, size, seed) in [(8, 4, 3, 0u64), (20, 7, 5, 0xBEAC), (6, 6, 2, 9)] {
            let all = form_groups(servers, groups, size, seed);
            for (gid, reference) in all.iter().enumerate() {
                let alone = form_group(servers, groups, size, seed, gid);
                assert_eq!(alone.id, reference.id, "gid {gid}");
                assert_eq!(alone.members, reference.members, "gid {gid}");
            }
        }
    }

    #[test]
    fn paper_group_size_for_anytrust_is_32() {
        // §4.1: f = 20%, G = 1024, 2⁻⁶⁴ → k = 32.
        let params = GroupSecurityParams::paper_defaults(1);
        assert_eq!(required_group_size(&params), Some(32));
    }

    #[test]
    fn paper_group_size_for_one_fault_is_about_33() {
        // §4.5 reports k ≥ 33 for h = 2. Evaluating the Appendix B union
        // bound exactly gives a value within a couple of servers of that
        // (the paper presumably rounds the tail bound slightly differently);
        // EXPERIMENTS.md records the measured value.
        let params = GroupSecurityParams::paper_defaults(2);
        let k = required_group_size(&params).unwrap();
        assert!((33..=35).contains(&k), "k = {k}");
    }

    #[test]
    fn group_size_grows_with_h() {
        let sizes: Vec<usize> = (1..=20)
            .map(|h| required_group_size(&GroupSecurityParams::paper_defaults(h)).unwrap())
            .collect();
        for pair in sizes.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
        // Figure 13 shows k stays well under 80 for h ≤ 20 at f = 0.2.
        assert!(*sizes.last().unwrap() < 80);
    }

    #[test]
    fn group_size_grows_with_adversarial_fraction() {
        let mut params = GroupSecurityParams::paper_defaults(1);
        let k20 = required_group_size(&params).unwrap();
        params.adversarial_fraction = 0.3;
        let k30 = required_group_size(&params).unwrap();
        assert!(k30 > k20);
    }

    #[test]
    fn failure_probability_decreases_with_k() {
        let f = 0.2;
        let mut previous = 0.0;
        for k in 1..=64 {
            let log_p = log2_group_failure_probability(k, f, 1);
            assert!(log_p <= previous + 1e-9);
            previous = log_p;
        }
        // Exact value for h = 1 is k·log2(f).
        let exact = 32.0 * f.log2();
        assert!((log2_group_failure_probability(32, f, 1) - exact).abs() < 1e-9);
    }

    #[test]
    fn impossible_group_has_certain_failure() {
        assert_eq!(log2_group_failure_probability(3, 0.2, 4), 0.0);
    }

    #[test]
    fn formed_groups_have_distinct_members() {
        let groups = form_groups(64, 32, 8, 7);
        assert_eq!(groups.len(), 32);
        for group in &groups {
            assert_eq!(group.members.len(), 8);
            let mut sorted = group.members.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 8);
            assert!(group.members.iter().all(|&m| m < 64));
        }
    }

    #[test]
    fn group_formation_is_deterministic_in_the_beacon() {
        assert_eq!(form_groups(50, 10, 5, 99), form_groups(50, 10, 5, 99));
        assert_ne!(form_groups(50, 10, 5, 99), form_groups(50, 10, 5, 100));
    }

    #[test]
    fn staggering_spreads_positions() {
        // With as many groups as servers and full-size groups, every server
        // appears in every group; staggering should give it many distinct
        // positions rather than always the same one.
        let groups = form_groups(16, 16, 16, 3);
        let loads = server_loads(16, &groups);
        for load in &loads {
            assert_eq!(load.group_count, 16);
            let mut distinct = load.positions.clone();
            distinct.sort_unstable();
            distinct.dedup();
            assert!(
                distinct.len() > 8,
                "positions too concentrated: {distinct:?}"
            );
        }
    }

    #[test]
    fn buddy_assignment_is_complete_and_irreflexive() {
        let buddies = assign_buddies(32, 2, 5);
        assert_eq!(buddies.len(), 32);
        for (g, list) in buddies.iter().enumerate() {
            assert_eq!(list.len(), 2);
            assert!(!list.contains(&g));
            assert!(list.iter().all(|&b| b < 32));
            assert_ne!(list[0], list[1]);
        }
    }

    #[test]
    fn buddy_assignment_single_group_has_no_buddies() {
        let buddies = assign_buddies(1, 2, 5);
        assert_eq!(buddies, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn server_loads_count_memberships() {
        let groups = vec![
            Group {
                id: 0,
                members: vec![0, 1, 2],
            },
            Group {
                id: 1,
                members: vec![2, 3, 0],
            },
        ];
        let loads = server_loads(4, &groups);
        assert_eq!(loads[0].group_count, 2);
        assert_eq!(loads[1].group_count, 1);
        assert_eq!(loads[2].positions, vec![2, 0]);
        assert_eq!(loads[3].group_count, 1);
    }
}
