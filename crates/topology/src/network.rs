//! Random permutation networks (§3).
//!
//! Atom organizes its (groups of) servers into a layered graph. In every
//! mixing iteration each node shuffles its batch, splits it into β equal
//! sub-batches and forwards one to each of its β neighbours in the next
//! layer. After `T` iterations the composition of the local shuffles is
//! statistically close to a uniform random permutation of all messages.
//!
//! Two topologies from the paper are provided:
//!
//! * [`SquareNetwork`] — Håstad's square-lattice shuffle (ref. \[40\] in the paper): G nodes per
//!   layer, every node connects to every node of the next layer (β = G), and
//!   a constant number of iterations suffices. This is the topology Atom's
//!   evaluation uses (`T = 10`).
//! * [`ButterflyNetwork`] — an iterated butterfly (ref. \[26\] in the paper): β = 2, and
//!   `O(log² G)` iterations are needed.

use serde::{Deserialize, Serialize};

/// A mixing topology: who sends to whom at each iteration.
pub trait Topology {
    /// Number of nodes (groups) per layer.
    fn num_groups(&self) -> usize;
    /// Total number of mixing iterations `T`.
    fn iterations(&self) -> usize;
    /// The branching factor β (number of neighbours per node).
    fn branching_factor(&self) -> usize;
    /// The neighbours that group `group` forwards to after iteration
    /// `iteration` (0-based). The last iteration has no neighbours: its
    /// outputs are the exit batches.
    fn neighbors(&self, group: usize, iteration: usize) -> Vec<usize>;
    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Håstad's square-lattice permutation network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SquareNetwork {
    /// Number of groups per layer.
    pub groups: usize,
    /// Number of mixing iterations (the paper's evaluation uses 10).
    pub iterations: usize,
}

impl SquareNetwork {
    /// Creates a square network; the paper's default depth is `T = 10`.
    pub fn new(groups: usize, iterations: usize) -> Self {
        assert!(groups > 0 && iterations > 0);
        Self { groups, iterations }
    }

    /// The configuration used in the paper's evaluation (§6.2).
    pub fn paper_default(groups: usize) -> Self {
        Self::new(groups, 10)
    }
}

impl Topology for SquareNetwork {
    fn num_groups(&self) -> usize {
        self.groups
    }

    fn iterations(&self) -> usize {
        self.iterations
    }

    fn branching_factor(&self) -> usize {
        self.groups
    }

    fn neighbors(&self, group: usize, iteration: usize) -> Vec<usize> {
        assert!(group < self.groups);
        if iteration + 1 >= self.iterations {
            Vec::new()
        } else {
            (0..self.groups).collect()
        }
    }

    fn name(&self) -> &'static str {
        "square"
    }
}

/// An iterated-butterfly permutation network on `2^dimension` groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ButterflyNetwork {
    /// log₂ of the number of groups.
    pub dimension: u32,
    /// Number of complete butterfly passes (each pass has `dimension`
    /// stages); ref. \[26\] in the paper shows `O(log M)` passes suffice.
    pub passes: usize,
}

impl ButterflyNetwork {
    /// Creates an iterated butterfly over `2^dimension` groups.
    pub fn new(dimension: u32, passes: usize) -> Self {
        assert!(dimension > 0 && passes > 0);
        Self { dimension, passes }
    }

    /// A butterfly sized for `groups` (rounded up to a power of two) with
    /// `log₂(groups)` passes, giving the paper's `O(log² N)` total depth.
    pub fn for_groups(groups: usize) -> Self {
        let dimension = (groups.max(2) as f64).log2().ceil() as u32;
        Self::new(dimension, dimension as usize)
    }
}

impl Topology for ButterflyNetwork {
    fn num_groups(&self) -> usize {
        1 << self.dimension
    }

    fn iterations(&self) -> usize {
        self.dimension as usize * self.passes
    }

    fn branching_factor(&self) -> usize {
        2
    }

    fn neighbors(&self, group: usize, iteration: usize) -> Vec<usize> {
        assert!(group < self.num_groups());
        if iteration + 1 >= self.iterations() {
            return Vec::new();
        }
        // The stage that the *next* iteration's exchange corresponds to.
        let stage = (iteration + 1) % self.dimension as usize;
        let partner = group ^ (1 << stage);
        vec![group, partner]
    }

    fn name(&self) -> &'static str {
        "butterfly"
    }
}

/// How many ciphertexts each group handles per iteration, `C(M, N)`-style
/// accounting from §2.2/§3: `messages / groups` in the square network.
pub fn per_group_load(total_messages: usize, num_groups: usize) -> usize {
    total_messages.div_ceil(num_groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_network_is_fully_connected_until_last_layer() {
        let net = SquareNetwork::paper_default(8);
        assert_eq!(net.iterations(), 10);
        assert_eq!(net.branching_factor(), 8);
        for iteration in 0..9 {
            for group in 0..8 {
                assert_eq!(net.neighbors(group, iteration), (0..8).collect::<Vec<_>>());
            }
        }
        for group in 0..8 {
            assert!(net.neighbors(group, 9).is_empty());
        }
    }

    #[test]
    fn butterfly_network_has_branching_two_and_log_squared_depth() {
        let net = ButterflyNetwork::for_groups(16);
        assert_eq!(net.num_groups(), 16);
        assert_eq!(net.branching_factor(), 2);
        assert_eq!(net.iterations(), 16); // 4 passes × 4 stages.
        for iteration in 0..net.iterations() - 1 {
            for group in 0..16 {
                let neighbors = net.neighbors(group, iteration);
                assert_eq!(neighbors.len(), 2);
                assert!(neighbors.contains(&group));
                let partner = neighbors.iter().find(|&&n| n != group).copied().unwrap();
                assert_eq!((partner ^ group).count_ones(), 1);
            }
        }
    }

    #[test]
    fn butterfly_partners_are_symmetric() {
        let net = ButterflyNetwork::new(3, 3);
        for iteration in 0..net.iterations() - 1 {
            for group in 0..net.num_groups() {
                let partner = net
                    .neighbors(group, iteration)
                    .into_iter()
                    .find(|&n| n != group)
                    .unwrap();
                assert!(net.neighbors(partner, iteration).contains(&group));
            }
        }
    }

    #[test]
    fn per_group_load_matches_paper_accounting() {
        // 2^20 messages over 1024 groups → 1024 ciphertexts per group (§6.1).
        assert_eq!(per_group_load(1 << 20, 1024), 1024);
        assert_eq!(per_group_load(1000, 3), 334);
    }

    #[test]
    fn non_power_of_two_rounds_up() {
        let net = ButterflyNetwork::for_groups(10);
        assert_eq!(net.num_groups(), 16);
    }
}
