//! # atom-topology
//!
//! Permutation-network topologies, anytrust/many-trust group sizing and
//! formation, buddy-group assignment and server staggering for the Rust
//! reproduction of *Atom: Horizontally Scaling Strong Anonymity* (SOSP 2017).
//!
//! * [`network`] — the Håstad square network and the iterated butterfly (§3).
//! * [`groups`] — group-size math from §4.1 / Appendix B, beacon-seeded group
//!   formation, staggering (§4.7) and buddy groups (§4.5).
//! * [`mixing`] — a crypto-free simulation of the permute-split-forward
//!   process used for validation and by the large-scale simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod groups;
pub mod mixing;
pub mod network;

pub use groups::{assign_buddies, form_groups, required_group_size, Group, GroupSecurityParams};
pub use mixing::{outcome_permutation, simulate_mixing, MixOutcome};
pub use network::{ButterflyNetwork, SquareNetwork, Topology};
