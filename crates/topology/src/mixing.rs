//! Abstract (crypto-free) simulation of the permute-split-forward process.
//!
//! This models exactly the message movement of §3 — each node permutes its
//! batch, divides it into β equal sub-batches and forwards them — without any
//! encryption. It is used to validate the permutation-network properties
//! (every message reaches an exit batch exactly once; the induced permutation
//! is well mixed) and by the large-scale simulator to track batch sizes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::network::Topology;

/// Where a message ended up after mixing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExitSlot {
    /// The exit group holding the message.
    pub group: usize,
    /// The position within that group's final batch.
    pub position: usize,
}

/// The result of an abstract mixing run.
#[derive(Clone, Debug)]
pub struct MixOutcome {
    /// For every input message (by index), its exit slot.
    pub exits: Vec<ExitSlot>,
    /// Final batch sizes per group.
    pub batch_sizes: Vec<usize>,
    /// The largest batch any group handled in any iteration (load metric).
    pub max_batch: usize,
}

/// Runs the abstract permute-split-forward process.
///
/// `entry_assignment[m]` is the entry group of message `m`. The process uses
/// the given seed for all local permutations (standing in for the servers'
/// secret shuffles).
pub fn simulate_mixing<T: Topology>(
    topology: &T,
    entry_assignment: &[usize],
    seed: u64,
) -> MixOutcome {
    let groups = topology.num_groups();
    let mut rng = StdRng::seed_from_u64(seed);

    // Current batches: message indices held by each group.
    let mut batches: Vec<Vec<usize>> = vec![Vec::new(); groups];
    for (message, &group) in entry_assignment.iter().enumerate() {
        assert!(group < groups, "entry group out of range");
        batches[group].push(message);
    }

    let mut max_batch = batches.iter().map(Vec::len).max().unwrap_or(0);

    for iteration in 0..topology.iterations() {
        let mut next: Vec<Vec<usize>> = vec![Vec::new(); groups];
        let mut last_layer = false;
        for (group, batch) in batches.iter_mut().enumerate() {
            // Local uniform shuffle.
            for i in (1..batch.len()).rev() {
                let j = rng.gen_range(0..=i);
                batch.swap(i, j);
            }
            let neighbors = topology.neighbors(group, iteration);
            if neighbors.is_empty() {
                // Exit layer: keep the batch.
                last_layer = true;
                next[group] = std::mem::take(batch);
                continue;
            }
            // Divide into (near-)equal sub-batches. Dealing round-robin with
            // a per-group/iteration rotation keeps remainders from always
            // favouring the same neighbours.
            let beta = neighbors.len();
            for (slot, &message) in batch.iter().enumerate() {
                let target = neighbors[(slot + group + iteration) % beta];
                next[target].push(message);
            }
        }
        batches = next;
        max_batch = max_batch.max(batches.iter().map(Vec::len).max().unwrap_or(0));
        if last_layer {
            break;
        }
    }

    let mut exits = vec![
        ExitSlot {
            group: 0,
            position: 0
        };
        entry_assignment.len()
    ];
    for (group, batch) in batches.iter().enumerate() {
        for (position, &message) in batch.iter().enumerate() {
            exits[message] = ExitSlot { group, position };
        }
    }
    MixOutcome {
        exits,
        batch_sizes: batches.iter().map(Vec::len).collect(),
        max_batch,
    }
}

/// Flattens an outcome into a permutation of `0..n`: message index → global
/// output rank (exit groups concatenated in id order).
pub fn outcome_permutation(outcome: &MixOutcome) -> Vec<usize> {
    let mut offsets = vec![0usize; outcome.batch_sizes.len()];
    let mut acc = 0;
    for (group, size) in outcome.batch_sizes.iter().enumerate() {
        offsets[group] = acc;
        acc += size;
    }
    outcome
        .exits
        .iter()
        .map(|slot| offsets[slot.group] + slot.position)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{ButterflyNetwork, SquareNetwork};

    fn round_robin_assignment(messages: usize, groups: usize) -> Vec<usize> {
        (0..messages).map(|m| m % groups).collect()
    }

    #[test]
    fn every_message_exits_exactly_once() {
        let topology = SquareNetwork::paper_default(8);
        let assignment = round_robin_assignment(256, 8);
        let outcome = simulate_mixing(&topology, &assignment, 42);
        assert_eq!(outcome.exits.len(), 256);
        assert_eq!(outcome.batch_sizes.iter().sum::<usize>(), 256);
        let perm = outcome_permutation(&outcome);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..256).collect::<Vec<_>>());
    }

    #[test]
    fn butterfly_also_delivers_everything() {
        let topology = ButterflyNetwork::for_groups(8);
        let assignment = round_robin_assignment(128, 8);
        let outcome = simulate_mixing(&topology, &assignment, 9);
        let perm = outcome_permutation(&outcome);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..128).collect::<Vec<_>>());
    }

    #[test]
    fn square_network_balances_exit_batches() {
        let topology = SquareNetwork::paper_default(16);
        let assignment = round_robin_assignment(1600, 16);
        let outcome = simulate_mixing(&topology, &assignment, 3);
        for &size in &outcome.batch_sizes {
            assert!((90..=110).contains(&size), "unbalanced exit batch: {size}");
        }
    }

    #[test]
    fn different_seeds_give_different_permutations() {
        let topology = SquareNetwork::paper_default(4);
        let assignment = round_robin_assignment(64, 4);
        let a = outcome_permutation(&simulate_mixing(&topology, &assignment, 1));
        let b = outcome_permutation(&simulate_mixing(&topology, &assignment, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn mixing_separates_messages_from_the_same_entry_group() {
        // Messages entering together must not stay together: check that the
        // exit groups of one entry group's messages are spread widely.
        let topology = SquareNetwork::paper_default(8);
        let messages = 800;
        let assignment = round_robin_assignment(messages, 8);
        let outcome = simulate_mixing(&topology, &assignment, 7);

        let mut exit_groups_of_entry0 = [0usize; 8];
        for (message, &entry) in assignment.iter().enumerate() {
            if entry == 0 {
                exit_groups_of_entry0[outcome.exits[message].group] += 1;
            }
        }
        // 100 messages over 8 exit groups: every exit group should see some.
        assert!(exit_groups_of_entry0.iter().all(|&count| count > 0));
        assert!(exit_groups_of_entry0.iter().all(|&count| count < 40));
    }

    #[test]
    fn max_batch_tracks_load() {
        let topology = SquareNetwork::paper_default(4);
        let assignment = round_robin_assignment(400, 4);
        let outcome = simulate_mixing(&topology, &assignment, 5);
        assert!(outcome.max_batch >= 100);
        assert!(outcome.max_batch <= 160);
    }
}
