//! # atom-runtime
//!
//! The parallel group-actor execution engine for the Atom reproduction:
//! anytrust groups run as actors on a scoped worker pool, exchanging
//! serialized sub-batches through [`atom_net::Transport`] envelopes, with
//! **barrier-free pipelined mixing** within a round and **multiple rounds
//! in flight** across rounds. This is the subsystem that lets the
//! reproduction exhibit the paper's headline property — horizontal scaling —
//! instead of executing every group on one thread with a hard barrier
//! between iterations.
//!
//! The engine is transport-generic: [`Engine::run_rounds`] runs every group
//! in-process over an [`atom_net::InMemoryNetwork`], while
//! [`Engine::run_rounds_on`] accepts any [`atom_net::Transport`] plus an
//! [`EngineRole`], so the *same* engine hosts a subset of the groups in
//! each of several OS processes connected by
//! [`atom_net::TcpTransport`] — the multi-process mode the `atom-node`
//! binary (in `atom-bench`) drives. For equal jobs and seeds the
//! coordinator's [`RoundOutput`](atom_core::round::RoundOutput) is
//! byte-identical across transports and process layouts.
//!
//! ## Architecture
//!
//! ```text
//!                         ┌────────────────────────────┐
//!   RoundJob (seed,       │          Engine            │
//!   setup, submissions) ─▶│  task queue + worker pool  │
//!                         └─────┬───────────────┬──────┘
//!             Intake(round)     │               │    Deliver(node)
//!        verify proofs, inject  │               │  drain mailbox, step actor
//!                               ▼               ▼
//!   ┌─────────────┐  wire::encode_mix ┌──────────────────────────┐
//!   │ orchestrator│ ────────────────▶ │   Transport mailboxes    │
//!   │ (node G, on │     envelopes     │  one per group id (0..G) │
//!   │ coordinator)│ ◀──────────────── │  in-memory or TCP frames │
//!   └─────────────┘ wire::encode_exit └──────┬───────────▲───────┘
//!                                            │ drain     │ send
//!                                            ▼           │
//!                              ┌─────────────────────────┴─┐
//!                              │ GroupActor (per round×gid) │
//!                              │  · buffers sub-batches     │
//!                              │  · steps iteration i once  │
//!                              │    all inputs arrived      │
//!                              │  · per-group RNG stream    │
//!                              │  · virtual-clock tracking  │
//!                              └──────────┬─────────────────┘
//!                                         │ Exit frames
//!                                         ▼
//!                       finish_{nizk,trap}_round → RoundReport
//! ```
//!
//! **Pipeline stages.** A round flows through: directory setup (group
//! formation + per-group DKGs — prebuilt, or derived *inside* the run and
//! sharded across processes via [`RoundDirectory::Sharded`]) → submission
//! intake (proof verification, batching) → iteration 0 → … → iteration T−1
//! (exit layer) → exit phase (trap checking / decryption). Every stage is a
//! queue task, so the pool interleaves: group 3 of round 0 can run
//! iteration 4 while group 1 is still on iteration 2, round 1's intake
//! verifies proofs while round 0 mixes, and round 1's DKGs run during
//! round 0's mixing tail. The per-iteration barrier of the sequential
//! driver exists nowhere; a group only waits for *its own* inbound
//! sub-batches.
//!
//! **Determinism.** All round randomness derives from `RoundJob::seed`;
//! each group actor owns the stream `group_stream_seed(master, round, gid)`
//! and batch assembly orders inbound sub-batches by sender id, so scheduling
//! cannot influence output bytes. For equal seeds the engine is
//! byte-equivalent to [`atom_core::round::RoundDriver`] — asserted by the
//! `runtime_equivalence` integration suite.
//!
//! **Accounting.** Sent-side traffic is metered by the transport as
//! envelopes leave a group; the engine reports per-round message and byte
//! counts. Latency is tracked on two models: the barrier model
//! (`RoundTimings::end_to_end`, matching the sequential driver and
//! Fig. 9–11) and the pipelined model (the virtual-clock time of the latest
//! group exit), whose gap quantifies what the barrier costs.
//!
//! ## Example
//!
//! ```
//! use atom_runtime::{Engine, RoundJob, RoundSubmissions};
//! use atom_core::config::AtomConfig;
//! use atom_core::directory::setup_round;
//! use atom_core::message::make_trap_submission;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut config = AtomConfig::test_default();
//! config.message_len = 24;
//! let setup = setup_round(&config, &mut rng).unwrap();
//! let submissions: Vec<_> = ["hello", "world"]
//!     .iter()
//!     .enumerate()
//!     .map(|(i, msg)| {
//!         let gid = i % config.num_groups;
//!         make_trap_submission(
//!             gid,
//!             &setup.groups[gid].public_key,
//!             &setup.trustees.public_key,
//!             config.round,
//!             msg.as_bytes(),
//!             config.message_len,
//!             &mut rng,
//!         )
//!         .unwrap()
//!         .0
//!     })
//!     .collect();
//!
//! let engine = Engine::with_workers(2);
//! let report = engine
//!     .run_round(RoundJob::new(setup, RoundSubmissions::Trap(submissions), 7))
//!     .unwrap();
//! assert_eq!(report.output.plaintexts.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod fault;
pub mod ingress;
pub mod scenarios;
pub mod wire;

pub use engine::{
    new_control_sink, total_traffic, ControlSink, Engine, EngineOptions, EngineRole,
    RoundCompleteHook, RoundDirectory, RoundJob, RoundReport, RoundSubmissions, SubmissionBlock,
    SubmissionSource, ABORT_LABEL, EVICT_LABEL, EXIT_LABEL, MIX_LABEL, REJOIN_LABEL, SETUP_LABEL,
    TELEMETRY_LABEL,
};
pub use fault::{FaultKind, FaultVerdict};
pub use ingress::{
    Admission, AdmissionQueue, IngressOptions, IngressServer, IngressSource, IngressStats,
    TokenBucket,
};
pub use scenarios::{AdversaryReport, ScenarioOptions, ScenarioReport};
