//! Workload scenarios driving the engine end to end.
//!
//! Each scenario builds a deployment, generates submissions, runs the
//! parallel engine and verifies delivery, returning a [`ScenarioReport`]
//! that tests, examples and the throughput harness consume. Covered shapes:
//!
//! * [`microblog`] — multi-round anonymous microblogging (§5.1) with all
//!   rounds in flight at once.
//! * [`dialing`] — Vuvuzela-style dialing (§5.2): sealed caller keys land in
//!   per-recipient mailboxes.
//! * [`server_churn`] — fault-tolerant groups lose a member mid-round and
//!   finish anyway (§4.5).
//! * [`stragglers`] — one slow group; pipelining keeps the other groups
//!   productive and the report exposes barrier vs. pipelined latency.
//! * [`defense_matrix`] — the same workload under both the NIZK and trap
//!   variants.
//! * [`batched_intake`] — chunked parallel submission intake: per-submission
//!   chunks, a single intake task, and the sequential driver must all
//!   produce byte-identical round outputs.
//! * [`tcp_loopback`] — the microblog workload split across two engine
//!   instances talking `TcpTransport` on localhost; the coordinator's round
//!   outputs must be byte-identical to the in-memory run.
//! * [`sharded_loopback`] — the same split, but with
//!   [`RoundDirectory::Sharded`](crate::engine::RoundDirectory) jobs: each
//!   engine instance derives only the DKGs of its hosted groups and learns
//!   the rest from `setup` wire frames; the coordinator's outputs must be
//!   byte-identical to an in-memory run with a prebuilt
//!   [`derive_setup`] directory.
//!
//! The **adversary suite** attacks the same deployments and asserts both
//! halves of the defence: the engine names the attack in its verdict, and a
//! paired healthy control round still clears traffic (the liveness floor an
//! [`AdversaryReport`] records):
//!
//! * [`submission_flood`] — a streamed flood over the intake cap must fail
//!   closed at admission, before a single flood submission materializes.
//! * [`slow_loris`] — a member that drips progress forever resets the stall
//!   detector but cannot stop the round clock: the coordinator's deadline
//!   fires and the [`FaultVerdict`] convicts the member as `Slow`.
//! * [`equivocating_setup`] — a forged sharded-setup frame advertising a
//!   different group key is caught by the directory cross-check, whichever
//!   order the conflicting frames arrive in.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use atom_core::config::{AtomConfig, Defense};
use atom_core::directory::{derive_members, derive_setup, setup_round, RoundSetup};
use atom_core::error::{AtomError, AtomResult, EngineErrorKind};
use atom_core::message::{make_nizk_submission, make_trap_submission};
use atom_core::round::RoundDriver;
use atom_net::{LatencyModel, TcpOptions, TcpTransport, Transport};

use atom_apps::dialing::{make_dial_submission, DialIdentity, Mailboxes};

use crate::engine::{
    Engine, EngineOptions, EngineRole, RoundJob, RoundReport, RoundSubmissions, SubmissionBlock,
    SubmissionSource, SETUP_LABEL,
};
use crate::fault::{FaultKind, FaultVerdict};
use crate::wire;

/// Common knobs for every scenario.
#[derive(Clone, Debug)]
pub struct ScenarioOptions {
    /// Worker threads for the engine.
    pub workers: usize,
    /// Deterministic seed for deployment setup, submissions and mixing.
    pub seed: u64,
    /// Latency model for virtual-clock accounting.
    pub latency: LatencyModel,
}

impl Default for ScenarioOptions {
    fn default() -> Self {
        Self {
            workers: 4,
            seed: 7,
            latency: LatencyModel::Zero,
        }
    }
}

impl ScenarioOptions {
    /// Options with an explicit seed, every other knob at its default.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// The scenario's deterministic RNG. Every scenario draws its setup
    /// and submissions from this one constructor, so two scenarios handed
    /// equal options can never silently diverge on seeding.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    /// The shared small-deployment config: `groups` groups of the default
    /// test group size, 2 iterations, 32-byte messages, and a beacon seed
    /// derived from the scenario seed. Hoisted here (rather than copied
    /// per scenario) so a knob change reaches every scenario at once.
    pub fn config(&self, defense: Defense, groups: usize, round: u64) -> AtomConfig {
        let mut config = AtomConfig::test_default();
        config.defense = defense;
        config.num_groups = groups;
        config.num_servers = (groups * 2).max(config.group_size);
        config.iterations = 2;
        config.message_len = 32;
        config.round = round;
        config.beacon_seed = self.seed ^ round;
        config
    }

    /// Engine options carrying the scenario's shared knobs. Scenarios that
    /// need more (chunking, caps, deadlines) start from this and override,
    /// so the shared knobs stay shared.
    pub fn engine_options(&self) -> EngineOptions {
        let mut engine_options = EngineOptions::with_workers(self.workers);
        engine_options.latency = self.latency;
        engine_options
    }

    /// An engine over [`engine_options`](Self::engine_options).
    pub fn engine(&self) -> Engine {
        Engine::new(self.engine_options())
    }
}

/// What a scenario did and observed.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Rounds executed.
    pub rounds: usize,
    /// Messages submitted across all rounds.
    pub submitted: usize,
    /// Messages delivered across all rounds.
    pub delivered: usize,
    /// Largest per-round pipelined end-to-end latency.
    pub pipelined_latency: Duration,
    /// Largest per-round barrier-model end-to-end latency
    /// (`RoundTimings::end_to_end`).
    pub barrier_latency: Duration,
    /// Total mixing traffic (messages) through the transport.
    pub mix_messages: u64,
    /// Total mixing traffic (bytes) through the transport.
    pub mix_bytes: u64,
}

impl ScenarioReport {
    fn from_reports(reports: &[RoundReport], submitted: usize) -> Self {
        Self {
            rounds: reports.len(),
            submitted,
            delivered: reports.iter().map(|r| r.output.plaintexts.len()).sum(),
            pipelined_latency: reports
                .iter()
                .map(|r| r.pipelined_latency)
                .max()
                .unwrap_or_default(),
            barrier_latency: reports
                .iter()
                .map(|r| r.output.timings.end_to_end())
                .max()
                .unwrap_or_default(),
            mix_messages: reports.iter().map(|r| r.mix_messages).sum(),
            mix_bytes: reports.iter().map(|r| r.mix_bytes).sum(),
        }
    }
}

fn collect(reports: Vec<AtomResult<RoundReport>>) -> AtomResult<Vec<RoundReport>> {
    reports.into_iter().collect()
}

/// Decodes zero-padded plaintexts into strings for delivery checks.
fn decode_texts(report: &RoundReport) -> Vec<String> {
    let mut texts: Vec<String> = report
        .output
        .plaintexts
        .iter()
        .map(|p| String::from_utf8_lossy(p.split(|&b| b == 0).next().unwrap_or(&[])).into_owned())
        .collect();
    texts.sort();
    texts
}

/// Builds the microblog workload: `rounds` rounds of `posts_per_round`
/// fixed-length posts each, plus the sorted expected texts per round.
/// Shared by [`microblog`] and [`tcp_loopback`], which must execute the
/// identical jobs.
fn microblog_jobs(
    groups: usize,
    posts_per_round: usize,
    rounds: usize,
    options: &ScenarioOptions,
) -> AtomResult<(Vec<RoundJob>, Vec<Vec<String>>)> {
    let mut rng = options.rng();
    let mut jobs = Vec::with_capacity(rounds);
    let mut expected = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let config = options.config(Defense::Trap, groups, round as u64);
        let setup = setup_round(&config, &mut rng)?;
        let posts: Vec<String> = (0..posts_per_round)
            .map(|i| format!("r{round} post {i}"))
            .collect();
        let submissions = posts
            .iter()
            .enumerate()
            .map(|(i, post)| {
                make_trap_submission(
                    i % groups,
                    &setup.groups[i % groups].public_key,
                    &setup.trustees.public_key,
                    config.round,
                    post.as_bytes(),
                    config.message_len,
                    &mut rng,
                )
                .map(|(submission, _)| submission)
            })
            .collect::<AtomResult<Vec<_>>>()?;
        jobs.push(RoundJob::new(
            setup,
            RoundSubmissions::Trap(submissions),
            options.seed.wrapping_add(round as u64),
        ));
        let mut posts_sorted = posts;
        posts_sorted.sort();
        expected.push(posts_sorted);
    }
    Ok((jobs, expected))
}

/// Multi-round anonymous microblogging: `rounds` rounds of `posts_per_round`
/// fixed-length posts each, all rounds in flight at once. Fails if any round
/// aborts or any post is lost.
pub fn microblog(
    groups: usize,
    posts_per_round: usize,
    rounds: usize,
    options: &ScenarioOptions,
) -> AtomResult<ScenarioReport> {
    let (jobs, expected) = microblog_jobs(groups, posts_per_round, rounds, options)?;
    let reports = collect(options.engine().run_rounds(jobs))?;
    for (report, want) in reports.iter().zip(&expected) {
        let got = decode_texts(report);
        if &got != want {
            return Err(AtomError::Malformed(format!(
                "microblog round lost posts: got {got:?}, want {want:?}"
            )));
        }
    }
    Ok(ScenarioReport::from_reports(
        &reports,
        posts_per_round * rounds,
    ))
}

/// Dialing: `callers` users dial distinct callees through one trap round;
/// every sealed caller key must land in the callee's mailbox.
pub fn dialing(
    groups: usize,
    callers: usize,
    options: &ScenarioOptions,
) -> AtomResult<ScenarioReport> {
    let mut rng = options.rng();
    let mut config = options.config(Defense::Trap, groups, 0);
    // Room for `mailbox (2B) ‖ sealed key (32B KEM + 16B tag + 32B key)`.
    config.message_len = 96;
    let setup = setup_round(&config, &mut rng)?;
    // The submission builder wants a driver for setup access; the round
    // itself runs on the engine.
    let driver = RoundDriver::new(setup.clone());
    let mailboxes = (callers * 4).max(8);

    let mut pairs = Vec::with_capacity(callers);
    let mut submissions = Vec::with_capacity(callers);
    for i in 0..callers {
        let caller = DialIdentity::generate(&mut rng);
        let callee = DialIdentity::generate(&mut rng);
        submissions.push(make_dial_submission(
            &driver,
            &caller,
            &callee.keys.public,
            mailboxes,
            i % groups,
            &mut rng,
        )?);
        pairs.push((caller, callee));
    }

    let report = options.engine().run_round(RoundJob::new(
        setup,
        RoundSubmissions::Trap(submissions),
        options.seed,
    ))?;

    let boxes = Mailboxes::from_round(&report.output, mailboxes);
    for (caller, callee) in &pairs {
        let sealed = boxes.check_mailbox(callee);
        if !sealed.contains(&caller.keys.public) {
            return Err(AtomError::Malformed(
                "a dial request missed its mailbox".into(),
            ));
        }
    }
    Ok(ScenarioReport::from_reports(
        std::slice::from_ref(&report),
        callers,
    ))
}

/// Server churn mid-round: fault-tolerant groups (`h = 2`) lose one member
/// while mixing is underway and the round still delivers everything.
pub fn server_churn(
    groups: usize,
    messages: usize,
    options: &ScenarioOptions,
) -> AtomResult<ScenarioReport> {
    let mut rng = options.rng();
    let mut config = options.config(Defense::Trap, groups, 0);
    config.required_honest = 2; // tolerate one failure per group
    let setup = setup_round(&config, &mut rng)?;
    let texts: Vec<String> = (0..messages).map(|i| format!("churn {i}")).collect();
    let submissions = texts
        .iter()
        .enumerate()
        .map(|(i, text)| {
            make_trap_submission(
                i % groups,
                &setup.groups[i % groups].public_key,
                &setup.trustees.public_key,
                config.round,
                text.as_bytes(),
                config.message_len,
                &mut rng,
            )
            .map(|(submission, _)| submission)
        })
        .collect::<AtomResult<Vec<_>>>()?;

    // A member of group 0 dies between iterations 0 and 1.
    let victim = setup.groups[0].members[0];
    let mut job = RoundJob::new(setup, RoundSubmissions::Trap(submissions), options.seed);
    job.churn = vec![(1, victim)];

    let report = options.engine().run_round(job)?;
    let got = decode_texts(&report);
    let mut want = texts;
    want.sort();
    if got != want {
        return Err(AtomError::Malformed(format!(
            "churn round lost messages: got {got:?}, want {want:?}"
        )));
    }
    Ok(ScenarioReport::from_reports(
        std::slice::from_ref(&report),
        messages,
    ))
}

/// One group is `delay` slower per iteration than the rest. Delivery must
/// be unaffected; the report's pipelined latency shows the straggler's cost
/// without a per-iteration barrier.
pub fn stragglers(
    groups: usize,
    messages: usize,
    delay: Duration,
    options: &ScenarioOptions,
) -> AtomResult<ScenarioReport> {
    let mut rng = options.rng();
    let config = options.config(Defense::Trap, groups, 0);
    let setup = setup_round(&config, &mut rng)?;
    let texts: Vec<String> = (0..messages).map(|i| format!("slow {i}")).collect();
    let submissions = texts
        .iter()
        .enumerate()
        .map(|(i, text)| {
            make_trap_submission(
                i % groups,
                &setup.groups[i % groups].public_key,
                &setup.trustees.public_key,
                config.round,
                text.as_bytes(),
                config.message_len,
                &mut rng,
            )
            .map(|(submission, _)| submission)
        })
        .collect::<AtomResult<Vec<_>>>()?;

    let mut engine_options = options.engine_options();
    engine_options.stragglers = vec![(0, delay)];
    let report = Engine::new(engine_options).run_round(RoundJob::new(
        setup,
        RoundSubmissions::Trap(submissions),
        options.seed,
    ))?;

    let got = decode_texts(&report);
    let mut want = texts;
    want.sort();
    if got != want {
        return Err(AtomError::Malformed("straggler round lost messages".into()));
    }
    Ok(ScenarioReport::from_reports(
        std::slice::from_ref(&report),
        messages,
    ))
}

/// Chunked-intake equivalence: the same NIZK-variant round executed with
/// per-submission intake chunks, with one monolithic intake task, and on the
/// sequential [`RoundDriver`] must produce byte-identical outputs — chunking
/// only changes *where* proof verification runs, never what the round says.
pub fn batched_intake(
    groups: usize,
    messages: usize,
    options: &ScenarioOptions,
) -> AtomResult<ScenarioReport> {
    let mut rng = options.rng();
    let config = options.config(Defense::Nizk, groups, 0);
    let setup = setup_round(&config, &mut rng)?;
    let submissions = (0..messages)
        .map(|i| {
            make_nizk_submission(
                i % groups,
                &setup.groups[i % groups].public_key,
                format!("intake {i}").as_bytes(),
                config.message_len,
                &mut rng,
            )
            .map(|(submission, _)| submission)
        })
        .collect::<AtomResult<Vec<_>>>()?;

    let run = |intake_chunk: usize| -> AtomResult<RoundReport> {
        let mut engine_options = options.engine_options();
        engine_options.intake_chunk = intake_chunk;
        Engine::new(engine_options).run_round(RoundJob::new(
            setup.clone(),
            RoundSubmissions::Nizk(submissions.clone()),
            options.seed,
        ))
    };
    let chunked = run(1)?;
    let single = run(usize::MAX)?;

    let driver = RoundDriver::new(setup.clone());
    let mut driver_rng = options.rng();
    let sequential = driver.run_nizk_round(&submissions, &mut driver_rng)?;

    for (label, output) in [("single-task", &single.output), ("sequential", &sequential)] {
        if chunked.output.plaintexts != output.plaintexts
            || chunked.output.per_group != output.per_group
            || chunked.output.routed_ciphertexts != output.routed_ciphertexts
        {
            return Err(AtomError::Malformed(format!(
                "chunked intake diverged from the {label} round"
            )));
        }
    }
    Ok(ScenarioReport::from_reports(
        std::slice::from_ref(&chunked),
        messages,
    ))
}

/// TCP loopback equivalence: the microblog workload executed once
/// in-process over `InMemoryNetwork` and once split across two engine
/// instances talking [`TcpTransport`] on localhost (run as threads here;
/// the `atom-node` binary in `atom-bench` covers separate OS processes).
/// The coordinator hosts the even group ids, the member the odd ones. The
/// coordinator's `RoundOutput`s must be **byte-identical** to the
/// in-memory run's; returns the TCP run's report.
pub fn tcp_loopback(
    groups: usize,
    posts_per_round: usize,
    rounds: usize,
    options: &ScenarioOptions,
) -> AtomResult<ScenarioReport> {
    let (jobs, _) = microblog_jobs(groups, posts_per_round, rounds, options)?;
    let reference = collect(options.engine().run_rounds(jobs.clone()))?;
    let reports = run_loopback_split(groups, jobs.clone(), jobs, options)?;
    check_against_reference(&reports, &reference, "tcp")?;
    Ok(ScenarioReport::from_reports(
        &reports,
        posts_per_round * rounds,
    ))
}

/// Sharded-directory TCP loopback equivalence: the microblog workload as
/// [`RoundDirectory::Sharded`](crate::RoundDirectory::Sharded) jobs split
/// across two engine instances on localhost. Each instance runs **only the
/// DKGs of its hosted groups** and learns the rest from `setup` wire
/// frames, yet the coordinator's `RoundOutput`s must be **byte-identical**
/// to an in-memory run whose directory was derived monolithically up front
/// ([`derive_setup`]). Also asserts the coordinator actually reported a
/// non-zero setup latency. Returns the sharded TCP run's report.
pub fn sharded_loopback(
    groups: usize,
    posts_per_round: usize,
    rounds: usize,
    options: &ScenarioOptions,
) -> AtomResult<ScenarioReport> {
    let (full_jobs, sharded_jobs) =
        sharded_microblog_jobs(groups, posts_per_round, rounds, options)?;
    let reference = collect(options.engine().run_rounds(full_jobs))?;
    // Members never run intake, so their copy of the jobs carries no
    // submissions — the same contract `atom-node --sharded` ships.
    let member_jobs: Vec<RoundJob> = sharded_jobs
        .iter()
        .map(|job| {
            RoundJob::sharded(
                job.config().clone(),
                RoundSubmissions::Trap(Vec::new()),
                job.seed,
            )
        })
        .collect();
    let reports = run_loopback_split(groups, sharded_jobs, member_jobs, options)?;
    check_against_reference(&reports, &reference, "sharded")?;
    for (round, report) in reports.iter().enumerate() {
        if report.setup_latency.is_zero() {
            return Err(AtomError::Malformed(format!(
                "sharded round {round} reported no setup latency"
            )));
        }
    }
    Ok(ScenarioReport::from_reports(
        &reports,
        posts_per_round * rounds,
    ))
}

/// The microblog workload twice over: once with prebuilt
/// [`derive_setup`]-based directories (the monolithic reference) and once
/// as sharded jobs over the identical configs, submissions and seeds.
/// Returns `(full, sharded)`.
fn sharded_microblog_jobs(
    groups: usize,
    posts_per_round: usize,
    rounds: usize,
    options: &ScenarioOptions,
) -> AtomResult<(Vec<RoundJob>, Vec<RoundJob>)> {
    let mut rng = options.rng();
    let mut full = Vec::with_capacity(rounds);
    let mut sharded = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let config = options.config(Defense::Trap, groups, round as u64);
        let setup = derive_setup(&config)?;
        let posts: Vec<String> = (0..posts_per_round)
            .map(|i| format!("r{round} sharded post {i}"))
            .collect();
        let submissions = posts
            .iter()
            .enumerate()
            .map(|(i, post)| {
                make_trap_submission(
                    i % groups,
                    &setup.groups[i % groups].public_key,
                    &setup.trustees.public_key,
                    config.round,
                    post.as_bytes(),
                    config.message_len,
                    &mut rng,
                )
                .map(|(submission, _)| submission)
            })
            .collect::<AtomResult<Vec<_>>>()?;
        let seed = options.seed.wrapping_add(round as u64);
        full.push(RoundJob::new(
            setup,
            RoundSubmissions::Trap(submissions.clone()),
            seed,
        ));
        sharded.push(RoundJob::sharded(
            config,
            RoundSubmissions::Trap(submissions),
            seed,
        ));
    }
    Ok((full, sharded))
}

/// Runs `coordinator_jobs`/`member_jobs` split across two engine instances
/// talking `TcpTransport` on localhost — even gids (and the orchestrator)
/// on the coordinator, odd gids on the member — and returns the
/// coordinator's reports. Both listeners bind free ports and exchange the
/// resolved addresses afterwards, so concurrent tests cannot race on ports.
fn run_loopback_split(
    groups: usize,
    coordinator_jobs: Vec<RoundJob>,
    member_jobs: Vec<RoundJob>,
    options: &ScenarioOptions,
) -> AtomResult<Vec<RoundReport>> {
    let (coordinator_results, member_results) = run_loopback_split_raw(
        groups,
        coordinator_jobs,
        member_jobs,
        options.engine_options(),
        options.engine_options(),
        |_| {},
    )?;
    member_results.into_iter().collect::<AtomResult<Vec<_>>>()?;
    collect(coordinator_results)
}

/// Per-round results of one side of a split run, failures kept in place.
type RawRoundResults = Vec<AtomResult<RoundReport>>;

/// The raw two-instance split: like [`run_loopback_split`], but with
/// per-side engine options (adversary scenarios slow one side down or arm
/// the other side's deadline), an `inject` hook that may push forged wire
/// frames through the member's transport before either engine starts, and
/// the per-round results returned raw — a coordinator round that *fails* is
/// the observation adversary scenarios exist to capture, not an early exit.
fn run_loopback_split_raw(
    groups: usize,
    coordinator_jobs: Vec<RoundJob>,
    member_jobs: Vec<RoundJob>,
    coordinator_options: EngineOptions,
    member_options: EngineOptions,
    inject: impl FnOnce(&TcpTransport),
) -> AtomResult<(RawRoundResults, RawRoundResults)> {
    let net_error = |what: &str, error: std::io::Error| {
        AtomError::Malformed(format!("tcp loopback scenario: {what}: {error}"))
    };
    let mut owner: Vec<usize> = (0..groups).map(|gid| gid % 2).collect();
    owner.push(0);
    let coordinator_net = TcpTransport::bind_any(2, owner.clone(), 0, TcpOptions::default())
        .map_err(|e| net_error("binding coordinator", e))?;
    let member_net = TcpTransport::bind_any(2, owner, 1, TcpOptions::default())
        .map_err(|e| net_error("binding member", e))?;
    coordinator_net.set_peer_addr(1, member_net.local_addr().to_string());
    member_net.set_peer_addr(0, coordinator_net.local_addr().to_string());
    inject(&member_net);

    let hosted_even: Vec<usize> = (0..groups).step_by(2).collect();
    let hosted_odd: Vec<usize> = (1..groups).step_by(2).collect();
    let member_thread = std::thread::spawn(move || {
        Engine::new(member_options).run_rounds_on(
            member_jobs,
            &member_net,
            &EngineRole::member(hosted_odd),
        )
    });
    let coordinator_results = Engine::new(coordinator_options).run_rounds_on(
        coordinator_jobs,
        &coordinator_net,
        &EngineRole::coordinator(hosted_even),
    );
    let member_results = member_thread
        .join()
        .map_err(|_| AtomError::Malformed("tcp loopback member thread panicked".into()))?;
    Ok((coordinator_results, member_results))
}

/// Byte-equality check of the deterministic `RoundOutput` fields against a
/// reference run.
fn check_against_reference(
    reports: &[RoundReport],
    reference: &[RoundReport],
    what: &str,
) -> AtomResult<()> {
    for (round, (got, want)) in reports.iter().zip(reference).enumerate() {
        if got.output.plaintexts != want.output.plaintexts
            || got.output.per_group != want.output.per_group
            || got.output.routed_ciphertexts != want.output.routed_ciphertexts
        {
            return Err(AtomError::Malformed(format!(
                "{what} round {round} diverged from the in-memory run"
            )));
        }
    }
    Ok(())
}

/// The same workload under both defences. Returns `(nizk, trap)` reports;
/// both must deliver everything.
pub fn defense_matrix(
    groups: usize,
    messages: usize,
    options: &ScenarioOptions,
) -> AtomResult<(ScenarioReport, ScenarioReport)> {
    let mut rng = options.rng();

    // NIZK round.
    let nizk_config = options.config(Defense::Nizk, groups, 0);
    let nizk_setup = setup_round(&nizk_config, &mut rng)?;
    let nizk_submissions = (0..messages)
        .map(|i| {
            make_nizk_submission(
                i % groups,
                &nizk_setup.groups[i % groups].public_key,
                format!("both {i}").as_bytes(),
                nizk_config.message_len,
                &mut rng,
            )
            .map(|(submission, _)| submission)
        })
        .collect::<AtomResult<Vec<_>>>()?;

    // Trap round over the same texts.
    let trap_config = options.config(Defense::Trap, groups, 1);
    let trap_setup = setup_round(&trap_config, &mut rng)?;
    let trap_submissions = (0..messages)
        .map(|i| {
            make_trap_submission(
                i % groups,
                &trap_setup.groups[i % groups].public_key,
                &trap_setup.trustees.public_key,
                trap_config.round,
                format!("both {i}").as_bytes(),
                trap_config.message_len,
                &mut rng,
            )
            .map(|(submission, _)| submission)
        })
        .collect::<AtomResult<Vec<_>>>()?;

    let reports = collect(options.engine().run_rounds(vec![
        RoundJob::new(
            nizk_setup,
            RoundSubmissions::Nizk(nizk_submissions),
            options.seed,
        ),
        RoundJob::new(
            trap_setup,
            RoundSubmissions::Trap(trap_submissions),
            options.seed + 1,
        ),
    ]))?;

    let mut want: Vec<String> = (0..messages).map(|i| format!("both {i}")).collect();
    want.sort();
    for report in &reports {
        if decode_texts(report) != want {
            return Err(AtomError::Malformed(
                "a defence variant lost messages".into(),
            ));
        }
    }
    let mut iter = reports.into_iter();
    let nizk = iter.next().expect("nizk report");
    let trap = iter.next().expect("trap report");
    Ok((
        ScenarioReport::from_reports(std::slice::from_ref(&nizk), messages),
        ScenarioReport::from_reports(std::slice::from_ref(&trap), messages),
    ))
}

// ---------------------------------------------------------------------------
// Adversary suite
// ---------------------------------------------------------------------------

/// What an adversary scenario observed: the engine's named verdict on the
/// attacked round, plus a healthy control round under the *same* defensive
/// knobs proving legitimate traffic still flows — the liveness floor.
#[derive(Clone, Debug)]
pub struct AdversaryReport {
    /// Scenario name (`"submission_flood"`, `"slow_loris"`,
    /// `"equivocating_setup"`).
    pub scenario: &'static str,
    /// The engine's diagnosis of the attacked round, verbatim.
    pub verdict: String,
    /// Messages submitted in the healthy control round.
    pub submitted: usize,
    /// Messages delivered by the healthy control round.
    pub delivered: usize,
    /// Wall-clock duration of the healthy control round.
    pub elapsed: Duration,
}

impl AdversaryReport {
    /// Control-round throughput in messages per second — the number a
    /// liveness floor is asserted against.
    pub fn msgs_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            return f64::INFINITY;
        }
        self.delivered as f64 / self.elapsed.as_secs_f64()
    }
}

/// Runs the healthy control round an adversary scenario pairs with its
/// attack: the same deployment shape and the same defensive engine knobs,
/// minus the adversary. Any lost message fails the scenario — an "attack
/// repelled" verdict is worthless if the defence also repels users.
fn control_round(
    scenario: &'static str,
    verdict: String,
    groups: usize,
    messages: usize,
    engine_options: EngineOptions,
    options: &ScenarioOptions,
) -> AtomResult<AdversaryReport> {
    let mut rng = options.rng();
    let config = options.config(Defense::Trap, groups, 1);
    let setup = setup_round(&config, &mut rng)?;
    let submissions = (0..messages)
        .map(|i| {
            make_trap_submission(
                i % groups,
                &setup.groups[i % groups].public_key,
                &setup.trustees.public_key,
                config.round,
                format!("ctrl {i}").as_bytes(),
                config.message_len,
                &mut rng,
            )
            .map(|(submission, _)| submission)
        })
        .collect::<AtomResult<Vec<_>>>()?;
    let started = Instant::now();
    let report = Engine::new(engine_options).run_round(RoundJob::new(
        setup,
        RoundSubmissions::Trap(submissions),
        options.seed,
    ))?;
    let elapsed = started.elapsed();
    let delivered = report.output.plaintexts.len();
    if delivered != messages {
        return Err(AtomError::Malformed(format!(
            "{scenario} control round lost messages: delivered {delivered} of {messages}"
        )));
    }
    Ok(AdversaryReport {
        scenario,
        verdict,
        submitted: messages,
        delivered,
        elapsed,
    })
}

/// A streaming submission source that *counts* every generation request.
/// The flood scenario uses the count as its no-buffering proof: a round
/// rejected at admission must have generated exactly zero submissions.
struct FloodSource {
    setup: Arc<RoundSetup>,
    total: usize,
    seed: u64,
    generated: AtomicUsize,
}

impl SubmissionSource for FloodSource {
    fn total(&self) -> usize {
        self.total
    }

    fn defense(&self) -> Defense {
        Defense::Trap
    }

    fn generate(&self, range: (usize, usize)) -> AtomResult<SubmissionBlock> {
        let (start, end) = range;
        self.generated.fetch_add(end - start, Ordering::SeqCst);
        let groups = self.setup.config.num_groups;
        let mut block = Vec::with_capacity(end - start);
        for index in start..end {
            let mut rng = StdRng::seed_from_u64(self.seed ^ index as u64);
            let gid = index % groups;
            let (submission, _) = make_trap_submission(
                gid,
                &self.setup.groups[gid].public_key,
                &self.setup.trustees.public_key,
                self.setup.config.round,
                format!("flood {index}").as_bytes(),
                self.setup.config.message_len,
                &mut rng,
            )?;
            block.push(submission);
        }
        Ok(SubmissionBlock::Trap(block))
    }
}

/// Submission flood vs. the intake cap: a streamed round offering `flood`
/// submissions against a cap of `cap` must fail closed at admission — a
/// [`ProtocolAbort`](EngineErrorKind::ProtocolAbort) naming the flood and
/// the cap, with **zero** submissions generated (the engine never buffers
/// what it already knows it will reject). The paired control round pushes
/// `cap` legitimate messages through the same capped engine.
pub fn submission_flood(
    groups: usize,
    flood: usize,
    cap: usize,
    options: &ScenarioOptions,
) -> AtomResult<AdversaryReport> {
    if flood <= cap {
        return Err(AtomError::Config(format!(
            "submission_flood wants flood > cap, got {flood} <= {cap}"
        )));
    }
    let mut rng = options.rng();
    let config = options.config(Defense::Trap, groups, 0);
    let setup = setup_round(&config, &mut rng)?;
    let source = Arc::new(FloodSource {
        setup: Arc::new(setup.clone()),
        total: flood,
        seed: options.seed,
        generated: AtomicUsize::new(0),
    });
    let mut engine_options = options.engine_options();
    engine_options.intake_cap = cap;

    let outcome = Engine::new(engine_options.clone()).run_round(RoundJob::new(
        setup,
        RoundSubmissions::Stream(source.clone() as Arc<dyn SubmissionSource>),
        options.seed,
    ));
    let verdict = match outcome {
        Ok(_) => {
            return Err(AtomError::Malformed(format!(
                "flood of {flood} was accepted despite the intake cap of {cap}"
            )))
        }
        Err(AtomError::Engine {
            kind: EngineErrorKind::ProtocolAbort,
            reason,
            ..
        }) => reason,
        Err(other) => {
            return Err(AtomError::Malformed(format!(
                "flood round failed for the wrong reason: {other:?}"
            )))
        }
    };
    if !verdict.contains("submission flood") || !verdict.contains("intake cap") {
        return Err(AtomError::Malformed(format!(
            "flood verdict does not name the attack: {verdict}"
        )));
    }
    let generated = source.generated.load(Ordering::SeqCst);
    if generated != 0 {
        return Err(AtomError::Malformed(format!(
            "the engine materialized {generated} flood submissions before failing closed"
        )));
    }
    control_round(
        "submission_flood",
        verdict,
        groups,
        cap,
        engine_options,
        options,
    )
}

/// Slow-loris member: the member instance of a TCP loopback split delays
/// every mixing iteration of its hosted (odd) groups by `drip` — always
/// making *some* progress, so the stall detector never fires — while the
/// coordinator arms a `deadline` round clock. The round must die with a
/// [`Deadline`](EngineErrorKind::Deadline) verdict implicating the member's
/// groups, and [`FaultVerdict::diagnose`] must convict the member process
/// as [`Slow`](FaultKind::Slow) — the verdict PR 7's recovery loop turns
/// into an eviction. The control round re-runs drip-free under a deadline.
pub fn slow_loris(
    groups: usize,
    posts: usize,
    drip: Duration,
    deadline: Duration,
    options: &ScenarioOptions,
) -> AtomResult<AdversaryReport> {
    if groups < 2 {
        return Err(AtomError::Config(
            "slow_loris wants at least one member-hosted (odd) group".into(),
        ));
    }
    let (jobs, _) = microblog_jobs(groups, posts, 1, options)?;
    let mut member_options = options.engine_options();
    member_options.stragglers = (1..groups).step_by(2).map(|gid| (gid, drip)).collect();
    let mut coordinator_options = options.engine_options();
    coordinator_options.round_deadline = deadline;

    let (coordinator_results, _member_results) = run_loopback_split_raw(
        groups,
        jobs.clone(),
        jobs,
        coordinator_options,
        member_options,
        |_| {},
    )?;
    let error = match coordinator_results.into_iter().next() {
        Some(Err(error)) => error,
        Some(Ok(_)) => {
            return Err(AtomError::Malformed(format!(
                "slow-loris round beat its {deadline:?} deadline despite a {drip:?} drip; \
                 widen the gap between drip and deadline"
            )))
        }
        None => {
            return Err(AtomError::Malformed(
                "slow-loris run produced no round".into(),
            ))
        }
    };
    let AtomError::Engine { kind, reason, .. } = &error else {
        return Err(AtomError::Malformed(format!(
            "slow-loris round failed outside the engine: {error:?}"
        )));
    };
    if *kind != EngineErrorKind::Deadline {
        return Err(AtomError::Malformed(format!(
            "slow-loris round died of {kind}, not the deadline: {reason}"
        )));
    }
    let verdict = reason.clone();

    // The coordinator's ownership map: even gids (and the orchestrator,
    // node `groups`) live on process 0, odd gids on the loris member.
    let mut owners: Vec<usize> = (0..groups).map(|gid| gid % 2).collect();
    owners.push(0);
    let conviction =
        FaultVerdict::diagnose(0, &error, &owners, 0, |_| Vec::new()).ok_or_else(|| {
            AtomError::Malformed(format!(
                "deadline verdict implicated nobody diagnosable: {verdict}"
            ))
        })?;
    if conviction.process != 1 || conviction.kind != FaultKind::Slow {
        return Err(AtomError::Malformed(format!(
            "slow-loris conviction went to process {} as {}, want process 1 as slow",
            conviction.process, conviction.kind
        )));
    }
    // Drip-free, the same deployment must clear a deadline of the same
    // order — armed with headroom so a loaded CI host cannot flake it.
    let mut control_options = options.engine_options();
    control_options.round_deadline = deadline.saturating_mul(100);
    control_round(
        "slow_loris",
        verdict,
        groups,
        posts,
        control_options,
        options,
    )
}

/// Equivocating setup frames: before a sharded loopback round starts, the
/// adversary injects a forged `setup` wire frame for a member-hosted group
/// advertising a *different* group key (here: another group's genuine key,
/// so every field except the key cross-checks clean). Whichever order the
/// forged and genuine frames arrive in, the coordinator's directory
/// cross-check must kill the round naming the conflicting group — it must
/// never pick one frame and mix under an attacker-chosen key.
pub fn equivocating_setup(
    groups: usize,
    posts: usize,
    options: &ScenarioOptions,
) -> AtomResult<AdversaryReport> {
    if groups < 2 {
        return Err(AtomError::Config(
            "equivocating_setup wants at least one member-hosted (odd) group".into(),
        ));
    }
    let (_, sharded_jobs) = sharded_microblog_jobs(groups, posts, 1, options)?;
    let member_jobs: Vec<RoundJob> = sharded_jobs
        .iter()
        .map(|job| {
            RoundJob::sharded(
                job.config().clone(),
                RoundSubmissions::Trap(Vec::new()),
                job.seed,
            )
        })
        .collect();
    let config = sharded_jobs[0].config().clone();
    // The equivocator tells two stories about group 1's key. The forged
    // story passes every public cross-check except the key: membership and
    // threshold are the genuine derived values, and the key is a *valid*
    // group element — group 0's — that simply is not group 1's. The second
    // story carries the genuine key, the one the member must also use to
    // actually participate. Both are injected back-to-back on the same
    // ordered connection, so the coordinator's cross-check meets the
    // conflict deterministically — before intake can misdiagnose the wrong
    // key as a wave of bad user proofs.
    let honest = derive_setup(&config)?;
    let story = |public_key| {
        wire::encode_setup(&wire::SetupFrame {
            round: 0,
            gid: 1,
            members: derive_members(&config, 1).unwrap_or_default(),
            threshold: config.group_threshold(),
            public_key,
        })
    };
    let forged = story(honest.groups[0].public_key);
    let genuine = story(honest.groups[1].public_key);

    let (coordinator_results, _member_results) = run_loopback_split_raw(
        groups,
        sharded_jobs,
        member_jobs,
        options.engine_options(),
        options.engine_options(),
        move |member_net| {
            let _ = member_net.send(1, 0, SETUP_LABEL.into(), forged);
            let _ = member_net.send(1, 0, SETUP_LABEL.into(), genuine);
        },
    )?;
    let error = match coordinator_results.into_iter().next() {
        Some(Err(error)) => error,
        Some(Ok(_)) => {
            return Err(AtomError::Malformed(
                "the coordinator mixed under an equivocated setup frame".into(),
            ))
        }
        None => {
            return Err(AtomError::Malformed(
                "equivocation run produced no round".into(),
            ))
        }
    };
    let verdict = format!("{error}");
    if !verdict.contains("conflicting setup frames for group 1") {
        return Err(AtomError::Malformed(format!(
            "equivocation verdict does not name the conflict: {verdict}"
        )));
    }
    control_round(
        "equivocating_setup",
        verdict,
        groups,
        posts,
        options.engine_options(),
        options,
    )
}
