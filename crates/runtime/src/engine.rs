//! The parallel group-actor execution engine.
//!
//! [`Engine::run_rounds`] executes one or more Atom rounds over a scoped
//! worker pool. Each anytrust group of each round is a
//! [`GroupActor`](atom_core::actor::GroupActor) behind a mutex; workers pull
//! tasks from a shared queue and exchange serialized sub-batches through an
//! [`InMemoryNetwork`] mailbox per group. There is no barrier anywhere:
//!
//! * **Within a round**, a group steps mixing iteration `i + 1` as soon as
//!   all of its inbound sub-batches for `i + 1` have arrived, so fast groups
//!   pipeline ahead of stragglers.
//! * **Across rounds**, every round's submission intake is a set of queue
//!   tasks like any other, so round `r + 1`'s proof verification and entry
//!   mixing overlap round `r`'s tail.
//! * **Within an intake**, a round's submissions split into
//!   [`IntakeChunk`](EngineOptions::intake_chunk)-sized verification tasks,
//!   so proof checking parallelizes across workers inside a single round;
//!   chunk results merge deterministically (in submission order, first
//!   failure wins) before the iteration-0 batches are released.
//!
//! Determinism: all randomness of round `r` derives from
//! `RoundJob::seed` — the master draw mirrors the sequential
//! [`RoundDriver`](atom_core::round::RoundDriver) consuming the first
//! `next_u64` of `StdRng::seed_from_u64(seed)`, and each group actor owns the
//! stream `group_stream_seed(master, round, gid)`. Scheduling therefore
//! cannot influence any byte produced; for equal seeds the engine's
//! [`RoundOutput`] is identical to the sequential driver's.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use atom_core::actor::{ActorConfig, ActorOutput, GroupActor, SOURCE};
use atom_core::adversary::AdversaryPlan;
use atom_core::config::Defense;
use atom_core::directory::RoundSetup;
use atom_core::error::{AtomError, AtomResult};
use atom_core::group::GroupStepOptions;
use atom_core::message::{NizkSubmission, TrapSubmission};
use atom_core::round::{
    collect_round_timings, finish_nizk_round, finish_trap_round, hop_latency,
    verify_nizk_submissions_range, verify_trap_submissions_range, RoundOutput, RoundTimings,
};
use atom_crypto::commit::Commitment;
use atom_crypto::elgamal::MessageCiphertext;
use atom_net::{InMemoryNetwork, LatencyModel, TrafficStats};

use crate::wire;

/// Envelope label of serialized mixing sub-batches (static: no per-message
/// allocation on the hot path).
pub const MIX_LABEL: &str = "atom/mix";

/// Engine-wide execution options.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// Worker threads driving group actors.
    pub workers: usize,
    /// Latency model for inter-group hops (virtual-clock accounting).
    pub latency: LatencyModel,
    /// Intra-group re-encryption threads (see `GroupStepOptions`).
    pub parallelism: usize,
    /// Artificial per-iteration compute delay per group id, used to emulate
    /// slow groups (stragglers) and per-group server hardware.
    pub stragglers: Vec<(usize, Duration)>,
    /// Submissions per intake-verification chunk. A round's intake splits
    /// into `⌈n / intake_chunk⌉` independent queue tasks so proof
    /// verification parallelizes across workers *within* a round; chunk
    /// results merge deterministically before batch release, so the
    /// produced `RoundOutput` is byte-identical for any chunking. `0`
    /// (default) auto-sizes to spread one round's intake evenly across the
    /// worker pool.
    pub intake_chunk: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            latency: LatencyModel::Zero,
            parallelism: 1,
            stragglers: Vec::new(),
            intake_chunk: 0,
        }
    }
}

impl EngineOptions {
    /// Options with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            ..Self::default()
        }
    }
}

/// The submissions of one round.
#[derive(Clone, Debug)]
pub enum RoundSubmissions {
    /// NIZK-variant submissions (§4.3).
    Nizk(Vec<NizkSubmission>),
    /// Trap-variant submissions (§4.4).
    Trap(Vec<TrapSubmission>),
}

/// One round to execute.
#[derive(Clone)]
pub struct RoundJob {
    /// The round's directory setup.
    pub setup: RoundSetup,
    /// User submissions.
    pub submissions: RoundSubmissions,
    /// Seed of all round randomness (equal seeds ⇒ byte-identical output to
    /// `RoundDriver` with `StdRng::seed_from_u64(seed)`).
    pub seed: u64,
    /// Optional active adversary.
    pub adversary: Option<AdversaryPlan>,
    /// Servers failed before the round starts.
    pub failed_servers: Vec<usize>,
    /// Mid-round churn: `(iteration, server)` failures applied as groups
    /// reach `iteration`.
    pub churn: Vec<(usize, usize)>,
}

impl RoundJob {
    /// A job with no adversary, failures or churn.
    pub fn new(setup: RoundSetup, submissions: RoundSubmissions, seed: u64) -> Self {
        Self {
            setup,
            submissions,
            seed,
            adversary: None,
            failed_servers: Vec::new(),
            churn: Vec::new(),
        }
    }
}

/// The result of one engine-executed round.
#[derive(Clone, Debug)]
pub struct RoundReport {
    /// The protocol output, byte-identical to the sequential driver's.
    pub output: RoundOutput,
    /// Pipelined end-to-end latency: the latest group exit on the virtual
    /// clock (arrival-gated, no per-iteration barrier). Compare with
    /// `output.timings.end_to_end()`, the barrier model.
    pub pipelined_latency: Duration,
    /// Wall-clock time from intake to the last exit.
    pub wall_clock: Duration,
    /// Mixing messages this round pushed through the transport.
    pub mix_messages: u64,
    /// Mixing bytes this round pushed through the transport.
    pub mix_bytes: u64,
}

enum Task {
    IntakeChunk { round: usize, chunk: usize },
    Deliver { gid: usize },
}

/// Verified intake of one submission chunk: per-entry-group sub-batches and
/// (trap variant) commitments, covering `IntakeChunk`'s submission range.
struct ChunkIntake {
    batches: Vec<Vec<MessageCiphertext>>,
    commitments: Vec<Vec<Commitment>>,
}

struct IntakeState {
    /// Chunks not yet verified; the worker that takes this to zero merges
    /// and releases the round's iteration-0 batches.
    pending: usize,
    /// Per-chunk verification results, merged in chunk order (so the first
    /// failing submission wins, exactly like the sequential driver).
    results: Vec<Option<AtomResult<ChunkIntake>>>,
}

struct ExitState {
    payloads: Vec<Option<Vec<Vec<u8>>>>,
    exits_done: usize,
    routed: usize,
    commitments: Vec<Vec<Commitment>>,
    started: Option<Instant>,
    pipelined: Duration,
}

struct JobState {
    setup: RoundSetup,
    submissions: RoundSubmissions,
    actors: Vec<Mutex<GroupActor>>,
    /// Submission index ranges of the intake chunks.
    chunks: Vec<(usize, usize)>,
    intake: Mutex<IntakeState>,
    exit: Mutex<ExitState>,
    result: Mutex<Option<AtomResult<RoundReport>>>,
    mix_messages: AtomicU64,
    mix_bytes: AtomicU64,
}

impl JobState {
    fn num_groups(&self) -> usize {
        self.setup.config.num_groups
    }

    fn failed(&self) -> bool {
        matches!(*self.result.lock(), Some(Err(_)))
    }

    fn finalized(&self) -> bool {
        self.result.lock().is_some()
    }
}

struct Shared<'a> {
    jobs: &'a [JobState],
    // The queue/condvar pair uses `std::sync` directly (parking_lot's
    // `Condvar::wait` has a different signature, and keeping the vendored
    // stand-in drop-in-replaceable by the real crate matters more than the
    // fairness benefits here).
    queue: std::sync::Mutex<VecDeque<Task>>,
    ready: std::sync::Condvar,
    pending_jobs: AtomicUsize,
    network: InMemoryNetwork,
    latency: LatencyModel,
    orchestrator: usize,
}

impl Shared<'_> {
    fn queue_lock(&self) -> std::sync::MutexGuard<'_, VecDeque<Task>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn push_task(&self, task: Task) {
        self.queue_lock().push_back(task);
        self.ready.notify_one();
    }

    fn job_done(&self) {
        if self.pending_jobs.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Hold the queue lock while notifying: a worker that observed
            // the old pending count cannot slip into its wait between the
            // decrement and this notification.
            let _guard = self.queue_lock();
            self.ready.notify_all();
        }
    }

    fn fail_job(&self, round: usize, error: AtomError) {
        let job = &self.jobs[round];
        let mut result = job.result.lock();
        if result.is_none() {
            *result = Some(Err(error));
            drop(result);
            self.job_done();
        }
    }

    /// Fails every unresolved round. Used when a worker panics or an
    /// envelope cannot even name its round: continuing would leave waiters
    /// blocked forever, so convert the hang into per-round errors.
    fn fail_all(&self, reason: &str) {
        for round in 0..self.jobs.len() {
            self.fail_job(round, AtomError::Malformed(reason.to_string()));
        }
    }
}

/// The parallel execution engine. See the module docs.
pub struct Engine {
    options: EngineOptions,
}

impl Engine {
    /// An engine with the given options.
    pub fn new(options: EngineOptions) -> Self {
        Self { options }
    }

    /// An engine with default options and `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        Self::new(EngineOptions::with_workers(workers))
    }

    /// The configured options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    fn actor_config(&self, job: &RoundJob, gid: usize) -> ActorConfig {
        let defense = match job.submissions {
            RoundSubmissions::Nizk(_) => Defense::Nizk,
            RoundSubmissions::Trap(_) => Defense::Trap,
        };
        let mut config = ActorConfig::new(GroupStepOptions {
            defense,
            parallelism: self.options.parallelism.max(1),
        });
        config.adversary = job.adversary;
        config.failed_servers = job.failed_servers.clone();
        config.churn = job.churn.clone();
        config.compute_delay = self
            .options
            .stragglers
            .iter()
            .find(|(slow, _)| *slow == gid)
            .map(|(_, delay)| *delay)
            .unwrap_or(Duration::ZERO);
        config
    }

    /// Runs a single round.
    pub fn run_round(&self, job: RoundJob) -> AtomResult<RoundReport> {
        self.run_rounds(vec![job])
            .pop()
            .expect("one result per job")
    }

    /// Runs `jobs` with all rounds in flight at once, returning one result
    /// per job in order.
    pub fn run_rounds(&self, jobs: Vec<RoundJob>) -> Vec<AtomResult<RoundReport>> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let max_groups = jobs
            .iter()
            .map(|job| job.setup.config.num_groups)
            .max()
            .unwrap_or(1);

        let workers = self.options.workers.max(1);
        // Build per-job state up front; actor construction failures (e.g.
        // too many pre-failed servers) resolve the job immediately.
        let mut states: Vec<JobState> = Vec::with_capacity(jobs.len());
        for job in jobs {
            // The master draw mirrors RoundDriver::run_mixing's first use of
            // the caller RNG, keeping seed semantics identical across
            // drivers.
            let master_seed = StdRng::seed_from_u64(job.seed).next_u64();
            let num_groups = job.setup.config.num_groups;
            let mut actors = Vec::with_capacity(num_groups);
            let mut construction_error = None;
            for gid in 0..num_groups {
                match GroupActor::new(&job.setup, gid, master_seed, self.actor_config(&job, gid)) {
                    Ok(actor) => actors.push(Mutex::new(actor)),
                    Err(error) => {
                        construction_error = Some(error);
                        break;
                    }
                }
            }
            let submissions_len = match &job.submissions {
                RoundSubmissions::Nizk(s) => s.len(),
                RoundSubmissions::Trap(s) => s.len(),
            };
            let chunks = chunk_ranges(submissions_len, self.options.intake_chunk, workers);
            let state = JobState {
                intake: Mutex::new(IntakeState {
                    pending: chunks.len(),
                    results: (0..chunks.len()).map(|_| None).collect(),
                }),
                exit: Mutex::new(ExitState {
                    payloads: vec![None; num_groups],
                    exits_done: 0,
                    routed: 0,
                    commitments: Vec::new(),
                    started: None,
                    pipelined: Duration::ZERO,
                }),
                result: Mutex::new(construction_error.map(Err)),
                mix_messages: AtomicU64::new(0),
                mix_bytes: AtomicU64::new(0),
                setup: job.setup,
                submissions: job.submissions,
                actors,
                chunks,
            };
            states.push(state);
        }

        let pending = states.iter().filter(|s| !s.finalized()).count();
        let shared = Shared {
            jobs: &states,
            queue: std::sync::Mutex::new(VecDeque::new()),
            ready: std::sync::Condvar::new(),
            pending_jobs: AtomicUsize::new(pending),
            // One mailbox per group id plus the orchestrator; rounds share
            // mailboxes and are distinguished by the wire header.
            network: InMemoryNetwork::new(max_groups + 1, LatencyModel::Zero, Vec::new()),
            latency: self.options.latency,
            orchestrator: max_groups,
        };
        for (round, state) in states.iter().enumerate() {
            if !state.finalized() {
                let mut queue = shared.queue_lock();
                for chunk in 0..state.chunks.len() {
                    queue.push_back(Task::IntakeChunk { round, chunk });
                }
            }
        }

        if shared.pending_jobs.load(Ordering::SeqCst) > 0 {
            std::thread::scope(|scope| {
                for _ in 0..self.options.workers.max(1) {
                    scope.spawn(|| worker_loop(&shared));
                }
            });
        }

        states
            .into_iter()
            .map(|state| {
                state
                    .result
                    .into_inner()
                    .unwrap_or_else(|| Err(AtomError::Malformed("round never completed".into())))
            })
            .collect()
    }
}

fn worker_loop(shared: &Shared<'_>) {
    loop {
        let task = {
            let mut queue = shared.queue_lock();
            loop {
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                if shared.pending_jobs.load(Ordering::SeqCst) == 0 {
                    return;
                }
                queue = shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // A panicking task (e.g. a poisoned intra-group re-encryption
        // worker) must not strand the other workers in their condvar wait:
        // resolve every open round with an error, then re-raise the panic so
        // the scope surfaces it.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match task {
            Task::IntakeChunk { round, chunk } => run_intake_chunk(shared, round, chunk),
            Task::Deliver { gid } => run_deliver(shared, gid),
        }));
        if let Err(panic) = result {
            shared.fail_all("engine worker panicked; round abandoned");
            std::panic::resume_unwind(panic);
        }
    }
}

/// The submission ranges of a round's intake chunks. `chunk` is the
/// configured submissions-per-chunk (`0` = auto: spread the round evenly
/// over the worker pool). A round with no submissions still gets one
/// (empty) chunk so the release path runs.
fn chunk_ranges(submissions: usize, chunk: usize, workers: usize) -> Vec<(usize, usize)> {
    if submissions == 0 {
        return vec![(0, 0)];
    }
    let size = if chunk > 0 {
        chunk
    } else {
        submissions.div_ceil(workers)
    }
    .max(1);
    (0..submissions)
        .step_by(size)
        .map(|start| (start, start.saturating_add(size).min(submissions)))
        .collect()
}

/// Verifies one intake chunk of a round's submissions; the worker that
/// completes the round's last chunk merges the results and releases the
/// iteration-0 batches ([`finish_intake`]).
fn run_intake_chunk(shared: &Shared<'_>, round: usize, chunk: usize) {
    let job = &shared.jobs[round];
    if job.failed() {
        return;
    }
    {
        let mut exit = job.exit.lock();
        if exit.started.is_none() {
            exit.started = Some(Instant::now());
        }
    }

    let (start, end) = job.chunks[chunk];
    let result = match &job.submissions {
        RoundSubmissions::Nizk(submissions) => {
            verify_nizk_submissions_range(&job.setup, &submissions[start..end], start).map(
                |batches| ChunkIntake {
                    batches,
                    commitments: Vec::new(),
                },
            )
        }
        RoundSubmissions::Trap(submissions) => {
            verify_trap_submissions_range(&job.setup, &submissions[start..end], start).map(
                |intake| ChunkIntake {
                    batches: intake.batches,
                    commitments: intake.commitments,
                },
            )
        }
    };

    let release = {
        let mut intake = job.intake.lock();
        intake.results[chunk] = Some(result);
        intake.pending -= 1;
        intake.pending == 0
    };
    if release {
        finish_intake(shared, round);
    }
}

/// Merges the verified intake chunks in chunk order and injects the
/// iteration-0 batches. Ranges are contiguous and ascending, so the merged
/// per-group batches equal the single-task (and sequential-driver)
/// bucketing byte for byte; the first failed chunk — which contains the
/// lowest-indexed rejected submission — decides the round's error.
fn finish_intake(shared: &Shared<'_>, round: usize) {
    let job = &shared.jobs[round];
    if job.failed() {
        return;
    }
    let results: Vec<AtomResult<ChunkIntake>> = {
        let mut intake = job.intake.lock();
        intake
            .results
            .iter_mut()
            .map(|slot| slot.take().expect("every chunk recorded a result"))
            .collect()
    };

    let num_groups = job.num_groups();
    let mut batches: Vec<Vec<MessageCiphertext>> = vec![Vec::new(); num_groups];
    let mut commitments: Vec<Vec<Commitment>> = vec![Vec::new(); num_groups];
    for result in results {
        match result {
            Ok(chunk) => {
                for (gid, mut sub) in chunk.batches.into_iter().enumerate() {
                    batches[gid].append(&mut sub);
                }
                for (gid, mut sub) in chunk.commitments.into_iter().enumerate() {
                    commitments[gid].append(&mut sub);
                }
            }
            Err(error) => return shared.fail_job(round, error),
        }
    }

    {
        let mut exit = job.exit.lock();
        exit.routed = batches.iter().map(Vec::len).sum();
        exit.commitments = commitments;
    }

    for (gid, batch) in batches.into_iter().enumerate() {
        let payload = wire::encode(round, 0, SOURCE, Duration::ZERO, &batch);
        job.mix_messages.fetch_add(1, Ordering::Relaxed);
        job.mix_bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        shared
            .network
            .send(shared.orchestrator, gid, MIX_LABEL, payload);
        shared.push_task(Task::Deliver { gid });
    }
}

/// The simulated latency of one inter-group hop (shared accounting from
/// `atom_core::round::hop_latency`). Orchestrator injections are free: the
/// submission phase is accounted separately in the paper's figures.
fn inbound_hop(shared: &Shared<'_>, setup: &RoundSetup, from: usize, to: usize) -> Duration {
    if from == SOURCE {
        return Duration::ZERO;
    }
    hop_latency(setup, &shared.latency, from, to)
}

/// Drains a group mailbox and feeds its actor, forwarding whatever the actor
/// emits.
fn run_deliver(shared: &Shared<'_>, gid: usize) {
    for envelope in shared.network.drain(gid) {
        let decoded = match wire::decode(&envelope.payload) {
            Ok(decoded) => decoded,
            Err(error) => {
                // Every envelope on this network is engine-generated, so a
                // decode failure means format skew, not foreign traffic.
                // Dropping it would strand the receiving actor forever;
                // fail the named round (the header's round field survives
                // most corruptions) or, failing that, everything.
                match wire::decode_round(&envelope.payload) {
                    Some(round) if round < shared.jobs.len() => shared.fail_job(round, error),
                    _ => shared.fail_all("undecodable mix envelope"),
                }
                continue;
            }
        };
        let round = decoded.round;
        let Some(job) = shared.jobs.get(round) else {
            shared.fail_all("mix envelope names an unknown round");
            continue;
        };
        if job.failed() {
            continue;
        }

        let arrival = decoded.sent_virtual + inbound_hop(shared, &job.setup, decoded.from, gid);
        let outputs = {
            let mut actor = job.actors[gid].lock();
            actor.note_arrival(decoded.iteration, arrival);
            match actor.on_batch(decoded.iteration, decoded.from, decoded.batch) {
                Ok(outputs) => outputs,
                Err(error) => {
                    shared.fail_job(round, error);
                    continue;
                }
            }
        };

        for output in outputs {
            match output {
                ActorOutput::Forward {
                    iteration,
                    to,
                    batch,
                    sent_virtual,
                } => {
                    let payload = wire::encode(round, iteration, gid, sent_virtual, &batch);
                    job.mix_messages.fetch_add(1, Ordering::Relaxed);
                    job.mix_bytes
                        .fetch_add(payload.len() as u64, Ordering::Relaxed);
                    shared.network.send(gid, to, MIX_LABEL, payload);
                    shared.push_task(Task::Deliver { gid: to });
                }
                ActorOutput::Exit {
                    plaintexts,
                    finished_virtual,
                } => {
                    let complete = {
                        let mut exit = job.exit.lock();
                        if exit.payloads[gid].is_none() {
                            exit.payloads[gid] = Some(plaintexts);
                            exit.exits_done += 1;
                        }
                        exit.pipelined = exit.pipelined.max(finished_virtual);
                        exit.exits_done == job.num_groups()
                    };
                    if complete {
                        finalize_round(shared, round);
                    }
                }
            }
        }
    }
}

/// Collects timings, runs the variant-specific exit phase and resolves the
/// job.
fn finalize_round(shared: &Shared<'_>, round: usize) {
    let job = &shared.jobs[round];

    let mut timings = collect_timings(shared, job);
    let (payloads, routed, commitments, started, pipelined) = {
        let mut exit = job.exit.lock();
        let payloads: Vec<Vec<Vec<u8>>> = exit
            .payloads
            .iter_mut()
            .map(|slot| slot.take().unwrap_or_default())
            .collect();
        (
            payloads,
            exit.routed,
            std::mem::take(&mut exit.commitments),
            exit.started,
            exit.pipelined,
        )
    };
    // Same field semantics as the sequential driver: end-to-end wall time of
    // the in-process round.
    let wall_clock = started.map(|at| at.elapsed()).unwrap_or_default();
    timings.wall_clock = wall_clock;

    let output = match &job.submissions {
        RoundSubmissions::Nizk(_) => finish_nizk_round(payloads, routed, timings),
        RoundSubmissions::Trap(_) => {
            finish_trap_round(&job.setup, &commitments, payloads, routed, timings)
        }
    };

    let report = output.map(|output| RoundReport {
        pipelined_latency: pipelined,
        wall_clock,
        mix_messages: job.mix_messages.load(Ordering::Relaxed),
        mix_bytes: job.mix_bytes.load(Ordering::Relaxed),
        output,
    });

    let mut result = job.result.lock();
    if result.is_none() {
        *result = Some(report);
        drop(result);
        shared.job_done();
    }
}

/// Per-iteration compute critical path from the actors plus the analytic
/// barrier-model network critical path, via the accounting helper shared
/// with the sequential driver.
fn collect_timings(shared: &Shared<'_>, job: &JobState) -> RoundTimings {
    let computes: Vec<Vec<Duration>> = job
        .actors
        .iter()
        .map(|actor| actor.lock().compute_times().to_vec())
        .collect();
    collect_round_timings(&job.setup, &shared.latency, &computes)
}

/// Aggregate transport statistics helper for reports and scenarios.
pub fn total_traffic(reports: &[AtomResult<RoundReport>]) -> TrafficStats {
    let mut total = TrafficStats::default();
    for report in reports.iter().flatten() {
        total.messages += report.mix_messages;
        total.bytes += report.mix_bytes;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_core::config::AtomConfig;
    use atom_core::directory::setup_round;
    use atom_core::message::make_trap_submission;
    use atom_core::round::RoundDriver;

    fn trap_jobs(rounds: usize, seed: u64) -> (Vec<RoundJob>, Vec<Vec<String>>) {
        let mut rng = StdRng::seed_from_u64(77);
        let mut jobs = Vec::new();
        let mut expected = Vec::new();
        for round in 0..rounds {
            let mut config = AtomConfig::test_default();
            config.num_groups = 3;
            config.iterations = 2;
            config.message_len = 24;
            config.round = round as u64;
            let setup = setup_round(&config, &mut rng).unwrap();
            let messages: Vec<String> = (0..4).map(|i| format!("round {round} msg {i}")).collect();
            let submissions: Vec<TrapSubmission> = messages
                .iter()
                .enumerate()
                .map(|(i, message)| {
                    let gid = i % config.num_groups;
                    make_trap_submission(
                        gid,
                        &setup.groups[gid].public_key,
                        &setup.trustees.public_key,
                        config.round,
                        message.as_bytes(),
                        config.message_len,
                        &mut rng,
                    )
                    .unwrap()
                    .0
                })
                .collect();
            jobs.push(RoundJob::new(
                setup,
                RoundSubmissions::Trap(submissions),
                seed + round as u64,
            ));
            expected.push(messages);
        }
        (jobs, expected)
    }

    fn recovered(output: &RoundOutput) -> Vec<String> {
        let mut messages: Vec<String> = output
            .plaintexts
            .iter()
            .map(|p| {
                String::from_utf8(p.iter().copied().take_while(|&b| b != 0).collect()).unwrap()
            })
            .collect();
        messages.sort();
        messages
    }

    #[test]
    fn single_round_delivers_and_matches_sequential_driver() {
        let (jobs, expected) = trap_jobs(1, 1000);
        let sequential = RoundDriver::new(jobs[0].setup.clone());
        let submissions = match &jobs[0].submissions {
            RoundSubmissions::Trap(s) => s.clone(),
            _ => unreachable!(),
        };
        let mut driver_rng = StdRng::seed_from_u64(jobs[0].seed);
        let sequential_output = sequential
            .run_trap_round(&submissions, &mut driver_rng)
            .unwrap();

        let engine = Engine::with_workers(3);
        let report = engine.run_round(jobs.into_iter().next().unwrap()).unwrap();

        let mut want = expected[0].clone();
        want.sort();
        assert_eq!(recovered(&report.output), want);
        // Byte equivalence, not just set equivalence.
        assert_eq!(report.output.plaintexts, sequential_output.plaintexts);
        assert_eq!(report.output.per_group, sequential_output.per_group);
        assert_eq!(
            report.output.routed_ciphertexts,
            sequential_output.routed_ciphertexts
        );
        assert!(report.mix_messages > 0);
        assert!(report.mix_bytes > 0);
    }

    #[test]
    fn multiple_rounds_pipeline_in_one_run() {
        let (jobs, expected) = trap_jobs(3, 2000);
        let engine = Engine::with_workers(4);
        let reports = engine.run_rounds(jobs);
        assert_eq!(reports.len(), 3);
        for (report, want) in reports.into_iter().zip(expected) {
            let report = report.unwrap();
            let mut want = want;
            want.sort();
            assert_eq!(recovered(&report.output), want);
        }
    }

    #[test]
    fn engine_reports_per_round_failures_without_poisoning_others() {
        let (mut jobs, expected) = trap_jobs(2, 3000);
        jobs[0].adversary = Some(AdversaryPlan {
            group: 1,
            member: 1,
            iteration: 0,
            action: atom_core::adversary::Misbehavior::DropMessage { slot: 0 },
        });
        let engine = Engine::with_workers(2);
        let reports = engine.run_rounds(jobs);
        assert!(matches!(reports[0], Err(AtomError::TrapCheckFailed(_))));
        let ok = reports[1].as_ref().unwrap();
        let mut want = expected[1].clone();
        want.sort();
        assert_eq!(recovered(&ok.output), want);
    }

    #[test]
    fn chunk_ranges_cover_contiguously() {
        assert_eq!(chunk_ranges(0, 0, 4), vec![(0, 0)]);
        assert_eq!(chunk_ranges(7, 2, 4), vec![(0, 2), (2, 4), (4, 6), (6, 7)]);
        assert_eq!(chunk_ranges(7, usize::MAX, 4), vec![(0, 7)]);
        // Auto sizing spreads across the worker pool.
        assert_eq!(chunk_ranges(8, 0, 4), vec![(0, 2), (2, 4), (4, 6), (6, 8)]);
        assert_eq!(chunk_ranges(3, 0, 8), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn chunked_intake_output_is_byte_identical_across_chunkings() {
        let (jobs, _) = trap_jobs(1, 6000);
        let job = jobs.into_iter().next().unwrap();
        let mut reference: Option<RoundOutput> = None;
        for chunk in [1usize, 2, 3, usize::MAX] {
            let mut options = EngineOptions::with_workers(3);
            options.intake_chunk = chunk;
            let report = Engine::new(options).run_round(job.clone()).unwrap();
            match &reference {
                None => reference = Some(report.output),
                Some(want) => {
                    assert_eq!(report.output.plaintexts, want.plaintexts, "chunk={chunk}");
                    assert_eq!(report.output.per_group, want.per_group, "chunk={chunk}");
                    assert_eq!(
                        report.output.routed_ciphertexts, want.routed_ciphertexts,
                        "chunk={chunk}"
                    );
                }
            }
        }
    }

    #[test]
    fn chunked_intake_reports_the_same_rejection_as_the_sequential_driver() {
        let (mut jobs, _) = trap_jobs(1, 7000);
        // Rebind submission 2 to another entry group without re-proving: the
        // batch check must fail, fall back, and name submission 2.
        if let RoundSubmissions::Trap(subs) = &mut jobs[0].submissions {
            subs[2].entry_group = (subs[2].entry_group + 1) % 3;
        }
        let submissions = match &jobs[0].submissions {
            RoundSubmissions::Trap(s) => s.clone(),
            _ => unreachable!(),
        };
        let driver = RoundDriver::new(jobs[0].setup.clone());
        let mut driver_rng = StdRng::seed_from_u64(jobs[0].seed);
        let sequential_err = driver
            .run_trap_round(&submissions, &mut driver_rng)
            .unwrap_err();

        for chunk in [1usize, 2, usize::MAX] {
            let mut options = EngineOptions::with_workers(3);
            options.intake_chunk = chunk;
            let err = Engine::new(options).run_round(jobs[0].clone()).unwrap_err();
            assert_eq!(
                format!("{err:?}"),
                format!("{sequential_err:?}"),
                "chunk={chunk}"
            );
        }
    }

    #[test]
    fn nizk_adversary_verdict_matches_sequential_driver() {
        use atom_core::message::make_nizk_submission;

        let mut rng = StdRng::seed_from_u64(88);
        let mut config = AtomConfig::test_default();
        config.defense = atom_core::config::Defense::Nizk;
        config.num_groups = 3;
        config.iterations = 2;
        config.message_len = 24;
        let setup = setup_round(&config, &mut rng).unwrap();
        let submissions: Vec<_> = (0..6)
            .map(|i| {
                let gid = i % config.num_groups;
                make_nizk_submission(
                    gid,
                    &setup.groups[gid].public_key,
                    format!("msg {i}").as_bytes(),
                    config.message_len,
                    &mut rng,
                )
                .unwrap()
                .0
            })
            .collect();
        let plan = AdversaryPlan {
            group: 2,
            member: 3,
            iteration: 1,
            action: atom_core::adversary::Misbehavior::ReplaceMessage { slot: 0 },
        };

        let driver = RoundDriver::new(setup.clone()).with_adversary(plan);
        let mut driver_rng = StdRng::seed_from_u64(4321);
        let sequential_err = driver
            .run_nizk_round(&submissions, &mut driver_rng)
            .unwrap_err();

        let mut job = RoundJob::new(setup, RoundSubmissions::Nizk(submissions), 4321);
        job.adversary = Some(plan);
        let mut options = EngineOptions::with_workers(3);
        options.intake_chunk = 2;
        let engine_err = Engine::new(options).run_round(job).unwrap_err();

        // Batched re-encryption verification must fall back and blame the
        // exact same server for the exact same reason.
        match (&engine_err, &sequential_err) {
            (
                AtomError::ProtocolViolation {
                    group: g1,
                    member: m1,
                    reason: r1,
                },
                AtomError::ProtocolViolation {
                    group: g2,
                    member: m2,
                    reason: r2,
                },
            ) => {
                assert_eq!((g1, m1), (g2, m2));
                assert_eq!(r1, r2);
                assert_eq!(*g1, 2);
                assert_eq!(*m1, Some(3));
            }
            other => panic!("expected matching protocol violations, got {other:?}"),
        }
    }

    #[test]
    fn straggler_group_does_not_block_others() {
        let (jobs, expected) = trap_jobs(1, 4000);
        let mut options = EngineOptions::with_workers(3);
        options.stragglers = vec![(0, Duration::from_millis(30))];
        let engine = Engine::new(options);
        let report = engine.run_round(jobs.into_iter().next().unwrap()).unwrap();
        let mut want = expected[0].clone();
        want.sort();
        assert_eq!(recovered(&report.output), want);
        // The straggler inflates its own iterations; the pipelined latency
        // must track it.
        assert!(report.pipelined_latency >= Duration::from_millis(60));
    }

    #[test]
    fn latency_model_produces_pipelined_latency() {
        let (jobs, _) = trap_jobs(1, 5000);
        let mut options = EngineOptions::with_workers(2);
        options.latency = LatencyModel::Fixed { millis: 40 };
        let engine = Engine::new(options);
        let report = engine.run_round(jobs.into_iter().next().unwrap()).unwrap();
        // Two iterations ⇒ one charged hop layer.
        assert!(report.pipelined_latency >= Duration::from_millis(40));
        assert!(report.output.timings.network_critical_path >= Duration::from_millis(40));
    }
}
