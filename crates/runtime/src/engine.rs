//! The parallel group-actor execution engine.
//!
//! [`Engine::run_rounds`] executes one or more Atom rounds over a scoped
//! worker pool. Each anytrust group of each round is a
//! [`GroupActor`] behind a mutex; workers pull
//! tasks from a shared queue and exchange serialized sub-batches through a
//! [`Transport`] mailbox per group — an [`InMemoryNetwork`] by default, or
//! any other backend (e.g. [`atom_net::TcpTransport`]) via
//! [`Engine::run_rounds_on`], which also lets one engine instance host only
//! a *subset* of the groups so a round spans several OS processes (see
//! [`EngineRole`]). There is no barrier anywhere:
//!
//! * **Within a round**, a group steps mixing iteration `i + 1` as soon as
//!   all of its inbound sub-batches for `i + 1` have arrived, so fast groups
//!   pipeline ahead of stragglers.
//! * **Across rounds**, every round's submission intake is a set of queue
//!   tasks like any other, so round `r + 1`'s proof verification and entry
//!   mixing overlap round `r`'s tail.
//! * **Within an intake**, a round's submissions split into
//!   [`IntakeChunk`](EngineOptions::intake_chunk)-sized verification tasks,
//!   so proof checking parallelizes across workers inside a single round;
//!   chunk results merge deterministically (in submission order, first
//!   failure wins) before the iteration-0 batches are released.
//! * **Before a round**, a [`RoundDirectory::Sharded`] job's directory —
//!   group formation and the per-group DKGs — is itself a set of queue
//!   tasks: each process derives only the DKGs of its hosted groups and
//!   ships the public results to its peers as `setup` wire frames, so round
//!   `r + 1`'s directory work overlaps round `r`'s mixing tail, and adding
//!   processes divides the DKG work instead of replicating it.
//!
//! Determinism: all randomness of round `r` derives from
//! `RoundJob::seed` — the master draw mirrors the sequential
//! [`RoundDriver`](atom_core::round::RoundDriver) consuming the first
//! `next_u64` of `StdRng::seed_from_u64(seed)`, and each group actor owns the
//! stream `group_stream_seed(master, round, gid)`. Scheduling therefore
//! cannot influence any byte produced; for equal seeds the engine's
//! [`RoundOutput`] is identical to the sequential driver's.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use atom_core::actor::{ActorConfig, ActorOutput, GroupActor, SOURCE};
use atom_core::adversary::AdversaryPlan;
use atom_core::config::{AtomConfig, Defense};
use atom_core::directory::{
    derive_buddies, derive_group, derive_members, derive_trustees, GroupContext, RoundSetup,
    TrusteeContext,
};
use atom_core::error::{AtomError, AtomResult, EngineErrorKind};
use atom_core::group::GroupStepOptions;
use atom_core::message::{NizkSubmission, TrapSubmission};
use atom_core::round::{
    collect_round_timings, finish_nizk_round, finish_trap_round, hop_latency,
    verify_nizk_submissions_range, verify_trap_submissions_range, RoundOutput, RoundTimings,
};
use atom_crypto::commit::Commitment;
use atom_crypto::elgamal::{MessageCiphertext, PublicKey};
use atom_crypto::RistrettoPoint;
use curve25519_dalek::traits::Identity;

use atom_net::{InMemoryNetwork, LatencyModel, TrafficStats, Transport};

use crate::wire;
use crate::wire::{ExitFrame, Frame, SetupFrame, TelemetryFrame};

/// Envelope label of serialized mixing sub-batches (static: no per-message
/// allocation on the hot path).
pub const MIX_LABEL: &str = "atom/mix";

/// Envelope label of exit frames (group → orchestrator).
pub const EXIT_LABEL: &str = "atom/exit";

/// Envelope label of abort notifications.
pub const ABORT_LABEL: &str = "atom/abort";

/// Envelope label of sharded-setup directory frames (group → peers).
pub const SETUP_LABEL: &str = "atom/setup";

/// Envelope label of telemetry snapshots (member → orchestrator). Purely
/// observational: only sent while [`atom_obs`] recording is enabled, and
/// never able to alter a round's protocol output.
pub const TELEMETRY_LABEL: &str = "atom/telemetry";

/// Envelope label of eviction verdicts (coordinator → members).
pub const EVICT_LABEL: &str = "atom/evict";

/// Envelope label of rejoin/catch-up handshake frames.
pub const REJOIN_LABEL: &str = "atom/rejoin";

/// Callback invoked with a round index each time that round resolves
/// *successfully* in this process (see
/// [`EngineOptions::on_round_complete`]).
pub type RoundCompleteHook = Arc<dyn Fn(usize) + Send + Sync>;

/// Shared stash for membership-control frames (`evict`, `rejoin`) observed
/// while an engine run is active (see [`EngineOptions::control_sink`]).
pub type ControlSink = Arc<Mutex<Vec<wire::Frame>>>;

/// A fresh, empty [`ControlSink`] — the constructor crates without a
/// `parking_lot` dependency use.
pub fn new_control_sink() -> ControlSink {
    Arc::new(Mutex::new(Vec::new()))
}

/// Engine-wide execution options.
#[derive(Clone)]
pub struct EngineOptions {
    /// Worker threads driving group actors.
    pub workers: usize,
    /// Latency model for inter-group hops (virtual-clock accounting).
    pub latency: LatencyModel,
    /// Intra-group re-encryption threads (see `GroupStepOptions`).
    pub parallelism: usize,
    /// Artificial per-iteration compute delay per group id, used to emulate
    /// slow groups (stragglers) and per-group server hardware.
    pub stragglers: Vec<(usize, Duration)>,
    /// Submissions per intake-verification chunk. A round's intake splits
    /// into `⌈n / intake_chunk⌉` independent queue tasks so proof
    /// verification parallelizes across workers *within* a round; chunk
    /// results merge deterministically before batch release, so the
    /// produced `RoundOutput` is byte-identical for any chunking. `0`
    /// (default) auto-sizes to spread one round's intake evenly across the
    /// worker pool.
    pub intake_chunk: usize,
    /// Stall detector: if rounds are pending, no task is executing and no
    /// task has *finished* for this long, the engine fails every
    /// unresolved round instead of waiting forever. In a single process a
    /// stall is a bug; in a multi-process run it is how a peer process
    /// dying without a word (crash, OOM-kill) surfaces — TCP gives the
    /// survivor no abort frame, only silence. Default 120 s.
    pub stall_timeout: Duration,
    /// Invoked each time a round resolves successfully in this process
    /// (coordinator: the full report is finalized; member: the local stub
    /// resolved). Recovery orchestration uses it for round-indexed fault
    /// scheduling and detection-to-healed-round latency without polling.
    /// Called from worker threads; must not call back into the engine.
    pub on_round_complete: Option<RoundCompleteHook>,
    /// Where `evict`/`rejoin` frames that race into an *active* engine run
    /// are stashed. Membership control is an orchestration-layer concern
    /// that happens *between* engine runs; a control frame arriving mid-run
    /// (e.g. an eviction broadcast overtaking a member's own stall
    /// detection) must neither fail a round as malformed traffic nor be
    /// silently eaten. With no sink configured such frames are counted and
    /// dropped.
    pub control_sink: Option<ControlSink>,
    /// Epoch fence: the wire round id of this run's first job. Protocol
    /// frames go out as `round_offset + job_index` and inbound frames below
    /// the offset are dropped as stale. Recovery orchestration gives each
    /// engine run (epoch) a disjoint id range, so a straggler frame from a
    /// failed epoch can never alias the retry of the same round. `0`
    /// (default) reproduces the historical wire bytes exactly.
    pub round_offset: usize,
    /// Streaming-intake window: at most this many intake chunks are
    /// scheduled (and therefore materialized) at once per round, so a
    /// 10M-submission round holds only `intake_window × intake_chunk`
    /// submissions in memory. Each finishing chunk releases the next, and
    /// chunk results still merge in chunk order, so the produced
    /// `RoundOutput` is byte-identical for any window. `0` (default)
    /// schedules every chunk up front (the historical behaviour).
    pub intake_window: usize,
    /// Hard cap on a round's offered submissions. A round offering more
    /// fails closed at admission — before a single submission is
    /// materialized or verified — with a `ProtocolAbort` diagnosis naming
    /// the flood. `0` (default) disables the cap.
    pub intake_cap: usize,
    /// Wall-clock deadline per round, measured from the coordinator's first
    /// intake work for that round. The stall detector only catches total
    /// silence; a slow-loris peer dripping one frame per stall window keeps
    /// it quiet forever. When a round outlives this deadline it fails with
    /// [`EngineErrorKind::Deadline`] and the usual named stall diagnosis, so
    /// recovery can convict the slow peer. `Duration::ZERO` (default)
    /// disables the deadline.
    pub round_deadline: Duration,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            latency: LatencyModel::Zero,
            parallelism: 1,
            stragglers: Vec::new(),
            intake_chunk: 0,
            stall_timeout: Duration::from_secs(120),
            on_round_complete: None,
            control_sink: None,
            round_offset: 0,
            intake_window: 0,
            intake_cap: 0,
            round_deadline: Duration::ZERO,
        }
    }
}

impl std::fmt::Debug for EngineOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineOptions")
            .field("workers", &self.workers)
            .field("latency", &self.latency)
            .field("parallelism", &self.parallelism)
            .field("stragglers", &self.stragglers)
            .field("intake_chunk", &self.intake_chunk)
            .field("stall_timeout", &self.stall_timeout)
            .field("on_round_complete", &self.on_round_complete.is_some())
            .field("control_sink", &self.control_sink.is_some())
            .field("round_offset", &self.round_offset)
            .field("intake_window", &self.intake_window)
            .field("intake_cap", &self.intake_cap)
            .field("round_deadline", &self.round_deadline)
            .finish()
    }
}

impl EngineOptions {
    /// Options with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            ..Self::default()
        }
    }
}

/// What part a process plays in a (possibly multi-process) engine run.
///
/// Node-id convention on the transport: group `g` owns mailbox `g`, and the
/// round orchestrator owns the transport's **last** node
/// (`transport.nodes() - 1`). The orchestrator's process — the
/// *coordinator* — verifies submission intake, injects the iteration-0
/// batches, collects every group's exit frame and produces the round's
/// [`RoundReport`]. Every process hosts the actors of its `hosted` group
/// ids; a group's mailbox must be local to the process hosting its actor.
#[derive(Clone, Debug)]
pub struct EngineRole {
    /// Group ids whose actors run in this process.
    pub hosted: Vec<usize>,
    /// Whether this process is the coordinator (runs intake, collects
    /// exits, reports results).
    pub coordinator: bool,
}

impl EngineRole {
    /// The classic single-process role: coordinator hosting every group.
    pub fn standalone(num_groups: usize) -> Self {
        Self {
            hosted: (0..num_groups).collect(),
            coordinator: true,
        }
    }

    /// A coordinator hosting `hosted` groups (possibly none).
    pub fn coordinator(hosted: Vec<usize>) -> Self {
        Self {
            hosted,
            coordinator: true,
        }
    }

    /// A non-coordinator member hosting `hosted` groups.
    pub fn member(hosted: Vec<usize>) -> Self {
        Self {
            hosted,
            coordinator: false,
        }
    }

    fn hosts(&self, gid: usize) -> bool {
        self.hosted.contains(&gid)
    }

    /// How many of this role's groups participate in a round of
    /// `num_groups` groups.
    fn hosted_in_round(&self, num_groups: usize) -> usize {
        self.hosted.iter().filter(|&&g| g < num_groups).count()
    }
}

/// A materialized block of submissions, as produced by a
/// [`SubmissionSource`] for one intake chunk.
#[derive(Clone, Debug)]
pub enum SubmissionBlock {
    /// NIZK-variant submissions (§4.3).
    Nizk(Vec<NizkSubmission>),
    /// Trap-variant submissions (§4.4).
    Trap(Vec<TrapSubmission>),
}

impl SubmissionBlock {
    /// Number of submissions in the block.
    pub fn len(&self) -> usize {
        match self {
            SubmissionBlock::Nizk(subs) => subs.len(),
            SubmissionBlock::Trap(subs) => subs.len(),
        }
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A deterministic, range-addressable stream of round submissions.
///
/// The engine never materializes the whole stream: intake pulls one
/// [`SubmissionBlock`] per chunk via [`generate`](Self::generate), bounded
/// by [`EngineOptions::intake_window`], so a 10M-submission round holds
/// only a window in memory. Implementations must be **pure in the range**:
/// `generate(a..b)` followed by `generate(b..c)` yields exactly the
/// submissions `generate(a..c)` would — typically by seeding a per-index
/// RNG from a hash of `(seed, index)` — so the round output is
/// byte-identical to materializing the stream up front, whatever the
/// window or chunking.
pub trait SubmissionSource: Send + Sync {
    /// Total submissions the stream offers this round.
    fn total(&self) -> usize;
    /// Which protocol variant the submissions belong to.
    fn defense(&self) -> Defense;
    /// Materialize the half-open index range `range.0 .. range.1`. The
    /// returned block must match [`defense`](Self::defense) and hold
    /// exactly `range.1 - range.0` submissions.
    fn generate(&self, range: (usize, usize)) -> AtomResult<SubmissionBlock>;
}

/// The submissions of one round.
#[derive(Clone)]
pub enum RoundSubmissions {
    /// NIZK-variant submissions (§4.3), materialized up front.
    Nizk(Vec<NizkSubmission>),
    /// Trap-variant submissions (§4.4), materialized up front.
    Trap(Vec<TrapSubmission>),
    /// A deterministic stream materialized chunk-by-chunk during intake
    /// (see [`SubmissionSource`]).
    Stream(Arc<dyn SubmissionSource>),
}

impl std::fmt::Debug for RoundSubmissions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoundSubmissions::Nizk(subs) => f.debug_tuple("Nizk").field(&subs.len()).finish(),
            RoundSubmissions::Trap(subs) => f.debug_tuple("Trap").field(&subs.len()).finish(),
            RoundSubmissions::Stream(source) => f
                .debug_struct("Stream")
                .field("total", &source.total())
                .field("defense", &source.defense())
                .finish(),
        }
    }
}

impl RoundSubmissions {
    /// Number of submissions the round offers (streams report their total
    /// without materializing anything).
    pub fn len(&self) -> usize {
        match self {
            RoundSubmissions::Nizk(subs) => subs.len(),
            RoundSubmissions::Trap(subs) => subs.len(),
            RoundSubmissions::Stream(source) => source.total(),
        }
    }

    /// Whether the round offers no submissions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The protocol variant of the submissions.
    pub fn defense(&self) -> Defense {
        match self {
            RoundSubmissions::Nizk(_) => Defense::Nizk,
            RoundSubmissions::Trap(_) => Defense::Trap,
            RoundSubmissions::Stream(source) => source.defense(),
        }
    }
}

/// How a round's directory ([`RoundSetup`]) comes to exist in this process.
#[derive(Clone, Debug)]
pub enum RoundDirectory {
    /// The full directory — every group's DKG — was derived (or loaded)
    /// ahead of time, e.g. via [`atom_core::directory::setup_round`] or
    /// [`atom_core::directory::derive_setup`].
    Full(RoundSetup),
    /// Sharded: this process derives **only the DKGs of the groups it
    /// hosts** ([`atom_core::directory::derive_group`], one queue task per
    /// hosted group), ships the public half of each result to its peers as
    /// `setup` wire frames, and assembles the round's directory from its
    /// peers' frames before any of its actors mix. The coordinator
    /// additionally derives the trustee DKG. Because each group's DKG draws
    /// from its own beacon-derived stream, the assembled directory — and
    /// therefore the round's [`RoundOutput`] — is byte-identical to the
    /// monolithic [`derive_setup`](atom_core::directory::derive_setup) of
    /// the same config, whatever the process layout.
    Sharded(AtomConfig),
}

impl RoundDirectory {
    /// The deployment configuration of either variant.
    pub fn config(&self) -> &AtomConfig {
        match self {
            RoundDirectory::Full(setup) => &setup.config,
            RoundDirectory::Sharded(config) => config,
        }
    }
}

/// One round to execute.
#[derive(Clone)]
pub struct RoundJob {
    /// Where the round's directory comes from (prebuilt or sharded).
    pub directory: RoundDirectory,
    /// User submissions.
    pub submissions: RoundSubmissions,
    /// Seed of all round randomness (equal seeds ⇒ byte-identical output to
    /// `RoundDriver` with `StdRng::seed_from_u64(seed)`).
    pub seed: u64,
    /// Optional active adversary.
    pub adversary: Option<AdversaryPlan>,
    /// Servers failed before the round starts.
    pub failed_servers: Vec<usize>,
    /// Mid-round churn: `(iteration, server)` failures applied as groups
    /// reach `iteration`.
    pub churn: Vec<(usize, usize)>,
}

impl RoundJob {
    /// A job with a prebuilt directory and no adversary, failures or churn.
    pub fn new(setup: RoundSetup, submissions: RoundSubmissions, seed: u64) -> Self {
        Self::with_directory(RoundDirectory::Full(setup), submissions, seed)
    }

    /// A job whose directory is derived *inside* the engine run, sharded
    /// across the participating processes (see [`RoundDirectory::Sharded`]).
    /// Only the coordinator's `submissions` are consulted; members may pass
    /// an empty vector of the matching variant.
    pub fn sharded(config: AtomConfig, submissions: RoundSubmissions, seed: u64) -> Self {
        Self::with_directory(RoundDirectory::Sharded(config), submissions, seed)
    }

    fn with_directory(directory: RoundDirectory, submissions: RoundSubmissions, seed: u64) -> Self {
        Self {
            directory,
            submissions,
            seed,
            adversary: None,
            failed_servers: Vec::new(),
            churn: Vec::new(),
        }
    }

    /// The deployment configuration of the round.
    pub fn config(&self) -> &AtomConfig {
        self.directory.config()
    }

    /// The prebuilt directory, if this job carries one.
    pub fn full_setup(&self) -> Option<&RoundSetup> {
        match &self.directory {
            RoundDirectory::Full(setup) => Some(setup),
            RoundDirectory::Sharded(_) => None,
        }
    }
}

/// The result of one engine-executed round.
///
/// The coordinator's report is authoritative: its `output` is the round's
/// protocol output and its traffic counters cover the whole round (intake
/// injections plus every group's forwards, reported in the groups' exit
/// frames). A non-coordinator member resolves each round with a *stub*
/// report — empty `output`, traffic counters covering only its local groups
/// — since the protocol result lives with the coordinator.
#[derive(Clone, Debug)]
pub struct RoundReport {
    /// The protocol output, byte-identical to the sequential driver's.
    pub output: RoundOutput,
    /// Pipelined end-to-end latency: the latest group exit on the virtual
    /// clock (arrival-gated, no per-iteration barrier). Compare with
    /// `output.timings.end_to_end()`, the barrier model.
    pub pipelined_latency: Duration,
    /// Wall-clock time from intake to the last exit.
    pub wall_clock: Duration,
    /// Wall-clock time from engine start until this round's directory was
    /// ready in this process — local DKGs run, every peer's setup frame
    /// received, actors constructed. Always zero for
    /// [`RoundDirectory::Full`] jobs, whose directory predates the engine.
    /// Because setup runs as ordinary queue tasks, later rounds' directory
    /// work overlaps earlier rounds' mixing, so per-round setup latencies
    /// of one run are *not* additive.
    pub setup_latency: Duration,
    /// Mixing messages this round pushed through the transport.
    pub mix_messages: u64,
    /// Mixing bytes this round pushed through the transport.
    pub mix_bytes: u64,
    /// Fleet-wide telemetry for this round, one snapshot per process
    /// (sorted by process index): the coordinator's own spans/counters plus
    /// every member's `telemetry` wire frame. Empty unless
    /// [`atom_obs`] recording was enabled for the run.
    pub telemetry: Vec<atom_obs::Snapshot>,
}

enum Task {
    IntakeChunk {
        round: usize,
        chunk: usize,
    },
    Deliver {
        node: usize,
    },
    /// Derive the DKG of one locally hosted group of a sharded round and
    /// broadcast its public half to every remote mailbox.
    SetupGroup {
        round: usize,
        gid: usize,
    },
    /// Derive the trustee DKG of a sharded round (coordinator only).
    SetupTrustees {
        round: usize,
    },
}

/// Verified intake of one submission chunk: per-entry-group sub-batches and
/// (trap variant) commitments, covering `IntakeChunk`'s submission range.
struct ChunkIntake {
    batches: Vec<Vec<MessageCiphertext>>,
    commitments: Vec<Vec<Commitment>>,
}

struct IntakeState {
    /// Chunks not yet verified; the worker that takes this to zero merges
    /// and releases the round's iteration-0 batches.
    pending: usize,
    /// Per-chunk verification results, merged in chunk order (so the first
    /// failing submission wins, exactly like the sequential driver).
    results: Vec<Option<AtomResult<ChunkIntake>>>,
}

struct ExitState {
    payloads: Vec<Option<Vec<Vec<u8>>>>,
    /// Exit frames the coordinator has collected (counts every group of the
    /// round, local and remote).
    exits_done: usize,
    /// Local actors that reached their exit layer (what a member resolves
    /// its rounds on).
    local_exits: usize,
    routed: usize,
    commitments: Vec<Vec<Commitment>>,
    /// Per-group measured compute times, as reported in exit frames.
    computes: Vec<Vec<Duration>>,
    started: Option<Instant>,
    pipelined: Duration,
    /// Mixing traffic accumulated from the groups' exit frames.
    group_mix_messages: u64,
    group_mix_bytes: u64,
    /// Member telemetry snapshots collected at the orchestrator, at most
    /// one per sending process (duplicates are benign no-ops). While
    /// recording is enabled the round finalizes only once these cover
    /// every remotely hosted group, so the merged report and fleet trace
    /// span all processes.
    telemetry: Vec<TelemetryFrame>,
}

/// What actor construction needs from a [`RoundJob`], retained per round so
/// sharded rounds can build their actors once the directory is assembled.
struct ActorSpec {
    master_seed: u64,
    defense: Defense,
    adversary: Option<AdversaryPlan>,
    failed_servers: Vec<usize>,
    churn: Vec<(usize, usize)>,
}

/// In-flight state of a sharded round's distributed directory derivation.
/// Absent for [`RoundDirectory::Full`] jobs.
struct SetupPhase {
    /// When this process started working toward the round's directory
    /// (engine start; feeds [`RoundReport::setup_latency`]).
    started: Instant,
    /// Hosted groups whose local DKG has not finished yet.
    pending_local: usize,
    /// Remote groups whose setup frame has not arrived yet.
    remote_missing: usize,
    /// Collected contexts: full (with shares) for hosted groups, public-only
    /// for remote ones.
    groups: Vec<Option<GroupContext>>,
    /// The trustee context (coordinator only; derived locally).
    trustees: Option<TrusteeContext>,
    /// Whether completion requires the trustee DKG (iff coordinator).
    need_trustees: bool,
    /// Mix envelopes that arrived before the directory was ready, replayed
    /// in arrival order by `finish_setup`. `(destination gid, envelope)`.
    buffered: Vec<(usize, wire::MixEnvelope)>,
    /// Hard cap on `buffered`: a legitimate round delivers at most
    /// `groups × (1 + groups × iterations)` mix frames in total, so growth
    /// past that is a hostile or broken peer streaming frames while
    /// withholding its setup frames — fail the round instead of buffering
    /// without bound.
    buffer_cap: usize,
    /// Set once `finish_setup` has taken ownership of the collected
    /// contexts: no further frame may mutate this state.
    sealed: bool,
    /// The group public keys the directory was assembled with, recorded at
    /// seal time. Late setup frames are cross-checked against these: an
    /// equivocating peer that lands its forged frame first must still be
    /// caught — and the round killed with the conflict named — when its
    /// genuine frame (or a second forged story) arrives after sealing.
    sealed_keys: Vec<PublicKey>,
    /// Set once actors exist and mixing may proceed.
    ready: bool,
}

impl SetupPhase {
    fn complete(&self) -> bool {
        self.pending_local == 0
            && self.remote_missing == 0
            && (!self.need_trustees || self.trustees.is_some())
    }
}

struct JobState {
    config: AtomConfig,
    /// The round's directory. Set at construction for prebuilt jobs, by
    /// `finish_setup` for sharded ones; reads outside the setup phase go
    /// through [`JobState::round_setup`].
    setup: OnceLock<RoundSetup>,
    /// Sharded-setup progress (`None` for prebuilt directories).
    phase: Option<Mutex<SetupPhase>>,
    /// Wall-clock cost of the setup phase, for the round report.
    setup_latency: Mutex<Duration>,
    actor_spec: ActorSpec,
    submissions: RoundSubmissions,
    /// One lazily initialized slot per group id; never set for groups
    /// hosted by another process.
    actors: Vec<OnceLock<Mutex<GroupActor>>>,
    /// Submission index ranges of the intake chunks.
    chunks: Vec<(usize, usize)>,
    intake: Mutex<IntakeState>,
    /// Next intake chunk index to schedule under the streaming window
    /// ([`EngineOptions::intake_window`]): each finishing chunk fetch-adds
    /// here and enqueues the claimed index, keeping at most `window` chunks
    /// in flight. Starts at `chunks.len()` when the window is unbounded so
    /// the fetch-add finds nothing left to schedule.
    next_chunk: AtomicUsize,
    /// Submissions currently materialized by in-flight streaming chunks
    /// (feeds the `engine.intake.peak_in_flight` gauge).
    stream_in_flight: AtomicUsize,
    exit: Mutex<ExitState>,
    result: Mutex<Option<AtomResult<RoundReport>>>,
    /// Iteration-0 injections by the local intake (coordinator only).
    intake_mix_messages: AtomicU64,
    intake_mix_bytes: AtomicU64,
    /// Forward traffic per locally hosted group, shipped to the
    /// coordinator in the group's exit frame.
    group_mix: Vec<(AtomicU64, AtomicU64)>,
}

impl JobState {
    fn num_groups(&self) -> usize {
        self.config.num_groups
    }

    /// The assembled directory. Panics if called before the setup phase
    /// completed — callers are only reachable once `SetupPhase::ready`
    /// (or for prebuilt jobs, always).
    fn round_setup(&self) -> &RoundSetup {
        self.setup.get().expect("round directory not assembled yet")
    }

    fn failed(&self) -> bool {
        matches!(*self.result.lock(), Some(Err(_)))
    }

    fn finalized(&self) -> bool {
        self.result.lock().is_some()
    }
}

/// The queue/condvar trio workers and the transport delivery hook share.
/// `Arc`ed (not borrowed) because the hook handed to the transport must be
/// `'static`. Uses `std::sync` directly: parking_lot's `Condvar::wait` has
/// a different signature, and keeping the vendored stand-in
/// drop-in-replaceable by the real crate matters more than the fairness
/// benefits here.
struct Scheduler {
    queue: std::sync::Mutex<VecDeque<Task>>,
    ready: std::sync::Condvar,
    pending_jobs: AtomicUsize,
    /// Tasks currently being executed by a worker. Feeds the stall
    /// detector: a long-running healthy task must not look like a stall to
    /// the idle workers.
    executing: AtomicUsize,
    /// When a worker last finished a task (stall detector's clock).
    last_progress: Mutex<Instant>,
}

impl Scheduler {
    fn queue_lock(&self) -> std::sync::MutexGuard<'_, VecDeque<Task>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn push_task(&self, task: Task) {
        self.queue_lock().push_back(task);
        self.ready.notify_one();
    }
}

struct Shared<'a> {
    jobs: &'a [JobState],
    sched: Arc<Scheduler>,
    transport: &'a dyn Transport,
    latency: LatencyModel,
    orchestrator: usize,
    role: &'a EngineRole,
    options: &'a EngineOptions,
}

impl Shared<'_> {
    /// The wire round id of local job index `round` (see
    /// [`EngineOptions::round_offset`]).
    fn wire_round(&self, round: usize) -> usize {
        round + self.options.round_offset
    }

    /// Maps an inbound wire round id back to a local job index. `None`
    /// means the frame predates this run's id range — a stale frame from an
    /// earlier recovery epoch, to be fenced off rather than misdelivered to
    /// whatever round currently reuses the low indices.
    fn job_index(&self, wire_round: usize) -> Option<usize> {
        wire_round.checked_sub(self.options.round_offset)
    }

    fn job_done(&self) {
        if self.sched.pending_jobs.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Hold the queue lock while notifying: a worker that observed
            // the old pending count cannot slip into its wait between the
            // decrement and this notification.
            let _guard = self.sched.queue_lock();
            self.sched.ready.notify_all();
        }
    }

    fn fail_job(&self, round: usize, error: AtomError) {
        let reason = format!("{error:?}");
        let job = &self.jobs[round];
        let newly_failed = {
            let mut result = job.result.lock();
            if result.is_none() {
                *result = Some(Err(error));
                true
            } else {
                false
            }
        };
        if newly_failed {
            self.job_done();
            self.broadcast_abort(round, &reason);
        }
    }

    /// Tells the other processes of a multi-process run that `round` died,
    /// so none of them waits forever on batches that will never come. The
    /// coordinator fans out to every remote group; a member informs the
    /// coordinator (which then fans out). Single-process runs have no
    /// remote nodes and send nothing. Best-effort: a peer that already
    /// vanished must not take down our remaining rounds.
    fn broadcast_abort(&self, round: usize, reason: &str) {
        let targets: Vec<usize> = if self.role.coordinator {
            (0..self.orchestrator)
                .filter(|&node| !self.transport.is_local(node))
                .collect()
        } else if !self.transport.is_local(self.orchestrator) {
            vec![self.orchestrator]
        } else {
            Vec::new()
        };
        if targets.is_empty() {
            return;
        }
        let from = if self.role.coordinator {
            self.orchestrator
        } else {
            self.role.hosted.first().copied().unwrap_or(0)
        };
        let payload = wire::encode_abort(self.wire_round(round), reason);
        for node in targets {
            let send = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.transport
                    .send(from, node, ABORT_LABEL.into(), payload.clone());
            }));
            if send.is_err() {
                eprintln!("atom-runtime: abort notification to node {node} failed");
            }
        }
    }

    /// Fails every unresolved round. Used when a worker panics or an
    /// envelope cannot even name its round: continuing would leave waiters
    /// blocked forever, so convert the hang into per-round errors.
    fn fail_all(&self, reason: &str) {
        for round in 0..self.jobs.len() {
            self.fail_job(round, AtomError::Malformed(reason.to_string()));
        }
    }

    /// Sends a protocol frame on behalf of `round`, converting a transport
    /// panic — an unreachable or vanished peer process: connect failure,
    /// reset stream — into a failure of that round instead of letting the
    /// panic tear down the whole engine scope. With several remote peers,
    /// one dead process must surface as per-round errors on the survivors,
    /// not as a crash. Returns whether the send succeeded.
    fn send_for_round(
        &self,
        round: usize,
        from: usize,
        to: usize,
        label: &'static str,
        payload: Vec<u8>,
    ) -> bool {
        let send = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.transport.send(from, to, label.into(), payload);
        }));
        if send.is_ok() {
            return true;
        }
        self.fail_job(
            round,
            AtomError::Engine {
                kind: EngineErrorKind::TransportLost,
                reason: format!("send {from} -> {to} ({label}) failed: peer process unreachable"),
                nodes: vec![to],
            },
        );
        false
    }

    /// Fails every unresolved round with a stall diagnosis naming exactly
    /// what the round is still waiting for. With more than one remote peer,
    /// "which groups never reported" is what maps a silent stall back to
    /// the process (and machine) that died.
    fn fail_stalled(&self, elapsed: Duration) {
        for (round, job) in self.jobs.iter().enumerate() {
            if job.finalized() {
                continue;
            }
            let (detail, missing) = self.stall_detail(job);
            // The diagnosis goes into the trace timeline too, so a traced
            // run shows *where* the round was stuck next to the spans of
            // the work that did complete — not only on stderr.
            atom_obs::note("stall", round as u32, &detail);
            self.fail_job(
                round,
                AtomError::Engine {
                    kind: EngineErrorKind::Stall,
                    reason: format!(
                        "engine stalled: no task progress for {elapsed:?} (remote peer \
                         lost?); round {round} {detail}"
                    ),
                    nodes: missing,
                },
            );
        }
    }

    /// Remaining time until the earliest round-deadline expiry among
    /// unresolved rounds whose clock is running, or `None` when nothing has
    /// started yet. `Some(ZERO)` means a deadline already passed.
    fn nearest_deadline(&self, deadline: Duration) -> Option<Duration> {
        self.jobs
            .iter()
            .filter(|job| !job.finalized())
            .filter_map(|job| job.exit.lock().started)
            .map(|started| deadline.saturating_sub(started.elapsed()))
            .min()
    }

    /// Fails every unresolved round whose wall clock outlived the
    /// configured per-round deadline, with the same named diagnosis a
    /// stall would get. This is the slow-loris countermeasure: a peer
    /// dripping one frame per stall window resets the stall detector
    /// forever, but it cannot stop the round clock.
    fn fail_deadlined(&self, deadline: Duration) {
        for (round, job) in self.jobs.iter().enumerate() {
            if job.finalized() {
                continue;
            }
            let Some(started) = job.exit.lock().started else {
                continue;
            };
            let elapsed = started.elapsed();
            if elapsed < deadline {
                continue;
            }
            let (detail, missing) = self.stall_detail(job);
            atom_obs::note("deadline", round as u32, &detail);
            self.fail_job(
                round,
                AtomError::Engine {
                    kind: EngineErrorKind::Deadline,
                    reason: format!(
                        "round {round} outlived its {deadline:?} deadline ({elapsed:?} \
                         elapsed): progress kept trickling in — slow-loris peer? — but \
                         the round never finished; {detail}"
                    ),
                    nodes: missing,
                },
            );
        }
    }

    /// What an unresolved round is waiting for, phase by phase, with each
    /// outstanding group tagged local/remote (a remote tag names a peer
    /// process as the likely casualty). Besides the human-readable
    /// diagnosis, returns the outstanding *remote* group nodes as data: the
    /// structured half that a [`FaultVerdict`](crate::fault::FaultVerdict)
    /// maps back to the dead process without parsing the string.
    fn stall_detail(&self, job: &JobState) -> (String, Vec<usize>) {
        let locality = |gid: usize| {
            if self.transport.is_local(gid) {
                format!("{gid} (local)")
            } else {
                format!("{gid} (remote)")
            }
        };
        let remote_only = |gids: &[usize]| -> Vec<usize> {
            gids.iter()
                .copied()
                .filter(|&gid| !self.transport.is_local(gid))
                .collect()
        };
        if let Some(phase_lock) = &job.phase {
            let phase = phase_lock.lock();
            if !phase.ready {
                let waiting: Vec<usize> = phase
                    .groups
                    .iter()
                    .enumerate()
                    .filter(|(_, slot)| slot.is_none())
                    .map(|(gid, _)| gid)
                    .collect();
                let trustees = if phase.need_trustees && phase.trustees.is_none() {
                    " and the trustee DKG"
                } else {
                    ""
                };
                let named: Vec<String> = waiting.iter().map(|&gid| locality(gid)).collect();
                return (
                    format!(
                        "stuck in sharded setup, waiting on group directories [{}]{trustees}",
                        named.join(", ")
                    ),
                    remote_only(&waiting),
                );
            }
        }
        if self.role.coordinator {
            let pending_chunks = job.intake.lock().pending;
            if pending_chunks > 0 {
                return (
                    format!(
                        "stuck before batch release: {pending_chunks} intake chunk(s) unverified"
                    ),
                    Vec::new(),
                );
            }
            let exit = job.exit.lock();
            let missing: Vec<usize> = exit
                .payloads
                .iter()
                .enumerate()
                .filter(|(_, slot)| slot.is_none())
                .map(|(gid, _)| gid)
                .collect();
            let named: Vec<String> = missing.iter().map(|&gid| locality(gid)).collect();
            (
                format!("waiting on exit frames from groups [{}]", named.join(", ")),
                remote_only(&missing),
            )
        } else {
            let exit = job.exit.lock();
            (
                format!(
                    "member still mixing: {}/{} hosted groups exited",
                    exit.local_exits,
                    self.role.hosted_in_round(job.num_groups())
                ),
                Vec::new(),
            )
        }
    }

    /// Fires the configured round-completion hook, if any.
    fn notify_round_complete(&self, round: usize) {
        if let Some(hook) = &self.options.on_round_complete {
            hook(round);
        }
    }
}

/// The parallel execution engine. See the module docs.
pub struct Engine {
    options: EngineOptions,
}

impl Engine {
    /// An engine with the given options.
    pub fn new(options: EngineOptions) -> Self {
        Self { options }
    }

    /// An engine with default options and `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        Self::new(EngineOptions::with_workers(workers))
    }

    /// The configured options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// Runs a single round.
    pub fn run_round(&self, job: RoundJob) -> AtomResult<RoundReport> {
        self.run_rounds(vec![job])
            .pop()
            .expect("one result per job")
    }

    /// Runs `jobs` with all rounds in flight at once, returning one result
    /// per job in order. Single-process convenience: builds an
    /// [`InMemoryNetwork`] and runs as the standalone coordinator.
    pub fn run_rounds(&self, jobs: Vec<RoundJob>) -> Vec<AtomResult<RoundReport>> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let max_groups = jobs
            .iter()
            .map(|job| job.config().num_groups)
            .max()
            .unwrap_or(1);
        // One mailbox per group id plus the orchestrator; rounds share
        // mailboxes and are distinguished by the wire header.
        let network = InMemoryNetwork::new(max_groups + 1, LatencyModel::Zero, Vec::new());
        self.run_rounds_on(jobs, &network, &EngineRole::standalone(max_groups))
    }

    /// Runs `jobs` over an explicit [`Transport`], playing `role`.
    ///
    /// The transport must expose one node per group id (of the widest
    /// round) plus the orchestrator as its **last** node, and `role` must
    /// agree with the transport's locality: this process must host exactly
    /// the mailboxes of its `hosted` groups (plus the orchestrator's iff
    /// coordinator). Every participating process derives the same `jobs`
    /// (identical directories, submissions and seeds — except that under
    /// [`RoundDirectory::Sharded`] only the coordinator needs submissions,
    /// and each process derives only its hosted groups' DKGs) and calls
    /// this concurrently; the coordinator's returned reports carry the
    /// round outputs, byte-identical to a single-process run of the same
    /// jobs.
    pub fn run_rounds_on(
        &self,
        jobs: Vec<RoundJob>,
        transport: &dyn Transport,
        role: &EngineRole,
    ) -> Vec<AtomResult<RoundReport>> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let max_groups = jobs
            .iter()
            .map(|job| job.config().num_groups)
            .max()
            .unwrap_or(1);
        assert!(
            transport.nodes() > max_groups,
            "transport exposes {} nodes; the deployment needs {} groups + orchestrator",
            transport.nodes(),
            max_groups
        );
        let orchestrator = transport.nodes() - 1;
        assert_eq!(
            transport.is_local(orchestrator),
            role.coordinator,
            "the orchestrator mailbox must be local exactly on the coordinator"
        );
        for &gid in &role.hosted {
            assert!(
                transport.is_local(gid),
                "hosted group {gid}'s mailbox is not local to this process"
            );
        }

        let workers = self.options.workers.max(1);
        // Build per-job state up front; actor construction failures (e.g.
        // too many pre-failed servers) resolve the job immediately.
        let mut states: Vec<JobState> = Vec::with_capacity(jobs.len());
        let mut construction_failures: Vec<(usize, String)> = Vec::new();
        for (round, job) in jobs.into_iter().enumerate() {
            // The master draw mirrors RoundDriver::run_mixing's first use of
            // the caller RNG, keeping seed semantics identical across
            // drivers.
            let master_seed = StdRng::seed_from_u64(job.seed).next_u64();
            let config = job.config().clone();
            let num_groups = config.num_groups;
            let actor_spec = ActorSpec {
                master_seed,
                defense: job.submissions.defense(),
                adversary: job.adversary,
                failed_servers: job.failed_servers,
                churn: job.churn,
            };
            let actors: Vec<OnceLock<Mutex<GroupActor>>> =
                (0..num_groups).map(|_| OnceLock::new()).collect();
            let setup_cell: OnceLock<RoundSetup> = OnceLock::new();
            let mut construction_error = None;
            let mut phase = None;
            match job.directory {
                // Prebuilt directory: actors exist before the workers start.
                RoundDirectory::Full(setup) => {
                    for gid in (0..num_groups).filter(|&gid| role.hosts(gid)) {
                        match build_actor(&setup, gid, &actor_spec, &self.options) {
                            Ok(actor) => {
                                let _ = actors[gid].set(Mutex::new(actor));
                            }
                            Err(error) => {
                                construction_error = Some(error);
                                break;
                            }
                        }
                    }
                    let _ = setup_cell.set(setup);
                }
                // Sharded directory: derivation happens on the task queue;
                // here we only validate the config and set up the phase
                // bookkeeping.
                RoundDirectory::Sharded(config) => match config.validate() {
                    Ok(()) => {
                        let hosted = role.hosted_in_round(num_groups);
                        let iterations = config.topology().iterations();
                        phase = Some(Mutex::new(SetupPhase {
                            started: Instant::now(),
                            pending_local: hosted,
                            remote_missing: num_groups - hosted,
                            groups: vec![None; num_groups],
                            trustees: None,
                            need_trustees: role.coordinator,
                            buffered: Vec::new(),
                            buffer_cap: num_groups
                                .saturating_mul(1 + num_groups.saturating_mul(iterations)),
                            sealed: false,
                            sealed_keys: Vec::new(),
                            ready: false,
                        }));
                    }
                    Err(error) => construction_error = Some(error),
                },
            }
            let submissions_len = job.submissions.len();
            let chunks = chunk_ranges(submissions_len, self.options.intake_chunk, workers);
            // The intake cap fails a flood closed *here*, at admission:
            // not one of the flood's submissions gets materialized or
            // verified, so an attacker can spend our memory only up to the
            // cap, never up to their offer.
            if construction_error.is_none()
                && role.coordinator
                && self.options.intake_cap > 0
                && submissions_len > self.options.intake_cap
            {
                construction_error = Some(AtomError::Engine {
                    kind: EngineErrorKind::ProtocolAbort,
                    reason: format!(
                        "submission flood: round {round} offers {submissions_len} submissions, \
                         over the intake cap of {}; failing closed without buffering the flood",
                        self.options.intake_cap
                    ),
                    nodes: Vec::new(),
                });
            }
            if let Some(error) = &construction_error {
                construction_failures.push((round, format!("{error:?}")));
            }
            // A member whose groups all sit outside this round has nothing
            // to do for it: resolve immediately with an empty stub.
            let result = match construction_error {
                Some(error) => Some(Err(error)),
                None if !role.coordinator && role.hosted_in_round(num_groups) == 0 => Some(Ok(
                    member_stub_report(Duration::ZERO, 0, 0, Duration::ZERO, Duration::ZERO),
                )),
                None => None,
            };
            let state = JobState {
                intake: Mutex::new(IntakeState {
                    pending: chunks.len(),
                    results: (0..chunks.len()).map(|_| None).collect(),
                }),
                next_chunk: AtomicUsize::new(intake_window(&self.options, chunks.len())),
                stream_in_flight: AtomicUsize::new(0),
                exit: Mutex::new(ExitState {
                    payloads: vec![None; num_groups],
                    exits_done: 0,
                    local_exits: 0,
                    routed: 0,
                    commitments: Vec::new(),
                    computes: vec![Vec::new(); num_groups],
                    started: None,
                    pipelined: Duration::ZERO,
                    group_mix_messages: 0,
                    group_mix_bytes: 0,
                    telemetry: Vec::new(),
                }),
                result: Mutex::new(result),
                intake_mix_messages: AtomicU64::new(0),
                intake_mix_bytes: AtomicU64::new(0),
                group_mix: (0..num_groups)
                    .map(|_| (AtomicU64::new(0), AtomicU64::new(0)))
                    .collect(),
                config,
                setup: setup_cell,
                phase,
                setup_latency: Mutex::new(Duration::ZERO),
                actor_spec,
                submissions: job.submissions,
                actors,
                chunks,
            };
            states.push(state);
        }

        let pending = states.iter().filter(|s| !s.finalized()).count();
        let sched = Arc::new(Scheduler {
            queue: std::sync::Mutex::new(VecDeque::new()),
            ready: std::sync::Condvar::new(),
            pending_jobs: AtomicUsize::new(pending),
            executing: AtomicUsize::new(0),
            last_progress: Mutex::new(Instant::now()),
        });
        let shared = Shared {
            jobs: &states,
            sched: Arc::clone(&sched),
            transport,
            latency: self.options.latency,
            orchestrator,
            role,
            options: &self.options,
        };

        // A round this process cannot even set up must not leave the other
        // processes waiting on its groups.
        for (round, reason) in &construction_failures {
            shared.broadcast_abort(*round, reason);
        }

        // Seed the queue. Prebuilt rounds start at intake (coordinator);
        // sharded rounds start at their directory derivation — one task per
        // hosted group, plus the trustee DKG on the coordinator. All rounds'
        // tasks coexist on the one queue, which is what overlaps round
        // `r + 1`'s directory work with round `r`'s mixing tail: workers
        // interleave `SetupGroup` tasks with `Deliver` wake-ups as both
        // become available.
        {
            let mut queue = sched.queue_lock();
            for (round, state) in states.iter().enumerate() {
                if state.finalized() {
                    continue;
                }
                if state.phase.is_some() {
                    for &gid in role.hosted.iter().filter(|&&g| g < state.num_groups()) {
                        queue.push_back(Task::SetupGroup { round, gid });
                    }
                    if role.coordinator {
                        queue.push_back(Task::SetupTrustees { round });
                    }
                } else if role.coordinator {
                    for chunk in 0..intake_window(&self.options, state.chunks.len()) {
                        queue.push_back(Task::IntakeChunk { round, chunk });
                    }
                }
            }
        }

        // Arrivals wake the pool through the delivery hook; a sweep over
        // already-queued mailboxes covers envelopes that raced in between
        // transport setup and this point.
        let hook_sched = Arc::clone(&sched);
        transport.set_delivery_hook(Some(Arc::new(move |node| {
            hook_sched.push_task(Task::Deliver { node });
        })));
        for node in 0..transport.nodes() {
            if transport.is_local(node) && transport.pending(node) > 0 {
                sched.push_task(Task::Deliver { node });
            }
        }

        if sched.pending_jobs.load(Ordering::SeqCst) > 0 {
            let stall_timeout = self.options.stall_timeout.max(Duration::from_millis(10));
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| worker_loop(&shared, stall_timeout));
                }
            });
        }
        // Detach the hook: late arrivals (e.g. duplicate aborts) still land
        // in mailboxes but no longer reach this run's queue.
        transport.set_delivery_hook(None);

        states
            .into_iter()
            .map(|state| {
                state
                    .result
                    .into_inner()
                    .unwrap_or_else(|| Err(AtomError::Malformed("round never completed".into())))
            })
            .collect()
    }
}

/// The resolution a non-coordinator member records for a round once all of
/// its local groups have exited: local traffic and latency only, empty
/// protocol output (the coordinator holds the authoritative report).
fn member_stub_report(
    pipelined: Duration,
    mix_messages: u64,
    mix_bytes: u64,
    wall_clock: Duration,
    setup_latency: Duration,
) -> RoundReport {
    RoundReport {
        output: RoundOutput {
            per_group: Vec::new(),
            plaintexts: Vec::new(),
            routed_ciphertexts: 0,
            timings: RoundTimings::default(),
        },
        pipelined_latency: pipelined,
        wall_clock,
        setup_latency,
        mix_messages,
        mix_bytes,
        telemetry: Vec::new(),
    }
}

/// Builds the actor of group `gid` from the assembled directory and the
/// job's retained [`ActorSpec`]. Used both at engine start (prebuilt
/// directories) and at the end of a sharded setup phase.
fn build_actor(
    setup: &RoundSetup,
    gid: usize,
    spec: &ActorSpec,
    options: &EngineOptions,
) -> AtomResult<GroupActor> {
    let mut config = ActorConfig::new(GroupStepOptions {
        defense: spec.defense,
        parallelism: options.parallelism.max(1),
    });
    config.adversary = spec.adversary;
    config.failed_servers = spec.failed_servers.clone();
    config.churn = spec.churn.clone();
    config.compute_delay = options
        .stragglers
        .iter()
        .find(|(slow, _)| *slow == gid)
        .map(|(_, delay)| *delay)
        .unwrap_or(Duration::ZERO);
    // A group that lost more members than its DKG threshold tolerates
    // cannot run threshold decryption with Lagrange reweighting alone; fall
    // back to the buddy-group escrow (§4.5), which deterministically
    // reconstructs the missing shares onto replacement servers drawn from
    // the buddy group. The group public key is unchanged, so already
    // collected submissions stay decryptable.
    let healed;
    let setup = if !spec.failed_servers.is_empty()
        && setup.groups[gid]
            .participating(&spec.failed_servers)
            .is_err()
    {
        let group = atom_core::faults::heal_group_via_escrow(setup, gid, &spec.failed_servers)?;
        atom_obs::count("engine.escrow.reconstructions", 1);
        let mut patched = setup.clone();
        patched.groups[gid] = group;
        healed = patched;
        &healed
    } else {
        setup
    };
    GroupActor::new(setup, gid, spec.master_seed, config)
}

/// The trustee context a non-coordinator member records in its assembled
/// directory. Members never consult the trustees — group actors only read
/// `setup.groups` and `setup.config`, and the trap-variant exit phase runs
/// on the coordinator — so an empty placeholder keeps the trustee DKG off
/// every member's setup path.
fn member_trustee_placeholder() -> TrusteeContext {
    TrusteeContext {
        members: Vec::new(),
        shares: Vec::new(),
        public_key: PublicKey(RistrettoPoint::identity()),
    }
}

fn worker_loop(shared: &Shared<'_>, stall_timeout: Duration) {
    let round_deadline = shared.options.round_deadline;
    loop {
        let task = {
            let mut queue = shared.sched.queue_lock();
            loop {
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                if shared.sched.pending_jobs.load(Ordering::SeqCst) == 0 {
                    return;
                }
                // Stall detector: rounds pending, queue empty, nobody
                // executing, and nothing has finished for stall_timeout —
                // a remote peer died silently (or a local bug lost a
                // wake-up). Fail the unresolved rounds rather than wait
                // forever; resolved rounds keep their results.
                let idle = shared.sched.executing.load(Ordering::SeqCst) == 0;
                let elapsed = shared.sched.last_progress.lock().elapsed();
                if idle && elapsed >= stall_timeout {
                    drop(queue);
                    shared.fail_stalled(elapsed);
                    return;
                }
                let mut wait = if idle {
                    stall_timeout - elapsed
                } else {
                    stall_timeout
                };
                // Round-deadline enforcement. Like the stall path, failing
                // rounds re-acquires the queue lock (`job_done` notifies
                // under it), so the lock must be dropped first.
                if !round_deadline.is_zero() {
                    match shared.nearest_deadline(round_deadline) {
                        Some(remaining) if remaining.is_zero() => {
                            drop(queue);
                            shared.fail_deadlined(round_deadline);
                            queue = shared.sched.queue_lock();
                            continue;
                        }
                        Some(remaining) => wait = wait.min(remaining),
                        None => {}
                    }
                }
                let (guard, _) = shared
                    .sched
                    .ready
                    .wait_timeout(queue, wait)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        };
        // A panicking task (e.g. a poisoned intra-group re-encryption
        // worker) must not strand the other workers in their condvar wait:
        // resolve every open round with an error, then re-raise the panic so
        // the scope surfaces it.
        shared.sched.executing.fetch_add(1, Ordering::SeqCst);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match task {
            Task::IntakeChunk { round, chunk } => run_intake_chunk(shared, round, chunk),
            Task::Deliver { node } => run_deliver(shared, node),
            Task::SetupGroup { round, gid } => run_setup_group(shared, round, gid),
            Task::SetupTrustees { round } => run_setup_trustees(shared, round),
        }));
        *shared.sched.last_progress.lock() = Instant::now();
        shared.sched.executing.fetch_sub(1, Ordering::SeqCst);
        if let Err(panic) = result {
            shared.fail_all("engine worker panicked; round abandoned");
            std::panic::resume_unwind(panic);
        }
    }
}

/// How many of a round's `chunks` intake chunks may be scheduled — and
/// therefore materialized — at once (see [`EngineOptions::intake_window`];
/// `0` = all of them).
fn intake_window(options: &EngineOptions, chunks: usize) -> usize {
    if options.intake_window == 0 {
        chunks
    } else {
        options.intake_window.min(chunks).max(1)
    }
}

/// The submission ranges of a round's intake chunks. `chunk` is the
/// configured submissions-per-chunk (`0` = auto: spread the round evenly
/// over the worker pool). A round with no submissions still gets one
/// (empty) chunk so the release path runs.
fn chunk_ranges(submissions: usize, chunk: usize, workers: usize) -> Vec<(usize, usize)> {
    if submissions == 0 {
        return vec![(0, 0)];
    }
    let size = if chunk > 0 {
        chunk
    } else {
        submissions.div_ceil(workers)
    }
    .max(1);
    (0..submissions)
        .step_by(size)
        .map(|start| (start, start.saturating_add(size).min(submissions)))
        .collect()
}

/// Derives the DKG of locally hosted group `gid` of a sharded round from
/// its beacon stream, broadcasts the public half to every remote mailbox
/// (each peer process needs every group's public key before its actors can
/// mix; the coordinator additionally needs it for intake verification), and
/// records the full context locally. The worker completing the round's last
/// missing piece assembles the directory ([`finish_setup`]).
fn run_setup_group(shared: &Shared<'_>, round: usize, gid: usize) {
    let _span = atom_obs::span("setup", round as u32, gid as u32);
    let job = &shared.jobs[round];
    if job.failed() {
        return;
    }
    let Some(phase_lock) = &job.phase else {
        shared.fail_job(
            round,
            AtomError::Malformed("setup task for a round with a prebuilt directory".into()),
        );
        return;
    };
    let context = match derive_group(&job.config, gid) {
        Ok(context) => context,
        Err(error) => {
            shared.fail_job(round, error);
            return;
        }
    };
    // Ship the public half to every remote mailbox. A peer process hosting
    // several groups receives one copy per mailbox; `on_setup_frame` treats
    // the duplicates idempotently. `public_only` is the contract for what
    // may leave this process: secret shares stay behind.
    let public = context.public_only();
    let frame = SetupFrame {
        round: shared.wire_round(round),
        gid,
        members: public.members,
        threshold: public.threshold,
        public_key: public.public_key,
    };
    let payload = wire::encode_setup(&frame);
    for node in 0..shared.transport.nodes() {
        if !shared.transport.is_local(node)
            && !shared.send_for_round(round, gid, node, SETUP_LABEL, payload.clone())
        {
            return;
        }
    }
    let complete = {
        let mut phase = phase_lock.lock();
        if phase.sealed {
            false
        } else {
            phase.groups[gid] = Some(context);
            phase.pending_local -= 1;
            phase.complete()
        }
    };
    if complete {
        finish_setup(shared, round);
    }
}

/// Derives the trustee DKG of a sharded round (coordinator only; members
/// record a placeholder — see [`member_trustee_placeholder`]).
fn run_setup_trustees(shared: &Shared<'_>, round: usize) {
    let _span = atom_obs::span("setup", round as u32, atom_obs::GID_NONE);
    let job = &shared.jobs[round];
    if job.failed() {
        return;
    }
    let Some(phase_lock) = &job.phase else {
        shared.fail_job(
            round,
            AtomError::Malformed("trustee setup task for a prebuilt directory".into()),
        );
        return;
    };
    let trustees = match derive_trustees(&job.config) {
        Ok(trustees) => trustees,
        Err(error) => {
            shared.fail_job(round, error);
            return;
        }
    };
    let complete = {
        let mut phase = phase_lock.lock();
        if phase.sealed {
            false
        } else {
            phase.trustees = Some(trustees);
            phase.complete()
        }
    };
    if complete {
        finish_setup(shared, round);
    }
}

/// Records one remote group's public directory entry. Duplicate frames for
/// the same group are expected — a peer broadcasts once per remote mailbox,
/// and this process may own several — and must agree with the first copy;
/// a conflicting frame is a hostile or broken peer and fails the round.
fn on_setup_frame(shared: &Shared<'_>, frame: SetupFrame) {
    let round = frame.round;
    let Some(job) = shared.jobs.get(round) else {
        shared.fail_all("setup frame names an unknown round");
        return;
    };
    if job.failed() {
        return;
    }
    let Some(phase_lock) = &job.phase else {
        shared.fail_job(
            round,
            AtomError::Malformed("setup frame for a round with a prebuilt directory".into()),
        );
        return;
    };
    if frame.gid >= job.num_groups() {
        shared.fail_job(
            round,
            AtomError::Malformed(format!("setup frame for unknown group {}", frame.gid)),
        );
        return;
    }
    if shared.role.hosts(frame.gid) {
        shared.fail_job(
            round,
            AtomError::Malformed(format!(
                "setup frame for group {}, which this process derives itself",
                frame.gid
            )),
        );
        return;
    }
    // Duplicate broadcast copies (the sender fans one frame out to every
    // local mailbox) take a fast path: compare against the already-stored,
    // already-validated context instead of re-deriving the membership
    // below — O(members) instead of replaying the beacon stream per copy.
    // Any deviation from the stored context is still a conflict that fails
    // the round.
    {
        let phase = phase_lock.lock();
        if phase.sealed {
            // The directory is already assembled. Benign duplicate copies
            // are dropped, but a frame disagreeing with the key the round
            // is mixing under is an equivocation — name it, even though the
            // first (possibly forged) story already won the slot.
            let benign = phase
                .sealed_keys
                .get(frame.gid)
                .is_none_or(|key| *key == frame.public_key);
            drop(phase);
            if !benign {
                shared.fail_job(
                    round,
                    AtomError::Malformed(format!(
                        "conflicting setup frames for group {}",
                        frame.gid
                    )),
                );
            }
            return;
        }
        if let Some(existing) = &phase.groups[frame.gid] {
            let benign = existing.public_key == frame.public_key
                && existing.threshold == frame.threshold
                && existing.members == frame.members;
            drop(phase);
            if !benign {
                shared.fail_job(
                    round,
                    AtomError::Malformed(format!(
                        "conflicting setup frames for group {}",
                        frame.gid
                    )),
                );
            }
            return;
        }
    }
    // Everything in the frame except the DKG public key is a pure function
    // of the shared configuration — recompute and reject rather than trust.
    // A hostile peer can therefore only influence the public keys of the
    // groups it hosts, which it controls anyway by running their DKGs.
    if frame.threshold != job.config.group_threshold() {
        shared.fail_job(
            round,
            AtomError::Malformed(format!(
                "setup frame for group {} claims threshold {} (expected {})",
                frame.gid,
                frame.threshold,
                job.config.group_threshold()
            )),
        );
        return;
    }
    match derive_members(&job.config, frame.gid) {
        Ok(expected) if expected == frame.members => {}
        Ok(_) => {
            shared.fail_job(
                round,
                AtomError::Malformed(format!(
                    "setup frame for group {} claims a membership that does not \
                     match the beacon derivation",
                    frame.gid
                )),
            );
            return;
        }
        Err(error) => {
            shared.fail_job(round, error);
            return;
        }
    }
    let verdict = {
        let mut phase = phase_lock.lock();
        if phase.sealed {
            // Sealed while this frame was being validated: cross-check the
            // key it carries against the one the round is mixing under.
            if phase
                .sealed_keys
                .get(frame.gid)
                .is_none_or(|key| *key == frame.public_key)
            {
                Ok(false)
            } else {
                Err(AtomError::Malformed(format!(
                    "conflicting setup frames for group {}",
                    frame.gid
                )))
            }
        } else if let Some(existing) = &phase.groups[frame.gid] {
            if existing.public_key == frame.public_key {
                Ok(false) // benign duplicate via another local mailbox
            } else {
                Err(AtomError::Malformed(format!(
                    "conflicting setup frames for group {}",
                    frame.gid
                )))
            }
        } else {
            phase.groups[frame.gid] = Some(GroupContext {
                id: frame.gid,
                members: frame.members,
                shares: Vec::new(),
                public_key: frame.public_key,
                threshold: frame.threshold,
            });
            phase.remote_missing -= 1;
            Ok(phase.complete())
        }
    };
    match verdict {
        Ok(true) => finish_setup(shared, round),
        Ok(false) => {}
        Err(error) => shared.fail_job(round, error),
    }
}

/// Assembles the round's directory once every piece exists — hosted DKGs
/// run, every remote frame received, trustees derived (coordinator) —
/// constructs the hosted actors, releases the coordinator's intake tasks
/// and replays mix envelopes that raced ahead of the directory.
fn finish_setup(shared: &Shared<'_>, round: usize) {
    let job = &shared.jobs[round];
    let phase_lock = job.phase.as_ref().expect("sharded round");
    let (groups, trustees, started) = {
        let mut phase = phase_lock.lock();
        debug_assert!(phase.complete() && !phase.sealed);
        phase.sealed = true;
        let groups: Vec<GroupContext> = phase
            .groups
            .iter_mut()
            .map(|slot| slot.take().expect("setup phase complete"))
            .collect();
        phase.sealed_keys = groups.iter().map(|group| group.public_key).collect();
        (groups, phase.trustees.take(), phase.started)
    };
    let setup = RoundSetup {
        config: job.config.clone(),
        groups,
        trustees: trustees.unwrap_or_else(member_trustee_placeholder),
        buddies: derive_buddies(&job.config),
    };
    for gid in (0..job.num_groups()).filter(|&gid| shared.role.hosts(gid)) {
        match build_actor(&setup, gid, &job.actor_spec, shared.options) {
            Ok(actor) => {
                let _ = job.actors[gid].set(Mutex::new(actor));
            }
            Err(error) => {
                shared.fail_job(round, error);
                return;
            }
        }
    }
    let _ = job.setup.set(setup);
    *job.setup_latency.lock() = started.elapsed();
    let buffered = {
        let mut phase = phase_lock.lock();
        phase.ready = true;
        std::mem::take(&mut phase.buffered)
    };
    // Intake could not run before the directory existed (submission proofs
    // verify against the group and trustee keys); release it now, bounded
    // by the same streaming window as the prebuilt path. `next_chunk` was
    // preset to the window size at construction, so the finishing chunks
    // continue from there.
    if shared.role.coordinator && !job.finalized() {
        for chunk in 0..intake_window(shared.options, job.chunks.len()) {
            shared.sched.push_task(Task::IntakeChunk { round, chunk });
        }
    }
    for (gid, mix) in buffered {
        on_mix_frame(shared, gid, mix);
    }
}

/// Verifies one intake chunk of a round's submissions; the worker that
/// completes the round's last chunk merges the results and releases the
/// iteration-0 batches ([`finish_intake`]).
fn run_intake_chunk(shared: &Shared<'_>, round: usize, chunk: usize) {
    let _span = atom_obs::span("intake", round as u32, atom_obs::GID_NONE);
    let job = &shared.jobs[round];
    if job.failed() {
        return;
    }
    {
        let mut exit = job.exit.lock();
        if exit.started.is_none() {
            exit.started = Some(Instant::now());
        }
    }

    let (start, end) = job.chunks[chunk];
    let setup = job.round_setup();
    let result = {
        // Proof verification dominates intake; give it its own phase so the
        // trace separates crypto cost from chunk bookkeeping.
        let _verify_span = atom_obs::span("verify", round as u32, atom_obs::GID_NONE);
        match &job.submissions {
            RoundSubmissions::Nizk(submissions) => {
                verify_nizk_submissions_range(setup, &submissions[start..end], start).map(
                    |batches| ChunkIntake {
                        batches,
                        commitments: Vec::new(),
                    },
                )
            }
            RoundSubmissions::Trap(submissions) => {
                verify_trap_submissions_range(setup, &submissions[start..end], start).map(
                    |intake| ChunkIntake {
                        batches: intake.batches,
                        commitments: intake.commitments,
                    },
                )
            }
            // Streaming intake: materialize exactly this chunk's range, feed
            // it through the same range verifiers, and drop it again. The
            // in-flight accounting brackets the verify so the peak gauge
            // reflects what was actually resident at once.
            RoundSubmissions::Stream(source) => {
                let span = end - start;
                let in_flight = job.stream_in_flight.fetch_add(span, Ordering::SeqCst) + span;
                atom_obs::gauge_max("engine.intake.peak_in_flight", in_flight as u64);
                atom_obs::count("engine.intake.streamed", span as u64);
                let verified = source.generate((start, end)).and_then(|block| {
                    if block.len() != span {
                        return Err(AtomError::Malformed(format!(
                            "submission source returned {} submissions for range \
                             {start}..{end}",
                            block.len()
                        )));
                    }
                    match block {
                        SubmissionBlock::Nizk(submissions) => {
                            verify_nizk_submissions_range(setup, &submissions, start).map(
                                |batches| ChunkIntake {
                                    batches,
                                    commitments: Vec::new(),
                                },
                            )
                        }
                        SubmissionBlock::Trap(submissions) => {
                            verify_trap_submissions_range(setup, &submissions, start).map(
                                |intake| ChunkIntake {
                                    batches: intake.batches,
                                    commitments: intake.commitments,
                                },
                            )
                        }
                    }
                });
                job.stream_in_flight.fetch_sub(span, Ordering::SeqCst);
                verified
            }
        }
    };

    // Under a bounded window, a finishing chunk releases the next unclaimed
    // one. This also runs for failed chunks: the release path needs every
    // chunk's slot filled before it can diagnose the round.
    let next = job.next_chunk.fetch_add(1, Ordering::SeqCst);
    if next < job.chunks.len() {
        shared
            .sched
            .push_task(Task::IntakeChunk { round, chunk: next });
    }

    let release = {
        let mut intake = job.intake.lock();
        intake.results[chunk] = Some(result);
        intake.pending -= 1;
        intake.pending == 0
    };
    if release {
        finish_intake(shared, round);
    }
}

/// Merges the verified intake chunks in chunk order and injects the
/// iteration-0 batches. Ranges are contiguous and ascending, so the merged
/// per-group batches equal the single-task (and sequential-driver)
/// bucketing byte for byte; the first failed chunk — which contains the
/// lowest-indexed rejected submission — decides the round's error.
fn finish_intake(shared: &Shared<'_>, round: usize) {
    let job = &shared.jobs[round];
    if job.failed() {
        return;
    }
    let results: Vec<AtomResult<ChunkIntake>> = {
        let mut intake = job.intake.lock();
        intake
            .results
            .iter_mut()
            .map(|slot| slot.take().expect("every chunk recorded a result"))
            .collect()
    };

    let num_groups = job.num_groups();
    let mut batches: Vec<Vec<MessageCiphertext>> = vec![Vec::new(); num_groups];
    let mut commitments: Vec<Vec<Commitment>> = vec![Vec::new(); num_groups];
    for result in results {
        match result {
            Ok(chunk) => {
                for (gid, mut sub) in chunk.batches.into_iter().enumerate() {
                    batches[gid].append(&mut sub);
                }
                for (gid, mut sub) in chunk.commitments.into_iter().enumerate() {
                    commitments[gid].append(&mut sub);
                }
            }
            Err(error) => return shared.fail_job(round, error),
        }
    }

    {
        let mut exit = job.exit.lock();
        exit.routed = batches.iter().map(Vec::len).sum();
        exit.commitments = commitments;
    }

    for (gid, batch) in batches.into_iter().enumerate() {
        let payload = wire::encode_mix(shared.wire_round(round), 0, SOURCE, Duration::ZERO, &batch);
        job.intake_mix_messages.fetch_add(1, Ordering::Relaxed);
        job.intake_mix_bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        // The transport's delivery hook wakes the pool for local
        // destinations; remote ones wake their own process.
        if !shared.send_for_round(round, shared.orchestrator, gid, MIX_LABEL, payload) {
            return;
        }
    }
}

/// The simulated latency of one inter-group hop (shared accounting from
/// `atom_core::round::hop_latency`). Orchestrator injections are free: the
/// submission phase is accounted separately in the paper's figures.
fn inbound_hop(shared: &Shared<'_>, setup: &RoundSetup, from: usize, to: usize) -> Duration {
    if from == SOURCE {
        return Duration::ZERO;
    }
    hop_latency(setup, &shared.latency, from, to)
}

/// Drains a local mailbox and dispatches its frames: mix batches feed the
/// node's group actor, exit frames accumulate at the orchestrator, abort
/// frames fail their round.
fn run_deliver(shared: &Shared<'_>, node: usize) {
    for envelope in shared.transport.drain(node) {
        let mut decoded = match wire::decode(&envelope.payload) {
            Ok(decoded) => decoded,
            Err(error) => {
                // Within one process every envelope is engine-generated, so
                // a decode failure means format skew; over TCP it means a
                // corrupt or hostile peer. Either way, dropping it would
                // strand the receiving actor forever: fail the named round
                // (the header's round field survives most corruptions) or,
                // failing that, everything.
                match wire::decode_round(&envelope.payload).and_then(|r| shared.job_index(r)) {
                    Some(round) if round < shared.jobs.len() => shared.fail_job(round, error),
                    // An undecodable frame from before this run's id range
                    // is a stale-epoch leftover: fence it off.
                    None => atom_obs::count("engine.stale.frames", 1),
                    _ => shared.fail_all("undecodable protocol frame"),
                }
                continue;
            }
        };
        // Translate the wire round id into this run's job index; a frame
        // below the epoch fence is a straggler from an earlier epoch and
        // must never be misdelivered to the round reusing its index.
        let round_slot = match &mut decoded {
            Frame::Mix(frame) => Some(&mut frame.round),
            Frame::Exit(frame) => Some(&mut frame.round),
            Frame::Abort(frame) => Some(&mut frame.round),
            Frame::Setup(frame) => Some(&mut frame.round),
            Frame::Telemetry(frame) => Some(&mut frame.round),
            // Control frames carry *global* round numbers for the
            // orchestration layer; the engine never indexes jobs by them.
            // Client frames (submit/ack) never belong on the mesh at all
            // and are dropped below.
            Frame::Evict(_) | Frame::Rejoin(_) | Frame::Submit(_) | Frame::SubmitAck(_) => None,
        };
        if let Some(slot) = round_slot {
            match shared.job_index(*slot) {
                Some(index) => *slot = index,
                None => {
                    atom_obs::count("engine.stale.frames", 1);
                    continue;
                }
            }
        }
        match decoded {
            Frame::Mix(mix) => on_mix_frame(shared, node, mix),
            Frame::Exit(exit) => on_exit_frame(shared, node, exit),
            Frame::Setup(setup) => on_setup_frame(shared, setup),
            Frame::Telemetry(telemetry) => on_telemetry_frame(shared, node, telemetry),
            Frame::Abort(abort) => {
                let Some(_job) = shared.jobs.get(abort.round) else {
                    shared.fail_all("abort frame names an unknown round");
                    continue;
                };
                shared.fail_job(
                    abort.round,
                    AtomError::Engine {
                        kind: EngineErrorKind::ProtocolAbort,
                        reason: format!("round aborted by a peer: {}", abort.reason),
                        nodes: Vec::new(),
                    },
                );
            }
            // Membership control (evict / rejoin) is handled by the
            // recovery orchestration *between* engine runs; a control frame
            // overtaking this run is stashed for it, never a round failure.
            Frame::Evict(_) | Frame::Rejoin(_) => {
                atom_obs::count("engine.control.frames_in_run", 1);
                if let Some(sink) = &shared.options.control_sink {
                    sink.lock().push(decoded);
                }
            }
            // Client traffic terminates at the ingress tier; a submit or
            // ack frame on the server mesh is misdirected and ignored.
            Frame::Submit(_) | Frame::SubmitAck(_) => {
                atom_obs::count("engine.client.frames_on_mesh", 1);
            }
        }
    }
}

/// Feeds one mixing sub-batch to the local actor of group `gid` and routes
/// whatever the actor emits.
fn on_mix_frame(shared: &Shared<'_>, gid: usize, mix: wire::MixEnvelope) {
    let round = mix.round;
    let Some(job) = shared.jobs.get(round) else {
        shared.fail_all("mix envelope names an unknown round");
        return;
    };
    if job.failed() {
        return;
    }
    // A sharded round's actors do not exist until the directory is
    // assembled; park early arrivals (a fast peer may start mixing while we
    // are still collecting setup frames) and let `finish_setup` replay
    // them. Bounded: a peer streaming mix frames while withholding its
    // setup frames must fail the round, not exhaust memory.
    if let Some(phase_lock) = &job.phase {
        let mut phase = phase_lock.lock();
        if !phase.ready {
            if phase.buffered.len() >= phase.buffer_cap {
                let cap = phase.buffer_cap;
                drop(phase);
                shared.fail_job(
                    round,
                    AtomError::Malformed(format!(
                        "more than {cap} mix envelopes buffered before the \
                         round's directory was assembled"
                    )),
                );
                return;
            }
            phase.buffered.push((gid, mix));
            return;
        }
    }
    {
        // Members start their round clock at the first local delivery (the
        // coordinator starts it at intake).
        let mut exit = job.exit.lock();
        if exit.started.is_none() {
            exit.started = Some(Instant::now());
        }
    }
    let Some(actor_slot) = job.actors.get(gid).and_then(OnceLock::get) else {
        shared.fail_job(
            round,
            AtomError::Malformed(format!(
                "mix envelope for group {gid}, which this process does not host"
            )),
        );
        return;
    };

    let arrival = mix.sent_virtual + inbound_hop(shared, job.round_setup(), mix.from, gid);
    // Frames are encoded and traffic counters updated while the actor lock
    // is held: the lock serializes the group's iterations, so by the time
    // the exit frame snapshots the group's counters every earlier forward
    // of this group has been counted — another worker draining a later
    // batch cannot observe a partial count. Only the sends happen outside
    // the lock.
    let mut sends: Vec<(usize, Vec<u8>)> = Vec::new();
    let mut exit_send: Option<(Vec<u8>, Duration)> = None;
    {
        // One span per hop. Scoped to the actor section (not the sends), so
        // a member's final hop is recorded before `note_local_exit` builds
        // the round's telemetry snapshot.
        let _span = atom_obs::span("mix", round as u32, gid as u32);
        let mut actor = actor_slot.lock();
        actor.note_arrival(mix.iteration, arrival);
        let outputs = match actor.on_batch(mix.iteration, mix.from, mix.batch) {
            Ok(outputs) => outputs,
            Err(error) => {
                drop(actor);
                shared.fail_job(round, error);
                return;
            }
        };
        for output in outputs {
            match output {
                ActorOutput::Forward {
                    iteration,
                    to,
                    batch,
                    sent_virtual,
                } => {
                    let payload = wire::encode_mix(
                        shared.wire_round(round),
                        iteration,
                        gid,
                        sent_virtual,
                        &batch,
                    );
                    let (messages, bytes) = &job.group_mix[gid];
                    messages.fetch_add(1, Ordering::Relaxed);
                    bytes.fetch_add(payload.len() as u64, Ordering::Relaxed);
                    sends.push((to, payload));
                }
                ActorOutput::Exit {
                    plaintexts,
                    finished_virtual,
                } => {
                    // The group's final products travel to the orchestrator
                    // as an exit frame — across the loopback in a
                    // single-process run, across TCP when the coordinator
                    // is remote.
                    let (messages, bytes) = &job.group_mix[gid];
                    let frame = ExitFrame {
                        round: shared.wire_round(round),
                        gid,
                        finished_virtual,
                        mix_messages: messages.load(Ordering::Relaxed),
                        mix_bytes: bytes.load(Ordering::Relaxed),
                        compute: actor.compute_times().to_vec(),
                        payloads: plaintexts,
                    };
                    exit_send = Some((wire::encode_exit(&frame), finished_virtual));
                }
            }
        }
    }

    for (to, payload) in sends {
        if !shared.send_for_round(round, gid, to, MIX_LABEL, payload) {
            return;
        }
    }
    if let Some((payload, finished_virtual)) = exit_send {
        if !shared.send_for_round(round, gid, shared.orchestrator, EXIT_LABEL, payload) {
            return;
        }
        note_local_exit(shared, round, finished_virtual);
    }
}

/// Member-side bookkeeping of a local group reaching its exit layer: once
/// every locally hosted group of the round is done, a non-coordinator has
/// nothing left to compute and resolves the round with a stub report.
fn note_local_exit(shared: &Shared<'_>, round: usize, finished_virtual: Duration) {
    let job = &shared.jobs[round];
    let all_local_done = {
        let mut exit = job.exit.lock();
        exit.local_exits += 1;
        exit.pipelined = exit.pipelined.max(finished_virtual);
        exit.local_exits == shared.role.hosted_in_round(job.num_groups())
    };
    if shared.role.coordinator || !all_local_done {
        return;
    }
    // All local groups are done: ship this process's span/counter snapshot
    // to the orchestrator so the coordinator's merged report and fleet
    // trace cover this process. Observational only — sent exclusively when
    // recording is enabled, after the last local exit frame (ordered
    // delivery per peer means it cannot overtake the exits).
    if atom_obs::enabled() {
        let hosted: Vec<usize> = shared
            .role
            .hosted
            .iter()
            .copied()
            .filter(|&gid| gid < job.num_groups())
            .collect();
        let from = hosted.first().copied().unwrap_or(0);
        let snapshot = atom_obs::local_snapshot(Some(round as u32));
        let frame = TelemetryFrame {
            round: shared.wire_round(round),
            process: snapshot.process,
            gids: hosted,
            counters: snapshot.counters,
            spans: snapshot.spans,
        };
        if !shared.send_for_round(
            round,
            from,
            shared.orchestrator,
            TELEMETRY_LABEL,
            wire::encode_telemetry(&frame),
        ) {
            return;
        }
    }
    let (pipelined, wall_clock) = {
        let exit = job.exit.lock();
        (
            exit.pipelined,
            exit.started.map(|at| at.elapsed()).unwrap_or_default(),
        )
    };
    let mix_messages: u64 = job
        .group_mix
        .iter()
        .map(|(m, _)| m.load(Ordering::Relaxed))
        .sum();
    let mix_bytes: u64 = job
        .group_mix
        .iter()
        .map(|(_, b)| b.load(Ordering::Relaxed))
        .sum();
    let setup_latency = *job.setup_latency.lock();
    let mut result = job.result.lock();
    if result.is_none() {
        *result = Some(Ok(member_stub_report(
            pipelined,
            mix_messages,
            mix_bytes,
            wall_clock,
            setup_latency,
        )));
        drop(result);
        shared.notify_round_complete(round);
        shared.job_done();
    }
}

/// Collects one group's exit frame at the orchestrator; the frame carrying
/// the round's last outstanding group triggers finalization.
fn on_exit_frame(shared: &Shared<'_>, node: usize, frame: ExitFrame) {
    if node != shared.orchestrator || !shared.role.coordinator {
        shared.fail_all("exit frame delivered to a non-orchestrator node");
        return;
    }
    let round = frame.round;
    let Some(job) = shared.jobs.get(round) else {
        shared.fail_all("exit frame names an unknown round");
        return;
    };
    if job.failed() {
        return;
    }
    if frame.gid >= job.num_groups() {
        shared.fail_job(
            round,
            AtomError::Malformed(format!("exit frame from unknown group {}", frame.gid)),
        );
        return;
    }
    // No group can legitimately exit before the coordinator's directory is
    // assembled: every mix batch descends from the local intake, which only
    // runs post-assembly. An early exit frame is therefore forged or
    // broken — fail the round rather than let finalization read an
    // unassembled directory (a panic that would take down the whole scope).
    if job.setup.get().is_none() {
        shared.fail_job(
            round,
            AtomError::Malformed(format!(
                "exit frame from group {} before the round directory was assembled",
                frame.gid
            )),
        );
        return;
    }
    let complete = {
        let mut exit = job.exit.lock();
        if exit.payloads[frame.gid].is_some() {
            drop(exit);
            shared.fail_job(
                round,
                AtomError::Malformed(format!("duplicate exit frame from group {}", frame.gid)),
            );
            return;
        }
        exit.payloads[frame.gid] = Some(frame.payloads);
        exit.computes[frame.gid] = frame.compute;
        exit.group_mix_messages += frame.mix_messages;
        exit.group_mix_bytes += frame.mix_bytes;
        exit.exits_done += 1;
        exit.pipelined = exit.pipelined.max(frame.finished_virtual);
        exit.exits_done == job.num_groups() && telemetry_complete(shared, job, &exit)
    };
    if complete {
        finalize_round(shared, round);
    }
}

/// Whether the orchestrator holds all the telemetry it is waiting for:
/// trivially true while recording is disabled; otherwise every remotely
/// hosted group must be covered by some member's snapshot, so the merged
/// report and fleet trace span every process. Members send their snapshot
/// after their last exit frame on the same ordered channel, so this always
/// resolves shortly after the exits do.
fn telemetry_complete(shared: &Shared<'_>, job: &JobState, exit: &ExitState) -> bool {
    if !atom_obs::enabled() {
        return true;
    }
    (0..job.num_groups())
        .filter(|&gid| !shared.role.hosts(gid))
        .all(|gid| exit.telemetry.iter().any(|frame| frame.gids.contains(&gid)))
}

/// Collects one member process's telemetry snapshot at the orchestrator.
/// Observational traffic: a duplicate from the same process is a benign
/// no-op (idempotent), and a misrouted or unattributable frame is dropped
/// rather than failing anything — telemetry must never be able to abort a
/// round.
fn on_telemetry_frame(shared: &Shared<'_>, node: usize, frame: TelemetryFrame) {
    if node != shared.orchestrator || !shared.role.coordinator {
        return;
    }
    let round = frame.round;
    let Some(job) = shared.jobs.get(round) else {
        return;
    };
    if job.failed() {
        return;
    }
    let complete = {
        let mut exit = job.exit.lock();
        if exit
            .telemetry
            .iter()
            .any(|existing| existing.process == frame.process)
        {
            return; // duplicate snapshot from a process we already heard
        }
        exit.telemetry.push(frame);
        exit.exits_done == job.num_groups() && telemetry_complete(shared, job, &exit)
    };
    if complete && !job.finalized() {
        finalize_round(shared, round);
    }
}

/// Collects timings, runs the variant-specific exit phase and resolves the
/// job (coordinator only; members resolve through [`note_local_exit`]).
fn finalize_round(shared: &Shared<'_>, round: usize) {
    let job = &shared.jobs[round];

    let (payloads, routed, commitments, computes, started, pipelined, group_mix, member_telemetry) = {
        let mut exit = job.exit.lock();
        let payloads: Vec<Vec<Vec<u8>>> = exit
            .payloads
            .iter_mut()
            .map(|slot| slot.take().unwrap_or_default())
            .collect();
        (
            payloads,
            exit.routed,
            std::mem::take(&mut exit.commitments),
            std::mem::take(&mut exit.computes),
            exit.started,
            exit.pipelined,
            (exit.group_mix_messages, exit.group_mix_bytes),
            std::mem::take(&mut exit.telemetry),
        )
    };
    let (output, wall_clock) = {
        let _span = atom_obs::span("exit", round as u32, atom_obs::GID_NONE);
        // Per-iteration compute critical path as reported in the groups'
        // exit frames, plus the analytic barrier-model network critical
        // path, via the accounting helper shared with the sequential driver.
        let setup = job.round_setup();
        let mut timings = collect_round_timings(setup, &shared.latency, &computes);
        // Same field semantics as the sequential driver: end-to-end wall
        // time of the round in the coordinator process.
        let wall_clock = started.map(|at| at.elapsed()).unwrap_or_default();
        timings.wall_clock = wall_clock;

        let output = match job.submissions.defense() {
            Defense::Nizk => finish_nizk_round(payloads, routed, timings),
            Defense::Trap => finish_trap_round(setup, &commitments, payloads, routed, timings),
        };
        (output, wall_clock)
    };

    let report = output.map(|output| {
        // Merge the fleet's telemetry: this process's snapshot — taken
        // *after* the exit span above closed — plus every member frame, one
        // Perfetto process track each, in process order.
        let mut telemetry: Vec<atom_obs::Snapshot> = Vec::new();
        if atom_obs::enabled() {
            telemetry.push(atom_obs::local_snapshot(Some(round as u32)));
            for frame in &member_telemetry {
                telemetry.push(atom_obs::Snapshot {
                    process: frame.process,
                    counters: frame.counters.clone(),
                    spans: frame.spans.clone(),
                });
            }
            telemetry.sort_by_key(|snapshot| snapshot.process);
        }
        RoundReport {
            pipelined_latency: pipelined,
            wall_clock,
            setup_latency: *job.setup_latency.lock(),
            mix_messages: job.intake_mix_messages.load(Ordering::Relaxed) + group_mix.0,
            mix_bytes: job.intake_mix_bytes.load(Ordering::Relaxed) + group_mix.1,
            output,
            telemetry,
        }
    });

    // The exit phase itself can reject a round (trap-check failure,
    // malformed payloads). Remote members have usually resolved the round
    // locally by then, but a stray notification is harmless and a member
    // still mixing must not be left waiting.
    let exit_failure = match &report {
        Err(error) => Some(format!("{error:?}")),
        Ok(_) => None,
    };
    let mut result = job.result.lock();
    if result.is_none() {
        *result = Some(report);
        drop(result);
        match exit_failure {
            Some(reason) => shared.broadcast_abort(round, &reason),
            None => shared.notify_round_complete(round),
        }
        shared.job_done();
    }
}

/// Aggregate transport statistics helper for reports and scenarios.
pub fn total_traffic(reports: &[AtomResult<RoundReport>]) -> TrafficStats {
    let mut total = TrafficStats::default();
    for report in reports.iter().flatten() {
        total.messages += report.mix_messages;
        total.bytes += report.mix_bytes;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_core::config::AtomConfig;
    use atom_core::directory::setup_round;
    use atom_core::message::make_trap_submission;
    use atom_core::round::RoundDriver;

    fn trap_jobs(rounds: usize, seed: u64) -> (Vec<RoundJob>, Vec<Vec<String>>) {
        let mut rng = StdRng::seed_from_u64(77);
        let mut jobs = Vec::new();
        let mut expected = Vec::new();
        for round in 0..rounds {
            let mut config = AtomConfig::test_default();
            config.num_groups = 3;
            config.iterations = 2;
            config.message_len = 24;
            config.round = round as u64;
            let setup = setup_round(&config, &mut rng).unwrap();
            let messages: Vec<String> = (0..4).map(|i| format!("round {round} msg {i}")).collect();
            let submissions: Vec<TrapSubmission> = messages
                .iter()
                .enumerate()
                .map(|(i, message)| {
                    let gid = i % config.num_groups;
                    make_trap_submission(
                        gid,
                        &setup.groups[gid].public_key,
                        &setup.trustees.public_key,
                        config.round,
                        message.as_bytes(),
                        config.message_len,
                        &mut rng,
                    )
                    .unwrap()
                    .0
                })
                .collect();
            jobs.push(RoundJob::new(
                setup,
                RoundSubmissions::Trap(submissions),
                seed + round as u64,
            ));
            expected.push(messages);
        }
        (jobs, expected)
    }

    fn recovered(output: &RoundOutput) -> Vec<String> {
        let mut messages: Vec<String> = output
            .plaintexts
            .iter()
            .map(|p| {
                String::from_utf8(p.iter().copied().take_while(|&b| b != 0).collect()).unwrap()
            })
            .collect();
        messages.sort();
        messages
    }

    #[test]
    fn single_round_delivers_and_matches_sequential_driver() {
        let (jobs, expected) = trap_jobs(1, 1000);
        let sequential = RoundDriver::new(jobs[0].full_setup().unwrap().clone());
        let submissions = match &jobs[0].submissions {
            RoundSubmissions::Trap(s) => s.clone(),
            _ => unreachable!(),
        };
        let mut driver_rng = StdRng::seed_from_u64(jobs[0].seed);
        let sequential_output = sequential
            .run_trap_round(&submissions, &mut driver_rng)
            .unwrap();

        let engine = Engine::with_workers(3);
        let report = engine.run_round(jobs.into_iter().next().unwrap()).unwrap();

        let mut want = expected[0].clone();
        want.sort();
        assert_eq!(recovered(&report.output), want);
        // Byte equivalence, not just set equivalence.
        assert_eq!(report.output.plaintexts, sequential_output.plaintexts);
        assert_eq!(report.output.per_group, sequential_output.per_group);
        assert_eq!(
            report.output.routed_ciphertexts,
            sequential_output.routed_ciphertexts
        );
        assert!(report.mix_messages > 0);
        assert!(report.mix_bytes > 0);
    }

    #[test]
    fn multiple_rounds_pipeline_in_one_run() {
        let (jobs, expected) = trap_jobs(3, 2000);
        let engine = Engine::with_workers(4);
        let reports = engine.run_rounds(jobs);
        assert_eq!(reports.len(), 3);
        for (report, want) in reports.into_iter().zip(expected) {
            let report = report.unwrap();
            let mut want = want;
            want.sort();
            assert_eq!(recovered(&report.output), want);
        }
    }

    #[test]
    fn engine_reports_per_round_failures_without_poisoning_others() {
        let (mut jobs, expected) = trap_jobs(2, 3000);
        jobs[0].adversary = Some(AdversaryPlan {
            group: 1,
            member: 1,
            iteration: 0,
            action: atom_core::adversary::Misbehavior::DropMessage { slot: 0 },
        });
        let engine = Engine::with_workers(2);
        let reports = engine.run_rounds(jobs);
        assert!(matches!(reports[0], Err(AtomError::TrapCheckFailed(_))));
        let ok = reports[1].as_ref().unwrap();
        let mut want = expected[1].clone();
        want.sort();
        assert_eq!(recovered(&ok.output), want);
    }

    #[test]
    fn escrow_reconstruction_heals_a_group_past_its_tolerance() {
        // h = 2: Lagrange reweighting covers one failure per group. Killing
        // TWO members of group 0 exceeds that, so building its actor must
        // take the buddy-escrow fallback (§4.5) — and the round still
        // delivers every message, because the reconstructed shares belong
        // to the same group key the submissions were encrypted under.
        let mut rng = StdRng::seed_from_u64(44);
        let mut config = AtomConfig::test_default();
        config.num_servers = 16;
        config.required_honest = 2;
        config.message_len = 24;
        let setup = setup_round(&config, &mut rng).unwrap();
        let victims = vec![setup.groups[0].members[0], setup.groups[0].members[1]];
        assert!(
            setup.groups[0].participating(&victims).is_err(),
            "two failures must exceed the Lagrange path's tolerance"
        );
        let messages: Vec<String> = (0..4).map(|i| format!("escrow msg {i}")).collect();
        let submissions: Vec<TrapSubmission> = messages
            .iter()
            .enumerate()
            .map(|(i, message)| {
                let gid = i % config.num_groups;
                make_trap_submission(
                    gid,
                    &setup.groups[gid].public_key,
                    &setup.trustees.public_key,
                    config.round,
                    message.as_bytes(),
                    config.message_len,
                    &mut rng,
                )
                .unwrap()
                .0
            })
            .collect();
        let mut job = RoundJob::new(setup, RoundSubmissions::Trap(submissions), 4100);
        job.failed_servers = victims;
        let report = Engine::with_workers(3).run_round(job).unwrap();
        let mut want = messages;
        want.sort();
        assert_eq!(recovered(&report.output), want);
    }

    #[test]
    fn epoch_fence_drops_stale_frames_but_maps_current_ones() {
        // A stale abort from an earlier epoch (wire round id below the
        // fence) must be dropped, not misdelivered to the retried round
        // that reuses job index 0.
        let (jobs, expected) = trap_jobs(1, 9100);
        let groups = jobs[0].config().num_groups;
        let network = InMemoryNetwork::new(groups + 1, LatencyModel::Zero, Vec::new());
        Transport::send(
            &network,
            0,
            groups,
            ABORT_LABEL.into(),
            wire::encode_abort(2, "stale"),
        );
        let mut options = EngineOptions::with_workers(2);
        options.round_offset = 7;
        let report = Engine::new(options.clone())
            .run_rounds_on(jobs, &network, &EngineRole::standalone(groups))
            .pop()
            .unwrap()
            .unwrap();
        let mut want = expected[0].clone();
        want.sort();
        assert_eq!(recovered(&report.output), want);

        // An abort in the current epoch's id range still maps back onto
        // the job it names and fails it, exactly as without the fence.
        let (jobs, _) = trap_jobs(1, 9100);
        let network = InMemoryNetwork::new(groups + 1, LatencyModel::Zero, Vec::new());
        Transport::send(
            &network,
            0,
            groups,
            ABORT_LABEL.into(),
            wire::encode_abort(7, "current"),
        );
        let result = Engine::new(options)
            .run_rounds_on(jobs, &network, &EngineRole::standalone(groups))
            .pop()
            .unwrap();
        match result {
            Err(AtomError::Engine {
                kind: EngineErrorKind::ProtocolAbort,
                ..
            }) => {}
            other => panic!("want a ProtocolAbort failure, got {other:?}"),
        }
    }

    #[test]
    fn chunk_ranges_cover_contiguously() {
        assert_eq!(chunk_ranges(0, 0, 4), vec![(0, 0)]);
        assert_eq!(chunk_ranges(7, 2, 4), vec![(0, 2), (2, 4), (4, 6), (6, 7)]);
        assert_eq!(chunk_ranges(7, usize::MAX, 4), vec![(0, 7)]);
        // Auto sizing spreads across the worker pool.
        assert_eq!(chunk_ranges(8, 0, 4), vec![(0, 2), (2, 4), (4, 6), (6, 8)]);
        assert_eq!(chunk_ranges(3, 0, 8), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn chunked_intake_output_is_byte_identical_across_chunkings() {
        let (jobs, _) = trap_jobs(1, 6000);
        let job = jobs.into_iter().next().unwrap();
        let mut reference: Option<RoundOutput> = None;
        for chunk in [1usize, 2, 3, usize::MAX] {
            let mut options = EngineOptions::with_workers(3);
            options.intake_chunk = chunk;
            let report = Engine::new(options).run_round(job.clone()).unwrap();
            match &reference {
                None => reference = Some(report.output),
                Some(want) => {
                    assert_eq!(report.output.plaintexts, want.plaintexts, "chunk={chunk}");
                    assert_eq!(report.output.per_group, want.per_group, "chunk={chunk}");
                    assert_eq!(
                        report.output.routed_ciphertexts, want.routed_ciphertexts,
                        "chunk={chunk}"
                    );
                }
            }
        }
    }

    /// A [`SubmissionSource`] over a prebuilt vector that counts how many
    /// submissions it actually materialized — the streaming tests' probe
    /// for "the flood was never buffered" and "only a window was resident".
    struct SlicedSource {
        submissions: Vec<TrapSubmission>,
        generated: AtomicUsize,
    }

    impl SlicedSource {
        fn new(submissions: Vec<TrapSubmission>) -> Self {
            Self {
                submissions,
                generated: AtomicUsize::new(0),
            }
        }
    }

    impl SubmissionSource for SlicedSource {
        fn total(&self) -> usize {
            self.submissions.len()
        }

        fn defense(&self) -> Defense {
            Defense::Trap
        }

        fn generate(&self, (start, end): (usize, usize)) -> AtomResult<SubmissionBlock> {
            self.generated.fetch_add(end - start, Ordering::SeqCst);
            Ok(SubmissionBlock::Trap(self.submissions[start..end].to_vec()))
        }
    }

    fn trap_submissions_of(job: &RoundJob) -> Vec<TrapSubmission> {
        match &job.submissions {
            RoundSubmissions::Trap(s) => s.clone(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn streaming_intake_is_byte_identical_across_windows() {
        let (jobs, _) = trap_jobs(1, 8200);
        let job = jobs.into_iter().next().unwrap();
        let submissions = trap_submissions_of(&job);
        let reference = Engine::with_workers(3).run_round(job.clone()).unwrap();

        for (window, chunk) in [(1usize, 1usize), (1, 2), (2, 1), (3, 3), (0, 1)] {
            let source = Arc::new(SlicedSource::new(submissions.clone()));
            let mut streamed = job.clone();
            streamed.submissions = RoundSubmissions::Stream(Arc::clone(&source) as _);
            let mut options = EngineOptions::with_workers(3);
            options.intake_chunk = chunk;
            options.intake_window = window;
            let report = Engine::new(options).run_round(streamed).unwrap();
            assert_eq!(
                report.output.plaintexts, reference.output.plaintexts,
                "window={window} chunk={chunk}"
            );
            assert_eq!(report.output.per_group, reference.output.per_group);
            assert_eq!(
                report.output.routed_ciphertexts,
                reference.output.routed_ciphertexts
            );
            assert_eq!(
                source.generated.load(Ordering::SeqCst),
                submissions.len(),
                "every submission must stream through exactly once"
            );
        }
    }

    #[test]
    fn bounded_window_keeps_only_a_window_resident() {
        let (jobs, _) = trap_jobs(1, 8300);
        let job = jobs.into_iter().next().unwrap();
        let submissions = trap_submissions_of(&job);
        let total = submissions.len();
        let mut streamed = job;
        streamed.submissions = RoundSubmissions::Stream(Arc::new(SlicedSource::new(submissions)));
        let mut options = EngineOptions::with_workers(3);
        options.intake_chunk = 1;
        options.intake_window = 1;

        atom_obs::reset();
        atom_obs::set_enabled(true);
        let report = Engine::new(options).run_round(streamed);
        let peak = atom_obs::gauge_peak("engine.intake.peak_in_flight");
        atom_obs::set_enabled(false);
        atom_obs::reset();

        report.unwrap();
        let peak = peak.expect("streaming intake records its peak");
        assert!(
            peak >= 1 && peak < total as u64,
            "window of 1 chunk x 1 submission must keep fewer than all \
             {total} submissions resident, saw peak {peak}"
        );
    }

    #[test]
    fn intake_cap_rejects_a_flood_without_materializing_it() {
        let (jobs, _) = trap_jobs(1, 8400);
        let job = jobs.into_iter().next().unwrap();
        let submissions = trap_submissions_of(&job);
        let total = submissions.len();
        let source = Arc::new(SlicedSource::new(submissions));
        let mut flooded = job;
        flooded.submissions = RoundSubmissions::Stream(Arc::clone(&source) as _);
        let mut options = EngineOptions::with_workers(2);
        options.intake_cap = total - 1;

        let err = Engine::new(options).run_round(flooded).unwrap_err();
        match &err {
            AtomError::Engine { kind, reason, .. } => {
                assert_eq!(*kind, EngineErrorKind::ProtocolAbort);
                assert!(
                    reason.contains("submission flood") && reason.contains("intake cap"),
                    "diagnosis must name the flood: {reason}"
                );
            }
            other => panic!("expected an engine abort, got {other:?}"),
        }
        assert_eq!(
            source.generated.load(Ordering::SeqCst),
            0,
            "a capped flood must fail closed before materializing anything"
        );
    }

    #[test]
    fn chunked_intake_reports_the_same_rejection_as_the_sequential_driver() {
        let (mut jobs, _) = trap_jobs(1, 7000);
        // Rebind submission 2 to another entry group without re-proving: the
        // batch check must fail, fall back, and name submission 2.
        if let RoundSubmissions::Trap(subs) = &mut jobs[0].submissions {
            subs[2].entry_group = (subs[2].entry_group + 1) % 3;
        }
        let submissions = match &jobs[0].submissions {
            RoundSubmissions::Trap(s) => s.clone(),
            _ => unreachable!(),
        };
        let driver = RoundDriver::new(jobs[0].full_setup().unwrap().clone());
        let mut driver_rng = StdRng::seed_from_u64(jobs[0].seed);
        let sequential_err = driver
            .run_trap_round(&submissions, &mut driver_rng)
            .unwrap_err();

        for chunk in [1usize, 2, usize::MAX] {
            let mut options = EngineOptions::with_workers(3);
            options.intake_chunk = chunk;
            let err = Engine::new(options).run_round(jobs[0].clone()).unwrap_err();
            assert_eq!(
                format!("{err:?}"),
                format!("{sequential_err:?}"),
                "chunk={chunk}"
            );
        }
    }

    #[test]
    fn nizk_adversary_verdict_matches_sequential_driver() {
        use atom_core::message::make_nizk_submission;

        let mut rng = StdRng::seed_from_u64(88);
        let mut config = AtomConfig::test_default();
        config.defense = atom_core::config::Defense::Nizk;
        config.num_groups = 3;
        config.iterations = 2;
        config.message_len = 24;
        let setup = setup_round(&config, &mut rng).unwrap();
        let submissions: Vec<_> = (0..6)
            .map(|i| {
                let gid = i % config.num_groups;
                make_nizk_submission(
                    gid,
                    &setup.groups[gid].public_key,
                    format!("msg {i}").as_bytes(),
                    config.message_len,
                    &mut rng,
                )
                .unwrap()
                .0
            })
            .collect();
        let plan = AdversaryPlan {
            group: 2,
            member: 3,
            iteration: 1,
            action: atom_core::adversary::Misbehavior::ReplaceMessage { slot: 0 },
        };

        let driver = RoundDriver::new(setup.clone()).with_adversary(plan);
        let mut driver_rng = StdRng::seed_from_u64(4321);
        let sequential_err = driver
            .run_nizk_round(&submissions, &mut driver_rng)
            .unwrap_err();

        let mut job = RoundJob::new(setup, RoundSubmissions::Nizk(submissions), 4321);
        job.adversary = Some(plan);
        let mut options = EngineOptions::with_workers(3);
        options.intake_chunk = 2;
        let engine_err = Engine::new(options).run_round(job).unwrap_err();

        // Batched re-encryption verification must fall back and blame the
        // exact same server for the exact same reason.
        match (&engine_err, &sequential_err) {
            (
                AtomError::ProtocolViolation {
                    group: g1,
                    member: m1,
                    reason: r1,
                },
                AtomError::ProtocolViolation {
                    group: g2,
                    member: m2,
                    reason: r2,
                },
            ) => {
                assert_eq!((g1, m1), (g2, m2));
                assert_eq!(r1, r2);
                assert_eq!(*g1, 2);
                assert_eq!(*m1, Some(3));
            }
            other => panic!("expected matching protocol violations, got {other:?}"),
        }
    }

    fn sharded_pair(rounds: usize, seed: u64) -> (Vec<RoundJob>, Vec<RoundJob>) {
        use atom_core::directory::derive_setup;
        let mut rng = StdRng::seed_from_u64(91);
        let mut full = Vec::new();
        let mut sharded = Vec::new();
        for round in 0..rounds {
            let mut config = AtomConfig::test_default();
            config.num_groups = 3;
            config.iterations = 2;
            config.message_len = 24;
            config.round = round as u64;
            config.beacon_seed = 0xD1CE ^ round as u64;
            let setup = derive_setup(&config).unwrap();
            let submissions: Vec<TrapSubmission> = (0..4)
                .map(|i| {
                    let gid = i % config.num_groups;
                    make_trap_submission(
                        gid,
                        &setup.groups[gid].public_key,
                        &setup.trustees.public_key,
                        config.round,
                        format!("sharded r{round} m{i}").as_bytes(),
                        config.message_len,
                        &mut rng,
                    )
                    .unwrap()
                    .0
                })
                .collect();
            full.push(RoundJob::new(
                setup,
                RoundSubmissions::Trap(submissions.clone()),
                seed + round as u64,
            ));
            sharded.push(RoundJob::sharded(
                config,
                RoundSubmissions::Trap(submissions),
                seed + round as u64,
            ));
        }
        (full, sharded)
    }

    #[test]
    fn sharded_setup_matches_prebuilt_derivation_byte_for_byte() {
        let (full, sharded) = sharded_pair(2, 42_000);
        let engine = Engine::with_workers(3);
        let reference = engine.run_rounds(full);
        let derived = engine.run_rounds(sharded);
        assert_eq!(reference.len(), derived.len());
        for (round, (want, got)) in reference.iter().zip(&derived).enumerate() {
            let want = want.as_ref().unwrap();
            let got = got.as_ref().unwrap();
            assert_eq!(
                got.output.plaintexts, want.output.plaintexts,
                "round {round} plaintexts diverge"
            );
            assert_eq!(got.output.per_group, want.output.per_group);
            assert_eq!(
                got.output.routed_ciphertexts,
                want.output.routed_ciphertexts
            );
            assert_eq!(got.mix_messages, want.mix_messages);
            assert_eq!(got.mix_bytes, want.mix_bytes);
            // The prebuilt directory predates the engine; the sharded one
            // was derived inside the run and must report its cost.
            assert_eq!(want.setup_latency, Duration::ZERO);
            assert!(got.setup_latency > Duration::ZERO);
        }
    }

    #[test]
    fn sharded_round_reports_failures_like_a_prebuilt_one() {
        let (_, mut sharded) = sharded_pair(2, 43_000);
        sharded[0].adversary = Some(AdversaryPlan {
            group: 1,
            member: 1,
            iteration: 0,
            action: atom_core::adversary::Misbehavior::DropMessage { slot: 0 },
        });
        let reports = Engine::with_workers(2).run_rounds(sharded);
        assert!(matches!(reports[0], Err(AtomError::TrapCheckFailed(_))));
        assert!(reports[1].is_ok(), "round 1 must survive round 0's failure");
    }

    #[test]
    fn sharded_round_rejects_invalid_config_up_front() {
        let mut config = AtomConfig::test_default();
        config.group_size = 0;
        let job = RoundJob::sharded(config, RoundSubmissions::Trap(Vec::new()), 1);
        let report = Engine::with_workers(1).run_round(job);
        assert!(matches!(report, Err(AtomError::Config(_))));
    }

    #[test]
    fn straggler_group_does_not_block_others() {
        let (jobs, expected) = trap_jobs(1, 4000);
        let mut options = EngineOptions::with_workers(3);
        options.stragglers = vec![(0, Duration::from_millis(30))];
        let engine = Engine::new(options);
        let report = engine.run_round(jobs.into_iter().next().unwrap()).unwrap();
        let mut want = expected[0].clone();
        want.sort();
        assert_eq!(recovered(&report.output), want);
        // The straggler inflates its own iterations; the pipelined latency
        // must track it.
        assert!(report.pipelined_latency >= Duration::from_millis(60));
    }

    #[test]
    fn latency_model_produces_pipelined_latency() {
        let (jobs, _) = trap_jobs(1, 5000);
        let mut options = EngineOptions::with_workers(2);
        options.latency = LatencyModel::Fixed { millis: 40 };
        let engine = Engine::new(options);
        let report = engine.run_round(jobs.into_iter().next().unwrap()).unwrap();
        // Two iterations ⇒ one charged hop layer.
        assert!(report.pipelined_latency >= Duration::from_millis(40));
        assert!(report.output.timings.network_critical_path >= Duration::from_millis(40));
    }
}
