//! Structured fault verdicts: the bridge from a dead round to an eviction.
//!
//! When a round fails with an [`AtomError::Engine`] the error carries the
//! transport nodes implicated in the failure (the mailboxes a stall was
//! still waiting on, or the peer a send could not reach). This module turns
//! that raw evidence into a [`FaultVerdict`] — which *process* is at fault,
//! which *servers* that process hosted, and how confident the diagnosis is
//! — which the coordinator gossips in an `evict` wire frame
//! ([`crate::wire::EvictFrame`]) so every surviving process applies the
//! identical membership change and the healed directory stays a pure
//! function of `(config, eviction log)`.

use atom_core::error::{AtomError, EngineErrorKind};

/// How a fault verdict classifies the failed process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The process is gone: its peer reset the connection, or it produced
    /// no frames at all before the stall timeout. Evict immediately.
    Dead,
    /// The process (or one of its servers) provably deviated — it sent an
    /// abort, a malformed frame, or failed a protocol check. Evict and
    /// attribute.
    Blamed,
    /// The process was implicated but the evidence is circumstantial
    /// (e.g. a stall that points at several processes). Evict it to heal
    /// the round, but a real deployment would only deprioritize it.
    Slow,
}

impl FaultKind {
    /// The verdict byte used by the `evict` wire frame.
    pub fn to_wire(self) -> u8 {
        match self {
            FaultKind::Dead => 0,
            FaultKind::Blamed => 1,
            FaultKind::Slow => 2,
        }
    }

    /// Parses a wire verdict byte; unknown values are rejected by the
    /// frame decoder.
    pub fn from_wire(byte: u8) -> Option<Self> {
        match byte {
            0 => Some(FaultKind::Dead),
            1 => Some(FaultKind::Blamed),
            2 => Some(FaultKind::Slow),
            _ => None,
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultKind::Dead => "dead",
            FaultKind::Blamed => "blamed",
            FaultKind::Slow => "slow",
        })
    }
}

/// One entry of the fleet's eviction log: a process (and the servers it
/// hosted) convicted of killing round `round`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultVerdict {
    /// The round whose failure produced this verdict.
    pub round: usize,
    /// The convicted fleet process index.
    pub process: usize,
    /// Classification of the conviction.
    pub kind: FaultKind,
    /// Global server ids the process hosted — the ids fed into
    /// [`AtomConfig::evicted_servers`](atom_core::config::AtomConfig::evicted_servers).
    pub servers: Vec<usize>,
    /// Human-readable evidence (the engine error's diagnosis).
    pub reason: String,
}

impl FaultVerdict {
    /// Diagnoses a failed round: maps the engine error's implicated
    /// transport nodes through `owners` (node → fleet process, the
    /// coordinator's group-ownership map) and convicts the process owning
    /// the most implicated nodes (ties broken toward the lowest index).
    /// `servers_of` supplies the global server ids a process hosts.
    ///
    /// Returns `None` when the error carries no usable evidence — a
    /// non-engine error, an engine error with no implicated nodes, or
    /// nodes that only point back at the coordinator itself
    /// (`own_process`): evicting nobody is better than evicting at random.
    pub fn diagnose(
        round: usize,
        error: &AtomError,
        owners: &[usize],
        own_process: usize,
        servers_of: impl Fn(usize) -> Vec<usize>,
    ) -> Option<FaultVerdict> {
        let AtomError::Engine {
            kind,
            reason,
            nodes,
        } = error
        else {
            return None;
        };
        let mut votes = vec![0usize; owners.iter().max().map_or(0, |max| max + 1)];
        for node in nodes {
            if let Some(&owner) = owners.get(*node) {
                if owner != own_process {
                    votes[owner] += 1;
                }
            }
        }
        let process = votes
            .iter()
            .enumerate()
            .filter(|(_, votes)| **votes > 0)
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(process, _)| process)?;
        let implicated = votes.iter().filter(|votes| **votes > 0).count();
        let kind = match kind {
            // A lost transport names the unreachable peer exactly.
            EngineErrorKind::TransportLost => FaultKind::Dead,
            // A stall pointing at a single process is as good as dead; one
            // pointing at several is circumstantial.
            EngineErrorKind::Stall if implicated == 1 => FaultKind::Dead,
            EngineErrorKind::Stall => FaultKind::Slow,
            // The aborting peer holds the authoritative error; convicting
            // the first implicated node is the best available attribution.
            EngineErrorKind::ProtocolAbort => FaultKind::Blamed,
            // A blown round deadline means the peer *was* making progress —
            // a drip-feeding slow-loris, not a corpse. Evicting it as Slow
            // keeps the door open for a later readmission.
            EngineErrorKind::Deadline => FaultKind::Slow,
        };
        Some(FaultVerdict {
            round,
            process,
            kind,
            servers: servers_of(process),
            reason: reason.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_error(kind: EngineErrorKind, nodes: Vec<usize>) -> AtomError {
        AtomError::Engine {
            kind,
            reason: "test failure".into(),
            nodes,
        }
    }

    /// owners: nodes 0,1 on process 0 (the coordinator), 2,3 on 1, 4,5 on 2.
    const OWNERS: [usize; 6] = [0, 0, 1, 1, 2, 2];

    #[test]
    fn transport_lost_convicts_the_unreachable_peer() {
        let error = engine_error(EngineErrorKind::TransportLost, vec![4]);
        let verdict = FaultVerdict::diagnose(3, &error, &OWNERS, 0, |p| vec![p * 10]).unwrap();
        assert_eq!(verdict.round, 3);
        assert_eq!(verdict.process, 2);
        assert_eq!(verdict.kind, FaultKind::Dead);
        assert_eq!(verdict.servers, vec![20]);
        assert_eq!(verdict.reason, "test failure");
    }

    #[test]
    fn single_process_stall_is_dead_multi_process_is_slow() {
        let error = engine_error(EngineErrorKind::Stall, vec![2, 3]);
        let verdict = FaultVerdict::diagnose(0, &error, &OWNERS, 0, |_| Vec::new()).unwrap();
        assert_eq!((verdict.process, verdict.kind), (1, FaultKind::Dead));

        // Nodes across two processes: circumstantial, majority wins.
        let error = engine_error(EngineErrorKind::Stall, vec![2, 3, 4]);
        let verdict = FaultVerdict::diagnose(0, &error, &OWNERS, 0, |_| Vec::new()).unwrap();
        assert_eq!((verdict.process, verdict.kind), (1, FaultKind::Slow));

        // A tie convicts the lower process index.
        let error = engine_error(EngineErrorKind::Stall, vec![3, 5]);
        let verdict = FaultVerdict::diagnose(0, &error, &OWNERS, 0, |_| Vec::new()).unwrap();
        assert_eq!(verdict.process, 1);
    }

    #[test]
    fn deadline_is_slow_even_with_one_implicated_node() {
        // Unlike a stall, a single-node deadline conviction stays `Slow`:
        // the peer demonstrably kept sending, just not fast enough.
        let error = engine_error(EngineErrorKind::Deadline, vec![2]);
        let verdict = FaultVerdict::diagnose(0, &error, &OWNERS, 0, |_| Vec::new()).unwrap();
        assert_eq!((verdict.process, verdict.kind), (1, FaultKind::Slow));
    }

    #[test]
    fn evidence_free_errors_yield_no_verdict() {
        // No implicated nodes.
        let error = engine_error(EngineErrorKind::Stall, Vec::new());
        assert!(FaultVerdict::diagnose(0, &error, &OWNERS, 0, |_| Vec::new()).is_none());
        // Nodes that only point at the diagnosing process itself.
        let error = engine_error(EngineErrorKind::Stall, vec![0, 1]);
        assert!(FaultVerdict::diagnose(0, &error, &OWNERS, 0, |_| Vec::new()).is_none());
        // Non-engine errors carry no node evidence at all.
        let error = AtomError::Config("nope".into());
        assert!(FaultVerdict::diagnose(0, &error, &OWNERS, 0, |_| Vec::new()).is_none());
        // Out-of-range nodes are ignored rather than panicking.
        let error = engine_error(EngineErrorKind::Stall, vec![99]);
        assert!(FaultVerdict::diagnose(0, &error, &OWNERS, 0, |_| Vec::new()).is_none());
    }

    #[test]
    fn wire_byte_roundtrips() {
        for kind in [FaultKind::Dead, FaultKind::Blamed, FaultKind::Slow] {
            assert_eq!(FaultKind::from_wire(kind.to_wire()), Some(kind));
        }
        assert_eq!(FaultKind::from_wire(3), None);
        assert_eq!(FaultKind::from_wire(0xff), None);
    }
}
