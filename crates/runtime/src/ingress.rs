//! The client ingress tier: an [`IngressServer`] accepting `submit`
//! frames over the event-driven client transport and feeding them to the
//! engine as a [`SubmissionSource`].
//!
//! The paper's "millions of users" reach Atom's fleet through exactly
//! this edge: each user opens one connection to the coordinator, sends
//! one [`wire::SubmitFrame`] per round, and gets back a
//! [`wire::SubmitAckFrame`] verdict. The server multiplexes every
//! connection on **one thread** (`atom_net::evloop`) and defends itself
//! in three layers:
//!
//! 1. **Framing/decoding** — the evloop bounds frame sizes and convicts
//!    slow-drip and backpressured connections; `wire::decode` gives the
//!    payload the full adversarial treatment. A malformed submission
//!    closes its connection.
//! 2. **Per-connection token bucket** ([`TokenBucket`]) — no client may
//!    submit faster than `rate` sustained, `burst` instantaneous; excess
//!    is *shed* with a retry-after hint, not queued.
//! 3. **Bounded admission queue** ([`AdmissionQueue`]) — the buffer
//!    between the ingress thread and round intake holds at most
//!    `queue_capacity` submissions; a flood past the bound sheds instead
//!    of growing memory (the acceptance criterion: not OOM, not hung).
//!
//! Admitted submissions become an [`IngressSource`] — sorted by client
//! index so the round's intake order (and therefore the round output) is
//! byte-identical to the same submissions materialized directly into a
//! `RoundJob`, regardless of socket arrival order.
//!
//! Every decision is counted through `atom_obs` (`ingress.accepted`,
//! `ingress.shed.rate`, `ingress.shed.queue`,
//! `ingress.rejected.malformed`, `ingress.rejected.round`,
//! `ingress.rejected.variant`) so a flood is observable, not silent.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use atom_core::{AtomError, AtomResult, Defense, NizkSubmission, TrapSubmission};
use atom_net::evloop::{ConnId, Event, EventLoop, EvloopOptions};
use parking_lot::Mutex;

use crate::engine::{SubmissionBlock, SubmissionSource};
use crate::wire::{self, ClientSubmission, Frame, SubmitAckFrame};

/// A deterministic token-bucket rate limiter. Time is *injected* (a
/// `Duration` since an arbitrary epoch) rather than read from a clock, so
/// property tests can drive it with seeded schedules and the limiter's
/// decisions replay exactly.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Duration,
}

impl TokenBucket {
    /// A bucket refilling at `rate` tokens/second, holding at most
    /// `burst` tokens (and starting full).
    pub fn new(rate: f64, burst: f64) -> Self {
        Self {
            rate: rate.max(0.0),
            burst: burst.max(0.0),
            tokens: burst.max(0.0),
            last: Duration::ZERO,
        }
    }

    /// Charges one token at time `now` (monotone across calls; a
    /// regressing `now` refills nothing). Returns whether the request is
    /// within rate. Over any window `[0, t]` the number of `true`
    /// verdicts never exceeds `burst + rate · t` — the property the test
    /// suite pins down.
    pub fn admit(&mut self, now: Duration) -> bool {
        let elapsed = now.saturating_sub(self.last);
        if elapsed > Duration::ZERO {
            self.tokens = (self.tokens + elapsed.as_secs_f64() * self.rate).min(self.burst);
            self.last = now;
        }
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Verdict of [`AdmissionQueue::offer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The item was enqueued.
    Admitted,
    /// The queue was full; the item was dropped (shed).
    Shed,
}

/// A bounded FIFO between the ingress thread and round intake, with
/// shed/admit accounting. The invariant the property tests pin down:
/// `offered() == admitted() + shed()` at every point, and the live
/// length never exceeds the capacity.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    offered: u64,
    admitted: u64,
    shed: u64,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Self {
            items: VecDeque::new(),
            capacity,
            offered: 0,
            admitted: 0,
            shed: 0,
        }
    }

    /// Offers one item: enqueued if there is room, shed otherwise.
    pub fn offer(&mut self, item: T) -> Admission {
        self.offered += 1;
        if self.items.len() >= self.capacity {
            self.shed += 1;
            Admission::Shed
        } else {
            self.items.push_back(item);
            self.admitted += 1;
            Admission::Admitted
        }
    }

    /// Takes everything currently queued (freeing capacity).
    pub fn drain(&mut self) -> Vec<T> {
        self.items.drain(..).collect()
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing is currently queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total items ever offered.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Total items ever admitted.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Total items ever shed.
    pub fn shed(&self) -> u64 {
        self.shed
    }
}

/// Tuning knobs of an [`IngressServer`].
#[derive(Clone, Debug)]
pub struct IngressOptions {
    /// The round submissions must target; mismatches are shed with a
    /// retry hint (an early client is not an attacker).
    pub round: usize,
    /// The defense variant submissions must carry; a mismatch is a
    /// protocol violation and closes the connection.
    pub defense: Defense,
    /// The application tag submissions must carry.
    pub app: u16,
    /// Sustained per-connection submission rate (tokens/second).
    pub rate: f64,
    /// Instantaneous per-connection burst allowance.
    pub burst: f64,
    /// Bound on the admission queue.
    pub queue_capacity: usize,
    /// Retry hint carried in shed acks.
    pub retry_after: Duration,
    /// Transport-level knobs (idle timeout, frame cap, connection cap).
    pub evloop: EvloopOptions,
}

impl Default for IngressOptions {
    fn default() -> Self {
        Self {
            round: 0,
            defense: Defense::Nizk,
            app: 0,
            rate: 100.0,
            burst: 20.0,
            queue_capacity: 1 << 16,
            retry_after: Duration::from_millis(250),
            evloop: EvloopOptions::default(),
        }
    }
}

/// A snapshot of one server's decision counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngressStats {
    /// Submissions offered to the admission queue (post rate limit).
    pub offered: u64,
    /// Submissions admitted to the queue.
    pub admitted: u64,
    /// Submissions shed by the per-connection rate limit.
    pub shed_rate: u64,
    /// Submissions shed by the full admission queue.
    pub shed_queue: u64,
    /// Frames rejected as malformed (connection closed).
    pub malformed: u64,
    /// Well-formed submissions for the wrong round or app tag.
    pub wrong_round: u64,
}

struct IngressShared {
    queue: Mutex<AdmissionQueue<(u64, ClientSubmission)>>,
    shed_rate: AtomicU64,
    malformed: AtomicU64,
    wrong_round: AtomicU64,
    stop: AtomicBool,
}

/// A client-facing ingress server: one listener, one thread, thousands
/// of connections. See the [module docs](self) for the admission layers.
pub struct IngressServer {
    shared: Arc<IngressShared>,
    local_addr: SocketAddr,
    defense: Defense,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl IngressServer {
    /// Binds the listener (port `0` picks a free port) and starts the
    /// ingress thread.
    pub fn bind(addr: &str, options: IngressOptions) -> io::Result<Self> {
        let evloop = EventLoop::bind(addr, options.evloop.clone())?;
        let local_addr = evloop.local_addr();
        let shared = Arc::new(IngressShared {
            queue: Mutex::new(AdmissionQueue::new(options.queue_capacity)),
            shed_rate: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            wrong_round: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let defense = options.defense;
        let serve_shared = Arc::clone(&shared);
        let thread = std::thread::spawn(move || serve(evloop, serve_shared, options));
        Ok(Self {
            shared,
            local_addr,
            defense,
            thread: Mutex::new(Some(thread)),
        })
    }

    /// The listener's resolved address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current decision counters.
    pub fn stats(&self) -> IngressStats {
        let queue = self.shared.queue.lock();
        IngressStats {
            offered: queue.offered(),
            admitted: queue.admitted(),
            shed_rate: self.shared.shed_rate.load(Ordering::Relaxed),
            shed_queue: queue.shed(),
            malformed: self.shared.malformed.load(Ordering::Relaxed),
            wrong_round: self.shared.wrong_round.load(Ordering::Relaxed),
        }
    }

    /// Submissions currently waiting in the admission queue.
    pub fn queued(&self) -> usize {
        self.shared.queue.lock().len()
    }

    /// Waits until at least `expected` submissions are queued (or the
    /// timeout expires), then drains them into an [`IngressSource`]:
    /// sorted by client index, duplicate client indices dropped (first
    /// kept), ready to stream into a `RoundJob`.
    pub fn source(&self, expected: usize, timeout: Duration) -> AtomResult<IngressSource> {
        let deadline = Instant::now() + timeout;
        loop {
            if self.shared.queue.lock().len() >= expected {
                break;
            }
            if Instant::now() >= deadline {
                let queued = self.shared.queue.lock().len();
                return Err(AtomError::Config(format!(
                    "ingress source timed out with {queued}/{expected} submissions queued"
                )));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut items = self.shared.queue.lock().drain();
        items.sort_by_key(|(client, _)| *client);
        items.dedup_by_key(|(client, _)| *client);
        IngressSource::from_items(self.defense, items)
    }

    /// Stops the ingress thread, closes every connection and joins.
    /// Idempotent; also run on drop.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.thread.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for IngressServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The ingress thread: polls the event loop, decodes submit frames and
/// runs the admission layers.
fn serve(mut evloop: EventLoop, shared: Arc<IngressShared>, options: IngressOptions) {
    let epoch = Instant::now();
    let mut buckets: HashMap<ConnId, TokenBucket> = HashMap::new();
    let mut events = Vec::new();
    while !shared.stop.load(Ordering::SeqCst) {
        events.clear();
        let progress = evloop.poll(&mut events);
        for event in events.drain(..) {
            match event {
                Event::Opened { conn, .. } => {
                    buckets.insert(conn, TokenBucket::new(options.rate, options.burst));
                }
                Event::Closed { conn, .. } => {
                    buckets.remove(&conn);
                }
                Event::Frame { conn, payload } => {
                    handle_frame(
                        &mut evloop,
                        &shared,
                        &options,
                        &mut buckets,
                        conn,
                        &payload,
                        epoch.elapsed(),
                    );
                }
            }
        }
        if !progress {
            // Nothing moved this pass: yield briefly instead of spinning
            // a core (the scan loop has no poll(2) to block on).
            std::thread::sleep(Duration::from_micros(500));
        }
    }
    evloop.close_all();
}

/// Runs one decoded client frame through validation → rate limit →
/// admission queue, answering with an ack or closing the connection.
fn handle_frame(
    evloop: &mut EventLoop,
    shared: &IngressShared,
    options: &IngressOptions,
    buckets: &mut HashMap<ConnId, TokenBucket>,
    conn: ConnId,
    payload: &[u8],
    now: Duration,
) {
    let frame = match wire::decode(payload) {
        Ok(Frame::Submit(frame)) => frame,
        // Anything else — undecodable bytes or a non-submit frame — is a
        // protocol violation on a client connection.
        _ => {
            shared.malformed.fetch_add(1, Ordering::Relaxed);
            atom_obs::count("ingress.rejected.malformed", 1);
            evloop.close(conn);
            return;
        }
    };
    if frame.round != options.round || frame.app != options.app {
        // An early/late-but-honest client: shed with a retry hint rather
        // than convicting the connection.
        shared.wrong_round.fetch_add(1, Ordering::Relaxed);
        atom_obs::count("ingress.rejected.round", 1);
        send_ack(evloop, conn, options, true);
        return;
    }
    let variant_ok = matches!(
        (&frame.submission, options.defense),
        (ClientSubmission::Nizk(_), Defense::Nizk) | (ClientSubmission::Trap(_), Defense::Trap)
    );
    if !variant_ok {
        shared.malformed.fetch_add(1, Ordering::Relaxed);
        atom_obs::count("ingress.rejected.variant", 1);
        evloop.close(conn);
        return;
    }
    let Some(bucket) = buckets.get_mut(&conn) else {
        return; // connection already closed this pass
    };
    if !bucket.admit(now) {
        shared.shed_rate.fetch_add(1, Ordering::Relaxed);
        atom_obs::count("ingress.shed.rate", 1);
        send_ack(evloop, conn, options, true);
        return;
    }
    match shared.queue.lock().offer((frame.client, frame.submission)) {
        Admission::Admitted => {
            atom_obs::count("ingress.accepted", 1);
            send_ack(evloop, conn, options, false);
        }
        Admission::Shed => {
            atom_obs::count("ingress.shed.queue", 1);
            send_ack(evloop, conn, options, true);
        }
    }
}

fn send_ack(evloop: &mut EventLoop, conn: ConnId, options: &IngressOptions, shed: bool) {
    let ack = SubmitAckFrame {
        round: options.round,
        shed,
        retry_after: if shed {
            options.retry_after
        } else {
            Duration::ZERO
        },
    };
    evloop.send(conn, &wire::encode_submit_ack(&ack));
}

/// The submissions one ingress round admitted, ordered by client index —
/// a [`SubmissionSource`] the engine streams through its bounded intake
/// window exactly like any other source.
pub struct IngressSource {
    submissions: Sorted,
}

enum Sorted {
    Nizk(Vec<NizkSubmission>),
    Trap(Vec<TrapSubmission>),
}

impl IngressSource {
    fn from_items(defense: Defense, items: Vec<(u64, ClientSubmission)>) -> AtomResult<Self> {
        let submissions = match defense {
            Defense::Nizk => {
                let mut out = Vec::with_capacity(items.len());
                for (client, submission) in items {
                    match submission {
                        ClientSubmission::Nizk(s) => out.push(s),
                        ClientSubmission::Trap(_) => {
                            return Err(AtomError::Config(format!(
                                "client {client} admitted with the wrong defense variant"
                            )))
                        }
                    }
                }
                Sorted::Nizk(out)
            }
            Defense::Trap => {
                let mut out = Vec::with_capacity(items.len());
                for (client, submission) in items {
                    match submission {
                        ClientSubmission::Trap(s) => out.push(s),
                        ClientSubmission::Nizk(_) => {
                            return Err(AtomError::Config(format!(
                                "client {client} admitted with the wrong defense variant"
                            )))
                        }
                    }
                }
                Sorted::Trap(out)
            }
        };
        Ok(Self { submissions })
    }
}

impl SubmissionSource for IngressSource {
    fn total(&self) -> usize {
        match &self.submissions {
            Sorted::Nizk(v) => v.len(),
            Sorted::Trap(v) => v.len(),
        }
    }

    fn defense(&self) -> Defense {
        match &self.submissions {
            Sorted::Nizk(_) => Defense::Nizk,
            Sorted::Trap(_) => Defense::Trap,
        }
    }

    fn generate(&self, range: (usize, usize)) -> AtomResult<SubmissionBlock> {
        let (start, end) = range;
        let bounds_err = || {
            AtomError::Config(format!(
                "ingress source asked for submissions {start}..{end} of {}",
                self.total()
            ))
        };
        match &self.submissions {
            Sorted::Nizk(v) => Ok(SubmissionBlock::Nizk(
                v.get(start..end).ok_or_else(bounds_err)?.to_vec(),
            )),
            Sorted::Trap(v) => Ok(SubmissionBlock::Trap(
                v.get(start..end).ok_or_else(bounds_err)?.to_vec(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    // ---- token bucket properties -----------------------------------

    /// Seeded schedules: over every prefix of every schedule, admissions
    /// never exceed `burst + rate · elapsed` (the defining property), and
    /// identical schedules produce identical decision strings.
    #[test]
    fn token_bucket_never_admits_above_rate_times_time_plus_burst() {
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let rate = 1.0 + (rng.next_u64() % 200) as f64;
            let burst = 1.0 + (rng.next_u64() % 50) as f64;
            let mut bucket = TokenBucket::new(rate, burst);
            let mut now = Duration::ZERO;
            let mut admitted = 0u64;
            for _ in 0..2_000 {
                // Mixed cadence: mostly sub-token gaps, occasional idles.
                let step_us = match rng.next_u64() % 10 {
                    0 => 0,
                    1..=7 => rng.next_u64() % 3_000,
                    _ => rng.next_u64() % 200_000,
                };
                now += Duration::from_micros(step_us);
                if bucket.admit(now) {
                    admitted += 1;
                }
                let bound = burst + rate * now.as_secs_f64();
                assert!(
                    (admitted as f64) <= bound + 1e-6,
                    "seed {seed}: {admitted} admitted by t={now:?}, bound {bound:.3}"
                );
            }
            assert!(admitted > 0, "seed {seed}: schedule admitted nothing");
        }
    }

    #[test]
    fn token_bucket_is_deterministic_for_identical_schedules() {
        let schedule: Vec<Duration> = (0..500)
            .map(|i| Duration::from_micros((i as u64) * 1_700 % 90_000))
            .collect();
        let run = || {
            let mut bucket = TokenBucket::new(50.0, 5.0);
            let mut now = Duration::ZERO;
            schedule
                .iter()
                .map(|step| {
                    now += *step;
                    bucket.admit(now)
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn token_bucket_burst_is_spent_then_refills() {
        let mut bucket = TokenBucket::new(10.0, 3.0);
        // The full burst is available instantly...
        assert!(bucket.admit(Duration::ZERO));
        assert!(bucket.admit(Duration::ZERO));
        assert!(bucket.admit(Duration::ZERO));
        // ...then the bucket is dry until time passes.
        assert!(!bucket.admit(Duration::ZERO));
        assert!(!bucket.admit(Duration::from_millis(40)));
        // 100 ms at 10/s refills one token.
        assert!(bucket.admit(Duration::from_millis(110)));
        assert!(!bucket.admit(Duration::from_millis(110)));
    }

    // ---- admission queue properties --------------------------------

    /// Seeded offer/drain interleavings: the counters always satisfy
    /// `offered == admitted + shed`, the live length never exceeds the
    /// capacity, and nothing is lost — every offered item is either
    /// drained eventually or counted shed.
    #[test]
    fn admission_queue_conserves_every_offer() {
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let capacity = 1 + (rng.next_u64() % 32) as usize;
            let mut queue: AdmissionQueue<u64> = AdmissionQueue::new(capacity);
            let mut drained = 0u64;
            for i in 0..3_000u64 {
                if rng.next_u64() % 13 == 0 {
                    drained += queue.drain().len() as u64;
                } else {
                    queue.offer(i);
                }
                assert!(queue.len() <= capacity, "seed {seed}: capacity violated");
                assert_eq!(
                    queue.offered(),
                    queue.admitted() + queue.shed(),
                    "seed {seed}: conservation violated"
                );
            }
            drained += queue.drain().len() as u64;
            assert_eq!(queue.admitted(), drained, "seed {seed}: items lost");
            assert!(queue.shed() > 0, "seed {seed}: schedule never overflowed");
        }
    }

    #[test]
    fn admission_queue_is_deterministic_under_a_seeded_interleaving() {
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut queue: AdmissionQueue<u64> = AdmissionQueue::new(8);
            let mut log = Vec::new();
            for i in 0..500u64 {
                if rng.next_u64() % 7 == 0 {
                    log.push(queue.drain().len() as i64);
                } else {
                    log.push(match queue.offer(i) {
                        Admission::Admitted => -1,
                        Admission::Shed => -2,
                    });
                }
            }
            (log, queue.offered(), queue.admitted(), queue.shed())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0);
    }

    #[test]
    fn admission_queue_sheds_exactly_the_overflow() {
        let mut queue: AdmissionQueue<usize> = AdmissionQueue::new(4);
        for i in 0..10 {
            queue.offer(i);
        }
        assert_eq!(queue.offered(), 10);
        assert_eq!(queue.admitted(), 4);
        assert_eq!(queue.shed(), 6);
        assert_eq!(queue.drain(), vec![0, 1, 2, 3]);
    }
}
