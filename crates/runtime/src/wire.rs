//! The serialized batch format exchanged between group actors.
//!
//! The engine ships sub-batches through [`atom_net::InMemoryNetwork`]
//! envelopes rather than passing `Vec<MessageCiphertext>` by reference, so
//! traffic metering sees the true wire size and a future TCP transport can
//! reuse the format unchanged. Layout (all integers little-endian):
//!
//! ```text
//! header:  round u32 ‖ iteration u32 ‖ from u32 ‖ sent_virtual_nanos u64 ‖ count u32
//! message: components u16 ‖ component*
//! component: flags u8 (bit0: Y present) ‖ R 32B ‖ c 32B ‖ [Y 32B]
//! ```
//!
//! `from == u32::MAX` encodes the round orchestrator ([`SOURCE`]).
//!
//! Decoding validates every point (group-membership check included), and
//! length fields are bounds-checked before any allocation. In-process this
//! re-validates engine-generated traffic — a deliberate cost: it models what
//! a real group must do with bytes from a neighbour it does not trust, keeps
//! the engine's throughput numbers honest about it, and means the planned
//! TCP transport can reuse the decoder unchanged at an actual trust
//! boundary.

use std::time::Duration;

use atom_core::actor::SOURCE;
use atom_core::error::{AtomError, AtomResult};
use atom_crypto::elgamal::{Ciphertext, MessageCiphertext};
use atom_crypto::RistrettoPoint;
use curve25519_dalek::ristretto::CompressedRistretto;

/// A decoded mixing message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MixEnvelope {
    /// Index of the round this batch belongs to (within one engine run).
    pub round: usize,
    /// The iteration the receiving group consumes this batch in.
    pub iteration: usize,
    /// Sender group id, or [`SOURCE`] for the orchestrator.
    pub from: usize,
    /// The sender's virtual clock when the batch left the group.
    pub sent_virtual: Duration,
    /// The sub-batch itself.
    pub batch: Vec<MessageCiphertext>,
}

const HEADER_LEN: usize = 4 + 4 + 4 + 8 + 4;
const POINT_LEN: usize = 32;

fn put_point(out: &mut Vec<u8>, point: &RistrettoPoint) {
    out.extend_from_slice(&point.compress().to_bytes());
}

fn get_point(bytes: &[u8], offset: &mut usize) -> AtomResult<RistrettoPoint> {
    let end = *offset + POINT_LEN;
    let slice = bytes
        .get(*offset..end)
        .ok_or_else(|| AtomError::Malformed("mix envelope truncated in a point".into()))?;
    *offset = end;
    let mut array = [0u8; POINT_LEN];
    array.copy_from_slice(slice);
    CompressedRistretto(array)
        .decompress()
        .ok_or_else(|| AtomError::Malformed("mix envelope carries an invalid point".into()))
}

/// Serializes a sub-batch for transmission.
pub fn encode(
    round: usize,
    iteration: usize,
    from: usize,
    sent_virtual: Duration,
    batch: &[MessageCiphertext],
) -> Vec<u8> {
    let components: usize = batch.iter().map(|m| m.components.len()).sum();
    let mut out =
        Vec::with_capacity(HEADER_LEN + batch.len() * 2 + components * (1 + 3 * POINT_LEN));
    out.extend_from_slice(&(round as u32).to_le_bytes());
    out.extend_from_slice(&(iteration as u32).to_le_bytes());
    let from_wire: u32 = if from == SOURCE {
        u32::MAX
    } else {
        from as u32
    };
    out.extend_from_slice(&from_wire.to_le_bytes());
    out.extend_from_slice(&(sent_virtual.as_nanos() as u64).to_le_bytes());
    out.extend_from_slice(&(batch.len() as u32).to_le_bytes());

    for message in batch {
        out.extend_from_slice(&(message.components.len() as u16).to_le_bytes());
        for component in &message.components {
            let flags = component.y.is_some() as u8;
            out.push(flags);
            put_point(&mut out, &component.r);
            put_point(&mut out, &component.c);
            if let Some(y) = &component.y {
                put_point(&mut out, y);
            }
        }
    }
    out
}

/// Best-effort extraction of the round index from a (possibly corrupt)
/// envelope, so a decode failure can still be attributed to its round.
pub fn decode_round(bytes: &[u8]) -> Option<usize> {
    bytes
        .get(..4)
        .map(|s| u32::from_le_bytes(s.try_into().unwrap()) as usize)
}

/// Parses a serialized sub-batch.
pub fn decode(bytes: &[u8]) -> AtomResult<MixEnvelope> {
    if bytes.len() < HEADER_LEN {
        return Err(AtomError::Malformed(
            "mix envelope shorter than header".into(),
        ));
    }
    let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
    let round = u32_at(0) as usize;
    let iteration = u32_at(4) as usize;
    let from_wire = u32_at(8);
    let from = if from_wire == u32::MAX {
        SOURCE
    } else {
        from_wire as usize
    };
    let sent_virtual = Duration::from_nanos(u64::from_le_bytes(bytes[12..20].try_into().unwrap()));
    let count = u32_at(20) as usize;
    // Length fields are untrusted (this format is the trust boundary for the
    // planned TCP transport): never pre-allocate more than the body could
    // possibly hold — each message needs at least its 2-byte component
    // count, each component at least flags + two points.
    let body_len = bytes.len() - HEADER_LEN;
    if count > body_len / 2 {
        return Err(AtomError::Malformed(format!(
            "mix envelope claims {count} messages in a {body_len}-byte body"
        )));
    }

    let mut offset = HEADER_LEN;
    let mut batch = Vec::with_capacity(count);
    for _ in 0..count {
        let components_len = bytes
            .get(offset..offset + 2)
            .map(|s| u16::from_le_bytes(s.try_into().unwrap()) as usize)
            .ok_or_else(|| AtomError::Malformed("mix envelope truncated at a message".into()))?;
        offset += 2;
        if components_len > bytes.len().saturating_sub(offset) / (1 + 2 * POINT_LEN) {
            return Err(AtomError::Malformed(format!(
                "mix envelope claims {components_len} components past its end"
            )));
        }
        let mut components = Vec::with_capacity(components_len);
        for _ in 0..components_len {
            let flags = *bytes
                .get(offset)
                .ok_or_else(|| AtomError::Malformed("mix envelope truncated at flags".into()))?;
            offset += 1;
            let r = get_point(bytes, &mut offset)?;
            let c = get_point(bytes, &mut offset)?;
            let y = if flags & 1 == 1 {
                Some(get_point(bytes, &mut offset)?)
            } else {
                None
            };
            components.push(Ciphertext { r, c, y });
        }
        batch.push(MessageCiphertext { components });
    }
    if offset != bytes.len() {
        return Err(AtomError::Malformed(format!(
            "mix envelope has {} trailing bytes",
            bytes.len() - offset
        )));
    }
    Ok(MixEnvelope {
        round,
        iteration,
        from,
        sent_virtual,
        batch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_crypto::elgamal::{encrypt_message, KeyPair};
    use atom_crypto::encoding::encode_message_padded;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_batch(fresh: bool) -> Vec<MessageCiphertext> {
        let mut rng = StdRng::seed_from_u64(11);
        let keys = KeyPair::generate(&mut rng);
        (0..3u8)
            .map(|i| {
                let points = encode_message_padded(&[i; 8], 32).unwrap();
                let (mut ct, _) = encrypt_message(&keys.public, &points, &mut rng);
                if !fresh {
                    // Populate the auxiliary component so both encodings are
                    // exercised.
                    for component in &mut ct.components {
                        component.y = Some(component.r);
                    }
                }
                ct
            })
            .collect()
    }

    #[test]
    fn roundtrip_fresh_and_inflight_batches() {
        for fresh in [true, false] {
            let batch = sample_batch(fresh);
            let bytes = encode(3, 5, 2, Duration::from_millis(250), &batch);
            let envelope = decode(&bytes).unwrap();
            assert_eq!(envelope.round, 3);
            assert_eq!(envelope.iteration, 5);
            assert_eq!(envelope.from, 2);
            assert_eq!(envelope.sent_virtual, Duration::from_millis(250));
            assert_eq!(envelope.batch, batch);
        }
    }

    #[test]
    fn source_sender_roundtrips() {
        let bytes = encode(0, 0, SOURCE, Duration::ZERO, &[]);
        let envelope = decode(&bytes).unwrap();
        assert_eq!(envelope.from, SOURCE);
        assert!(envelope.batch.is_empty());
    }

    #[test]
    fn truncated_and_trailing_bytes_rejected() {
        let batch = sample_batch(true);
        let bytes = encode(1, 1, 0, Duration::ZERO, &batch);
        assert!(decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode(&bytes[..HEADER_LEN - 2]).is_err());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode(&padded).is_err());
    }

    #[test]
    fn corrupted_point_rejected() {
        let batch = sample_batch(true);
        let mut bytes = encode(1, 1, 0, Duration::ZERO, &batch);
        // Zero out the first point: an invalid encoding.
        let start = HEADER_LEN + 2 + 1;
        for b in &mut bytes[start..start + POINT_LEN] {
            *b = 0;
        }
        assert!(decode(&bytes).is_err());
    }
}
