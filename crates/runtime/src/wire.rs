//! The serialized frame formats exchanged between group actors and the
//! round orchestrator.
//!
//! The engine ships everything through [`atom_net::Transport`] envelopes
//! rather than passing Rust values by reference, so traffic metering sees
//! the true wire size and the TCP transport ships the identical bytes
//! between processes. Nine frame kinds, discriminated by the leading
//! byte (all integers little-endian):
//!
//! ```text
//! mix:   0x01 ‖ round u32 ‖ iteration u32 ‖ from u32 ‖ sent_virtual_nanos u64 ‖ count u32
//!        message:   components u16 ‖ component*
//!        component: flags u8 (bit0: Y present) ‖ R 32B ‖ c 32B ‖ [Y 32B]
//! exit:  0x02 ‖ round u32 ‖ gid u32 ‖ finished_virtual_nanos u64
//!        ‖ mix_messages u64 ‖ mix_bytes u64
//!        ‖ compute_count u32 ‖ compute_nanos u64 *
//!        ‖ payload_count u32 ‖ (len u32 ‖ bytes) *
//! abort: 0x03 ‖ round u32 ‖ reason_len u32 ‖ reason (UTF-8)
//! setup: 0x04 ‖ round u32 ‖ gid u32 ‖ flags u8 (must be 0) ‖ threshold u32
//!        ‖ member_count u32 ‖ member u32 * ‖ group_public_key 32B
//! telemetry:
//!        0x05 ‖ round u32 ‖ process u32 ‖ flags u8 (must be 0)
//!        ‖ gid_count u32 ‖ gid u32 *
//!        ‖ counter_count u32 ‖ (name_len u16 ‖ name ‖ value u64) *
//!        ‖ span_count u32 ‖ span *
//!        span: phase_len u16 ‖ phase ‖ note_len u16 ‖ note
//!              ‖ round u32 ‖ gid u32 ‖ tid u32 ‖ start_us u64 ‖ dur_us u64
//! evict: 0x06 ‖ verdict
//!        verdict: round u32 ‖ process u32 ‖ kind u8 (0 dead, 1 blamed,
//!                 2 slow) ‖ server_count u32 ‖ server u32 *
//!                 ‖ reason_len u16 ‖ reason (UTF-8)
//! rejoin:
//!        0x07 ‖ round u32 ‖ process u32 ‖ epoch u32 ‖ flags u8 (bit0:
//!        response, bit1: commit) ‖ digest 32B ‖ evict_count u32 ‖ verdict *
//! submit:
//!        0x08 ‖ round u32 ‖ client u64 ‖ flags u8 (bit0: trap variant)
//!        ‖ app u16 ‖ entry_group u32 ‖ body
//!        nizk body: ciphertext ‖ proof
//!        trap body: ciphertext ‖ proof ‖ ciphertext ‖ proof
//!                   ‖ trap_commitment 32B
//!        ciphertext: components u16 ‖ component *   (same component
//!                    layout as mix frames)
//!        proof: ann_count u16 ‖ A 32B * ‖ resp_count u16 ‖ u 32B *
//!               (responses are canonical scalars)
//! submit_ack:
//!        0x09 ‖ round u32 ‖ flags u8 (bit0: shed) ‖ retry_after_ms u32
//! ```
//!
//! `from == u32::MAX` in a mix frame encodes the round orchestrator
//! ([`SOURCE`]).
//!
//! This codec is the protocol's trust boundary: over
//! [`TcpTransport`](atom_net::tcp::TcpTransport) these bytes arrive from another process, and a real
//! deployment's neighbour group is not trusted at all. Decoding therefore
//! validates every field — group-membership checks on every point, length
//! fields bounds-checked against the actual body *before* any allocation —
//! and returns [`AtomError`] rather than panicking on anything adversarial.
//! The in-process engine runs the same decoder on its own traffic, a
//! deliberate cost that keeps throughput numbers honest about the work a
//! real group must do.

use std::time::Duration;

use atom_core::actor::SOURCE;
use atom_core::error::{AtomError, AtomResult};
use atom_core::{NizkSubmission, TrapSubmission};
use atom_crypto::commit::Commitment;
use atom_crypto::elgamal::{Ciphertext, MessageCiphertext, PublicKey};
use atom_crypto::nizk::enc::EncProof;
use atom_crypto::{RistrettoPoint, Scalar};
use atom_obs::SpanRecord;
use curve25519_dalek::ristretto::CompressedRistretto;

use crate::fault::{FaultKind, FaultVerdict};

/// A decoded mixing frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MixEnvelope {
    /// Index of the round this batch belongs to (within one engine run).
    pub round: usize,
    /// The iteration the receiving group consumes this batch in.
    pub iteration: usize,
    /// Sender group id, or [`SOURCE`] for the orchestrator.
    pub from: usize,
    /// The sender's virtual clock when the batch left the group.
    pub sent_virtual: Duration,
    /// The sub-batch itself.
    pub batch: Vec<MessageCiphertext>,
}

/// A decoded exit frame: one group's final products, sent to the round
/// orchestrator when the group finishes its last iteration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExitFrame {
    /// Index of the round within the engine run.
    pub round: usize,
    /// The exiting group.
    pub gid: usize,
    /// The group's virtual clock at the end of its last iteration.
    pub finished_virtual: Duration,
    /// Mixing messages this group pushed through the transport.
    pub mix_messages: u64,
    /// Mixing bytes this group pushed through the transport.
    pub mix_bytes: u64,
    /// Measured compute time of each of the group's iterations.
    pub compute: Vec<Duration>,
    /// The decoded exit payloads (traps and inner ciphertexts, or
    /// plaintexts in the NIZK variant).
    pub payloads: Vec<Vec<u8>>,
}

/// A decoded abort frame: a process observed a round failure and is telling
/// its peers so nobody waits on batches that will never come.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbortFrame {
    /// Index of the failed round within the engine run.
    pub round: usize,
    /// Human-readable failure description (the authoritative error object
    /// lives with the process that produced it).
    pub reason: String,
}

/// A decoded setup frame: the **public** half of one group's sharded-setup
/// derivation — membership, threshold and the DKG group public key — sent by
/// the process hosting the group to the coordinator and every peer. Secret
/// shares never travel: each process derives its hosted groups' full
/// [`GroupContext`](atom_core::directory::GroupContext)s locally and ships
/// only what [`public_only`](atom_core::directory::GroupContext::public_only)
/// retains.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SetupFrame {
    /// Index of the round within the engine run.
    pub round: usize,
    /// The group this frame describes.
    pub gid: usize,
    /// Global server ids of the group's members, in protocol order.
    pub members: Vec<usize>,
    /// Members required to participate in threshold decryption.
    pub threshold: usize,
    /// The group public key established by the DKG.
    pub public_key: PublicKey,
}

/// A decoded telemetry frame: one member process's span/counter snapshot
/// for a finished round, sent to the round orchestrator after the member's
/// last hosted group exits. Purely observational — the engine merges it
/// into the round's [`RoundReport`](crate::engine::RoundReport) and the
/// fleet trace file, and a duplicate from the same process is a benign
/// no-op (unlike a duplicate exit frame, which fails the round).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetryFrame {
    /// Index of the round within the engine run.
    pub round: usize,
    /// Fleet process index the snapshot came from (Perfetto `pid`).
    pub process: u32,
    /// The groups whose spans this snapshot covers (the sender's hosted
    /// groups); the orchestrator uses them to know when every remote
    /// group's telemetry has arrived.
    pub gids: Vec<usize>,
    /// Counter name/value pairs at snapshot time.
    pub counters: Vec<(String, u64)>,
    /// The process's recorded spans for this round.
    pub spans: Vec<SpanRecord>,
}

/// A decoded evict frame: the coordinator's fault verdict for a dead or
/// misbehaving process, gossiped to every surviving member so all of them
/// apply the identical membership change before the healed rounds run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvictFrame {
    /// The verdict being gossiped; its `round` field doubles as the frame's
    /// round header (the detection round).
    pub verdict: FaultVerdict,
}

/// A decoded rejoin frame. Doubles as the recovery handshake's
/// acknowledgement: a restarted (or surviving) member sends a *request*
/// carrying its last-known round and eviction-log digest; the coordinator
/// answers with a *response* (`response == true`) carrying the
/// authoritative eviction log and the current round, and treats a
/// survivor's matching digest as the barrier that keeps new-epoch traffic
/// from racing ahead of membership reassignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RejoinFrame {
    /// Request: the sender's last completed round. Response: the round the
    /// fleet will run next.
    pub round: usize,
    /// The fleet process index of the sender.
    pub process: usize,
    /// The recovery epoch this handshake opens (coordinator frames) or
    /// acknowledges (member acks). Each epoch's engine run uses a disjoint
    /// wire-round id range (`EngineOptions::round_offset`), so both sides
    /// must agree on the count — including a rejoining process that was
    /// dead for any number of epochs.
    pub epoch: usize,
    /// `false` for a member's request/ack, `true` for the coordinator's
    /// authoritative answer.
    pub response: bool,
    /// Set on the coordinator's *go* frame — the second phase of the
    /// inter-epoch barrier. A plan (`response` only) tells members what to
    /// apply; the commit (`response` + `commit`) tells them every survivor
    /// has acknowledged and drained, so the next epoch's frames cannot be
    /// confused with stale ones.
    pub commit: bool,
    /// Digest of the sender's eviction log (`eviction_log_digest` in the
    /// recovery harness, four FNV-64 lanes over the log's encoding); lets
    /// both sides detect divergent membership views without shipping the
    /// directory.
    pub digest: [u8; 32],
    /// The eviction log as the sender knows it (authoritative in a
    /// response; the member's view in a request).
    pub evictions: Vec<FaultVerdict>,
}

/// The payload of a [`SubmitFrame`]: one user submission in whichever
/// defense variant the round runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientSubmission {
    /// A NIZK-variant submission (one ciphertext plus its proof).
    Nizk(NizkSubmission),
    /// A trap-variant submission (two ciphertexts, two proofs and the
    /// trap commitment).
    Trap(TrapSubmission),
}

impl ClientSubmission {
    /// The entry group the submitting user chose.
    pub fn entry_group(&self) -> usize {
        match self {
            ClientSubmission::Nizk(s) => s.entry_group,
            ClientSubmission::Trap(s) => s.entry_group,
        }
    }
}

/// A decoded submit frame: one client's submission for a round, sent over
/// a client connection (see `atom_net::evloop`) to the ingress tier. This
/// is the protocol's *outermost* trust boundary — the sender is an
/// arbitrary internet host, not even a misbehaving server — so every
/// field gets the full adversarial treatment and a malformed frame
/// convicts only its own connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubmitFrame {
    /// The round the submission targets (ingress rejects mismatches).
    pub round: usize,
    /// The submitting client's index — the fleet-assigned slot that makes
    /// intake order deterministic regardless of socket arrival order.
    pub client: u64,
    /// Application tag (which anonymity service the payload belongs to);
    /// opaque to the codec, validated by ingress.
    pub app: u16,
    /// The submission itself.
    pub submission: ClientSubmission,
}

/// A decoded submit-ack frame: the ingress tier's per-submission verdict,
/// sent back on the client connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubmitAckFrame {
    /// The round the acked submission targeted.
    pub round: usize,
    /// `true` when the submission was load-shed (rate limit or full
    /// admission queue) rather than admitted.
    pub shed: bool,
    /// How long a shed client should wait before retrying (zero when
    /// admitted). Millisecond granularity on the wire.
    pub retry_after: Duration,
}

/// Any frame of the inter-group protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// A mixing sub-batch.
    Mix(MixEnvelope),
    /// A group's exit products.
    Exit(ExitFrame),
    /// A round-failure notification.
    Abort(AbortFrame),
    /// One group's public directory entry (sharded setup).
    Setup(SetupFrame),
    /// One process's span/counter snapshot for a finished round.
    Telemetry(TelemetryFrame),
    /// A fault verdict evicting a process from the fleet.
    Evict(EvictFrame),
    /// A catch-up / acknowledgement handshake frame.
    Rejoin(RejoinFrame),
    /// One client's submission for a round (client → ingress).
    Submit(SubmitFrame),
    /// The ingress tier's admit/shed verdict (ingress → client).
    SubmitAck(SubmitAckFrame),
}

const KIND_MIX: u8 = 1;
const KIND_EXIT: u8 = 2;
const KIND_ABORT: u8 = 3;
const KIND_SETUP: u8 = 4;
const KIND_TELEMETRY: u8 = 5;
const KIND_EVICT: u8 = 6;
const KIND_REJOIN: u8 = 7;
const KIND_SUBMIT: u8 = 8;
const KIND_SUBMIT_ACK: u8 = 9;

/// Minimum encoded size of one telemetry counter entry (empty name).
const MIN_COUNTER_LEN: usize = 2 + 8;
/// Minimum encoded size of one telemetry span (empty phase and note).
const MIN_SPAN_LEN: usize = 2 + 2 + 4 + 4 + 4 + 8 + 8;

const MIX_HEADER_LEN: usize = 1 + 4 + 4 + 4 + 8 + 4;
const POINT_LEN: usize = 32;
/// Hard cap on `reason` strings so a corrupt length cannot force a large
/// allocation before the bounds check against the body runs.
const MAX_ABORT_REASON: usize = 4096;
/// Minimum encoded size of one fault verdict (no servers, empty reason).
const MIN_VERDICT_LEN: usize = 4 + 4 + 1 + 4 + 2;
/// Size of the eviction-log digest carried by rejoin frames.
const DIGEST_LEN: usize = 32;
/// Hard cap on onion components in one client submission. A submission
/// carries exactly one user message (two in the trap variant), whose
/// component count is set by the deployment's padded message length —
/// far below this. The count is already bounded against the body before
/// allocation; the cap additionally stops a client from shipping a
/// maximum-size frame that is structurally valid but absurd.
const MAX_SUBMIT_COMPONENTS: usize = 256;
/// Fixed header of a submit frame (kind ‖ round ‖ client ‖ flags ‖ app ‖
/// entry_group).
const SUBMIT_HEADER_LEN: usize = 1 + 4 + 8 + 1 + 2 + 4;

fn put_point(out: &mut Vec<u8>, point: &RistrettoPoint) {
    out.extend_from_slice(&point.compress().to_bytes());
}

fn get_point(bytes: &[u8], offset: &mut usize, what: &str) -> AtomResult<RistrettoPoint> {
    let end = *offset + POINT_LEN;
    let slice = bytes
        .get(*offset..end)
        .ok_or_else(|| AtomError::Malformed(format!("{what} truncated in a point")))?;
    *offset = end;
    let mut array = [0u8; POINT_LEN];
    array.copy_from_slice(slice);
    CompressedRistretto(array)
        .decompress()
        .ok_or_else(|| AtomError::Malformed(format!("{what} carries an invalid point")))
}

/// Reads a 32-byte scalar and insists on the canonical encoding: the
/// vendored scalar type only exposes `from_bytes_mod_order`, so
/// canonicality is checked by re-serializing — a reduced value that does
/// not round-trip was non-canonical on the wire.
fn get_scalar(bytes: &[u8], offset: &mut usize, what: &str) -> AtomResult<Scalar> {
    let end = *offset + POINT_LEN;
    let slice = bytes
        .get(*offset..end)
        .ok_or_else(|| AtomError::Malformed(format!("{what} truncated in a scalar")))?;
    *offset = end;
    let mut array = [0u8; POINT_LEN];
    array.copy_from_slice(slice);
    let scalar = Scalar::from_bytes_mod_order(array);
    if scalar.to_bytes() != array {
        return Err(AtomError::Malformed(format!(
            "{what} carries a non-canonical scalar"
        )));
    }
    Ok(scalar)
}

fn get_u32(bytes: &[u8], offset: &mut usize, what: &str) -> AtomResult<u32> {
    let slice = bytes
        .get(*offset..*offset + 4)
        .ok_or_else(|| AtomError::Malformed(format!("frame truncated at {what}")))?;
    *offset += 4;
    Ok(u32::from_le_bytes(slice.try_into().unwrap()))
}

fn get_u16(bytes: &[u8], offset: &mut usize, what: &str) -> AtomResult<u16> {
    let slice = bytes
        .get(*offset..*offset + 2)
        .ok_or_else(|| AtomError::Malformed(format!("frame truncated at {what}")))?;
    *offset += 2;
    Ok(u16::from_le_bytes(slice.try_into().unwrap()))
}

/// Reads a `len u16 ‖ bytes` UTF-8 string. The length is untrusted but a
/// `u16` cannot exceed 64 KiB, and the slice lookup bounds it against the
/// actual body before the copy.
fn get_string(bytes: &[u8], offset: &mut usize, what: &str) -> AtomResult<String> {
    let len = get_u16(bytes, offset, what)? as usize;
    let slice = bytes
        .get(*offset..*offset + len)
        .ok_or_else(|| AtomError::Malformed(format!("{what} of {len} bytes past frame end")))?;
    *offset += len;
    Ok(std::str::from_utf8(slice)
        .map_err(|_| AtomError::Malformed(format!("{what} is not UTF-8")))?
        .to_string())
}

/// Writes a `len u16 ‖ bytes` string; over-long text is truncated at a
/// character boundary so the decoder's UTF-8 check still passes.
fn put_string(out: &mut Vec<u8>, text: &str) {
    let mut cut = text.len().min(u16::MAX as usize);
    while !text.is_char_boundary(cut) {
        cut -= 1;
    }
    out.extend_from_slice(&(cut as u16).to_le_bytes());
    out.extend_from_slice(&text.as_bytes()[..cut]);
}

fn get_u64(bytes: &[u8], offset: &mut usize, what: &str) -> AtomResult<u64> {
    let slice = bytes
        .get(*offset..*offset + 8)
        .ok_or_else(|| AtomError::Malformed(format!("frame truncated at {what}")))?;
    *offset += 8;
    Ok(u64::from_le_bytes(slice.try_into().unwrap()))
}

/// Serializes a mixing sub-batch for transmission.
pub fn encode_mix(
    round: usize,
    iteration: usize,
    from: usize,
    sent_virtual: Duration,
    batch: &[MessageCiphertext],
) -> Vec<u8> {
    let components: usize = batch.iter().map(|m| m.components.len()).sum();
    let mut out =
        Vec::with_capacity(MIX_HEADER_LEN + batch.len() * 2 + components * (1 + 3 * POINT_LEN));
    out.push(KIND_MIX);
    out.extend_from_slice(&(round as u32).to_le_bytes());
    out.extend_from_slice(&(iteration as u32).to_le_bytes());
    let from_wire: u32 = if from == SOURCE {
        u32::MAX
    } else {
        from as u32
    };
    out.extend_from_slice(&from_wire.to_le_bytes());
    out.extend_from_slice(&(sent_virtual.as_nanos() as u64).to_le_bytes());
    out.extend_from_slice(&(batch.len() as u32).to_le_bytes());

    for message in batch {
        put_ciphertext(&mut out, message);
    }
    out
}

/// Serializes one onion ciphertext (`components u16 ‖ component*`). The
/// component layout is shared by mix and submit frames.
fn put_ciphertext(out: &mut Vec<u8>, message: &MessageCiphertext) {
    out.extend_from_slice(&(message.components.len() as u16).to_le_bytes());
    for component in &message.components {
        let flags = component.y.is_some() as u8;
        out.push(flags);
        put_point(out, &component.r);
        put_point(out, &component.c);
        if let Some(y) = &component.y {
            put_point(out, y);
        }
    }
}

/// Parses one onion ciphertext, bounding the untrusted component count
/// against the remaining body (flags + two points minimum per component)
/// before any allocation.
fn get_ciphertext(bytes: &[u8], offset: &mut usize, what: &str) -> AtomResult<MessageCiphertext> {
    let components_len = bytes
        .get(*offset..*offset + 2)
        .map(|s| u16::from_le_bytes(s.try_into().unwrap()) as usize)
        .ok_or_else(|| AtomError::Malformed(format!("{what} truncated at a message")))?;
    *offset += 2;
    if components_len > bytes.len().saturating_sub(*offset) / (1 + 2 * POINT_LEN) {
        return Err(AtomError::Malformed(format!(
            "{what} claims {components_len} components past its end"
        )));
    }
    let mut components = Vec::with_capacity(components_len);
    for _ in 0..components_len {
        let flags = *bytes
            .get(*offset)
            .ok_or_else(|| AtomError::Malformed(format!("{what} truncated at flags")))?;
        *offset += 1;
        if flags & !1 != 0 {
            return Err(AtomError::Malformed(format!(
                "{what} carries unknown component flags {flags:#04x}"
            )));
        }
        let r = get_point(bytes, offset, what)?;
        let c = get_point(bytes, offset, what)?;
        let y = if flags & 1 == 1 {
            Some(get_point(bytes, offset, what)?)
        } else {
            None
        };
        components.push(Ciphertext { r, c, y });
    }
    Ok(MessageCiphertext { components })
}

/// Serializes one encryption proof (`ann_count u16 ‖ A* ‖ resp_count u16
/// ‖ u*`). Counts travel separately because the struct does not force
/// them equal; the verifier enforces the semantic relationship.
fn put_proof(out: &mut Vec<u8>, proof: &EncProof) {
    out.extend_from_slice(&(proof.announcements.len() as u16).to_le_bytes());
    for announcement in &proof.announcements {
        put_point(out, announcement);
    }
    out.extend_from_slice(&(proof.responses.len() as u16).to_le_bytes());
    for response in &proof.responses {
        out.extend_from_slice(&response.to_bytes());
    }
}

/// Parses one encryption proof, bounding both untrusted counts against
/// the remaining body before allocation and insisting every response is
/// a canonical scalar.
fn get_proof(bytes: &[u8], offset: &mut usize, what: &str) -> AtomResult<EncProof> {
    let ann_count = get_u16(bytes, offset, "proof announcement count")? as usize;
    if ann_count > bytes.len().saturating_sub(*offset) / POINT_LEN {
        return Err(AtomError::Malformed(format!(
            "{what} claims {ann_count} proof announcements past its end"
        )));
    }
    if ann_count > MAX_SUBMIT_COMPONENTS {
        return Err(AtomError::Malformed(format!(
            "{what} claims {ann_count} proof announcements (cap {MAX_SUBMIT_COMPONENTS})"
        )));
    }
    let mut announcements = Vec::with_capacity(ann_count);
    for _ in 0..ann_count {
        announcements.push(get_point(bytes, offset, what)?);
    }
    let resp_count = get_u16(bytes, offset, "proof response count")? as usize;
    if resp_count > bytes.len().saturating_sub(*offset) / POINT_LEN {
        return Err(AtomError::Malformed(format!(
            "{what} claims {resp_count} proof responses past its end"
        )));
    }
    if resp_count > MAX_SUBMIT_COMPONENTS {
        return Err(AtomError::Malformed(format!(
            "{what} claims {resp_count} proof responses (cap {MAX_SUBMIT_COMPONENTS})"
        )));
    }
    let mut responses = Vec::with_capacity(resp_count);
    for _ in 0..resp_count {
        responses.push(get_scalar(bytes, offset, what)?);
    }
    Ok(EncProof {
        announcements,
        responses,
    })
}

/// Serializes an exit frame.
pub fn encode_exit(frame: &ExitFrame) -> Vec<u8> {
    let payload_bytes: usize = frame.payloads.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(
        1 + 4
            + 4
            + 8
            + 8
            + 8
            + 4
            + frame.compute.len() * 8
            + 4
            + frame.payloads.len() * 4
            + payload_bytes,
    );
    out.push(KIND_EXIT);
    out.extend_from_slice(&(frame.round as u32).to_le_bytes());
    out.extend_from_slice(&(frame.gid as u32).to_le_bytes());
    out.extend_from_slice(&(frame.finished_virtual.as_nanos() as u64).to_le_bytes());
    out.extend_from_slice(&frame.mix_messages.to_le_bytes());
    out.extend_from_slice(&frame.mix_bytes.to_le_bytes());
    out.extend_from_slice(&(frame.compute.len() as u32).to_le_bytes());
    for compute in &frame.compute {
        out.extend_from_slice(&(compute.as_nanos() as u64).to_le_bytes());
    }
    out.extend_from_slice(&(frame.payloads.len() as u32).to_le_bytes());
    for payload in &frame.payloads {
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(payload);
    }
    out
}

/// Serializes an abort frame. Reasons longer than the decoder's cap are
/// truncated at a character boundary.
pub fn encode_abort(round: usize, reason: &str) -> Vec<u8> {
    let mut reason = reason;
    if reason.len() > MAX_ABORT_REASON {
        let mut cut = MAX_ABORT_REASON;
        while !reason.is_char_boundary(cut) {
            cut -= 1;
        }
        reason = &reason[..cut];
    }
    let mut out = Vec::with_capacity(1 + 4 + 4 + reason.len());
    out.push(KIND_ABORT);
    out.extend_from_slice(&(round as u32).to_le_bytes());
    out.extend_from_slice(&(reason.len() as u32).to_le_bytes());
    out.extend_from_slice(reason.as_bytes());
    out
}

/// Serializes a setup frame.
pub fn encode_setup(frame: &SetupFrame) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 4 + 4 + 1 + 4 + 4 + frame.members.len() * 4 + POINT_LEN);
    out.push(KIND_SETUP);
    out.extend_from_slice(&(frame.round as u32).to_le_bytes());
    out.extend_from_slice(&(frame.gid as u32).to_le_bytes());
    out.push(0); // flags: none defined yet
    out.extend_from_slice(&(frame.threshold as u32).to_le_bytes());
    out.extend_from_slice(&(frame.members.len() as u32).to_le_bytes());
    for member in &frame.members {
        out.extend_from_slice(&(*member as u32).to_le_bytes());
    }
    put_point(&mut out, &frame.public_key.0);
    out
}

/// Serializes a telemetry frame.
pub fn encode_telemetry(frame: &TelemetryFrame) -> Vec<u8> {
    let counter_bytes: usize = frame
        .counters
        .iter()
        .map(|(name, _)| MIN_COUNTER_LEN + name.len())
        .sum();
    let span_bytes: usize = frame
        .spans
        .iter()
        .map(|span| MIN_SPAN_LEN + span.phase.len() + span.note.len())
        .sum();
    let mut out = Vec::with_capacity(
        1 + 4 + 4 + 1 + 4 + frame.gids.len() * 4 + 4 + counter_bytes + 4 + span_bytes,
    );
    out.push(KIND_TELEMETRY);
    out.extend_from_slice(&(frame.round as u32).to_le_bytes());
    out.extend_from_slice(&frame.process.to_le_bytes());
    out.push(0); // flags: none defined yet
    out.extend_from_slice(&(frame.gids.len() as u32).to_le_bytes());
    for gid in &frame.gids {
        out.extend_from_slice(&(*gid as u32).to_le_bytes());
    }
    out.extend_from_slice(&(frame.counters.len() as u32).to_le_bytes());
    for (name, value) in &frame.counters {
        put_string(&mut out, name);
        out.extend_from_slice(&value.to_le_bytes());
    }
    out.extend_from_slice(&(frame.spans.len() as u32).to_le_bytes());
    for span in &frame.spans {
        put_string(&mut out, &span.phase);
        put_string(&mut out, &span.note);
        out.extend_from_slice(&span.round.to_le_bytes());
        out.extend_from_slice(&span.gid.to_le_bytes());
        out.extend_from_slice(&span.tid.to_le_bytes());
        out.extend_from_slice(&span.start_us.to_le_bytes());
        out.extend_from_slice(&span.dur_us.to_le_bytes());
    }
    out
}

fn put_verdict(out: &mut Vec<u8>, verdict: &FaultVerdict) {
    out.extend_from_slice(&(verdict.round as u32).to_le_bytes());
    out.extend_from_slice(&(verdict.process as u32).to_le_bytes());
    out.push(verdict.kind.to_wire());
    out.extend_from_slice(&(verdict.servers.len() as u32).to_le_bytes());
    for server in &verdict.servers {
        out.extend_from_slice(&(*server as u32).to_le_bytes());
    }
    put_string(out, &verdict.reason);
}

fn get_verdict(bytes: &[u8], offset: &mut usize) -> AtomResult<FaultVerdict> {
    let round = get_u32(bytes, offset, "verdict round")? as usize;
    let process = get_u32(bytes, offset, "verdict process")? as usize;
    let kind_byte = *bytes
        .get(*offset)
        .ok_or_else(|| AtomError::Malformed("frame truncated at a verdict kind".into()))?;
    *offset += 1;
    let kind = FaultKind::from_wire(kind_byte).ok_or_else(|| {
        AtomError::Malformed(format!(
            "verdict carries unknown kind byte {kind_byte:#04x}"
        ))
    })?;
    let server_count = get_u32(bytes, offset, "verdict server count")? as usize;
    // The count is untrusted: each server occupies 4 bytes of body, so
    // bound it against the remainder before allocating.
    if server_count > bytes.len().saturating_sub(*offset) / 4 {
        return Err(AtomError::Malformed(format!(
            "verdict claims {server_count} servers past its end"
        )));
    }
    let mut servers = Vec::with_capacity(server_count);
    for _ in 0..server_count {
        servers.push(get_u32(bytes, offset, "verdict server")? as usize);
    }
    let reason = get_string(bytes, offset, "verdict reason")?;
    Ok(FaultVerdict {
        round,
        process,
        kind,
        servers,
        reason,
    })
}

/// Serializes an evict frame. The verdict's detection round lands right
/// after the kind byte so [`decode_round`] attributes the frame correctly.
pub fn encode_evict(frame: &EvictFrame) -> Vec<u8> {
    let verdict = &frame.verdict;
    let mut out =
        Vec::with_capacity(1 + MIN_VERDICT_LEN + verdict.servers.len() * 4 + verdict.reason.len());
    out.push(KIND_EVICT);
    put_verdict(&mut out, verdict);
    out
}

/// Serializes a rejoin frame.
pub fn encode_rejoin(frame: &RejoinFrame) -> Vec<u8> {
    let verdict_bytes: usize = frame
        .evictions
        .iter()
        .map(|verdict| MIN_VERDICT_LEN + verdict.servers.len() * 4 + verdict.reason.len())
        .sum();
    let mut out = Vec::with_capacity(1 + 4 + 4 + 4 + 1 + DIGEST_LEN + 4 + verdict_bytes);
    out.push(KIND_REJOIN);
    out.extend_from_slice(&(frame.round as u32).to_le_bytes());
    out.extend_from_slice(&(frame.process as u32).to_le_bytes());
    out.extend_from_slice(&(frame.epoch as u32).to_le_bytes());
    out.push(frame.response as u8 | (frame.commit as u8) << 1);
    out.extend_from_slice(&frame.digest);
    out.extend_from_slice(&(frame.evictions.len() as u32).to_le_bytes());
    for verdict in &frame.evictions {
        put_verdict(&mut out, verdict);
    }
    out
}

/// Serializes a submit frame.
pub fn encode_submit(frame: &SubmitFrame) -> Vec<u8> {
    let mut out = Vec::with_capacity(SUBMIT_HEADER_LEN + 512);
    out.push(KIND_SUBMIT);
    out.extend_from_slice(&(frame.round as u32).to_le_bytes());
    out.extend_from_slice(&frame.client.to_le_bytes());
    match &frame.submission {
        ClientSubmission::Nizk(submission) => {
            out.push(0); // flags: nizk variant
            out.extend_from_slice(&frame.app.to_le_bytes());
            out.extend_from_slice(&(submission.entry_group as u32).to_le_bytes());
            put_ciphertext(&mut out, &submission.ciphertext);
            put_proof(&mut out, &submission.proof);
        }
        ClientSubmission::Trap(submission) => {
            out.push(1); // flags: trap variant
            out.extend_from_slice(&frame.app.to_le_bytes());
            out.extend_from_slice(&(submission.entry_group as u32).to_le_bytes());
            for side in 0..2 {
                put_ciphertext(&mut out, &submission.ciphertexts[side]);
                put_proof(&mut out, &submission.proofs[side]);
            }
            out.extend_from_slice(&submission.trap_commitment.0);
        }
    }
    out
}

/// Parses one `ciphertext ‖ proof` pair of a submit body, applying the
/// submission-size cap on top of the body bounds.
fn get_submission_side(
    bytes: &[u8],
    offset: &mut usize,
) -> AtomResult<(MessageCiphertext, EncProof)> {
    let ciphertext = get_ciphertext(bytes, offset, "submit frame")?;
    if ciphertext.components.len() > MAX_SUBMIT_COMPONENTS {
        return Err(AtomError::Malformed(format!(
            "submit frame claims {} components (cap {MAX_SUBMIT_COMPONENTS})",
            ciphertext.components.len()
        )));
    }
    let proof = get_proof(bytes, offset, "submit frame")?;
    Ok((ciphertext, proof))
}

fn decode_submit(bytes: &[u8]) -> AtomResult<SubmitFrame> {
    let mut offset = 1;
    let round = get_u32(bytes, &mut offset, "submit round")? as usize;
    let client = get_u64(bytes, &mut offset, "submit client")?;
    let flags = *bytes
        .get(offset)
        .ok_or_else(|| AtomError::Malformed("submit frame truncated at flags".into()))?;
    offset += 1;
    if flags & !1 != 0 {
        return Err(AtomError::Malformed(format!(
            "submit frame carries unknown flags {flags:#04x}"
        )));
    }
    let app = get_u16(bytes, &mut offset, "submit app tag")?;
    let entry_group = get_u32(bytes, &mut offset, "submit entry group")? as usize;
    let submission = if flags & 1 == 0 {
        let (ciphertext, proof) = get_submission_side(bytes, &mut offset)?;
        ClientSubmission::Nizk(NizkSubmission {
            entry_group,
            ciphertext,
            proof,
        })
    } else {
        let (ct0, proof0) = get_submission_side(bytes, &mut offset)?;
        let (ct1, proof1) = get_submission_side(bytes, &mut offset)?;
        let digest_slice = bytes.get(offset..offset + DIGEST_LEN).ok_or_else(|| {
            AtomError::Malformed("submit frame truncated in its trap commitment".into())
        })?;
        offset += DIGEST_LEN;
        let mut digest = [0u8; DIGEST_LEN];
        digest.copy_from_slice(digest_slice);
        ClientSubmission::Trap(TrapSubmission {
            entry_group,
            ciphertexts: [ct0, ct1],
            proofs: [proof0, proof1],
            trap_commitment: Commitment(digest),
        })
    };
    if offset != bytes.len() {
        return Err(AtomError::Malformed(format!(
            "submit frame has {} trailing bytes",
            bytes.len() - offset
        )));
    }
    Ok(SubmitFrame {
        round,
        client,
        app,
        submission,
    })
}

/// Serializes a submit-ack frame. Retry hints beyond `u32::MAX`
/// milliseconds saturate.
pub fn encode_submit_ack(frame: &SubmitAckFrame) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 4 + 1 + 4);
    out.push(KIND_SUBMIT_ACK);
    out.extend_from_slice(&(frame.round as u32).to_le_bytes());
    out.push(frame.shed as u8);
    let retry_ms = u32::try_from(frame.retry_after.as_millis()).unwrap_or(u32::MAX);
    out.extend_from_slice(&retry_ms.to_le_bytes());
    out
}

fn decode_submit_ack(bytes: &[u8]) -> AtomResult<SubmitAckFrame> {
    let mut offset = 1;
    let round = get_u32(bytes, &mut offset, "submit-ack round")? as usize;
    let flags = *bytes
        .get(offset)
        .ok_or_else(|| AtomError::Malformed("submit-ack frame truncated at flags".into()))?;
    offset += 1;
    if flags & !1 != 0 {
        return Err(AtomError::Malformed(format!(
            "submit-ack frame carries unknown flags {flags:#04x}"
        )));
    }
    let retry_ms = get_u32(bytes, &mut offset, "submit-ack retry hint")?;
    if offset != bytes.len() {
        return Err(AtomError::Malformed(format!(
            "submit-ack frame has {} trailing bytes",
            bytes.len() - offset
        )));
    }
    Ok(SubmitAckFrame {
        round,
        shed: flags & 1 == 1,
        retry_after: Duration::from_millis(retry_ms as u64),
    })
}

fn decode_evict(bytes: &[u8]) -> AtomResult<EvictFrame> {
    let mut offset = 1;
    let verdict = get_verdict(bytes, &mut offset)?;
    if offset != bytes.len() {
        return Err(AtomError::Malformed(format!(
            "evict frame has {} trailing bytes",
            bytes.len() - offset
        )));
    }
    Ok(EvictFrame { verdict })
}

fn decode_rejoin(bytes: &[u8]) -> AtomResult<RejoinFrame> {
    let mut offset = 1;
    let round = get_u32(bytes, &mut offset, "rejoin round")? as usize;
    let process = get_u32(bytes, &mut offset, "rejoin process")? as usize;
    let epoch = get_u32(bytes, &mut offset, "rejoin epoch")? as usize;
    let flags = *bytes
        .get(offset)
        .ok_or_else(|| AtomError::Malformed("rejoin frame truncated at flags".into()))?;
    offset += 1;
    if flags & !3 != 0 {
        return Err(AtomError::Malformed(format!(
            "rejoin frame carries unknown flags {flags:#04x}"
        )));
    }
    let response = flags & 1 == 1;
    let commit = flags & 2 == 2;
    let digest_slice = bytes
        .get(offset..offset + DIGEST_LEN)
        .ok_or_else(|| AtomError::Malformed("rejoin frame truncated in its digest".into()))?;
    offset += DIGEST_LEN;
    let mut digest = [0u8; DIGEST_LEN];
    digest.copy_from_slice(digest_slice);
    let evict_count = get_u32(bytes, &mut offset, "rejoin evict count")? as usize;
    // Bound the untrusted count by the minimum bytes one verdict occupies.
    if evict_count > bytes.len().saturating_sub(offset) / MIN_VERDICT_LEN {
        return Err(AtomError::Malformed(format!(
            "rejoin frame claims {evict_count} evictions past its end"
        )));
    }
    let mut evictions = Vec::with_capacity(evict_count);
    for _ in 0..evict_count {
        evictions.push(get_verdict(bytes, &mut offset)?);
    }
    if offset != bytes.len() {
        return Err(AtomError::Malformed(format!(
            "rejoin frame has {} trailing bytes",
            bytes.len() - offset
        )));
    }
    Ok(RejoinFrame {
        round,
        process,
        epoch,
        response,
        commit,
        digest,
        evictions,
    })
}

/// Best-effort extraction of the round index from a (possibly corrupt)
/// frame, so a decode failure can still be attributed to its round. Every
/// frame kind stores the round as a `u32` right after the kind byte.
pub fn decode_round(bytes: &[u8]) -> Option<usize> {
    bytes
        .get(1..5)
        .map(|s| u32::from_le_bytes(s.try_into().unwrap()) as usize)
}

/// Parses any serialized frame.
pub fn decode(bytes: &[u8]) -> AtomResult<Frame> {
    match bytes.first() {
        Some(&KIND_MIX) => decode_mix(bytes).map(Frame::Mix),
        Some(&KIND_EXIT) => decode_exit(bytes).map(Frame::Exit),
        Some(&KIND_ABORT) => decode_abort(bytes).map(Frame::Abort),
        Some(&KIND_SETUP) => decode_setup(bytes).map(Frame::Setup),
        Some(&KIND_TELEMETRY) => decode_telemetry(bytes).map(Frame::Telemetry),
        Some(&KIND_EVICT) => decode_evict(bytes).map(Frame::Evict),
        Some(&KIND_REJOIN) => decode_rejoin(bytes).map(Frame::Rejoin),
        Some(&KIND_SUBMIT) => decode_submit(bytes).map(Frame::Submit),
        Some(&KIND_SUBMIT_ACK) => decode_submit_ack(bytes).map(Frame::SubmitAck),
        Some(kind) => Err(AtomError::Malformed(format!("unknown frame kind {kind}"))),
        None => Err(AtomError::Malformed("empty frame".into())),
    }
}

fn decode_mix(bytes: &[u8]) -> AtomResult<MixEnvelope> {
    if bytes.len() < MIX_HEADER_LEN {
        return Err(AtomError::Malformed(
            "mix envelope shorter than header".into(),
        ));
    }
    let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
    let round = u32_at(1) as usize;
    let iteration = u32_at(5) as usize;
    let from_wire = u32_at(9);
    let from = if from_wire == u32::MAX {
        SOURCE
    } else {
        from_wire as usize
    };
    let sent_virtual = Duration::from_nanos(u64::from_le_bytes(bytes[13..21].try_into().unwrap()));
    let count = u32_at(21) as usize;
    // Length fields are untrusted: never pre-allocate more than the body
    // could possibly hold — each message needs at least its 2-byte
    // component count, each component at least flags + two points.
    let body_len = bytes.len() - MIX_HEADER_LEN;
    if count > body_len / 2 {
        return Err(AtomError::Malformed(format!(
            "mix envelope claims {count} messages in a {body_len}-byte body"
        )));
    }

    let mut offset = MIX_HEADER_LEN;
    let mut batch = Vec::with_capacity(count);
    for _ in 0..count {
        batch.push(get_ciphertext(bytes, &mut offset, "mix envelope")?);
    }
    if offset != bytes.len() {
        return Err(AtomError::Malformed(format!(
            "mix envelope has {} trailing bytes",
            bytes.len() - offset
        )));
    }
    Ok(MixEnvelope {
        round,
        iteration,
        from,
        sent_virtual,
        batch,
    })
}

fn decode_exit(bytes: &[u8]) -> AtomResult<ExitFrame> {
    let mut offset = 1;
    let round = get_u32(bytes, &mut offset, "exit round")? as usize;
    let gid = get_u32(bytes, &mut offset, "exit gid")? as usize;
    let finished_virtual =
        Duration::from_nanos(get_u64(bytes, &mut offset, "exit finished_virtual")?);
    let mix_messages = get_u64(bytes, &mut offset, "exit mix_messages")?;
    let mix_bytes = get_u64(bytes, &mut offset, "exit mix_bytes")?;

    let compute_count = get_u32(bytes, &mut offset, "exit compute count")? as usize;
    // Each compute entry occupies 8 bytes of body; bound before allocating.
    if compute_count > bytes.len().saturating_sub(offset) / 8 {
        return Err(AtomError::Malformed(format!(
            "exit frame claims {compute_count} compute entries past its end"
        )));
    }
    let mut compute = Vec::with_capacity(compute_count);
    for _ in 0..compute_count {
        compute.push(Duration::from_nanos(get_u64(
            bytes,
            &mut offset,
            "exit compute entry",
        )?));
    }

    let payload_count = get_u32(bytes, &mut offset, "exit payload count")? as usize;
    // Each payload occupies at least its 4-byte length prefix.
    if payload_count > bytes.len().saturating_sub(offset) / 4 {
        return Err(AtomError::Malformed(format!(
            "exit frame claims {payload_count} payloads past its end"
        )));
    }
    let mut payloads = Vec::with_capacity(payload_count);
    for _ in 0..payload_count {
        let len = get_u32(bytes, &mut offset, "exit payload length")? as usize;
        let slice = bytes.get(offset..offset + len).ok_or_else(|| {
            AtomError::Malformed(format!("exit frame payload of {len} bytes past its end"))
        })?;
        offset += len;
        payloads.push(slice.to_vec());
    }
    if offset != bytes.len() {
        return Err(AtomError::Malformed(format!(
            "exit frame has {} trailing bytes",
            bytes.len() - offset
        )));
    }
    Ok(ExitFrame {
        round,
        gid,
        finished_virtual,
        mix_messages,
        mix_bytes,
        compute,
        payloads,
    })
}

fn decode_abort(bytes: &[u8]) -> AtomResult<AbortFrame> {
    let mut offset = 1;
    let round = get_u32(bytes, &mut offset, "abort round")? as usize;
    let len = get_u32(bytes, &mut offset, "abort reason length")? as usize;
    if len > MAX_ABORT_REASON {
        return Err(AtomError::Malformed(format!(
            "abort reason claims {len} bytes (cap {MAX_ABORT_REASON})"
        )));
    }
    let slice = bytes
        .get(offset..offset + len)
        .ok_or_else(|| AtomError::Malformed("abort frame truncated in its reason".into()))?;
    offset += len;
    if offset != bytes.len() {
        return Err(AtomError::Malformed(format!(
            "abort frame has {} trailing bytes",
            bytes.len() - offset
        )));
    }
    let reason = std::str::from_utf8(slice)
        .map_err(|_| AtomError::Malformed("abort reason is not UTF-8".into()))?
        .to_string();
    Ok(AbortFrame { round, reason })
}

fn decode_setup(bytes: &[u8]) -> AtomResult<SetupFrame> {
    let mut offset = 1;
    let round = get_u32(bytes, &mut offset, "setup round")? as usize;
    let gid = get_u32(bytes, &mut offset, "setup gid")? as usize;
    let flags = *bytes
        .get(offset)
        .ok_or_else(|| AtomError::Malformed("setup frame truncated at flags".into()))?;
    offset += 1;
    if flags != 0 {
        return Err(AtomError::Malformed(format!(
            "setup frame carries unknown flags {flags:#04x}"
        )));
    }
    let threshold = get_u32(bytes, &mut offset, "setup threshold")? as usize;
    let member_count = get_u32(bytes, &mut offset, "setup member count")? as usize;
    // The count is untrusted: each member occupies 4 bytes of body, so bound
    // it against what the body can hold before allocating anything.
    if member_count > bytes.len().saturating_sub(offset) / 4 {
        return Err(AtomError::Malformed(format!(
            "setup frame claims {member_count} members past its end"
        )));
    }
    let mut members = Vec::with_capacity(member_count);
    for _ in 0..member_count {
        members.push(get_u32(bytes, &mut offset, "setup member")? as usize);
    }
    let public_key = PublicKey(get_point(bytes, &mut offset, "setup frame")?);
    if offset != bytes.len() {
        return Err(AtomError::Malformed(format!(
            "setup frame has {} trailing bytes",
            bytes.len() - offset
        )));
    }
    Ok(SetupFrame {
        round,
        gid,
        members,
        threshold,
        public_key,
    })
}

fn decode_telemetry(bytes: &[u8]) -> AtomResult<TelemetryFrame> {
    let mut offset = 1;
    let round = get_u32(bytes, &mut offset, "telemetry round")? as usize;
    let process = get_u32(bytes, &mut offset, "telemetry process")?;
    let flags = *bytes
        .get(offset)
        .ok_or_else(|| AtomError::Malformed("telemetry frame truncated at flags".into()))?;
    offset += 1;
    if flags != 0 {
        return Err(AtomError::Malformed(format!(
            "telemetry frame carries unknown flags {flags:#04x}"
        )));
    }

    let gid_count = get_u32(bytes, &mut offset, "telemetry gid count")? as usize;
    // Counts are untrusted: bound each against the minimum bytes one entry
    // occupies in the remaining body before allocating anything.
    if gid_count > bytes.len().saturating_sub(offset) / 4 {
        return Err(AtomError::Malformed(format!(
            "telemetry frame claims {gid_count} gids past its end"
        )));
    }
    let mut gids = Vec::with_capacity(gid_count);
    for _ in 0..gid_count {
        gids.push(get_u32(bytes, &mut offset, "telemetry gid")? as usize);
    }

    let counter_count = get_u32(bytes, &mut offset, "telemetry counter count")? as usize;
    if counter_count > bytes.len().saturating_sub(offset) / MIN_COUNTER_LEN {
        return Err(AtomError::Malformed(format!(
            "telemetry frame claims {counter_count} counters past its end"
        )));
    }
    let mut counters = Vec::with_capacity(counter_count);
    for _ in 0..counter_count {
        let name = get_string(bytes, &mut offset, "telemetry counter name")?;
        let value = get_u64(bytes, &mut offset, "telemetry counter value")?;
        counters.push((name, value));
    }

    let span_count = get_u32(bytes, &mut offset, "telemetry span count")? as usize;
    if span_count > bytes.len().saturating_sub(offset) / MIN_SPAN_LEN {
        return Err(AtomError::Malformed(format!(
            "telemetry frame claims {span_count} spans past its end"
        )));
    }
    let mut spans = Vec::with_capacity(span_count);
    for _ in 0..span_count {
        let phase = get_string(bytes, &mut offset, "telemetry span phase")?;
        let note = get_string(bytes, &mut offset, "telemetry span note")?;
        let span_round = get_u32(bytes, &mut offset, "telemetry span round")?;
        let gid = get_u32(bytes, &mut offset, "telemetry span gid")?;
        let tid = get_u32(bytes, &mut offset, "telemetry span tid")?;
        let start_us = get_u64(bytes, &mut offset, "telemetry span start")?;
        let dur_us = get_u64(bytes, &mut offset, "telemetry span duration")?;
        spans.push(SpanRecord {
            phase,
            note,
            round: span_round,
            gid,
            tid,
            start_us,
            dur_us,
        });
    }
    if offset != bytes.len() {
        return Err(AtomError::Malformed(format!(
            "telemetry frame has {} trailing bytes",
            bytes.len() - offset
        )));
    }
    Ok(TelemetryFrame {
        round,
        process,
        gids,
        counters,
        spans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_crypto::elgamal::{encrypt_message, KeyPair};
    use atom_crypto::encoding::encode_message_padded;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_batch(fresh: bool) -> Vec<MessageCiphertext> {
        let mut rng = StdRng::seed_from_u64(11);
        let keys = KeyPair::generate(&mut rng);
        (0..3u8)
            .map(|i| {
                let points = encode_message_padded(&[i; 8], 32).unwrap();
                let (mut ct, _) = encrypt_message(&keys.public, &points, &mut rng);
                if !fresh {
                    // Populate the auxiliary component so both encodings are
                    // exercised.
                    for component in &mut ct.components {
                        component.y = Some(component.r);
                    }
                }
                ct
            })
            .collect()
    }

    fn decode_mix_frame(bytes: &[u8]) -> AtomResult<MixEnvelope> {
        match decode(bytes)? {
            Frame::Mix(envelope) => Ok(envelope),
            other => panic!("expected a mix frame, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip_fresh_and_inflight_batches() {
        for fresh in [true, false] {
            let batch = sample_batch(fresh);
            let bytes = encode_mix(3, 5, 2, Duration::from_millis(250), &batch);
            let envelope = decode_mix_frame(&bytes).unwrap();
            assert_eq!(envelope.round, 3);
            assert_eq!(envelope.iteration, 5);
            assert_eq!(envelope.from, 2);
            assert_eq!(envelope.sent_virtual, Duration::from_millis(250));
            assert_eq!(envelope.batch, batch);
        }
    }

    #[test]
    fn source_sender_roundtrips() {
        let bytes = encode_mix(0, 0, SOURCE, Duration::ZERO, &[]);
        let envelope = decode_mix_frame(&bytes).unwrap();
        assert_eq!(envelope.from, SOURCE);
        assert!(envelope.batch.is_empty());
    }

    #[test]
    fn exit_frame_roundtrips() {
        let frame = ExitFrame {
            round: 7,
            gid: 3,
            finished_virtual: Duration::from_micros(1234),
            mix_messages: 42,
            mix_bytes: 98765,
            compute: vec![Duration::from_millis(3), Duration::from_millis(5)],
            payloads: vec![vec![1, 2, 3], Vec::new(), vec![0; 64]],
        };
        let bytes = encode_exit(&frame);
        assert_eq!(decode(&bytes).unwrap(), Frame::Exit(frame));
    }

    #[test]
    fn abort_frame_roundtrips_and_caps_reasons() {
        let bytes = encode_abort(9, "trap check failed");
        match decode(&bytes).unwrap() {
            Frame::Abort(frame) => {
                assert_eq!(frame.round, 9);
                assert_eq!(frame.reason, "trap check failed");
            }
            other => panic!("expected abort, got {other:?}"),
        }
        // Over-long reasons are truncated on encode, never rejected.
        let long = "x".repeat(3 * MAX_ABORT_REASON);
        let bytes = encode_abort(1, &long);
        match decode(&bytes).unwrap() {
            Frame::Abort(frame) => assert_eq!(frame.reason.len(), MAX_ABORT_REASON),
            other => panic!("expected abort, got {other:?}"),
        }
    }

    fn sample_setup() -> SetupFrame {
        let mut rng = StdRng::seed_from_u64(21);
        SetupFrame {
            round: 6,
            gid: 2,
            members: vec![4, 9, 1],
            threshold: 2,
            public_key: KeyPair::generate(&mut rng).public,
        }
    }

    #[test]
    fn setup_frame_roundtrips() {
        let frame = sample_setup();
        let bytes = encode_setup(&frame);
        assert_eq!(decode(&bytes).unwrap(), Frame::Setup(frame));
        // A memberless frame is still well-formed (the decoder cannot know
        // the deployment's group size; the engine validates that).
        let empty = SetupFrame {
            members: Vec::new(),
            ..sample_setup()
        };
        let bytes = encode_setup(&empty);
        assert_eq!(decode(&bytes).unwrap(), Frame::Setup(empty));
    }

    fn sample_telemetry() -> TelemetryFrame {
        TelemetryFrame {
            round: 8,
            process: 2,
            gids: vec![1, 3],
            counters: vec![
                ("crypto.multiexp.calls".to_string(), 12),
                ("net.frames".to_string(), 7),
            ],
            spans: vec![
                atom_obs::SpanRecord {
                    phase: "mix".to_string(),
                    round: 8,
                    gid: 1,
                    tid: 4,
                    start_us: 1_000,
                    dur_us: 250,
                    note: String::new(),
                },
                atom_obs::SpanRecord {
                    phase: "stall".to_string(),
                    round: 8,
                    gid: u32::MAX,
                    tid: 0,
                    start_us: 9_000,
                    dur_us: 0,
                    note: "no task progress".to_string(),
                },
            ],
        }
    }

    #[test]
    fn telemetry_frame_roundtrips() {
        let frame = sample_telemetry();
        let bytes = encode_telemetry(&frame);
        assert_eq!(decode(&bytes).unwrap(), Frame::Telemetry(frame));
        // An empty snapshot (process hosted nothing measurable) is still
        // well-formed.
        let empty = TelemetryFrame {
            gids: Vec::new(),
            counters: Vec::new(),
            spans: Vec::new(),
            ..sample_telemetry()
        };
        let bytes = encode_telemetry(&empty);
        assert_eq!(decode(&bytes).unwrap(), Frame::Telemetry(empty));
    }

    #[test]
    fn decode_round_works_for_every_kind() {
        let mix = encode_mix(3, 0, SOURCE, Duration::ZERO, &[]);
        let exit = encode_exit(&ExitFrame {
            round: 4,
            gid: 0,
            finished_virtual: Duration::ZERO,
            mix_messages: 0,
            mix_bytes: 0,
            compute: Vec::new(),
            payloads: Vec::new(),
        });
        let abort = encode_abort(5, "r");
        let setup = encode_setup(&sample_setup());
        let telemetry = encode_telemetry(&sample_telemetry());
        let evict = encode_evict(&sample_evict());
        let rejoin = encode_rejoin(&sample_rejoin());
        let submit = encode_submit(&sample_submit(false));
        let ack = encode_submit_ack(&SubmitAckFrame {
            round: 14,
            shed: true,
            retry_after: Duration::from_millis(250),
        });
        assert_eq!(decode_round(&mix), Some(3));
        assert_eq!(decode_round(&exit), Some(4));
        assert_eq!(decode_round(&abort), Some(5));
        assert_eq!(decode_round(&setup), Some(6));
        assert_eq!(decode_round(&telemetry), Some(8));
        assert_eq!(decode_round(&evict), Some(11));
        assert_eq!(decode_round(&rejoin), Some(12));
        assert_eq!(decode_round(&submit), Some(13));
        assert_eq!(decode_round(&ack), Some(14));
        assert_eq!(decode_round(&[1, 2]), None);
    }

    #[test]
    fn truncated_and_trailing_bytes_rejected() {
        let batch = sample_batch(true);
        let bytes = encode_mix(1, 1, 0, Duration::ZERO, &batch);
        assert!(decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode(&bytes[..MIX_HEADER_LEN - 2]).is_err());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode(&padded).is_err());
    }

    #[test]
    fn corrupted_point_rejected() {
        let batch = sample_batch(true);
        let mut bytes = encode_mix(1, 1, 0, Duration::ZERO, &batch);
        // Zero out the first point: an invalid encoding.
        let start = MIX_HEADER_LEN + 2 + 1;
        for b in &mut bytes[start..start + POINT_LEN] {
            *b = 0;
        }
        assert!(decode(&bytes).is_err());
    }

    // ------------------------------------------------------------------
    // Adversarial decoder suite: every input below models bytes from an
    // untrusted peer. The contract is AtomError out — never a panic, never
    // an allocation sized by an attacker-controlled field.
    // ------------------------------------------------------------------

    #[test]
    fn every_header_truncation_errors_cleanly() {
        let batch = sample_batch(false);
        for full in [
            encode_mix(1, 2, 0, Duration::from_millis(1), &batch),
            encode_exit(&ExitFrame {
                round: 1,
                gid: 2,
                finished_virtual: Duration::from_millis(9),
                mix_messages: 3,
                mix_bytes: 4,
                compute: vec![Duration::from_millis(1)],
                payloads: vec![vec![5; 10]],
            }),
            encode_abort(1, "reason"),
            encode_setup(&sample_setup()),
            encode_telemetry(&sample_telemetry()),
            encode_evict(&sample_evict()),
            encode_rejoin(&sample_rejoin()),
            encode_submit(&sample_submit(false)),
            encode_submit(&sample_submit(true)),
            encode_submit_ack(&SubmitAckFrame {
                round: 2,
                shed: true,
                retry_after: Duration::from_millis(40),
            }),
        ] {
            for len in 0..full.len() {
                assert!(
                    decode(&full[..len]).is_err(),
                    "prefix of {len}/{} bytes must be rejected",
                    full.len()
                );
            }
            decode(&full).unwrap();
        }
    }

    #[test]
    fn unknown_kind_rejected() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[0]).is_err());
        assert!(decode(&[10, 1, 2, 3]).is_err());
        assert!(decode(&[0xFF, 1, 2, 3]).is_err());
    }

    #[test]
    fn mix_count_overflow_vs_payload_length_rejected_before_allocation() {
        // A header claiming u32::MAX messages over an empty body: the
        // decoder must reject from the body-length bound, not allocate.
        let mut bytes = encode_mix(0, 0, 0, Duration::ZERO, &[]);
        let count_at = MIX_HEADER_LEN - 4;
        bytes[count_at..].copy_from_slice(&u32::MAX.to_le_bytes());
        let error = decode(&bytes).unwrap_err();
        assert!(
            format!("{error:?}").contains("claims"),
            "want the bounds error, got {error:?}"
        );

        // Same for the per-message component count.
        let batch = sample_batch(true);
        let mut bytes = encode_mix(0, 0, 0, Duration::ZERO, &batch);
        bytes[MIX_HEADER_LEN..MIX_HEADER_LEN + 2].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn exit_count_overflows_rejected_before_allocation() {
        let frame = ExitFrame {
            round: 0,
            gid: 0,
            finished_virtual: Duration::ZERO,
            mix_messages: 0,
            mix_bytes: 0,
            compute: Vec::new(),
            payloads: Vec::new(),
        };
        let clean = encode_exit(&frame);
        // compute_count lives right after the two u64 counters.
        let compute_count_at = 1 + 4 + 4 + 8 + 8 + 8;
        let mut bytes = clean.clone();
        bytes[compute_count_at..compute_count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&bytes).is_err());
        // payload_count is the final u32 of the empty frame.
        let payload_count_at = clean.len() - 4;
        let mut bytes = clean.clone();
        bytes[payload_count_at..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&bytes).is_err());
        // A payload length pointing past the end.
        let frame = ExitFrame {
            payloads: vec![vec![7; 8]],
            ..frame
        };
        let mut bytes = encode_exit(&frame);
        let len_at = bytes.len() - 8 - 4;
        bytes[len_at..len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn abort_reason_length_lies_rejected() {
        let mut bytes = encode_abort(2, "short");
        // Claim more bytes than the body holds.
        bytes[5..9].copy_from_slice(&100u32.to_le_bytes());
        assert!(decode(&bytes).is_err());
        // Claim past the hard cap.
        let mut bytes = encode_abort(2, "short");
        bytes[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&bytes).is_err());
        // Non-UTF-8 reasons are rejected, not lossily accepted.
        let mut bytes = encode_abort(2, "ab");
        let end = bytes.len();
        bytes[end - 2] = 0xff;
        bytes[end - 1] = 0xfe;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn non_canonical_and_invalid_point_encodings_rejected() {
        let batch = sample_batch(true);
        let clean = encode_mix(0, 0, 0, Duration::ZERO, &batch);
        let first_point = MIX_HEADER_LEN + 2 + 1;
        // All-zero bytes: not a group element.
        let mut bytes = clean.clone();
        bytes[first_point..first_point + POINT_LEN].fill(0);
        assert!(decode(&bytes).is_err());
        // 0xff.. : a value ≥ p, i.e. a non-canonical field encoding.
        let mut bytes = clean.clone();
        bytes[first_point..first_point + POINT_LEN].fill(0xff);
        assert!(decode(&bytes).is_err());
        // A canonical field element that is not in the prime-order
        // subgroup: flipping one bit of a valid encoding leaves the value
        // < p with overwhelming probability but lands outside the group
        // roughly half the time; scan until we hit such a value to pin the
        // subgroup check specifically.
        let mut rejected = false;
        'outer: for byte in 0..POINT_LEN {
            for bit in 0..8u8 {
                let mut bytes = clean.clone();
                bytes[first_point + byte] ^= 1 << bit;
                if decode(&bytes).is_err() {
                    rejected = true;
                    break 'outer;
                }
            }
        }
        assert!(rejected, "no perturbed point encoding was rejected");
    }

    #[test]
    fn unknown_component_flags_rejected() {
        let batch = sample_batch(true);
        let mut bytes = encode_mix(0, 0, 0, Duration::ZERO, &batch);
        bytes[MIX_HEADER_LEN + 2] = 0x82; // undefined flag bits
        assert!(decode(&bytes).is_err());
    }

    // Setup-frame adversarial coverage, mirroring the mix/exit/abort suites:
    // AtomError out, never a panic, never an attacker-sized allocation.

    /// Byte offset of the member-count field in an encoded setup frame.
    const SETUP_COUNT_AT: usize = 1 + 4 + 4 + 1 + 4;

    #[test]
    fn setup_member_count_overflow_rejected_before_allocation() {
        // u32::MAX members claimed over a 3-member body: the bounds check
        // against the remaining bytes must fire before any allocation.
        let mut bytes = encode_setup(&sample_setup());
        bytes[SETUP_COUNT_AT..SETUP_COUNT_AT + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let error = decode(&bytes).unwrap_err();
        assert!(
            format!("{error:?}").contains("claims"),
            "want the bounds error, got {error:?}"
        );
        // A count that is too *small* leaves trailing bytes, also rejected.
        let mut bytes = encode_setup(&sample_setup());
        bytes[SETUP_COUNT_AT..SETUP_COUNT_AT + 4].copy_from_slice(&1u32.to_le_bytes());
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn setup_unknown_flags_rejected() {
        let flags_at = 1 + 4 + 4;
        for flags in [1u8, 0x80, 0xff] {
            let mut bytes = encode_setup(&sample_setup());
            bytes[flags_at] = flags;
            let error = decode(&bytes).unwrap_err();
            assert!(
                format!("{error:?}").contains("flags"),
                "want the flags error, got {error:?}"
            );
        }
    }

    #[test]
    fn setup_invalid_and_non_canonical_points_rejected() {
        let clean = encode_setup(&sample_setup());
        let point_at = clean.len() - POINT_LEN;
        // All-zero bytes: not a group element.
        let mut bytes = clean.clone();
        bytes[point_at..].fill(0);
        assert!(decode(&bytes).is_err());
        // 0xff…: a non-canonical field encoding (value ≥ p).
        let mut bytes = clean.clone();
        bytes[point_at..].fill(0xff);
        assert!(decode(&bytes).is_err());
        // Perturbing a valid encoding lands outside the prime-order subgroup
        // about half the time; scan until a rejection pins the group check.
        let mut rejected = false;
        'outer: for byte in 0..POINT_LEN {
            for bit in 0..8u8 {
                let mut bytes = clean.clone();
                bytes[point_at + byte] ^= 1 << bit;
                if decode(&bytes).is_err() {
                    rejected = true;
                    break 'outer;
                }
            }
        }
        assert!(rejected, "no perturbed point encoding was rejected");
    }

    #[test]
    fn setup_trailing_bytes_rejected() {
        let mut bytes = encode_setup(&sample_setup());
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }

    // Telemetry-frame adversarial coverage, mirroring the other suites.

    /// Byte offset of the gid-count field in an encoded telemetry frame.
    const TELEMETRY_GID_COUNT_AT: usize = 1 + 4 + 4 + 1;

    #[test]
    fn telemetry_count_overflows_rejected_before_allocation() {
        let clean = encode_telemetry(&sample_telemetry());
        // u32::MAX gids claimed over a 2-gid body.
        let mut bytes = clean.clone();
        bytes[TELEMETRY_GID_COUNT_AT..TELEMETRY_GID_COUNT_AT + 4]
            .copy_from_slice(&u32::MAX.to_le_bytes());
        let error = decode(&bytes).unwrap_err();
        assert!(
            format!("{error:?}").contains("claims"),
            "want the gid bounds error, got {error:?}"
        );
        // Counter count follows the two gids.
        let counter_count_at = TELEMETRY_GID_COUNT_AT + 4 + 2 * 4;
        let mut bytes = clean.clone();
        bytes[counter_count_at..counter_count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let error = decode(&bytes).unwrap_err();
        assert!(
            format!("{error:?}").contains("claims"),
            "want the counter bounds error, got {error:?}"
        );
        // Span count sits after the two counter entries.
        let frame = sample_telemetry();
        let span_count_at = counter_count_at
            + 4
            + frame
                .counters
                .iter()
                .map(|(name, _)| MIN_COUNTER_LEN + name.len())
                .sum::<usize>();
        let mut bytes = clean.clone();
        bytes[span_count_at..span_count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let error = decode(&bytes).unwrap_err();
        assert!(
            format!("{error:?}").contains("claims"),
            "want the span bounds error, got {error:?}"
        );
        // A counter-name length pointing past the end of the frame.
        let name_len_at = counter_count_at + 4;
        let mut bytes = clean.clone();
        bytes[name_len_at..name_len_at + 2].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn telemetry_unknown_flags_rejected() {
        let flags_at = 1 + 4 + 4;
        for flags in [1u8, 0x80, 0xff] {
            let mut bytes = encode_telemetry(&sample_telemetry());
            bytes[flags_at] = flags;
            let error = decode(&bytes).unwrap_err();
            assert!(
                format!("{error:?}").contains("flags"),
                "want the flags error, got {error:?}"
            );
        }
    }

    #[test]
    fn telemetry_trailing_bytes_rejected() {
        let mut bytes = encode_telemetry(&sample_telemetry());
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn telemetry_non_utf8_strings_rejected() {
        let frame = TelemetryFrame {
            gids: Vec::new(),
            counters: vec![("ab".to_string(), 1)],
            spans: Vec::new(),
            ..sample_telemetry()
        };
        let mut bytes = encode_telemetry(&frame);
        // The counter name's two bytes sit between its u16 length and the
        // u64 value at the tail of the frame (span count is the final u32).
        let name_at = bytes.len() - 4 - 8 - 2;
        bytes[name_at] = 0xff;
        bytes[name_at + 1] = 0xfe;
        let error = decode(&bytes).unwrap_err();
        assert!(
            format!("{error:?}").contains("UTF-8"),
            "want the UTF-8 error, got {error:?}"
        );
    }

    // Evict/rejoin-frame adversarial coverage, mirroring the other suites.

    fn sample_evict() -> EvictFrame {
        EvictFrame {
            verdict: FaultVerdict {
                round: 11,
                process: 2,
                kind: FaultKind::Dead,
                servers: vec![4, 5],
                reason: "no frames before the stall timeout".to_string(),
            },
        }
    }

    fn sample_rejoin() -> RejoinFrame {
        RejoinFrame {
            round: 12,
            process: 1,
            epoch: 3,
            response: false,
            commit: false,
            digest: [0xA7; 32],
            evictions: vec![
                sample_evict().verdict,
                FaultVerdict {
                    round: 9,
                    process: 3,
                    kind: FaultKind::Slow,
                    servers: Vec::new(),
                    reason: String::new(),
                },
            ],
        }
    }

    /// Byte offset of the server-count field in an encoded evict frame.
    const EVICT_SERVER_COUNT_AT: usize = 1 + 4 + 4 + 1;

    #[test]
    fn evict_frame_roundtrips() {
        let frame = sample_evict();
        let bytes = encode_evict(&frame);
        assert_eq!(decode(&bytes).unwrap(), Frame::Evict(frame));
        // Every verdict kind survives the trip.
        for kind in [FaultKind::Dead, FaultKind::Blamed, FaultKind::Slow] {
            let frame = EvictFrame {
                verdict: FaultVerdict {
                    kind,
                    ..sample_evict().verdict
                },
            };
            let bytes = encode_evict(&frame);
            assert_eq!(decode(&bytes).unwrap(), Frame::Evict(frame));
        }
    }

    #[test]
    fn rejoin_frame_roundtrips() {
        for response in [false, true] {
            for commit in [false, true] {
                let frame = RejoinFrame {
                    response,
                    commit,
                    ..sample_rejoin()
                };
                let bytes = encode_rejoin(&frame);
                assert_eq!(decode(&bytes).unwrap(), Frame::Rejoin(frame));
            }
        }
        // An empty eviction log (a fresh fleet's handshake) is well-formed.
        let empty = RejoinFrame {
            evictions: Vec::new(),
            ..sample_rejoin()
        };
        let bytes = encode_rejoin(&empty);
        assert_eq!(decode(&bytes).unwrap(), Frame::Rejoin(empty));
    }

    #[test]
    fn evict_unknown_verdict_kind_rejected() {
        let kind_at = 1 + 4 + 4;
        for byte in [3u8, 0x80, 0xff] {
            let mut bytes = encode_evict(&sample_evict());
            bytes[kind_at] = byte;
            let error = decode(&bytes).unwrap_err();
            assert!(
                format!("{error:?}").contains("kind byte"),
                "want the verdict-kind error, got {error:?}"
            );
        }
    }

    #[test]
    fn evict_count_overflows_rejected_before_allocation() {
        // u32::MAX servers claimed over a 2-server body.
        let mut bytes = encode_evict(&sample_evict());
        bytes[EVICT_SERVER_COUNT_AT..EVICT_SERVER_COUNT_AT + 4]
            .copy_from_slice(&u32::MAX.to_le_bytes());
        let error = decode(&bytes).unwrap_err();
        assert!(
            format!("{error:?}").contains("claims"),
            "want the bounds error, got {error:?}"
        );
        // A reason length pointing past the frame end.
        let mut bytes = encode_evict(&sample_evict());
        let reason_len_at = EVICT_SERVER_COUNT_AT + 4 + 2 * 4;
        bytes[reason_len_at..reason_len_at + 2].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn evict_non_utf8_reason_rejected() {
        let mut bytes = encode_evict(&sample_evict());
        let end = bytes.len();
        bytes[end - 2] = 0xff;
        bytes[end - 1] = 0xfe;
        let error = decode(&bytes).unwrap_err();
        assert!(
            format!("{error:?}").contains("UTF-8"),
            "want the UTF-8 error, got {error:?}"
        );
    }

    #[test]
    fn evict_trailing_bytes_rejected() {
        let mut bytes = encode_evict(&sample_evict());
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn rejoin_unknown_flags_rejected() {
        let flags_at = 1 + 4 + 4 + 4;
        for flags in [4u8, 0x80, 0xff] {
            let mut bytes = encode_rejoin(&sample_rejoin());
            bytes[flags_at] = flags;
            let error = decode(&bytes).unwrap_err();
            assert!(
                format!("{error:?}").contains("flags"),
                "want the flags error, got {error:?}"
            );
        }
    }

    #[test]
    fn rejoin_evict_count_overflow_rejected_before_allocation() {
        // u32::MAX verdicts claimed over a 2-verdict body: the bound by
        // MIN_VERDICT_LEN must fire before any allocation.
        let evict_count_at = 1 + 4 + 4 + 4 + 1 + DIGEST_LEN;
        let mut bytes = encode_rejoin(&sample_rejoin());
        bytes[evict_count_at..evict_count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let error = decode(&bytes).unwrap_err();
        assert!(
            format!("{error:?}").contains("claims"),
            "want the bounds error, got {error:?}"
        );
        // A count that is too small leaves trailing bytes, also rejected.
        let mut bytes = encode_rejoin(&sample_rejoin());
        bytes[evict_count_at..evict_count_at + 4].copy_from_slice(&1u32.to_le_bytes());
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn rejoin_trailing_bytes_rejected() {
        let mut bytes = encode_rejoin(&sample_rejoin());
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }

    /// A real submission of each defense variant, built with the same
    /// constructors clients use.
    fn sample_submit(trap: bool) -> SubmitFrame {
        let mut rng = StdRng::seed_from_u64(31);
        let group = KeyPair::generate(&mut rng);
        let trustee = KeyPair::generate(&mut rng);
        let submission = if trap {
            let (submission, _) = atom_core::make_trap_submission(
                2,
                &group.public,
                &trustee.public,
                13,
                b"trap msg",
                32,
                &mut rng,
            )
            .unwrap();
            ClientSubmission::Trap(submission)
        } else {
            let (submission, _) =
                atom_core::make_nizk_submission(2, &group.public, b"nizk msg", 32, &mut rng)
                    .unwrap();
            ClientSubmission::Nizk(submission)
        };
        SubmitFrame {
            round: 13,
            client: 0xDEAD_BEEF_0042,
            app: 7,
            submission,
        }
    }

    #[test]
    fn submit_frame_roundtrips_both_variants() {
        for trap in [false, true] {
            let frame = sample_submit(trap);
            let bytes = encode_submit(&frame);
            assert_eq!(decode(&bytes).unwrap(), Frame::Submit(frame));
        }
    }

    #[test]
    fn submit_ack_roundtrips_and_saturates_retry_hint() {
        for (shed, retry) in [
            (false, Duration::ZERO),
            (true, Duration::from_millis(125)),
            (true, Duration::from_secs(1 << 40)),
        ] {
            let frame = SubmitAckFrame {
                round: 3,
                shed,
                retry_after: retry,
            };
            let bytes = encode_submit_ack(&frame);
            match decode(&bytes).unwrap() {
                Frame::SubmitAck(decoded) => {
                    assert_eq!(decoded.round, 3);
                    assert_eq!(decoded.shed, shed);
                    let expect_ms = u32::try_from(retry.as_millis()).unwrap_or(u32::MAX) as u64;
                    assert_eq!(decoded.retry_after, Duration::from_millis(expect_ms));
                }
                other => panic!("expected submit-ack, got {other:?}"),
            }
        }
    }

    #[test]
    fn submit_unknown_flags_rejected() {
        let flags_at = 1 + 4 + 8;
        for flags in [2u8, 0x80, 0xff] {
            let mut bytes = encode_submit(&sample_submit(false));
            bytes[flags_at] = flags;
            let error = decode(&bytes).unwrap_err();
            assert!(
                format!("{error:?}").contains("flags"),
                "want the flags error, got {error:?}"
            );
        }
    }

    #[test]
    fn submit_ack_unknown_flags_rejected() {
        let flags_at = 1 + 4;
        for flags in [2u8, 0x80, 0xff] {
            let mut bytes = encode_submit_ack(&SubmitAckFrame {
                round: 0,
                shed: false,
                retry_after: Duration::ZERO,
            });
            bytes[flags_at] = flags;
            let error = decode(&bytes).unwrap_err();
            assert!(
                format!("{error:?}").contains("flags"),
                "want the flags error, got {error:?}"
            );
        }
    }

    #[test]
    fn submit_component_count_overflow_rejected_before_allocation() {
        // The ciphertext's component count lives right after the fixed
        // header. Claim u16::MAX components over the real body: the bound
        // against the remaining bytes must fire before any allocation.
        let count_at = SUBMIT_HEADER_LEN;
        let mut bytes = encode_submit(&sample_submit(false));
        bytes[count_at..count_at + 2].copy_from_slice(&u16::MAX.to_le_bytes());
        let error = decode(&bytes).unwrap_err();
        assert!(
            format!("{error:?}").contains("claims"),
            "want the bounds error, got {error:?}"
        );
    }

    #[test]
    fn submit_proof_count_overflow_rejected_before_allocation() {
        // Point the announcement count past the end of the body.
        let frame = sample_submit(false);
        let ciphertext_len = match &frame.submission {
            ClientSubmission::Nizk(s) => {
                2 + s.ciphertext.components.len()
                    * (1 + 2 * POINT_LEN
                        + s.ciphertext.components[0].y.is_some() as usize * POINT_LEN)
            }
            ClientSubmission::Trap(_) => unreachable!(),
        };
        let ann_count_at = SUBMIT_HEADER_LEN + ciphertext_len;
        let mut bytes = encode_submit(&frame);
        bytes[ann_count_at..ann_count_at + 2].copy_from_slice(&u16::MAX.to_le_bytes());
        let error = decode(&bytes).unwrap_err();
        assert!(
            format!("{error:?}").contains("claims"),
            "want the bounds error, got {error:?}"
        );
    }

    #[test]
    fn submit_oversized_component_cap_enforced() {
        // A structurally complete ciphertext with more components than
        // any real submission: body-consistent, so only the cap fires.
        let mut rng = StdRng::seed_from_u64(33);
        let keys = KeyPair::generate(&mut rng);
        let points = encode_message_padded(&[7u8; 8], 32).unwrap();
        let (ct, _) = encrypt_message(&keys.public, &points, &mut rng);
        let component = ct.components[0];
        let huge = MessageCiphertext {
            components: vec![component; MAX_SUBMIT_COMPONENTS + 1],
        };
        let mut frame = sample_submit(false);
        if let ClientSubmission::Nizk(s) = &mut frame.submission {
            s.ciphertext = huge;
        }
        let bytes = encode_submit(&frame);
        let error = decode(&bytes).unwrap_err();
        assert!(
            format!("{error:?}").contains("cap"),
            "want the cap error, got {error:?}"
        );
    }

    #[test]
    fn submit_non_canonical_scalar_rejected() {
        // The proof responses close the nizk body; force the last 32
        // bytes to an unreduced encoding (all 0xFF is ≥ the group order).
        let mut bytes = encode_submit(&sample_submit(false));
        let end = bytes.len();
        bytes[end - POINT_LEN..end].fill(0xFF);
        let error = decode(&bytes).unwrap_err();
        assert!(
            format!("{error:?}").contains("scalar"),
            "want the scalar error, got {error:?}"
        );
    }

    #[test]
    fn submit_corrupted_point_rejected() {
        // Zero out the first ciphertext point (right after the component
        // count + flags byte): an invalid encoding must be convicted.
        let point_at = SUBMIT_HEADER_LEN + 2 + 1;
        let mut bytes = encode_submit(&sample_submit(false));
        bytes[point_at..point_at + POINT_LEN].fill(0);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn submit_trailing_bytes_rejected() {
        for trap in [false, true] {
            let mut bytes = encode_submit(&sample_submit(trap));
            bytes.push(0);
            assert!(decode(&bytes).is_err());
        }
        let mut ack = encode_submit_ack(&SubmitAckFrame {
            round: 0,
            shed: false,
            retry_after: Duration::ZERO,
        });
        ack.push(0);
        assert!(decode(&ack).is_err());
    }

    #[test]
    fn submit_trap_truncated_commitment_rejected() {
        let bytes = encode_submit(&sample_submit(true));
        // Slice off half the trailing commitment.
        let error = decode(&bytes[..bytes.len() - DIGEST_LEN / 2]).unwrap_err();
        assert!(
            format!("{error:?}").contains("commitment")
                || format!("{error:?}").contains("truncated"),
            "want a truncation error, got {error:?}"
        );
    }

    #[test]
    fn telemetry_overlong_note_truncated_at_char_boundary_on_encode() {
        let mut frame = sample_telemetry();
        // 70k of two-byte codepoints: must be cut to ≤ 64 KiB on a char
        // boundary so the decode below still passes.
        frame.spans[1].note = "é".repeat(35_000);
        let bytes = encode_telemetry(&frame);
        match decode(&bytes).unwrap() {
            Frame::Telemetry(decoded) => {
                assert!(decoded.spans[1].note.len() <= u16::MAX as usize);
                assert!(decoded.spans[1].note.chars().all(|ch| ch == 'é'));
            }
            other => panic!("expected telemetry, got {other:?}"),
        }
    }
}
