//! Observability end-to-end: recording must never change round outputs,
//! member snapshots must reach the coordinator as telemetry frames, and a
//! duplicated frame must be a benign no-op.
//!
//! `atom-obs` recording is process-global state, so every test here takes
//! `OBS_LOCK` and leaves recording disabled — this file is its own test
//! binary precisely so toggling the recorder cannot race the other runtime
//! suites.

use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;

use atom_core::config::AtomConfig;
use atom_core::directory::setup_round;
use atom_core::message::make_trap_submission;
use atom_net::{TcpOptions, TcpTransport, Transport};
use atom_runtime::{wire, Engine, EngineRole, RoundJob, RoundSubmissions, TELEMETRY_LABEL};

static OBS_LOCK: Mutex<()> = Mutex::new(());

const GROUPS: usize = 3;

fn trap_jobs(rounds: usize, seed: u64) -> Vec<RoundJob> {
    let mut rng = StdRng::seed_from_u64(404);
    (0..rounds)
        .map(|round| {
            let mut config = AtomConfig::test_default();
            config.num_groups = GROUPS;
            config.iterations = 2;
            config.message_len = 24;
            config.round = round as u64;
            let setup = setup_round(&config, &mut rng).unwrap();
            let submissions: Vec<_> = (0..5)
                .map(|i| {
                    let gid = i % GROUPS;
                    make_trap_submission(
                        gid,
                        &setup.groups[gid].public_key,
                        &setup.trustees.public_key,
                        config.round,
                        format!("obs r{round} m{i}").as_bytes(),
                        config.message_len,
                        &mut rng,
                    )
                    .unwrap()
                    .0
                })
                .collect();
            RoundJob::new(
                setup,
                RoundSubmissions::Trap(submissions),
                seed + round as u64,
            )
        })
        .collect()
}

/// Two `TcpTransport`s on loopback: process 0 is the coordinator hosting
/// group 0 (and the orchestrator node), process 1 hosts groups 1 and 2.
fn tcp_pair() -> (TcpTransport, TcpTransport) {
    let owner = vec![0, 1, 1, 0];
    let coordinator = TcpTransport::bind_any(2, owner.clone(), 0, TcpOptions::default()).unwrap();
    let member = TcpTransport::bind_any(2, owner, 1, TcpOptions::default()).unwrap();
    coordinator.set_peer_addr(1, member.local_addr().to_string());
    member.set_peer_addr(0, coordinator.local_addr().to_string());
    coordinator.connect_peers().unwrap();
    member.connect_peers().unwrap();
    (coordinator, member)
}

/// The deterministic fields of two runs of the same jobs must match byte
/// for byte whether or not the recorder was on — tracing reads, it never
/// writes into the protocol.
#[test]
fn traced_run_is_byte_identical_to_untraced() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let jobs = trap_jobs(2, 2200);

    atom_obs::set_enabled(false);
    let untraced: Vec<_> = Engine::with_workers(3)
        .run_rounds(jobs.clone())
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    assert!(
        untraced.iter().all(|r| r.telemetry.is_empty()),
        "no snapshots may be collected while recording is off"
    );

    atom_obs::reset();
    atom_obs::set_enabled(true);
    let traced: Vec<_> = Engine::with_workers(3)
        .run_rounds(jobs)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    atom_obs::set_enabled(false);

    for (round, (traced, untraced)) in traced.iter().zip(&untraced).enumerate() {
        assert_eq!(
            traced.output.plaintexts, untraced.output.plaintexts,
            "round {round} plaintexts diverge under tracing"
        );
        assert_eq!(
            traced.output.per_group, untraced.output.per_group,
            "round {round} per-group outputs diverge under tracing"
        );
        assert_eq!(
            traced.output.routed_ciphertexts, untraced.output.routed_ciphertexts,
            "round {round} routed counts diverge under tracing"
        );
        // The traced run's report carries the local snapshot with the
        // expected phases for its round.
        let spans: Vec<&atom_obs::SpanRecord> = traced
            .telemetry
            .iter()
            .flat_map(|snapshot| snapshot.spans.iter())
            .collect();
        for phase in ["intake", "mix", "exit"] {
            assert!(
                spans.iter().any(|span| span.phase == phase),
                "round {round}: no {phase} span recorded"
            );
        }
        assert!(
            spans.iter().all(|span| span.round == round as u32),
            "round {round} snapshot leaked spans of another round"
        );
    }
}

/// Split across a TCP pair, the member's spans travel to the coordinator in
/// a telemetry wire frame: the coordinator's merged snapshots must cover
/// mix work on every group, including the two it does not host.
#[test]
fn member_telemetry_reaches_the_coordinator_over_tcp() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    atom_obs::reset();
    atom_obs::set_enabled(true);

    let jobs = trap_jobs(1, 3300);
    let (coordinator_net, member_net) = tcp_pair();
    let member_jobs = jobs.clone();
    let member_thread = std::thread::spawn(move || {
        Engine::with_workers(2).run_rounds_on(
            member_jobs,
            &member_net,
            &EngineRole::member(vec![1, 2]),
        )
    });
    let report = Engine::with_workers(2)
        .run_rounds_on(jobs, &coordinator_net, &EngineRole::coordinator(vec![0]))
        .pop()
        .unwrap()
        .unwrap();
    member_thread.join().unwrap().pop().unwrap().unwrap();
    atom_obs::set_enabled(false);

    // Both "processes" run in this test process, so the member's frame and
    // the coordinator's local snapshot both appear; what matters is that
    // the merged view covers mixing on all three groups — the coordinator
    // alone only ever sees group 0's.
    assert!(report.telemetry.len() >= 2, "local snapshot + member frame");
    for gid in 0..GROUPS as u32 {
        assert!(
            report
                .telemetry
                .iter()
                .flat_map(|snapshot| snapshot.spans.iter())
                .any(|span| span.phase == "mix" && span.gid == gid),
            "merged telemetry misses mix spans of group {gid}"
        );
    }
}

/// A duplicated telemetry frame (a retransmit, say) must be idempotent:
/// the round still completes and the duplicate's snapshot appears once.
#[test]
fn duplicate_telemetry_frame_is_idempotent() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    atom_obs::reset();
    atom_obs::set_enabled(true);

    let jobs = trap_jobs(1, 4400);
    let (coordinator_net, member_net) = tcp_pair();

    // A synthetic frame from a claimed process 7, delivered twice to the
    // orchestrator node (id 3). Decoding is exercised for real — the frame
    // travels the wire like any other.
    let synthetic = wire::TelemetryFrame {
        round: 0,
        process: 7,
        gids: vec![1, 2],
        counters: vec![("synthetic.counter".to_string(), 11)],
        spans: Vec::new(),
    };
    let payload = wire::encode_telemetry(&synthetic);
    member_net.send(1, 3, TELEMETRY_LABEL.into(), payload.clone());
    member_net.send(1, 3, TELEMETRY_LABEL.into(), payload);

    let member_jobs = jobs.clone();
    let member_thread = std::thread::spawn(move || {
        Engine::with_workers(2).run_rounds_on(
            member_jobs,
            &member_net,
            &EngineRole::member(vec![1, 2]),
        )
    });
    let report = Engine::with_workers(2)
        .run_rounds_on(jobs, &coordinator_net, &EngineRole::coordinator(vec![0]))
        .pop()
        .unwrap()
        .unwrap();
    member_thread.join().unwrap().pop().unwrap().unwrap();
    atom_obs::set_enabled(false);

    assert_eq!(report.output.plaintexts.len(), 5, "round must complete");
    let from_seven: Vec<_> = report
        .telemetry
        .iter()
        .filter(|snapshot| snapshot.process == 7)
        .collect();
    assert_eq!(
        from_seven.len(),
        1,
        "the duplicated frame must be merged exactly once"
    );
    assert_eq!(
        from_seven[0].counters,
        vec![("synthetic.counter".to_string(), 11)]
    );
}
