//! Scenario-harness integration tests: diverse workloads through the
//! parallel engine.

use std::time::Duration;

use atom_runtime::scenarios::{self, ScenarioOptions};

fn options(seed: u64) -> ScenarioOptions {
    ScenarioOptions {
        workers: 3,
        seed,
        ..ScenarioOptions::default()
    }
}

#[test]
fn microblog_rounds_pipeline_and_deliver() {
    let report = scenarios::microblog(3, 4, 3, &options(11)).unwrap();
    assert_eq!(report.rounds, 3);
    assert_eq!(report.submitted, 12);
    assert_eq!(report.delivered, 12);
    assert!(report.mix_messages > 0);
}

#[test]
fn dialing_requests_reach_their_mailboxes() {
    let report = scenarios::dialing(2, 4, &options(13)).unwrap();
    assert_eq!(report.rounds, 1);
    assert_eq!(report.delivered, 4);
}

#[test]
fn server_churn_mid_round_is_survivable() {
    let report = scenarios::server_churn(2, 4, &options(17)).unwrap();
    assert_eq!(report.delivered, 4);
}

#[test]
fn straggler_groups_do_not_stall_the_round() {
    let report = scenarios::stragglers(3, 4, Duration::from_millis(25), &options(19)).unwrap();
    assert_eq!(report.delivered, 4);
    // Two iterations of a 25 ms straggler are on the critical path.
    assert!(report.pipelined_latency >= Duration::from_millis(50));
}

#[test]
fn chunked_intake_matches_single_task_and_sequential_outputs() {
    let report = scenarios::batched_intake(3, 6, &options(29)).unwrap();
    assert_eq!(report.delivered, 6);
}

#[test]
fn tcp_loopback_matches_the_in_memory_run_byte_for_byte() {
    let report = scenarios::tcp_loopback(3, 4, 2, &options(31)).unwrap();
    assert_eq!(report.rounds, 2);
    assert_eq!(report.submitted, 8);
    assert_eq!(report.delivered, 8);
    assert!(report.mix_messages > 0);
}

#[test]
fn sharded_loopback_matches_the_monolithic_derivation_byte_for_byte() {
    let report = scenarios::sharded_loopback(3, 4, 2, &options(37)).unwrap();
    assert_eq!(report.rounds, 2);
    assert_eq!(report.submitted, 8);
    assert_eq!(report.delivered, 8);
    assert!(report.mix_messages > 0);
}

#[test]
fn both_defense_variants_deliver_the_same_workload() {
    let (nizk, trap) = scenarios::defense_matrix(2, 3, &options(23)).unwrap();
    assert_eq!(nizk.delivered, 3);
    assert_eq!(trap.delivered, 3);
    // The trap variant routes two ciphertexts per message.
    assert!(trap.mix_bytes > nizk.mix_bytes / 2);
}
