//! Scenario-harness integration tests: diverse workloads through the
//! parallel engine.

use std::time::Duration;

use atom_runtime::scenarios::{self, ScenarioOptions};

fn options(seed: u64) -> ScenarioOptions {
    ScenarioOptions {
        workers: 3,
        seed,
        ..ScenarioOptions::default()
    }
}

#[test]
fn microblog_rounds_pipeline_and_deliver() {
    let report = scenarios::microblog(3, 4, 3, &options(11)).unwrap();
    assert_eq!(report.rounds, 3);
    assert_eq!(report.submitted, 12);
    assert_eq!(report.delivered, 12);
    assert!(report.mix_messages > 0);
}

#[test]
fn dialing_requests_reach_their_mailboxes() {
    let report = scenarios::dialing(2, 4, &options(13)).unwrap();
    assert_eq!(report.rounds, 1);
    assert_eq!(report.delivered, 4);
}

#[test]
fn server_churn_mid_round_is_survivable() {
    let report = scenarios::server_churn(2, 4, &options(17)).unwrap();
    assert_eq!(report.delivered, 4);
}

#[test]
fn straggler_groups_do_not_stall_the_round() {
    let report = scenarios::stragglers(3, 4, Duration::from_millis(25), &options(19)).unwrap();
    assert_eq!(report.delivered, 4);
    // Two iterations of a 25 ms straggler are on the critical path.
    assert!(report.pipelined_latency >= Duration::from_millis(50));
}

#[test]
fn chunked_intake_matches_single_task_and_sequential_outputs() {
    let report = scenarios::batched_intake(3, 6, &options(29)).unwrap();
    assert_eq!(report.delivered, 6);
}

#[test]
fn tcp_loopback_matches_the_in_memory_run_byte_for_byte() {
    let report = scenarios::tcp_loopback(3, 4, 2, &options(31)).unwrap();
    assert_eq!(report.rounds, 2);
    assert_eq!(report.submitted, 8);
    assert_eq!(report.delivered, 8);
    assert!(report.mix_messages > 0);
}

#[test]
fn sharded_loopback_matches_the_monolithic_derivation_byte_for_byte() {
    let report = scenarios::sharded_loopback(3, 4, 2, &options(37)).unwrap();
    assert_eq!(report.rounds, 2);
    assert_eq!(report.submitted, 8);
    assert_eq!(report.delivered, 8);
    assert!(report.mix_messages > 0);
}

#[test]
fn submission_flood_fails_closed_and_control_traffic_flows() {
    let report = scenarios::submission_flood(3, 5_000, 6, &options(41)).unwrap();
    assert_eq!(report.scenario, "submission_flood");
    assert!(
        report.verdict.contains("submission flood"),
        "{}",
        report.verdict
    );
    assert_eq!(report.delivered, 6);
    // Liveness floor: the capped engine still clears legitimate traffic at
    // a usable rate (a deliberately conservative bar for loaded CI hosts).
    assert!(
        report.msgs_per_sec() >= 1.0,
        "control throughput collapsed: {:.2} msg/s",
        report.msgs_per_sec()
    );
}

#[test]
fn slow_loris_member_is_convicted_as_slow() {
    let report = scenarios::slow_loris(
        3,
        4,
        Duration::from_millis(600),
        Duration::from_millis(150),
        &options(43),
    )
    .unwrap();
    assert_eq!(report.scenario, "slow_loris");
    assert!(report.verdict.contains("deadline"), "{}", report.verdict);
    assert_eq!(report.delivered, 4);
    assert!(report.msgs_per_sec() >= 1.0);
}

#[test]
fn equivocating_setup_frames_kill_the_round() {
    let report = scenarios::equivocating_setup(3, 4, &options(47)).unwrap();
    assert_eq!(report.scenario, "equivocating_setup");
    assert!(
        report
            .verdict
            .contains("conflicting setup frames for group 1"),
        "{}",
        report.verdict
    );
    assert_eq!(report.delivered, 4);
    assert!(report.msgs_per_sec() >= 1.0);
}

#[test]
fn both_defense_variants_deliver_the_same_workload() {
    let (nizk, trap) = scenarios::defense_matrix(2, 3, &options(23)).unwrap();
    assert_eq!(nizk.delivered, 3);
    assert_eq!(trap.delivered, 3);
    // The trap variant routes two ciphertexts per message.
    assert!(trap.mix_bytes > nizk.mix_bytes / 2);
}
