//! End-to-end tests of the client ingress tier: real sockets into an
//! [`IngressServer`], admitted submissions streamed into an engine round.
//!
//! The load-bearing assertion is *equivalence*: a round fed by the
//! ingress server over TCP loopback produces byte-identical output to the
//! same submissions materialized directly into a `RoundJob` — the socket
//! path adds admission control, not semantics. Around it: floods past the
//! admission queue shed (observably, via `atom-obs`) instead of growing
//! memory, over-rate clients get retry hints, malformed and slow-drip
//! clients are convicted without disturbing their honest neighbours.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use atom_core::config::{AtomConfig, Defense};
use atom_core::directory::{derive_setup, RoundSetup};
use atom_core::message::make_nizk_submission;
use atom_core::NizkSubmission;
use atom_net::evloop::{client_frame, read_client_frame, EvloopOptions};
use atom_runtime::wire::{self, ClientSubmission, Frame, SubmitFrame};
use atom_runtime::{
    Engine, EngineOptions, IngressOptions, IngressServer, RoundJob, RoundSubmissions,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const APP: u16 = 5;

fn test_setup(seed: u64) -> (AtomConfig, RoundSetup) {
    let mut config = AtomConfig::test_default();
    config.defense = Defense::Nizk;
    config.num_groups = 3;
    config.num_servers = (config.num_groups * 2).max(config.group_size);
    config.iterations = 2;
    config.message_len = 32;
    config.beacon_seed = seed;
    let setup = derive_setup(&config).unwrap();
    (config, setup)
}

fn test_submissions(config: &AtomConfig, setup: &RoundSetup, n: usize) -> Vec<NizkSubmission> {
    let mut rng = StdRng::seed_from_u64(0x1234_5678);
    (0..n)
        .map(|i| {
            let gid = i % config.num_groups;
            make_nizk_submission(
                gid,
                &setup.groups[gid].public_key,
                format!("client {i}").as_bytes(),
                config.message_len,
                &mut rng,
            )
            .unwrap()
            .0
        })
        .collect()
}

fn ingress_options(config: &AtomConfig) -> IngressOptions {
    IngressOptions {
        round: config.round as usize,
        defense: Defense::Nizk,
        app: APP,
        rate: 10_000.0,
        burst: 1_000.0,
        queue_capacity: 1 << 12,
        retry_after: Duration::from_millis(50),
        evloop: EvloopOptions::default(),
    }
}

/// Sends one submission as client `index` on a fresh connection and
/// returns the decoded ack.
fn submit_once(
    server: &IngressServer,
    round: usize,
    index: u64,
    submission: &NizkSubmission,
) -> wire::SubmitAckFrame {
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let payload = wire::encode_submit(&SubmitFrame {
        round,
        client: index,
        app: APP,
        submission: ClientSubmission::Nizk(submission.clone()),
    });
    use std::io::Write;
    stream.write_all(&client_frame(&payload)).unwrap();
    let ack = read_client_frame(&mut stream, 1 << 20).unwrap();
    match wire::decode(&ack).unwrap() {
        Frame::SubmitAck(ack) => ack,
        other => panic!("expected a submit ack, got {other:?}"),
    }
}

#[test]
fn socket_fed_round_is_byte_identical_to_the_materialized_path() {
    let (config, setup) = test_setup(0xE0_01);
    let submissions = test_submissions(&config, &setup, 12);
    let server = IngressServer::bind("127.0.0.1:0", ingress_options(&config)).unwrap();

    // Clients submit in a scrambled order over individual connections —
    // the ingress tier's sort-by-client-index must erase arrival order.
    for &index in &[7usize, 2, 11, 0, 5, 9, 1, 10, 4, 8, 3, 6] {
        let ack = submit_once(
            &server,
            config.round as usize,
            index as u64,
            &submissions[index],
        );
        assert!(!ack.shed, "client {index} was shed");
        assert_eq!(ack.retry_after, Duration::ZERO);
    }

    let source = server.source(12, Duration::from_secs(10)).unwrap();
    server.shutdown();

    // Stream the admitted submissions through a bounded intake window and
    // watch the in-flight gauge.
    let mut options = EngineOptions::with_workers(2);
    options.intake_window = 2;
    options.intake_chunk = 4;
    let was_enabled = atom_obs::enabled();
    atom_obs::set_enabled(true);
    atom_obs::reset();
    let streamed = Engine::new(options)
        .run_round(RoundJob::new(
            setup.clone(),
            RoundSubmissions::Stream(Arc::new(source)),
            0xE0_01,
        ))
        .unwrap();
    let peak = atom_obs::gauge_peak("engine.intake.peak_in_flight").unwrap_or(0);
    atom_obs::set_enabled(was_enabled);
    assert!(
        peak > 0 && peak <= (2 * 4) as u64,
        "intake window leaked: peak {peak} in flight"
    );

    let materialized = Engine::with_workers(2)
        .run_round(RoundJob::new(
            setup,
            RoundSubmissions::Nizk(submissions),
            0xE0_01,
        ))
        .unwrap();

    assert_eq!(streamed.output.plaintexts, materialized.output.plaintexts);
    assert_eq!(streamed.output.per_group, materialized.output.per_group);
    assert_eq!(
        streamed.output.routed_ciphertexts,
        materialized.output.routed_ciphertexts
    );
    assert_eq!(streamed.output.plaintexts.len(), 12);
}

#[test]
fn duplicate_client_indices_keep_the_first_submission() {
    let (config, setup) = test_setup(0xE0_02);
    let submissions = test_submissions(&config, &setup, 3);
    let server = IngressServer::bind("127.0.0.1:0", ingress_options(&config)).unwrap();

    for (index, submission) in submissions.iter().enumerate() {
        assert!(!submit_once(&server, config.round as usize, index as u64, submission).shed);
    }
    // Client 1 submits again with different bytes; the replay is admitted
    // at the queue but deduplicated at source time.
    assert!(!submit_once(&server, config.round as usize, 1, &submissions[2]).shed);

    let source = server.source(4, Duration::from_secs(10)).unwrap();
    use atom_runtime::SubmissionSource as _;
    assert_eq!(source.total(), 3, "duplicate client index survived dedup");
    let atom_runtime::SubmissionBlock::Nizk(block) = source.generate((0, 3)).unwrap() else {
        panic!("nizk ingress must yield nizk blocks");
    };
    assert_eq!(block, submissions, "dedup must keep first-arrival bytes");
}

#[test]
fn a_flood_past_the_admission_queue_sheds_observably() {
    let (config, setup) = test_setup(0xE0_03);
    let submissions = test_submissions(&config, &setup, 1);
    let mut options = ingress_options(&config);
    options.queue_capacity = 4;
    let was_enabled = atom_obs::enabled();
    atom_obs::set_enabled(true);
    atom_obs::reset();
    let server = IngressServer::bind("127.0.0.1:0", options).unwrap();

    // 20 distinct clients flood a queue that holds 4: exactly 4 admitted,
    // 16 shed with retry hints, and nobody hangs or OOMs.
    let mut shed = 0;
    for index in 0..20u64 {
        let ack = submit_once(&server, config.round as usize, index, &submissions[0]);
        if ack.shed {
            assert_eq!(ack.retry_after, Duration::from_millis(50));
            shed += 1;
        }
    }
    assert_eq!(shed, 16, "queue bound not enforced");
    let stats = server.stats();
    assert_eq!(stats.offered, 20);
    assert_eq!(stats.admitted, 4);
    assert_eq!(stats.shed_queue, 16);
    assert_eq!(stats.offered, stats.admitted + stats.shed_queue);

    // The shed counter is observable through atom-obs, not just stats().
    let counters = atom_obs::counter_snapshot();
    let shed_counter = counters
        .iter()
        .find(|(name, _)| name == "ingress.shed.queue")
        .map(|(_, n)| *n);
    assert_eq!(shed_counter, Some(16));

    // Draining the queue restores capacity: the server is alive, not hung.
    let source = server.source(4, Duration::from_secs(5)).unwrap();
    use atom_runtime::SubmissionSource as _;
    assert_eq!(source.total(), 4);
    assert!(!submit_once(&server, config.round as usize, 99, &submissions[0]).shed);
    atom_obs::set_enabled(was_enabled);
}

#[test]
fn over_rate_clients_are_shed_with_a_retry_hint() {
    let (config, setup) = test_setup(0xE0_04);
    let submissions = test_submissions(&config, &setup, 1);
    let mut options = ingress_options(&config);
    options.rate = 5.0;
    options.burst = 2.0;
    let server = IngressServer::bind("127.0.0.1:0", options).unwrap();

    // One connection fires 8 submissions back to back: the 2-token burst
    // admits the head, the rest are shed (refill over the test's few
    // milliseconds is < 1 token).
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    use std::io::Write;
    let mut admitted = 0;
    let mut shed = 0;
    for index in 0..8u64 {
        let payload = wire::encode_submit(&SubmitFrame {
            round: config.round as usize,
            client: index,
            app: APP,
            submission: ClientSubmission::Nizk(submissions[0].clone()),
        });
        stream.write_all(&client_frame(&payload)).unwrap();
        let ack = read_client_frame(&mut stream, 1 << 20).unwrap();
        match wire::decode(&ack).unwrap() {
            Frame::SubmitAck(ack) if ack.shed => {
                assert!(ack.retry_after > Duration::ZERO, "shed ack without a hint");
                shed += 1;
            }
            Frame::SubmitAck(_) => admitted += 1,
            other => panic!("expected a submit ack, got {other:?}"),
        }
    }
    assert_eq!(admitted, 2, "burst allowance misapplied");
    assert_eq!(shed, 6);
    assert_eq!(server.stats().shed_rate, 6);

    // A different connection has its own bucket and is admitted at once.
    assert!(!submit_once(&server, config.round as usize, 50, &submissions[0]).shed);
}

#[test]
fn wrong_round_submissions_are_shed_not_convicted() {
    let (config, setup) = test_setup(0xE0_05);
    let submissions = test_submissions(&config, &setup, 1);
    let server = IngressServer::bind("127.0.0.1:0", ingress_options(&config)).unwrap();

    // An early client targets the next round: shed with a retry hint, and
    // the connection survives to submit the right round.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    use std::io::Write;
    for (round_offset, expect_shed) in [(1usize, true), (0, false)] {
        let payload = wire::encode_submit(&SubmitFrame {
            round: config.round as usize + round_offset,
            client: 0,
            app: APP,
            submission: ClientSubmission::Nizk(submissions[0].clone()),
        });
        stream.write_all(&client_frame(&payload)).unwrap();
        let ack = read_client_frame(&mut stream, 1 << 20).unwrap();
        match wire::decode(&ack).unwrap() {
            Frame::SubmitAck(ack) => assert_eq!(ack.shed, expect_shed),
            other => panic!("expected a submit ack, got {other:?}"),
        }
    }
    assert_eq!(server.stats().wrong_round, 1);
}

#[test]
fn malformed_and_non_submit_frames_close_the_connection() {
    let (config, setup) = test_setup(0xE0_06);
    let submissions = test_submissions(&config, &setup, 1);
    let server = IngressServer::bind("127.0.0.1:0", ingress_options(&config)).unwrap();

    use std::io::Write;
    // Undecodable garbage in a well-framed payload.
    let mut garbage = TcpStream::connect(server.local_addr()).unwrap();
    garbage
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    garbage.write_all(&client_frame(&[0xFF, 1, 2, 3])).unwrap();
    assert!(
        read_client_frame(&mut garbage, 1 << 20).is_err(),
        "garbage submission must close the connection, not be acked"
    );

    // A well-formed *mesh* frame (telemetry/mix kinds) on the client edge
    // is also a violation.
    let mesh = wire::encode_submit_ack(&wire::SubmitAckFrame {
        round: config.round as usize,
        shed: false,
        retry_after: Duration::ZERO,
    });
    let mut wrong_kind = TcpStream::connect(server.local_addr()).unwrap();
    wrong_kind
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    wrong_kind.write_all(&client_frame(&mesh)).unwrap();
    assert!(read_client_frame(&mut wrong_kind, 1 << 20).is_err());

    assert_eq!(server.stats().malformed, 2);

    // Honest traffic is untouched by the convictions.
    assert!(!submit_once(&server, config.round as usize, 0, &submissions[0]).shed);
}

#[test]
fn a_slow_drip_client_is_convicted_while_honest_clients_are_served() {
    let (config, setup) = test_setup(0xE0_07);
    let submissions = test_submissions(&config, &setup, 2);
    let mut options = ingress_options(&config);
    options.evloop.idle_timeout = Duration::from_millis(200);
    let server = IngressServer::bind("127.0.0.1:0", options).unwrap();

    // The dripper trickles one byte of a valid frame header at a time —
    // never completing a frame, never triggering the length cap.
    let mut dripper = TcpStream::connect(server.local_addr()).unwrap();
    dripper
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    use std::io::{Read, Write};
    let frame = client_frame(&[0u8; 64]);
    let drip_deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut convicted = false;
    'drip: for chunk in frame.chunks(1) {
        if dripper.write_all(chunk).is_err() {
            convicted = true;
            break 'drip;
        }
        // While the dripper stalls, honest clients flow through.
        assert!(!submit_once(&server, config.round as usize, 0, &submissions[0]).shed);
        std::thread::sleep(Duration::from_millis(60));
        if std::time::Instant::now() > drip_deadline {
            break;
        }
    }
    if !convicted {
        // The write side may outlive the conviction; the read side sees
        // the close.
        let mut buf = [0u8; 1];
        convicted = matches!(dripper.read(&mut buf), Ok(0) | Err(_));
    }
    assert!(convicted, "slow-drip client outlived the idle timeout");
    assert!(!submit_once(&server, config.round as usize, 1, &submissions[1]).shed);
}
