//! TCP loopback equivalence: the same rounds executed (a) in-process over
//! `InMemoryNetwork` and (b) split across two engine instances talking
//! `TcpTransport` must produce byte-identical `RoundOutput`s — the same
//! guarantee the PR-1/PR-2 suites established for pipelining and chunked
//! intake, now across a real socket. Runs both "processes" as threads of
//! one test process; the `atom-bench` suite covers the ≥2-OS-process case
//! with the `atom-node` binary.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use atom_core::adversary::{AdversaryPlan, Misbehavior};
use atom_core::config::{AtomConfig, Defense};
use atom_core::directory::{derive_setup, setup_round};
use atom_core::error::AtomError;
use atom_core::message::{make_nizk_submission, make_trap_submission};
use atom_net::{TcpOptions, TcpTransport};
use atom_runtime::{Engine, EngineRole, RoundJob, RoundSubmissions};

const GROUPS: usize = 3;

fn trap_jobs(rounds: usize, seed: u64) -> Vec<RoundJob> {
    let mut rng = StdRng::seed_from_u64(404);
    (0..rounds)
        .map(|round| {
            let mut config = AtomConfig::test_default();
            config.num_groups = GROUPS;
            config.iterations = 2;
            config.message_len = 24;
            config.round = round as u64;
            let setup = setup_round(&config, &mut rng).unwrap();
            let submissions: Vec<_> = (0..5)
                .map(|i| {
                    let gid = i % GROUPS;
                    make_trap_submission(
                        gid,
                        &setup.groups[gid].public_key,
                        &setup.trustees.public_key,
                        config.round,
                        format!("tcp r{round} m{i}").as_bytes(),
                        config.message_len,
                        &mut rng,
                    )
                    .unwrap()
                    .0
                })
                .collect();
            RoundJob::new(
                setup,
                RoundSubmissions::Trap(submissions),
                seed + round as u64,
            )
        })
        .collect()
}

/// Two `TcpTransport`s on loopback: process 0 is the coordinator hosting
/// group 0 (and the orchestrator node), process 1 hosts groups 1 and 2.
/// Listeners bind port 0 and exchange resolved addresses, so concurrent
/// tests cannot race on ports.
fn tcp_pair() -> (TcpTransport, TcpTransport) {
    // Nodes: group 0 → process 0, groups 1,2 → process 1, orchestrator →
    // process 0.
    let owner = vec![0, 1, 1, 0];
    let coordinator = TcpTransport::bind_any(2, owner.clone(), 0, TcpOptions::default()).unwrap();
    let member = TcpTransport::bind_any(2, owner, 1, TcpOptions::default()).unwrap();
    coordinator.set_peer_addr(1, member.local_addr().to_string());
    member.set_peer_addr(0, coordinator.local_addr().to_string());
    coordinator.connect_peers().unwrap();
    member.connect_peers().unwrap();
    (coordinator, member)
}

#[test]
fn tcp_split_round_output_is_byte_identical_to_in_memory() {
    let jobs = trap_jobs(2, 9100);

    let in_memory = Engine::with_workers(3).run_rounds(jobs.clone());

    let (coordinator_net, member_net) = tcp_pair();
    let member_jobs = jobs.clone();
    let member_thread = std::thread::spawn(move || {
        Engine::with_workers(2).run_rounds_on(
            member_jobs,
            &member_net,
            &EngineRole::member(vec![1, 2]),
        )
    });
    let tcp = Engine::with_workers(2).run_rounds_on(
        jobs,
        &coordinator_net,
        &EngineRole::coordinator(vec![0]),
    );
    let member_reports = member_thread.join().unwrap();

    assert_eq!(tcp.len(), in_memory.len());
    for (round, (tcp_report, mem_report)) in tcp.iter().zip(&in_memory).enumerate() {
        let tcp_report = tcp_report.as_ref().unwrap();
        let mem_report = mem_report.as_ref().unwrap();
        assert_eq!(
            tcp_report.output.plaintexts, mem_report.output.plaintexts,
            "round {round} plaintexts diverge"
        );
        assert_eq!(
            tcp_report.output.per_group, mem_report.output.per_group,
            "round {round} per-group outputs diverge"
        );
        assert_eq!(
            tcp_report.output.routed_ciphertexts, mem_report.output.routed_ciphertexts,
            "round {round} routed counts diverge"
        );
        // Whole-round traffic accounting also matches: the exit frames
        // carry each group's counters back to the coordinator.
        assert_eq!(tcp_report.mix_messages, mem_report.mix_messages);
        assert_eq!(tcp_report.mix_bytes, mem_report.mix_bytes);
    }
    for report in member_reports {
        let report = report.unwrap();
        assert!(report.output.plaintexts.is_empty(), "stub must be empty");
        assert!(report.mix_messages > 0, "member forwarded sub-batches");
    }
}

/// Sharded directories across OS-thread "processes": the coordinator's jobs
/// carry the submissions, the member's carry an **empty** vector (members
/// never run intake), and each side derives only its hosted groups' DKGs.
/// The coordinator's outputs must match an in-memory run whose directory
/// was derived monolithically via `derive_setup` — byte for byte.
#[test]
fn sharded_tcp_split_matches_the_monolithic_derivation() {
    let mut rng = StdRng::seed_from_u64(808);
    let rounds = 2;
    let mut full_jobs = Vec::new();
    let mut coordinator_jobs = Vec::new();
    let mut member_jobs = Vec::new();
    for round in 0..rounds {
        let mut config = AtomConfig::test_default();
        config.num_groups = GROUPS;
        config.iterations = 2;
        config.message_len = 24;
        config.round = round;
        config.beacon_seed = 0x5AAD ^ round;
        let setup = derive_setup(&config).unwrap();
        let submissions: Vec<_> = (0..5)
            .map(|i| {
                let gid = i % GROUPS;
                make_trap_submission(
                    gid,
                    &setup.groups[gid].public_key,
                    &setup.trustees.public_key,
                    config.round,
                    format!("shard r{round} m{i}").as_bytes(),
                    config.message_len,
                    &mut rng,
                )
                .unwrap()
                .0
            })
            .collect();
        let seed = 7070 + round;
        full_jobs.push(RoundJob::new(
            setup,
            RoundSubmissions::Trap(submissions.clone()),
            seed,
        ));
        coordinator_jobs.push(RoundJob::sharded(
            config.clone(),
            RoundSubmissions::Trap(submissions),
            seed,
        ));
        member_jobs.push(RoundJob::sharded(
            config,
            RoundSubmissions::Trap(Vec::new()),
            seed,
        ));
    }

    let in_memory = Engine::with_workers(3).run_rounds(full_jobs);

    let (coordinator_net, member_net) = tcp_pair();
    let member_thread = std::thread::spawn(move || {
        Engine::with_workers(2).run_rounds_on(
            member_jobs,
            &member_net,
            &EngineRole::member(vec![1, 2]),
        )
    });
    let tcp = Engine::with_workers(2).run_rounds_on(
        coordinator_jobs,
        &coordinator_net,
        &EngineRole::coordinator(vec![0]),
    );
    let member_reports = member_thread.join().unwrap();

    assert_eq!(tcp.len(), in_memory.len());
    for (round, (tcp_report, mem_report)) in tcp.iter().zip(&in_memory).enumerate() {
        let tcp_report = tcp_report.as_ref().unwrap();
        let mem_report = mem_report.as_ref().unwrap();
        assert_eq!(
            tcp_report.output.plaintexts, mem_report.output.plaintexts,
            "round {round} plaintexts diverge"
        );
        assert_eq!(
            tcp_report.output.per_group, mem_report.output.per_group,
            "round {round} per-group outputs diverge"
        );
        assert_eq!(
            tcp_report.output.routed_ciphertexts, mem_report.output.routed_ciphertexts,
            "round {round} routed counts diverge"
        );
        assert_eq!(tcp_report.mix_messages, mem_report.mix_messages);
        assert_eq!(tcp_report.mix_bytes, mem_report.mix_bytes);
        assert!(
            tcp_report.setup_latency > Duration::ZERO,
            "sharded round {round} must report its directory cost"
        );
    }
    for report in member_reports {
        let report = report.unwrap();
        assert!(report.output.plaintexts.is_empty(), "stub must be empty");
        assert!(report.mix_messages > 0, "member forwarded sub-batches");
        assert!(report.setup_latency > Duration::ZERO);
    }
}

/// A hostile peer's setup frame claiming a membership or threshold that
/// contradicts the beacon derivation must fail the round, not silently
/// seed the directory — everything in the frame except the DKG public key
/// is locally recomputable, and the engine checks it.
#[test]
fn forged_setup_frame_membership_fails_the_round() {
    use atom_net::Transport;
    use atom_runtime::{wire, EngineOptions, SETUP_LABEL};

    let mut config = AtomConfig::test_default();
    config.num_groups = GROUPS;
    config.iterations = 2;
    config.message_len = 24;
    let job = RoundJob::sharded(config, RoundSubmissions::Trap(Vec::new()), 11);

    let (coordinator_net, member_net) = tcp_pair();
    // Instead of running an engine, the "member" forges group 1's directory
    // entry with a membership of its choosing.
    let forged = wire::SetupFrame {
        round: 0,
        gid: 1,
        members: vec![0, 1, 2], // not the beacon-derived assignment
        threshold: 3,
        public_key: atom_crypto::elgamal::KeyPair::generate(&mut rng_for(1)).public,
    };
    member_net.send(1, 0, SETUP_LABEL.into(), wire::encode_setup(&forged));

    let mut options = EngineOptions::with_workers(2);
    options.stall_timeout = Duration::from_secs(10);
    let err = Engine::new(options)
        .run_rounds_on(
            vec![job],
            &coordinator_net,
            &EngineRole::coordinator(vec![0]),
        )
        .pop()
        .unwrap()
        .unwrap_err();
    let reason = format!("{err:?}");
    assert!(
        reason.contains("membership") || reason.contains("threshold"),
        "want a directory-validation error, got {reason}"
    );
    coordinator_net.shutdown();
}

/// A peer streaming mix frames while withholding its setup frames must hit
/// the pre-ready buffer cap and fail the round instead of growing memory
/// without bound.
#[test]
fn mix_flood_before_setup_completion_fails_the_round() {
    use atom_net::Transport;
    use atom_runtime::{wire, EngineOptions, MIX_LABEL};

    let mut config = AtomConfig::test_default();
    config.num_groups = GROUPS;
    config.iterations = 2;
    config.message_len = 24;
    let job = RoundJob::sharded(config, RoundSubmissions::Trap(Vec::new()), 13);

    // Cap for 3 groups x 2 iterations: 3 * (1 + 3*2) = 21. Flood past it.
    let (coordinator_net, member_net) = tcp_pair();
    let payload = wire::encode_mix(0, 1, 1, Duration::ZERO, &[]);
    for _ in 0..64 {
        member_net.send(1, 0, MIX_LABEL.into(), payload.clone());
    }

    let mut options = EngineOptions::with_workers(2);
    options.stall_timeout = Duration::from_secs(10);
    let err = Engine::new(options)
        .run_rounds_on(
            vec![job],
            &coordinator_net,
            &EngineRole::coordinator(vec![0]),
        )
        .pop()
        .unwrap()
        .unwrap_err();
    assert!(
        format!("{err:?}").contains("buffered"),
        "want the buffer-cap error, got {err:?}"
    );
    coordinator_net.shutdown();
}

fn rng_for(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[test]
fn remote_actor_failure_aborts_the_round_on_both_sides() {
    let mut rng = StdRng::seed_from_u64(505);
    let mut config = AtomConfig::test_default();
    config.defense = Defense::Nizk;
    config.num_groups = GROUPS;
    config.iterations = 2;
    config.message_len = 24;
    let setup = setup_round(&config, &mut rng).unwrap();
    let submissions: Vec<_> = (0..4)
        .map(|i| {
            let gid = i % GROUPS;
            make_nizk_submission(
                gid,
                &setup.groups[gid].public_key,
                format!("abort {i}").as_bytes(),
                config.message_len,
                &mut rng,
            )
            .unwrap()
            .0
        })
        .collect();
    // Group 2 (hosted by the member process) misbehaves mid-mix; its local
    // engine must blame it and the abort must reach the coordinator.
    let mut job = RoundJob::new(setup, RoundSubmissions::Nizk(submissions), 31);
    job.adversary = Some(AdversaryPlan {
        group: 2,
        member: 1,
        iteration: 1,
        action: Misbehavior::ReplaceMessage { slot: 0 },
    });

    let (coordinator_net, member_net) = tcp_pair();
    let member_job = job.clone();
    let member_thread = std::thread::spawn(move || {
        Engine::with_workers(2).run_rounds_on(
            vec![member_job],
            &member_net,
            &EngineRole::member(vec![1, 2]),
        )
    });
    let mut tcp = Engine::with_workers(2).run_rounds_on(
        vec![job],
        &coordinator_net,
        &EngineRole::coordinator(vec![0]),
    );
    let mut member_reports = member_thread.join().unwrap();

    // The member holds the authoritative blame verdict…
    let member_err = member_reports.pop().unwrap().unwrap_err();
    assert!(
        matches!(member_err, AtomError::ProtocolViolation { group: 2, .. }),
        "member must blame group 2, got {member_err:?}"
    );
    // …and the coordinator's round fails with the relayed reason instead
    // of hanging.
    let coordinator_err = tcp.pop().unwrap().unwrap_err();
    let reason = format!("{coordinator_err:?}");
    assert!(
        reason.contains("aborted by a peer") && reason.contains("ProtocolViolation"),
        "coordinator must relay the abort, got {reason}"
    );

    coordinator_net.shutdown();
}

#[test]
fn silent_peer_death_fails_the_round_instead_of_hanging() {
    use atom_runtime::EngineOptions;

    let jobs = trap_jobs(1, 9900);
    // The member transport exists (so connects and sends succeed) but no
    // engine ever runs on it — the moral equivalent of a member process
    // dying right after startup. TCP gives the coordinator no abort frame,
    // only silence; the stall detector must convert that into per-round
    // errors.
    let (coordinator_net, _member_net) = tcp_pair();
    let mut options = EngineOptions::with_workers(2);
    options.stall_timeout = Duration::from_millis(300);
    let reports = Engine::new(options).run_rounds_on(
        jobs,
        &coordinator_net,
        &EngineRole::coordinator(vec![0]),
    );
    let err = reports.into_iter().next().unwrap().unwrap_err();
    assert!(
        format!("{err:?}").contains("stalled"),
        "want a stall error, got {err:?}"
    );
}

#[test]
fn member_hosting_no_groups_of_a_small_round_resolves_immediately() {
    // Round has 1 group; the member hosts only ids 1 and 2 → stub result
    // without any traffic.
    let mut rng = StdRng::seed_from_u64(606);
    let mut config = AtomConfig::test_default();
    config.num_groups = 1;
    config.iterations = 1;
    config.message_len = 24;
    let setup = setup_round(&config, &mut rng).unwrap();
    let submission = make_trap_submission(
        0,
        &setup.groups[0].public_key,
        &setup.trustees.public_key,
        config.round,
        b"solo",
        config.message_len,
        &mut rng,
    )
    .unwrap()
    .0;
    let job = RoundJob::new(setup, RoundSubmissions::Trap(vec![submission]), 77);

    // Nodes 0..=2 are groups (only 0 used this round), node 3 orchestrator.
    let (coordinator_net, member_net) = tcp_pair();

    let member_job = job.clone();
    let member_thread = std::thread::spawn(move || {
        Engine::with_workers(1).run_rounds_on(
            vec![member_job],
            &member_net,
            &EngineRole::member(vec![1, 2]),
        )
    });
    let report = Engine::with_workers(2)
        .run_rounds_on(
            vec![job],
            &coordinator_net,
            &EngineRole::coordinator(vec![0]),
        )
        .pop()
        .unwrap()
        .unwrap();
    assert_eq!(report.output.plaintexts.len(), 1);
    // The member had no group in this 1-group round: immediate empty stub.
    let stub = member_thread.join().unwrap().pop().unwrap().unwrap();
    assert_eq!(stub.mix_messages, 0);
    assert_eq!(stub.pipelined_latency, Duration::ZERO);
}
