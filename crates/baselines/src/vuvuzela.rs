//! A Vuvuzela/Alpenhorn-style centralized dialing baseline (SOSP 2015 /
//! OSDI 2016), the comparison systems of Table 12.
//!
//! Both systems route every dialing message through a fixed chain of three
//! anytrust servers. Each server strips one layer of (cheap, hybrid) onion
//! encryption, shuffles its whole batch, and adds differentially-private
//! dummy messages; the last server deposits the requests into dead-drop
//! mailboxes. Because *every* message passes through *every* server, the
//! system scales only vertically — the property Atom is designed to escape —
//! but the per-message work is a few symmetric operations plus one
//! exponentiation per layer, so for a million users on three large machines
//! it is faster than Atom (the 56× figure in Table 12).

use rand::seq::SliceRandom;
use rand::{CryptoRng, RngCore};

use atom_crypto::cca2::{self, HybridCiphertext};
use atom_crypto::elgamal::{KeyPair, PublicKey, SecretKey};
use atom_crypto::CryptoError;

/// The fixed server chain of the baseline.
pub struct VuvuzelaChain {
    /// The three (or more) servers' keypairs, in onion order.
    pub servers: Vec<KeyPair>,
}

/// A dialing request addressed to a mailbox.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DialDrop {
    /// Destination mailbox.
    pub mailbox: u64,
    /// Opaque request payload (e.g. a sealed sender key).
    pub payload: Vec<u8>,
}

impl VuvuzelaChain {
    /// Creates a chain of `servers` servers (the paper's deployments use 3).
    pub fn new<R: RngCore + CryptoRng>(servers: usize, rng: &mut R) -> Self {
        Self {
            servers: (0..servers).map(|_| KeyPair::generate(rng)).collect(),
        }
    }

    /// Onion-encrypts a dialing request for the chain: innermost layer for
    /// the last server, outermost for the first.
    pub fn wrap<R: RngCore + CryptoRng>(&self, drop: &DialDrop, rng: &mut R) -> Vec<u8> {
        let mut body = Vec::with_capacity(8 + drop.payload.len());
        body.extend_from_slice(&drop.mailbox.to_le_bytes());
        body.extend_from_slice(&drop.payload);
        for server in self.servers.iter().rev() {
            body = cca2::encrypt(&server.public, b"vuvuzela-layer", &body, rng).to_bytes();
        }
        body
    }

    /// One server's processing step: peel a layer off every message and
    /// shuffle the batch.
    pub fn server_step<R: RngCore + CryptoRng>(
        secret: &SecretKey,
        public: &PublicKey,
        batch: &[Vec<u8>],
        rng: &mut R,
    ) -> Result<Vec<Vec<u8>>, CryptoError> {
        let mut peeled = Vec::with_capacity(batch.len());
        for onion in batch {
            let ct = HybridCiphertext::from_bytes(onion)?;
            peeled.push(cca2::decrypt(secret, public, b"vuvuzela-layer", &ct)?);
        }
        peeled.shuffle(rng);
        Ok(peeled)
    }

    /// Runs the whole chain over a batch of wrapped requests and returns the
    /// dead drops.
    pub fn run<R: RngCore + CryptoRng>(
        &self,
        batch: Vec<Vec<u8>>,
        rng: &mut R,
    ) -> Result<Vec<DialDrop>, CryptoError> {
        let mut current = batch;
        for server in &self.servers {
            current = Self::server_step(&server.secret, &server.public, &current, rng)?;
        }
        Ok(current
            .into_iter()
            .filter_map(|body| {
                if body.len() < 8 {
                    return None;
                }
                Some(DialDrop {
                    mailbox: u64::from_le_bytes(body[..8].try_into().unwrap()),
                    payload: body[8..].to_vec(),
                })
            })
            .collect())
    }
}

/// Estimated wall-clock seconds for a Vuvuzela/Alpenhorn dialing round with
/// `messages` messages: three sequential servers, each doing one hybrid
/// decryption per message, parallelized over `cores`.
pub fn vuvuzela_latency_seconds(
    messages: u64,
    hybrid_ops_per_second: f64,
    servers: u64,
    cores: u64,
) -> f64 {
    (messages as f64 * servers as f64) / (hybrid_ops_per_second * cores as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chain_delivers_all_requests() {
        let mut rng = StdRng::seed_from_u64(10);
        let chain = VuvuzelaChain::new(3, &mut rng);
        let drops: Vec<DialDrop> = (0..8u64)
            .map(|i| DialDrop {
                mailbox: i % 4,
                payload: vec![i as u8; 48],
            })
            .collect();
        let wrapped: Vec<Vec<u8>> = drops.iter().map(|d| chain.wrap(d, &mut rng)).collect();
        let mut delivered = chain.run(wrapped, &mut rng).unwrap();
        delivered.sort_by_key(|d| d.payload.clone());
        let mut expected = drops.clone();
        expected.sort_by_key(|d| d.payload.clone());
        assert_eq!(delivered, expected);
    }

    #[test]
    fn tampered_onion_is_rejected() {
        let mut rng = StdRng::seed_from_u64(11);
        let chain = VuvuzelaChain::new(3, &mut rng);
        let drop = DialDrop {
            mailbox: 1,
            payload: vec![7u8; 16],
        };
        let mut wrapped = chain.wrap(&drop, &mut rng);
        wrapped[40] ^= 1;
        assert!(chain.run(vec![wrapped], &mut rng).is_err());
    }

    #[test]
    fn latency_scales_linearly_with_messages() {
        let one = vuvuzela_latency_seconds(1_000_000, 50_000.0, 3, 36);
        let two = vuvuzela_latency_seconds(2_000_000, 50_000.0, 3, 36);
        assert!((two / one - 2.0).abs() < 1e-9);
    }
}
